file(REMOVE_RECURSE
  "CMakeFiles/abl_atd_sampling.dir/bench/abl_atd_sampling.cc.o"
  "CMakeFiles/abl_atd_sampling.dir/bench/abl_atd_sampling.cc.o.d"
  "abl_atd_sampling"
  "abl_atd_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_atd_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
