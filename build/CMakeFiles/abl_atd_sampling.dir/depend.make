# Empty dependencies file for abl_atd_sampling.
# This may be replaced when dependencies are built.
