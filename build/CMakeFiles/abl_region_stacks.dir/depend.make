# Empty dependencies file for abl_region_stacks.
# This may be replaced when dependencies are built.
