file(REMOVE_RECURSE
  "CMakeFiles/abl_region_stacks.dir/bench/abl_region_stacks.cc.o"
  "CMakeFiles/abl_region_stacks.dir/bench/abl_region_stacks.cc.o.d"
  "abl_region_stacks"
  "abl_region_stacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_region_stacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
