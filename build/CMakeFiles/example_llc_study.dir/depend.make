# Empty dependencies file for example_llc_study.
# This may be replaced when dependencies are built.
