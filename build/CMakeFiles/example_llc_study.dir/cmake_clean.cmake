file(REMOVE_RECURSE
  "CMakeFiles/example_llc_study.dir/examples/llc_study.cpp.o"
  "CMakeFiles/example_llc_study.dir/examples/llc_study.cpp.o.d"
  "example_llc_study"
  "example_llc_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_llc_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
