# Empty dependencies file for fig07_ferret_cores.
# This may be replaced when dependencies are built.
