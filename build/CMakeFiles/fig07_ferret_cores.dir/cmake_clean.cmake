file(REMOVE_RECURSE
  "CMakeFiles/fig07_ferret_cores.dir/bench/fig07_ferret_cores.cc.o"
  "CMakeFiles/fig07_ferret_cores.dir/bench/fig07_ferret_cores.cc.o.d"
  "fig07_ferret_cores"
  "fig07_ferret_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_ferret_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
