file(REMOVE_RECURSE
  "CMakeFiles/test_atd.dir/tests/test_atd.cc.o"
  "CMakeFiles/test_atd.dir/tests/test_atd.cc.o.d"
  "test_atd"
  "test_atd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
