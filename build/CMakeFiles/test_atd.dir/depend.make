# Empty dependencies file for test_atd.
# This may be replaced when dependencies are built.
