# Empty dependencies file for fig05_speedup_stacks.
# This may be replaced when dependencies are built.
