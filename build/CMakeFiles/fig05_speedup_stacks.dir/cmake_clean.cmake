file(REMOVE_RECURSE
  "CMakeFiles/fig05_speedup_stacks.dir/bench/fig05_speedup_stacks.cc.o"
  "CMakeFiles/fig05_speedup_stacks.dir/bench/fig05_speedup_stacks.cc.o.d"
  "fig05_speedup_stacks"
  "fig05_speedup_stacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_speedup_stacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
