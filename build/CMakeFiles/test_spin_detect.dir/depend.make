# Empty dependencies file for test_spin_detect.
# This may be replaced when dependencies are built.
