file(REMOVE_RECURSE
  "CMakeFiles/test_spin_detect.dir/tests/test_spin_detect.cc.o"
  "CMakeFiles/test_spin_detect.dir/tests/test_spin_detect.cc.o.d"
  "test_spin_detect"
  "test_spin_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spin_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
