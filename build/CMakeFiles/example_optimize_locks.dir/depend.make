# Empty dependencies file for example_optimize_locks.
# This may be replaced when dependencies are built.
