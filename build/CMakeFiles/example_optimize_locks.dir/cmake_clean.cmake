file(REMOVE_RECURSE
  "CMakeFiles/example_optimize_locks.dir/examples/optimize_locks.cpp.o"
  "CMakeFiles/example_optimize_locks.dir/examples/optimize_locks.cpp.o.d"
  "example_optimize_locks"
  "example_optimize_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_optimize_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
