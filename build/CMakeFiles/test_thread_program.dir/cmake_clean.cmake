file(REMOVE_RECURSE
  "CMakeFiles/test_thread_program.dir/tests/test_thread_program.cc.o"
  "CMakeFiles/test_thread_program.dir/tests/test_thread_program.cc.o.d"
  "test_thread_program"
  "test_thread_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thread_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
