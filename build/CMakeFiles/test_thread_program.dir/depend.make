# Empty dependencies file for test_thread_program.
# This may be replaced when dependencies are built.
