file(REMOVE_RECURSE
  "libsst.a"
)
