# Empty dependencies file for sst.
# This may be replaced when dependencies are built.
