
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accounting/accounting_unit.cc" "CMakeFiles/sst.dir/src/accounting/accounting_unit.cc.o" "gcc" "CMakeFiles/sst.dir/src/accounting/accounting_unit.cc.o.d"
  "/root/repo/src/accounting/hw_cost.cc" "CMakeFiles/sst.dir/src/accounting/hw_cost.cc.o" "gcc" "CMakeFiles/sst.dir/src/accounting/hw_cost.cc.o.d"
  "/root/repo/src/accounting/report.cc" "CMakeFiles/sst.dir/src/accounting/report.cc.o" "gcc" "CMakeFiles/sst.dir/src/accounting/report.cc.o.d"
  "/root/repo/src/cache/atd.cc" "CMakeFiles/sst.dir/src/cache/atd.cc.o" "gcc" "CMakeFiles/sst.dir/src/cache/atd.cc.o.d"
  "/root/repo/src/cache/hierarchy.cc" "CMakeFiles/sst.dir/src/cache/hierarchy.cc.o" "gcc" "CMakeFiles/sst.dir/src/cache/hierarchy.cc.o.d"
  "/root/repo/src/cache/set_assoc.cc" "CMakeFiles/sst.dir/src/cache/set_assoc.cc.o" "gcc" "CMakeFiles/sst.dir/src/cache/set_assoc.cc.o.d"
  "/root/repo/src/core/classify.cc" "CMakeFiles/sst.dir/src/core/classify.cc.o" "gcc" "CMakeFiles/sst.dir/src/core/classify.cc.o.d"
  "/root/repo/src/core/experiment.cc" "CMakeFiles/sst.dir/src/core/experiment.cc.o" "gcc" "CMakeFiles/sst.dir/src/core/experiment.cc.o.d"
  "/root/repo/src/core/region_stacks.cc" "CMakeFiles/sst.dir/src/core/region_stacks.cc.o" "gcc" "CMakeFiles/sst.dir/src/core/region_stacks.cc.o.d"
  "/root/repo/src/core/render.cc" "CMakeFiles/sst.dir/src/core/render.cc.o" "gcc" "CMakeFiles/sst.dir/src/core/render.cc.o.d"
  "/root/repo/src/core/speedup_stack.cc" "CMakeFiles/sst.dir/src/core/speedup_stack.cc.o" "gcc" "CMakeFiles/sst.dir/src/core/speedup_stack.cc.o.d"
  "/root/repo/src/driver/driver.cc" "CMakeFiles/sst.dir/src/driver/driver.cc.o" "gcc" "CMakeFiles/sst.dir/src/driver/driver.cc.o.d"
  "/root/repo/src/driver/fingerprint.cc" "CMakeFiles/sst.dir/src/driver/fingerprint.cc.o" "gcc" "CMakeFiles/sst.dir/src/driver/fingerprint.cc.o.d"
  "/root/repo/src/driver/result_cache.cc" "CMakeFiles/sst.dir/src/driver/result_cache.cc.o" "gcc" "CMakeFiles/sst.dir/src/driver/result_cache.cc.o.d"
  "/root/repo/src/driver/sweep.cc" "CMakeFiles/sst.dir/src/driver/sweep.cc.o" "gcc" "CMakeFiles/sst.dir/src/driver/sweep.cc.o.d"
  "/root/repo/src/driver/thread_pool.cc" "CMakeFiles/sst.dir/src/driver/thread_pool.cc.o" "gcc" "CMakeFiles/sst.dir/src/driver/thread_pool.cc.o.d"
  "/root/repo/src/mem/dram.cc" "CMakeFiles/sst.dir/src/mem/dram.cc.o" "gcc" "CMakeFiles/sst.dir/src/mem/dram.cc.o.d"
  "/root/repo/src/sim/system.cc" "CMakeFiles/sst.dir/src/sim/system.cc.o" "gcc" "CMakeFiles/sst.dir/src/sim/system.cc.o.d"
  "/root/repo/src/sync/spin_detect.cc" "CMakeFiles/sst.dir/src/sync/spin_detect.cc.o" "gcc" "CMakeFiles/sst.dir/src/sync/spin_detect.cc.o.d"
  "/root/repo/src/sync/sync_state.cc" "CMakeFiles/sst.dir/src/sync/sync_state.cc.o" "gcc" "CMakeFiles/sst.dir/src/sync/sync_state.cc.o.d"
  "/root/repo/src/util/format.cc" "CMakeFiles/sst.dir/src/util/format.cc.o" "gcc" "CMakeFiles/sst.dir/src/util/format.cc.o.d"
  "/root/repo/src/workload/profile.cc" "CMakeFiles/sst.dir/src/workload/profile.cc.o" "gcc" "CMakeFiles/sst.dir/src/workload/profile.cc.o.d"
  "/root/repo/src/workload/thread_program.cc" "CMakeFiles/sst.dir/src/workload/thread_program.cc.o" "gcc" "CMakeFiles/sst.dir/src/workload/thread_program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
