file(REMOVE_RECURSE
  "CMakeFiles/test_classify_render.dir/tests/test_classify_render.cc.o"
  "CMakeFiles/test_classify_render.dir/tests/test_classify_render.cc.o.d"
  "test_classify_render"
  "test_classify_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_classify_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
