# Empty dependencies file for test_classify_render.
# This may be replaced when dependencies are built.
