file(REMOVE_RECURSE
  "CMakeFiles/test_accounting.dir/tests/test_accounting.cc.o"
  "CMakeFiles/test_accounting.dir/tests/test_accounting.cc.o.d"
  "test_accounting"
  "test_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
