file(REMOVE_RECURSE
  "CMakeFiles/tab_par_overhead.dir/bench/tab_par_overhead.cc.o"
  "CMakeFiles/tab_par_overhead.dir/bench/tab_par_overhead.cc.o.d"
  "tab_par_overhead"
  "tab_par_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_par_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
