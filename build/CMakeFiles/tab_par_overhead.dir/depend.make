# Empty dependencies file for tab_par_overhead.
# This may be replaced when dependencies are built.
