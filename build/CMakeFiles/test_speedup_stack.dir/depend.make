# Empty dependencies file for test_speedup_stack.
# This may be replaced when dependencies are built.
