file(REMOVE_RECURSE
  "CMakeFiles/test_speedup_stack.dir/tests/test_speedup_stack.cc.o"
  "CMakeFiles/test_speedup_stack.dir/tests/test_speedup_stack.cc.o.d"
  "test_speedup_stack"
  "test_speedup_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_speedup_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
