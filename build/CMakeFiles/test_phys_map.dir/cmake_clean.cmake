file(REMOVE_RECURSE
  "CMakeFiles/test_phys_map.dir/tests/test_phys_map.cc.o"
  "CMakeFiles/test_phys_map.dir/tests/test_phys_map.cc.o.d"
  "test_phys_map"
  "test_phys_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phys_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
