# Empty dependencies file for test_set_assoc.
# This may be replaced when dependencies are built.
