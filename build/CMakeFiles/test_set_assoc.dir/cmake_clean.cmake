file(REMOVE_RECURSE
  "CMakeFiles/test_set_assoc.dir/tests/test_set_assoc.cc.o"
  "CMakeFiles/test_set_assoc.dir/tests/test_set_assoc.cc.o.d"
  "test_set_assoc"
  "test_set_assoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_set_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
