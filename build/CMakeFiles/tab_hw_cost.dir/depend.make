# Empty dependencies file for tab_hw_cost.
# This may be replaced when dependencies are built.
