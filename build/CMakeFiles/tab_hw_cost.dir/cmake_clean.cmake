file(REMOVE_RECURSE
  "CMakeFiles/tab_hw_cost.dir/bench/tab_hw_cost.cc.o"
  "CMakeFiles/tab_hw_cost.dir/bench/tab_hw_cost.cc.o.d"
  "tab_hw_cost"
  "tab_hw_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_hw_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
