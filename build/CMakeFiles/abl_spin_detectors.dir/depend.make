# Empty dependencies file for abl_spin_detectors.
# This may be replaced when dependencies are built.
