file(REMOVE_RECURSE
  "CMakeFiles/abl_spin_detectors.dir/bench/abl_spin_detectors.cc.o"
  "CMakeFiles/abl_spin_detectors.dir/bench/abl_spin_detectors.cc.o.d"
  "abl_spin_detectors"
  "abl_spin_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_spin_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
