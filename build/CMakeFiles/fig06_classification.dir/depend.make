# Empty dependencies file for fig06_classification.
# This may be replaced when dependencies are built.
