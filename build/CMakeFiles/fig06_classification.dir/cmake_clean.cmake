file(REMOVE_RECURSE
  "CMakeFiles/fig06_classification.dir/bench/fig06_classification.cc.o"
  "CMakeFiles/fig06_classification.dir/bench/fig06_classification.cc.o.d"
  "fig06_classification"
  "fig06_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
