file(REMOVE_RECURSE
  "CMakeFiles/test_stats_format.dir/tests/test_stats_format.cc.o"
  "CMakeFiles/test_stats_format.dir/tests/test_stats_format.cc.o.d"
  "test_stats_format"
  "test_stats_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
