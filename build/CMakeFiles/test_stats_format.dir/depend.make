# Empty dependencies file for test_stats_format.
# This may be replaced when dependencies are built.
