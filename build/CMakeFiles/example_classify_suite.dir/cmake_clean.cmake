file(REMOVE_RECURSE
  "CMakeFiles/example_classify_suite.dir/examples/classify_suite.cpp.o"
  "CMakeFiles/example_classify_suite.dir/examples/classify_suite.cpp.o.d"
  "example_classify_suite"
  "example_classify_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_classify_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
