# Empty dependencies file for example_classify_suite.
# This may be replaced when dependencies are built.
