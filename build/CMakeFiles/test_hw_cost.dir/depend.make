# Empty dependencies file for test_hw_cost.
# This may be replaced when dependencies are built.
