file(REMOVE_RECURSE
  "CMakeFiles/test_hw_cost.dir/tests/test_hw_cost.cc.o"
  "CMakeFiles/test_hw_cost.dir/tests/test_hw_cost.cc.o.d"
  "test_hw_cost"
  "test_hw_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
