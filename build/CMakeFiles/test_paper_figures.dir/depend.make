# Empty dependencies file for test_paper_figures.
# This may be replaced when dependencies are built.
