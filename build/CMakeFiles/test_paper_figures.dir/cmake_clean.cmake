file(REMOVE_RECURSE
  "CMakeFiles/test_paper_figures.dir/tests/test_paper_figures.cc.o"
  "CMakeFiles/test_paper_figures.dir/tests/test_paper_figures.cc.o.d"
  "test_paper_figures"
  "test_paper_figures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
