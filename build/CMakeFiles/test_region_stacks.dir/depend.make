# Empty dependencies file for test_region_stacks.
# This may be replaced when dependencies are built.
