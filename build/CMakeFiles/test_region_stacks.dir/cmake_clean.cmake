file(REMOVE_RECURSE
  "CMakeFiles/test_region_stacks.dir/tests/test_region_stacks.cc.o"
  "CMakeFiles/test_region_stacks.dir/tests/test_region_stacks.cc.o.d"
  "test_region_stacks"
  "test_region_stacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_region_stacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
