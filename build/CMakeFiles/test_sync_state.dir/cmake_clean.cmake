file(REMOVE_RECURSE
  "CMakeFiles/test_sync_state.dir/tests/test_sync_state.cc.o"
  "CMakeFiles/test_sync_state.dir/tests/test_sync_state.cc.o.d"
  "test_sync_state"
  "test_sync_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
