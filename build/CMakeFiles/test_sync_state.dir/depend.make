# Empty dependencies file for test_sync_state.
# This may be replaced when dependencies are built.
