file(REMOVE_RECURSE
  "CMakeFiles/fig09_llc_size_sweep.dir/bench/fig09_llc_size_sweep.cc.o"
  "CMakeFiles/fig09_llc_size_sweep.dir/bench/fig09_llc_size_sweep.cc.o.d"
  "fig09_llc_size_sweep"
  "fig09_llc_size_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_llc_size_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
