# Empty dependencies file for fig09_llc_size_sweep.
# This may be replaced when dependencies are built.
