file(REMOVE_RECURSE
  "CMakeFiles/suite_sweep.dir/bench/suite_sweep.cc.o"
  "CMakeFiles/suite_sweep.dir/bench/suite_sweep.cc.o.d"
  "suite_sweep"
  "suite_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
