# Empty dependencies file for suite_sweep.
# This may be replaced when dependencies are built.
