# Empty dependencies file for abl_coherency.
# This may be replaced when dependencies are built.
