file(REMOVE_RECURSE
  "CMakeFiles/abl_coherency.dir/bench/abl_coherency.cc.o"
  "CMakeFiles/abl_coherency.dir/bench/abl_coherency.cc.o.d"
  "abl_coherency"
  "abl_coherency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_coherency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
