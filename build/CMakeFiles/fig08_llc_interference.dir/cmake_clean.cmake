file(REMOVE_RECURSE
  "CMakeFiles/fig08_llc_interference.dir/bench/fig08_llc_interference.cc.o"
  "CMakeFiles/fig08_llc_interference.dir/bench/fig08_llc_interference.cc.o.d"
  "fig08_llc_interference"
  "fig08_llc_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_llc_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
