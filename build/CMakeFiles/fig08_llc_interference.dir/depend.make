# Empty dependencies file for fig08_llc_interference.
# This may be replaced when dependencies are built.
