# Empty dependencies file for fig01_speedup_curves.
# This may be replaced when dependencies are built.
