file(REMOVE_RECURSE
  "CMakeFiles/fig01_speedup_curves.dir/bench/fig01_speedup_curves.cc.o"
  "CMakeFiles/fig01_speedup_curves.dir/bench/fig01_speedup_curves.cc.o.d"
  "fig01_speedup_curves"
  "fig01_speedup_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_speedup_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
