/**
 * @file
 * Declarative sweep grids for the experiment driver: a cross-product of
 * benchmark profiles x thread counts x LLC sizes (plus shared SimParams
 * overrides) expands into a flat job batch, and completed batches export
 * to CSV or JSON for plotting pipelines. The command-line `sweep` tool
 * (bench/sweep.cc) is a thin shell over this module, and the list/size
 * parsers here are what it uses for `--threads 2,4,8,16` and
 * `--llc 1M,2M,4M,8M` style arguments.
 */

#ifndef SST_DRIVER_SWEEP_HH
#define SST_DRIVER_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "driver/driver.hh"
#include "driver/job.hh"

namespace sst {

/** A cross-product of experiment coordinates. */
struct SweepGrid
{
    /** Benchmark labels ("cholesky", "facesim_medium", ...). */
    std::vector<std::string> profiles;

    /**
     * Heterogeneous-workload axis: registered mix/pipeline names
     * ("fig08_cholesky", "ferret4") or inline descriptors
     * ("cholesky:8+fft:8", "a:1>b:2"), resolved through mixRegistry()
     * and the profile registry. Mutually exclusive with `profiles`;
     * thread counts live inside each workload, so the `threads` axis
     * does not apply (it crosses with `cores` and `llcBytes` only).
     */
    std::vector<std::string> workloads;

    /**
     * Workload-description-file axis: paths to `.wdl` scenario sources,
     * each compiled (wdl::loadWorkloadFile) into one workload. Mutually
     * exclusive with `profiles` and `workloads`; like `workloads`, the
     * `threads` axis does not apply.
     */
    std::vector<std::string> workloadFiles;

    std::vector<int> threads = {16};

    /**
     * Core counts; empty runs every job with #cores == #threads. A
     * list crosses with `threads` (cores is the innermost axis), so
     * `threads = {16}, cores = {2,4,8,16}` is the Figure 7
     * oversubscription study.
     */
    std::vector<int> cores;

    /** LLC sizes in bytes; empty keeps baseParams' LLC for every job. */
    std::vector<std::uint64_t> llcBytes;

    /** Parameters shared by every job (per-axis fields overridden). */
    SimParams baseParams;

    std::uint64_t seedOffset = 0;
};

/**
 * Expand @p grid into jobs, profile-major (all of one benchmark's
 * points are adjacent, matching the serial benches' row order). Profile
 * labels resolve through the benchmark registry; an unknown label
 * throws std::invalid_argument.
 */
std::vector<JobSpec> expandGrid(const SweepGrid &grid);

/** Parse "2,4,8,16" into integers. Throws std::invalid_argument. */
std::vector<int> parseIntList(const std::string &text);

/** Parse "a,b,c" into labels. Throws std::invalid_argument on empties. */
std::vector<std::string> parseLabelList(const std::string &text);

/**
 * Parse one size with an optional K/M/G suffix (case-insensitive):
 * "512K" -> 524288, "2M" -> 2097152, "4096" -> 4096.
 * Throws std::invalid_argument.
 */
std::uint64_t parseSize(const std::string &text);

/** Parse "1M,2M,4M,8M" into byte counts. Throws std::invalid_argument. */
std::vector<std::uint64_t> parseSizeList(const std::string &text);

/** CSV header matching sweepCsv() rows. */
std::string sweepCsvHeader();

/**
 * One CSV row (no trailing newline) for @p spec / @p result — the unit
 * the experiment service streams incrementally. sweepCsv() is exactly
 * the header plus these rows, so a streamed campaign is bit-identical
 * to the batch export.
 */
std::string sweepCsvRow(const JobSpec &spec, const JobResult &result);

/** One JSON object (no trailing newline/comma) for @p spec/@p result. */
std::string sweepJsonRow(const JobSpec &spec, const JobResult &result);

/**
 * Export a completed batch (specs paired with their results, same
 * order) as CSV, header included. Doubles use round-trip precision.
 */
std::string sweepCsv(const std::vector<JobSpec> &specs,
                     const std::vector<JobResult> &results);

/** Export a completed batch as a JSON array of per-job objects. */
std::string sweepJson(const std::vector<JobSpec> &specs,
                      const std::vector<JobResult> &results);

} // namespace sst

#endif // SST_DRIVER_SWEEP_HH
