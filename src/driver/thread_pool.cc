#include "thread_pool.hh"

namespace sst {

WorkStealingPool::WorkStealingPool(int nworkers)
{
    const std::size_t n =
        static_cast<std::size_t>(nworkers < 1 ? 1 : nworkers);
    queues_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

WorkStealingPool::~WorkStealingPool()
{
    waitIdle();
    {
        std::lock_guard<std::mutex> lock(stateMutex_);
        shutdown_ = true;
    }
    workAvailable_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
WorkStealingPool::submit(std::function<void()> task)
{
    std::size_t target;
    {
        std::lock_guard<std::mutex> lock(stateMutex_);
        target = nextQueue_;
        nextQueue_ = (nextQueue_ + 1) % queues_.size();
        ++pending_;
    }
    {
        std::lock_guard<std::mutex> lock(queues_[target]->mutex);
        queues_[target]->tasks.push_back(std::move(task));
    }
    {
        // Epoch bump strictly after the push: a worker whose scan missed
        // this task will see the changed epoch and rescan (see
        // submitEpoch_ in the header).
        std::lock_guard<std::mutex> lock(stateMutex_);
        ++submitEpoch_;
    }
    workAvailable_.notify_one();
}

bool
WorkStealingPool::popLocal(std::size_t self, std::function<void()> &task)
{
    WorkerQueue &q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (q.tasks.empty())
        return false;
    task = std::move(q.tasks.back()); // LIFO: newest, cache-warm
    q.tasks.pop_back();
    return true;
}

bool
WorkStealingPool::stealRemote(std::size_t self, std::function<void()> &task)
{
    const std::size_t n = queues_.size();
    for (std::size_t k = 1; k < n; ++k) {
        WorkerQueue &victim = *queues_[(self + k) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (victim.tasks.empty())
            continue;
        task = std::move(victim.tasks.front()); // FIFO: oldest task
        victim.tasks.pop_front();
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

void
WorkStealingPool::workerLoop(std::size_t self)
{
    for (;;) {
        std::uint64_t epoch;
        {
            std::lock_guard<std::mutex> lock(stateMutex_);
            epoch = submitEpoch_;
        }
        std::function<void()> task;
        if (popLocal(self, task) || stealRemote(self, task)) {
            task();
            std::lock_guard<std::mutex> lock(stateMutex_);
            if (--pending_ == 0)
                allDone_.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lock(stateMutex_);
        workAvailable_.wait(lock, [this, epoch] {
            return shutdown_ || submitEpoch_ != epoch;
        });
        if (shutdown_)
            return;
    }
}

void
WorkStealingPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(stateMutex_);
    allDone_.wait(lock, [this] { return pending_ == 0; });
}

} // namespace sst
