/**
 * @file
 * Job descriptions and results for the parallel experiment driver. A
 * JobSpec is a fully declarative description of one speedup experiment —
 * a per-thread WorkloadSpec (one homogeneous program, a multi-program
 * mix, or a pipeline), machine parameters and an optional seed offset —
 * so that a job's outcome is a pure function of its spec: bit-identical
 * whether it runs serially, on a worker pool, or is replayed from the
 * on-disk result cache.
 */

#ifndef SST_DRIVER_JOB_HH
#define SST_DRIVER_JOB_HH

#include <cstdint>
#include <string>

#include "core/experiment.hh"
#include "sim/params.hh"
#include "workload/profile.hh"
#include "workload/workload_spec.hh"

namespace sst {

/**
 * Mix a replication offset into a base workload seed. Derived streams
 * are deterministic, platform-independent, and decorrelated for distinct
 * offsets (SplitMix64 finalizer over the pair). Offset 0 is the identity
 * so that default jobs reproduce the serial benches bit-exactly.
 */
std::uint64_t deriveJobSeed(std::uint64_t base_seed, std::uint64_t offset);

/** One experiment to execute: workload x SimParams overrides. */
struct JobSpec
{
    /**
     * The per-thread workload (copied so jobs are portable). Thread
     * counts live inside the spec: a homogeneous job is
     * WorkloadSpec::homogeneous(profile, nthreads).
     */
    WorkloadSpec workload;
    /**
     * Cores of the parallel run; 0 (the default) matches the thread
     * count. Fewer cores than threads oversubscribes the machine and
     * the OS scheduler time-shares them — the Figure 7 study axis.
     */
    int ncores = 0;
    SimParams params;         ///< machine configuration
    /**
     * Replication stream selector: 0 runs each profile's own seed (the
     * paper's configuration); k > 0 derives an independent k-th RNG
     * stream for the same workload shape.
     */
    std::uint64_t seedOffset = 0;

    /** Homogeneous convenience: @p nthreads threads of @p profile. */
    static JobSpec
    forProfile(const BenchmarkProfile &profile, int nthreads)
    {
        JobSpec spec;
        spec.workload = WorkloadSpec::homogeneous(profile, nthreads);
        return spec;
    }

    /** Software threads of the parallel run (all groups). */
    int nthreads() const { return workload.nthreads(); }

    /** Display label (profile label when homogeneous). */
    std::string label() const { return workload.label(); }

    /** The core count the parallel run actually simulates on. */
    int
    ncoresEffective() const
    {
        return ncores > 0 ? ncores : nthreads();
    }

    /**
     * The workload with the job's RNG streams applied: every group's
     * seed is mixed with the replication offset, and groups beyond the
     * first additionally fold in their group index, so two instances
     * of the same program in a mix draw decorrelated streams. Offset 0
     * leaves group 0 (and thus every homogeneous job) untouched.
     */
    WorkloadSpec
    effectiveWorkload() const
    {
        WorkloadSpec w = workload;
        for (std::size_t g = 0; g < w.groups.size(); ++g) {
            std::uint64_t seed =
                deriveJobSeed(w.groups[g].profile.seed, seedOffset);
            seed = deriveJobSeed(seed, static_cast<std::uint64_t>(g));
            w.groups[g].profile.seed = seed;
        }
        return w;
    }
};

/** How a job concluded. */
enum class JobStatus : std::uint8_t {
    kOk,       ///< experiment completed (freshly executed)
    kCached,   ///< experiment replayed from the result cache
    kFailed,   ///< spec validation or execution raised an error
};

/**
 * Outcome of one job. For kCached results the heavyweight RunResult
 * members of the experiment (per-thread counters, cache/DRAM stats,
 * region snapshots) are empty — the cache persists only the summary
 * metrics every table/figure consumes (see ResultCache).
 */
struct JobResult
{
    JobStatus status = JobStatus::kFailed;
    std::string error;      ///< failure description when kFailed
    SpeedupExperiment exp;  ///< valid when status != kFailed

    /** Runs were replayed from a recorded op trace (no generation). */
    bool tracedReplay = false;

    /** A trace of this job's op streams was captured (--record-dir). */
    bool traceRecorded = false;

    bool ok() const { return status != JobStatus::kFailed; }
    bool fromCache() const { return status == JobStatus::kCached; }
};

} // namespace sst

#endif // SST_DRIVER_JOB_HH
