/**
 * @file
 * Job descriptions and results for the parallel experiment driver. A
 * JobSpec is a fully declarative description of one speedup experiment —
 * benchmark profile, thread count, machine parameters and an optional
 * seed offset — so that a job's outcome is a pure function of its spec:
 * bit-identical whether it runs serially, on a worker pool, or is
 * replayed from the on-disk result cache.
 */

#ifndef SST_DRIVER_JOB_HH
#define SST_DRIVER_JOB_HH

#include <cstdint>
#include <string>

#include "core/experiment.hh"
#include "sim/params.hh"
#include "workload/profile.hh"

namespace sst {

/**
 * Mix a replication offset into a base workload seed. Derived streams
 * are deterministic, platform-independent, and decorrelated for distinct
 * offsets (SplitMix64 finalizer over the pair). Offset 0 is the identity
 * so that default jobs reproduce the serial benches bit-exactly.
 */
std::uint64_t deriveJobSeed(std::uint64_t base_seed, std::uint64_t offset);

/** One experiment to execute: profile x nthreads x SimParams overrides. */
struct JobSpec
{
    BenchmarkProfile profile; ///< workload (copied so jobs are portable)
    int nthreads = 16;        ///< software threads of the parallel run
    /**
     * Cores of the parallel run; 0 (the default) matches the thread
     * count. Fewer cores than threads oversubscribes the machine and
     * the OS scheduler time-shares them — the Figure 7 study axis.
     */
    int ncores = 0;
    SimParams params;         ///< machine configuration
    /**
     * Replication stream selector: 0 runs the profile's own seed (the
     * paper's configuration); k > 0 derives an independent k-th RNG
     * stream for the same workload shape.
     */
    std::uint64_t seedOffset = 0;

    /** The core count the parallel run actually simulates on. */
    int ncoresEffective() const { return ncores > 0 ? ncores : nthreads; }

    /** The profile with the job's RNG stream applied. */
    BenchmarkProfile
    effectiveProfile() const
    {
        BenchmarkProfile p = profile;
        p.seed = deriveJobSeed(p.seed, seedOffset);
        return p;
    }
};

/** How a job concluded. */
enum class JobStatus : std::uint8_t {
    kOk,       ///< experiment completed (freshly executed)
    kCached,   ///< experiment replayed from the result cache
    kFailed,   ///< spec validation or execution raised an error
};

/**
 * Outcome of one job. For kCached results the heavyweight RunResult
 * members of the experiment (per-thread counters, cache/DRAM stats,
 * region snapshots) are empty — the cache persists only the summary
 * metrics every table/figure consumes (see ResultCache).
 */
struct JobResult
{
    JobStatus status = JobStatus::kFailed;
    std::string error;      ///< failure description when kFailed
    SpeedupExperiment exp;  ///< valid when status != kFailed

    /** Runs were replayed from a recorded op trace (no generation). */
    bool tracedReplay = false;

    bool ok() const { return status != JobStatus::kFailed; }
    bool fromCache() const { return status == JobStatus::kCached; }
};

} // namespace sst

#endif // SST_DRIVER_JOB_HH
