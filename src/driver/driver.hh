/**
 * @file
 * The parallel experiment driver: executes a declarative batch of
 * speedup-experiment jobs on a work-stealing thread pool, shares
 * single-threaded baseline runs between jobs that only differ in thread
 * count, memoizes completed jobs in a content-addressed on-disk cache,
 * and isolates failures so one bad spec never poisons a batch.
 *
 * Determinism contract: a job's result is a pure function of its
 * JobSpec. The simulator keeps all state per-System instance and every
 * RNG stream is seeded from the spec alone, so a batch produces
 * bit-identical results whether it runs with 1 worker or N, in any
 * interleaving, and results are returned in submission order.
 */

#ifndef SST_DRIVER_DRIVER_HH
#define SST_DRIVER_DRIVER_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "driver/job.hh"

namespace sst {

/** Batch execution configuration. */
struct DriverOptions
{
    /** Worker threads; <= 0 selects std::thread::hardware_concurrency. */
    int jobs = 1;

    /** Result cache directory; empty disables on-disk memoization. */
    std::string cacheDir;

    /** Re-execute and overwrite even on a cache hit. */
    bool refresh = false;

    /**
     * Directory of recorded op traces (see src/trace/). When a job's
     * canonical trace file (tracePathFor) exists there, its runs replay
     * from the recording — op-stream generation is skipped entirely.
     * Jobs without a recording fall back to live generation; a present
     * but stale/incompatible trace fails the job loudly rather than
     * silently regenerating.
     */
    std::string traceDir;

    /**
     * Capture `.sstt` op traces of live jobs into this directory as
     * the batch runs (the `sweep --record-dir` mode). Each freshly
     * executed, non-oversubscribed job writes its canonical trace file
     * (tracePathFor) via the RecordingSource shim around its parallel
     * run; baseline streams are filled by pure generation, so shared
     * baselines stay shared. Cache hits and trace replays skip
     * capture. Mutually exclusive with traceDir.
     */
    std::string recordDir;

    /**
     * Share 1-thread baseline runs across jobs with an equal baseline
     * fingerprint (the experiment math reuses Ts across thread counts).
     */
    bool shareBaselines = true;
};

/** Aggregate counters of one runBatch() call. */
struct BatchStats
{
    std::size_t total = 0;    ///< jobs in the batch
    std::size_t executed = 0; ///< freshly simulated
    std::size_t cached = 0;   ///< replayed from the result cache
    std::size_t failed = 0;   ///< rejected spec or execution error
    std::size_t deduped = 0;  ///< intra-batch fingerprint duplicates
    std::size_t baselinesComputed = 0; ///< distinct 1-thread runs
    std::size_t traceReplays = 0; ///< executed jobs driven from a trace
    std::size_t tracesRecorded = 0; ///< jobs captured via --record-dir
};

/**
 * Executes single jobs: validation, result-cache lookup/store, trace
 * replay/record and the simulation runs, with 1-thread baselines,
 * parsed traces and record-path claims memoized across calls. This is
 * the execution engine runBatch() used to inline — split out so the
 * in-process worker threads and external `sst worker` processes
 * (src/serve/) share one implementation. Thread-safe: concurrent run()
 * calls coordinate through the internal stores.
 */
class JobExecutor
{
  public:
    /**
     * @p cache may be null (memoization disabled); when set it must
     * outlive the executor. @p opts is copied.
     */
    JobExecutor(const DriverOptions &opts, class ResultCache *cache);
    ~JobExecutor();

    /**
     * Execute one job. Never throws: spec validation or execution
     * errors yield a kFailed result carrying the message.
     */
    JobResult run(const JobSpec &spec);

    /** Distinct 1-thread baseline runs computed so far. */
    std::size_t baselinesComputed() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Executes job batches; reusable across batches (stats reset per run). */
class ExperimentDriver
{
  public:
    explicit ExperimentDriver(DriverOptions opts = DriverOptions());
    ~ExperimentDriver();

    /**
     * Execute @p specs and return one JobResult per spec, in input
     * order. Never throws for per-job failures: a job that fails spec
     * validation or raises during execution yields a kFailed result with
     * the error message, and every other job still completes.
     */
    std::vector<JobResult> runBatch(const std::vector<JobSpec> &specs);

    /** Counters of the most recent runBatch() call. */
    const BatchStats &stats() const { return stats_; }

    const DriverOptions &options() const { return opts_; }

    /** Resolved worker count (after hardware_concurrency defaulting). */
    int workerCount() const;

  private:
    DriverOptions opts_;
    BatchStats stats_;
    std::unique_ptr<class ResultCache> cache_;
};

/**
 * Convenience wrapper: run @p specs with @p options in one call.
 * @param[out] stats batch counters when non-null
 */
std::vector<JobResult> runExperimentBatch(const std::vector<JobSpec> &specs,
                                          const DriverOptions &options,
                                          BatchStats *stats = nullptr);

} // namespace sst

#endif // SST_DRIVER_DRIVER_HH
