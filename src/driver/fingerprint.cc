#include "fingerprint.hh"

#include <cinttypes>
#include <cstdio>

#include "spec/machine_keys.hh"
#include "util/logging.hh"
#include "wdl/wdl.hh"

namespace sst {
namespace {

void
put(std::string &out, const char *key, std::uint64_t v)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s=%" PRIu64 "\n", key, v);
    out += buf;
}

void
put(std::string &out, const char *key, int v)
{
    put(out, key, static_cast<std::uint64_t>(v));
}

void
put(std::string &out, const char *key, bool v)
{
    put(out, key, static_cast<std::uint64_t>(v ? 1 : 0));
}

void
put(std::string &out, const char *key, double v)
{
    // %.17g round-trips every IEEE-754 double exactly.
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s=%.17g\n", key, v);
    out += buf;
}

void
put(std::string &out, const char *key, const std::string &v)
{
    out += key;
    out += '=';
    out += v;
    out += '\n';
}

} // namespace

std::uint64_t
fnv1a64(const std::string &data)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
deriveJobSeed(std::uint64_t base_seed, std::uint64_t offset)
{
    if (offset == 0)
        return base_seed; // identity: reproduce the serial benches
    // SplitMix64 finalizer over the (seed, offset) pair.
    std::uint64_t z = base_seed + offset * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::string
Fingerprint::hex() const
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, hash);
    return std::string(buf);
}

void
encodeProfile(std::string &out, const BenchmarkProfile &p)
{
    put(out, "profile.name", p.name);
    put(out, "profile.suite", p.suite);
    put(out, "profile.input", p.input);
    put(out, "profile.totalIters", p.totalIters);
    put(out, "profile.computePerIter", p.computePerIter);
    put(out, "profile.memPerIter", p.memPerIter);
    put(out, "profile.storeFrac", p.storeFrac);
    put(out, "profile.sharedStoreFrac", p.sharedStoreFrac);
    put(out, "profile.privateBytes", p.privateBytes);
    put(out, "profile.privateHotBytes", p.privateHotBytes);
    put(out, "profile.privateHotFrac", p.privateHotFrac);
    put(out, "profile.streamFrac", p.streamFrac);
    put(out, "profile.sharedBytes", p.sharedBytes);
    put(out, "profile.sharedFrac", p.sharedFrac);
    put(out, "profile.sharedHotFrac", p.sharedHotFrac);
    put(out, "profile.sharedHotBytes", p.sharedHotBytes);
    put(out, "profile.sharedWindowPhases", p.sharedWindowPhases);
    put(out, "profile.numLocks", p.numLocks);
    put(out, "profile.lockFreq", p.lockFreq);
    put(out, "profile.csCompute", p.csCompute);
    put(out, "profile.csMem", p.csMem);
    put(out, "profile.barrierPhases", p.barrierPhases);
    put(out, "profile.imbalanceSkew", p.imbalanceSkew);
    put(out, "profile.parallelismCap", p.parallelismCap);
    put(out, "profile.capJitter", p.capJitter);
    put(out, "profile.capScale", p.capScale);
    put(out, "profile.finalBarrier", p.finalBarrier);
    put(out, "profile.parOverheadFrac", p.parOverheadFrac);
    put(out, "profile.seed", p.seed);
}

void
encodeParams(std::string &out, const SimParams &params, int ncores_effective)
{
    put(out, "machine.ncores", ncores_effective);
    put(out, "sched", std::string(schedPolicyLabel(params.schedPolicy)));
    // The RNG stream only influences random schedules; canonicalizing
    // it away for deterministic policies maximizes cache sharing.
    put(out, "sched-seed",
        canonicalSchedSeed(params.schedPolicy, params.schedSeed));
    // Every remaining outcome-relevant field comes from the spec
    // module's machine-key table — the same table that parses and
    // serializes `machine.*` spec keys — so a spec-driven run and the
    // equivalent flag-driven run produce identical canonical text (and
    // a SimParams field added to the table is automatically part of
    // the cache identity).
    encodeMachineParams(out, params);
}

namespace {

Fingerprint
finish(std::string text)
{
    Fingerprint fp;
    fp.canonical = std::move(text);
    fp.hash = fnv1a64(fp.canonical);
    return fp;
}

} // namespace

Fingerprint
fingerprintJob(const JobSpec &spec)
{
    const WorkloadSpec workload = spec.effectiveWorkload();
    std::string out;
    if (workload.wdlProgram) {
        // WDL jobs are identified by the *compiled IR* (canonical
        // text), never by the source path: identical file content at
        // different paths — or re-submitted through `sst serve` — keys
        // one cache entry. The effective per-group seeds (seed-offset
        // and group mixing already applied) are encoded separately
        // because they scope the thread RNG streams outside the IR.
        put(out, "fingerprint.version", kFingerprintVersion);
        put(out, "job.kind", std::string("experiment"));
        put(out, "job.nthreads", spec.nthreads());
        put(out, "job.seedOffset", spec.seedOffset);
        put(out, "workload.role",
            std::string(workloadRoleName(workload.role)));
        put(out, "workload.wdl.version", wdl::kWdlVersion);
        put(out, "workload.groups",
            static_cast<std::uint64_t>(workload.groups.size()));
        for (std::size_t g = 0; g < workload.groups.size(); ++g) {
            put(out, "workload.group", static_cast<std::uint64_t>(g));
            put(out, "group.nthreads", workload.groups[g].nthreads);
            put(out, "group.seed", workload.groups[g].profile.seed);
        }
        const std::string ir = workload.wdlProgram->canonicalText();
        put(out, "workload.wdl.ir.bytes",
            static_cast<std::uint64_t>(ir.size()));
        out += ir;
        encodeParams(out, spec.params, spec.ncoresEffective());
        return finish(std::move(out));
    }
    if (workload.isHomogeneous()) {
        // The v3 schema, verbatim: homogeneous jobs simulate
        // bit-identically to the pre-WorkloadSpec stack, so their cache
        // entries must keep resolving (and a spec-driven, flag-driven
        // or pre-refactor run all hash the same text).
        put(out, "fingerprint.version", kHomogeneousSchemaVersion);
        put(out, "job.kind", std::string("experiment"));
        put(out, "job.nthreads", spec.nthreads());
        put(out, "job.seedOffset", spec.seedOffset);
        encodeProfile(out, workload.groups[0].profile);
    } else {
        put(out, "fingerprint.version", kFingerprintVersion);
        put(out, "job.kind", std::string("experiment"));
        put(out, "job.nthreads", spec.nthreads());
        put(out, "job.seedOffset", spec.seedOffset);
        put(out, "workload.role",
            std::string(workloadRoleName(workload.role)));
        put(out, "workload.groups",
            static_cast<std::uint64_t>(workload.groups.size()));
        for (std::size_t g = 0; g < workload.groups.size(); ++g) {
            // Group headers make the repeated profile.* sections
            // unambiguous in the canonical text.
            put(out, "workload.group", static_cast<std::uint64_t>(g));
            put(out, "group.nthreads", workload.groups[g].nthreads);
            encodeProfile(out, workload.groups[g].profile);
        }
    }
    // The stored params.ncores is irrelevant: the parallel run always
    // simulates on ncoresEffective() cores (== nthreads unless the job
    // oversubscribes), so canonicalizing it maximizes cache sharing.
    encodeParams(out, spec.params, spec.ncoresEffective());
    return finish(std::move(out));
}

Fingerprint
fingerprintProfileBaseline(const SimParams &params,
                           const BenchmarkProfile &profile)
{
    std::string out;
    put(out, "fingerprint.version", kHomogeneousSchemaVersion);
    put(out, "job.kind", std::string("baseline"));
    encodeProfile(out, profile);
    // One thread on one core never consults the scheduler policy (no
    // contention, no wakes, no preemption), so canonicalize it away:
    // cross-policy sweeps then share one baseline per profile.
    SimParams base = params;
    base.schedPolicy = SchedPolicy::kAffinityFifo;
    base.schedSeed = 0;
    encodeParams(out, base, 1);
    return finish(std::move(out));
}

Fingerprint
fingerprintWorkloadGroupBaseline(const SimParams &params,
                                 const WorkloadSpec &workload, int group)
{
    const BenchmarkProfile &profile =
        workload.groups[static_cast<std::size_t>(group)].profile;
    if (!workload.wdlProgram)
        return fingerprintProfileBaseline(params, profile);
    std::string out;
    put(out, "fingerprint.version", kFingerprintVersion);
    put(out, "job.kind", std::string("baseline"));
    put(out, "workload.wdl.version", wdl::kWdlVersion);
    put(out, "group.index", group);
    put(out, "group.seed", profile.seed);
    const std::string ir = workload.wdlProgram->canonicalText();
    put(out, "workload.wdl.ir.bytes", static_cast<std::uint64_t>(ir.size()));
    out += ir;
    // Same canonicalization as profile baselines: one thread on one
    // core never consults the scheduler policy.
    SimParams base = params;
    base.schedPolicy = SchedPolicy::kAffinityFifo;
    base.schedSeed = 0;
    encodeParams(out, base, 1);
    return finish(std::move(out));
}

Fingerprint
fingerprintBaseline(const JobSpec &spec)
{
    const WorkloadSpec workload = spec.effectiveWorkload();
    sstAssert(workload.isHomogeneous(),
              "per-job baseline fingerprints are homogeneous-only; "
              "heterogeneous jobs key one baseline per group");
    return fingerprintProfileBaseline(spec.params,
                                      workload.groups[0].profile);
}

} // namespace sst
