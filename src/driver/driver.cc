#include "driver.hh"

#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "core/experiment.hh"
#include "driver/fingerprint.hh"
#include "driver/result_cache.hh"
#include "driver/thread_pool.hh"
#include "trace/trace_run.hh"

namespace sst {
namespace {

/**
 * Per-batch cache of parsed trace containers. Jobs that differ only in
 * machine parameters share one trace file; parsing (whole-file read +
 * full validation decode of every stream) should happen once per path,
 * not once per job. Parsing runs outside the lock; a racing duplicate
 * parse is harmless — the first insert wins.
 */
class TraceReaderCache
{
  public:
    std::shared_ptr<const TraceReader>
    get(const std::string &path)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = readers_.find(path);
            if (it != readers_.end())
                return it->second;
        }
        auto reader = std::make_shared<const TraceReader>(path);
        std::lock_guard<std::mutex> lock(mutex_);
        return readers_.emplace(path, std::move(reader)).first->second;
    }

  private:
    std::mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<const TraceReader>>
        readers_;
};

/**
 * Reject specs the simulator would abort on. The driver turns these
 * into per-job failures instead of process death so a batch survives
 * one bad entry.
 */
void
validateSpec(const JobSpec &spec)
{
    if (spec.nthreads < 1)
        throw std::invalid_argument(
            "job '" + spec.profile.label() + "': nthreads must be >= 1, got " +
            std::to_string(spec.nthreads));
    // simulate() runs nthreads threads on ncoresEffective() cores, and
    // the cache hierarchy's sharers bitmap caps the machine size:
    // reject here so an oversized job fails cleanly instead of
    // panicking the whole process.
    if (spec.nthreads > kMaxSimCores)
        throw std::invalid_argument(
            "job '" + spec.profile.label() + "': nthreads " +
            std::to_string(spec.nthreads) + " exceeds the " +
            std::to_string(kMaxSimCores) + "-core simulator limit");
    if (spec.ncores < 0)
        throw std::invalid_argument(
            "job '" + spec.profile.label() + "': ncores must be >= 0 "
            "(0 = match nthreads), got " + std::to_string(spec.ncores));
    if (spec.ncores > spec.nthreads)
        throw std::invalid_argument(
            "job '" + spec.profile.label() + "': ncores " +
            std::to_string(spec.ncores) + " exceeds nthreads " +
            std::to_string(spec.nthreads) +
            " (idle cores cannot speed up the run)");
    if (spec.profile.totalIters == 0)
        throw std::invalid_argument("job '" + spec.profile.label() +
                                    "': profile has no work (totalIters == 0)");
    if (spec.profile.name.empty())
        throw std::invalid_argument("job: profile has no name");
    if (spec.params.cache.llcBytes == 0 || spec.params.cache.l1Bytes == 0)
        throw std::invalid_argument("job '" + spec.profile.label() +
                                    "': cache sizes must be non-zero");
}

/** Execute one job (validation, cache, trace replay or live runs). */
JobResult
runOneJob(const DriverOptions &opts, const JobSpec &spec,
          BaselineStore &baselines, ResultCache *cache,
          TraceReaderCache &traces)
{
    JobResult res;
    try {
        validateSpec(spec);
        const Fingerprint fp = fingerprintJob(spec);
        if (cache && !opts.refresh) {
            SpeedupExperiment hit;
            if (cache->lookup(fp, hit)) {
                res.status = JobStatus::kCached;
                res.exp = std::move(hit);
                return res;
            }
        }

        const BenchmarkProfile profile = spec.effectiveProfile();

        // Trace replay: when the job's canonical recording exists, both
        // runs re-simulate from the recorded op streams and no
        // ThreadProgram is ever constructed. A missing file falls back
        // to live generation; an incompatible file (stale profile,
        // wrong thread count, corruption) throws and fails the job —
        // silently regenerating would hide a stale trace directory.
        // Recorded op streams embed the schedule they ran under, and a
        // trace header carries no core count — an oversubscribed job
        // (ncores < nthreads) always generates live.
        std::shared_ptr<const TraceReader> reader;
        if (!opts.traceDir.empty() &&
            spec.ncoresEffective() == spec.nthreads) {
            const std::string path = tracePathFor(
                opts.traceDir, profile, spec.nthreads, spec.seedOffset,
                spec.params.schedPolicy, spec.params.schedSeed);
            if (std::filesystem::exists(path)) {
                reader = traces.get(path);
                reader->requireCompatible(traceProfileHash(profile),
                                          spec.nthreads,
                                          spec.params.schedPolicy,
                                          spec.params.schedSeed);
            }
        }

        SpeedupExperiment exp;
        if (opts.shareBaselines) {
            // Keyed by the full canonical text (not the hash) so two
            // distinct baselines can never silently share a slot. The
            // key is frontend-agnostic: a replayed baseline is
            // bit-identical to a generated one, so traced and live jobs
            // may share slots freely.
            const RunResult &baseline = baselines.get(
                fingerprintBaseline(spec).canonical,
                [&]() -> RunResult {
                    if (reader)
                        return replayBaseline(spec.params, *reader);
                    return runSingleThreaded(spec.params, profile);
                });
            exp = reader
                      ? assembleExperiment(profile.label(), spec.nthreads,
                                           spec.params, baseline,
                                           replayParallel(spec.params,
                                                          *reader))
                      : runWithBaseline(spec.params, profile,
                                        spec.nthreads, baseline, nullptr,
                                        spec.ncores);
        } else if (reader) {
            exp = assembleExperiment(profile.label(), spec.nthreads,
                                     spec.params,
                                     replayBaseline(spec.params, *reader),
                                     replayParallel(spec.params, *reader));
        } else {
            exp = runSpeedupExperiment(spec.params, profile, spec.nthreads,
                                       nullptr, spec.ncores);
        }
        res.tracedReplay = reader != nullptr;
        if (cache)
            cache->store(fp, exp);
        res.status = JobStatus::kOk;
        res.exp = std::move(exp);
    } catch (const std::exception &e) {
        res.status = JobStatus::kFailed;
        res.error = e.what();
    }
    return res;
}

} // namespace

ExperimentDriver::ExperimentDriver(DriverOptions opts)
    : opts_(std::move(opts))
{
    if (!opts_.cacheDir.empty())
        cache_ = std::make_unique<ResultCache>(opts_.cacheDir);
}

ExperimentDriver::~ExperimentDriver() = default;

int
ExperimentDriver::workerCount() const
{
    if (opts_.jobs > 0)
        return opts_.jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

std::vector<JobResult>
ExperimentDriver::runBatch(const std::vector<JobSpec> &specs)
{
    stats_ = BatchStats{};
    stats_.total = specs.size();

    std::vector<JobResult> results(specs.size());
    BaselineStore baselines;
    TraceReaderCache traces;
    ResultCache *cache = cache_.get();

    const int nworkers = workerCount();
    if (nworkers <= 1 || specs.size() <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i)
            results[i] =
                runOneJob(opts_, specs[i], baselines, cache, traces);
    } else {
        WorkStealingPool pool(nworkers);
        for (std::size_t i = 0; i < specs.size(); ++i) {
            pool.submit(
                [this, i, &specs, &results, &baselines, cache, &traces] {
                    results[i] = runOneJob(opts_, specs[i], baselines,
                                           cache, traces);
                });
        }
        pool.waitIdle();
    }

    for (const JobResult &r : results) {
        if (r.tracedReplay)
            ++stats_.traceReplays;
        switch (r.status) {
        case JobStatus::kOk:
            ++stats_.executed;
            break;
        case JobStatus::kCached:
            ++stats_.cached;
            break;
        case JobStatus::kFailed:
            ++stats_.failed;
            break;
        }
    }
    stats_.baselinesComputed = baselines.computeCount();
    return results;
}

std::vector<JobResult>
runExperimentBatch(const std::vector<JobSpec> &specs,
                   const DriverOptions &options, BatchStats *stats)
{
    ExperimentDriver driver(options);
    std::vector<JobResult> results = driver.runBatch(specs);
    if (stats)
        *stats = driver.stats();
    return results;
}

} // namespace sst
