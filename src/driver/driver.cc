#include "driver.hh"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/experiment.hh"
#include "driver/fingerprint.hh"
#include "driver/result_cache.hh"
#include "serve/job_queue.hh"
#include "telemetry/metrics.hh"
#include "telemetry/span.hh"
#include "trace/trace_run.hh"

namespace sst {
namespace {

/**
 * Per-batch cache of parsed trace containers. Jobs that differ only in
 * machine parameters share one trace file; parsing (whole-file read +
 * full validation decode of every stream) should happen once per path,
 * not once per job. Parsing runs outside the lock; a racing duplicate
 * parse is harmless — the first insert wins.
 */
class TraceReaderCache
{
  public:
    std::shared_ptr<const TraceReader>
    get(const std::string &path)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = readers_.find(path);
            if (it != readers_.end())
                return it->second;
        }
        auto reader = std::make_shared<const TraceReader>(path);
        std::lock_guard<std::mutex> lock(mutex_);
        return readers_.emplace(path, std::move(reader)).first->second;
    }

  private:
    std::mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<const TraceReader>>
        readers_;
};

/**
 * Reject specs the simulator would abort on. The driver turns these
 * into per-job failures instead of process death so a batch survives
 * one bad entry.
 */
void
validateSpec(const JobSpec &spec)
{
    spec.workload.validate(); // structure: groups, counts, role rules
    const std::string label = spec.label();
    const int nthreads = spec.nthreads();
    if (nthreads < 1)
        throw std::invalid_argument(
            "job '" + label + "': nthreads must be >= 1, got " +
            std::to_string(nthreads));
    // simulate() runs nthreads threads on ncoresEffective() cores, and
    // the cache hierarchy's sharers bitmap caps the machine size:
    // reject here so an oversized job fails cleanly instead of
    // panicking the whole process.
    if (nthreads > kMaxSimCores)
        throw std::invalid_argument(
            "job '" + label + "': nthreads " + std::to_string(nthreads) +
            " exceeds the " + std::to_string(kMaxSimCores) +
            "-core simulator limit");
    if (spec.ncores < 0)
        throw std::invalid_argument(
            "job '" + label + "': ncores must be >= 0 "
            "(0 = match nthreads), got " + std::to_string(spec.ncores));
    if (spec.ncores > nthreads)
        throw std::invalid_argument(
            "job '" + label + "': ncores " + std::to_string(spec.ncores) +
            " exceeds nthreads " + std::to_string(nthreads) +
            " (idle cores cannot speed up the run)");
    for (const WorkloadGroup &g : spec.workload.groups) {
        if (g.profile.totalIters == 0)
            throw std::invalid_argument(
                "job '" + label + "': profile '" + g.profile.label() +
                "' has no work (totalIters == 0)");
        if (g.profile.name.empty())
            throw std::invalid_argument("job: profile has no name");
    }
    if (spec.params.cache.llcBytes == 0 || spec.params.cache.l1Bytes == 0)
        throw std::invalid_argument("job '" + label +
                                    "': cache sizes must be non-zero");
}

/**
 * Per-batch claim set for --record-dir trace paths. Jobs that differ
 * only in machine parameters share one canonical trace name (op
 * streams are machine-independent); the first job to claim a path
 * records it, the rest skip — two workers never write one file.
 */
class TraceRecordClaims
{
  public:
    bool
    claim(const std::string &path)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return claimed_.insert(path).second;
    }

  private:
    std::mutex mutex_;
    std::set<std::string> claimed_;
};

/** Execute one job (validation, cache, trace replay or live runs). */
JobResult
runOneJob(const DriverOptions &opts, const JobSpec &spec,
          BaselineStore &baselines, ResultCache *cache,
          TraceReaderCache &traces, TraceRecordClaims &records)
{
    telemetry::Registry &registry = telemetry::Registry::global();
    telemetry::ScopedSpan jobSpan("job", "driver");
    JobResult res;
    try {
        {
            telemetry::ScopedSpan span("validate", "driver");
            validateSpec(spec);
        }
        const Fingerprint fp = fingerprintJob(spec);
        if (cache && !opts.refresh) {
            SpeedupExperiment hit;
            if (cache->lookup(fp, hit)) {
                // Cache hits never re-simulate, so they also never
                // record: --record-dir captures only fresh runs.
                registry
                    .counter("sst_driver_cache_lookups_total",
                             {{"outcome", "hit"}})
                    .inc();
                res.status = JobStatus::kCached;
                res.exp = std::move(hit);
                return res;
            }
            registry
                .counter("sst_driver_cache_lookups_total",
                         {{"outcome", "miss"}})
                .inc();
        }

        const WorkloadSpec workload = spec.effectiveWorkload();
        const int nthreads = workload.nthreads();

        // Trace replay: when the job's canonical recording exists, all
        // runs re-simulate from the recorded op streams and no
        // ThreadProgram is ever constructed. A missing file falls back
        // to live generation; an incompatible file (stale profile,
        // wrong thread count, corruption) throws and fails the job —
        // silently regenerating would hide a stale trace directory.
        // Recorded op streams embed the schedule they ran under, and a
        // trace header carries no core count — an oversubscribed job
        // (ncores < nthreads) always generates live.
        std::shared_ptr<const TraceReader> reader;
        if (!opts.traceDir.empty() &&
            spec.ncoresEffective() == nthreads) {
            const std::string path = tracePathFor(
                opts.traceDir, workload, spec.seedOffset,
                spec.params.schedPolicy, spec.params.schedSeed);
            if (std::filesystem::exists(path)) {
                reader = traces.get(path);
                reader->requireCompatibleWorkload(
                    workload.role, traceGroupsOf(workload),
                    spec.params.schedPolicy, spec.params.schedSeed);
            }
        }

        // Trace capture (--record-dir): fresh, non-oversubscribed jobs
        // write their canonical recording while they run. Jobs that
        // differ only in machine parameters share one trace name (op
        // streams are machine-independent); the claim set makes the
        // first such job the recorder.
        std::unique_ptr<TraceWriter> writer;
        std::string record_path;
        if (!opts.recordDir.empty() && !reader &&
            spec.ncoresEffective() == nthreads) {
            record_path = tracePathFor(opts.recordDir, workload,
                                       spec.seedOffset,
                                       spec.params.schedPolicy,
                                       spec.params.schedSeed);
            if (records.claim(record_path)) {
                writer = std::make_unique<TraceWriter>(
                    traceMetaFor(workload, spec.params));
                // Baseline streams are a pure function of the workload
                // — fill them by generation so the 1-thread runs can
                // still come from the shared BaselineStore.
                for (int g = 0; g < workload.ngroups(); ++g)
                    appendGeneratedBaseline(*writer, workload, g);
            }
        }

        // Per-group 1-thread reference runs. Keys are the full
        // canonical baseline text (not the hash) so two distinct
        // baselines can never silently share a slot; the key is
        // frontend-agnostic (a replayed baseline is bit-identical to a
        // generated one) and group-agnostic (a mix group shares its
        // baseline with homogeneous sweeps of the same profile).
        std::vector<RunResult> group_bases;
        group_bases.reserve(workload.groups.size());
        {
            telemetry::ScopedSpan baselineSpan("baseline", "driver");
            for (std::size_t g = 0; g < workload.groups.size(); ++g) {
                const int group = static_cast<int>(g);
                auto compute = [&]() -> RunResult {
                    if (reader)
                        return replayBaseline(spec.params, *reader,
                                              group);
                    if (workload.wdlProgram)
                        return simulateSources(
                            spec.params,
                            workloadGroupBaselineSources(workload, group),
                            1);
                    return runSingleThreaded(
                        spec.params, workload.groups[g].profile);
                };
                if (opts.shareBaselines) {
                    group_bases.push_back(baselines.get(
                        fingerprintWorkloadGroupBaseline(spec.params,
                                                         workload, group)
                            .canonical,
                        compute));
                } else {
                    group_bases.push_back(compute());
                }
            }
        }

        // The parallel run: recorded replay or live generation (with
        // the capture shim around it when this job records).
        RunResult parallel;
        {
            telemetry::ScopedSpan simSpan("simulate", "driver");
            if (reader) {
                parallel = replayParallel(spec.params, *reader);
            } else if (writer) {
                const OpSourceFactory inner = workloadOpSources(workload);
                const ThreadTopology topo =
                    workload.topology(spec.ncoresEffective());
                parallel = simulateSources(
                    spec.params,
                    [&](ThreadId tid,
                        int n) -> std::unique_ptr<OpSource> {
                        return std::make_unique<RecordingSource>(
                            inner(tid, n), *writer, tid);
                    },
                    nthreads, spec.ncores, &topo);
                writer->writeFile(record_path);
                res.traceRecorded = true;
            } else {
                parallel = simulateWorkload(spec.params, workload,
                                            spec.ncores);
            }
        }

        SpeedupExperiment exp = assembleExperiment(
            workload.label(), nthreads, spec.params,
            combineGroupBaselines(group_bases), std::move(parallel));
        res.tracedReplay = reader != nullptr;
        if (cache) {
            telemetry::ScopedSpan storeSpan("cache-store", "driver");
            cache->store(fp, exp);
        }
        res.status = JobStatus::kOk;
        res.exp = std::move(exp);
    } catch (const std::exception &e) {
        res.status = JobStatus::kFailed;
        res.error = e.what();
    }
    return res;
}

} // namespace

struct JobExecutor::Impl
{
    DriverOptions opts;
    ResultCache *cache = nullptr;
    BaselineStore baselines;
    TraceReaderCache traces;
    TraceRecordClaims records;
};

JobExecutor::JobExecutor(const DriverOptions &opts, ResultCache *cache)
    : impl_(std::make_unique<Impl>())
{
    impl_->opts = opts;
    impl_->cache = cache;
}

JobExecutor::~JobExecutor() = default;

JobResult
JobExecutor::run(const JobSpec &spec)
{
    telemetry::Registry &registry = telemetry::Registry::global();
    const bool instrumented = registry.enabled();
    const auto start = instrumented
                           ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{};
    JobResult res = runOneJob(impl_->opts, spec, impl_->baselines,
                              impl_->cache, impl_->traces,
                              impl_->records);
    if (instrumented) {
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        registry
            .histogram("sst_driver_job_seconds", {},
                       {0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
                        10.0, 60.0})
            .observe(seconds);
        const char *status = res.status == JobStatus::kOk ? "ok"
                             : res.status == JobStatus::kCached
                                 ? "cached"
                                 : "failed";
        registry
            .counter("sst_driver_jobs_total", {{"status", status}})
            .inc();
    }
    return res;
}

std::size_t
JobExecutor::baselinesComputed() const
{
    return impl_->baselines.computeCount();
}

ExperimentDriver::ExperimentDriver(DriverOptions opts)
    : opts_(std::move(opts))
{
    if (!opts_.traceDir.empty() && !opts_.recordDir.empty())
        throw std::invalid_argument(
            "trace-dir (replay) and record-dir (capture) are mutually "
            "exclusive: replayed jobs have nothing new to record");
    if (!opts_.cacheDir.empty())
        cache_ = std::make_unique<ResultCache>(opts_.cacheDir);
    if (!opts_.recordDir.empty())
        std::filesystem::create_directories(opts_.recordDir);
}

ExperimentDriver::~ExperimentDriver() = default;

int
ExperimentDriver::workerCount() const
{
    if (opts_.jobs > 0)
        return opts_.jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

std::vector<JobResult>
ExperimentDriver::runBatch(const std::vector<JobSpec> &specs)
{
    stats_ = BatchStats{};
    stats_.total = specs.size();

    JobExecutor executor(opts_, cache_.get());

    // The batch runs through the same JobQueue the experiment service
    // uses (src/serve/), with in-process lease-loop threads as the
    // backend. Local workers cannot die and the executor never throws,
    // so every leased job completes — timestamps stay 0 and no lease
    // ever expires. Fingerprint dedup means a batch that lists the same
    // job twice executes it once and both rows share the result.
    serve::JobQueue queue;
    std::vector<serve::JobId> ids;
    std::vector<bool> dup(specs.size(), false);
    ids.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const serve::SubmitOutcome out = queue.submit(specs[i], 0, 0);
        ids.push_back(out.id);
        dup[i] = out.deduped;
    }

    // Pool depth gauge: jobs not yet settled. A relaxed atomic updated
    // per completion — never read back by the batch itself.
    telemetry::GaugeHandle depthGauge =
        telemetry::Registry::global().gauge("sst_driver_queue_depth");
    std::atomic<std::size_t> unsettled{ids.size()};
    depthGauge.set(static_cast<double>(unsettled.load()));

    auto leaseLoop = [&queue, &executor, &depthGauge,
                      &unsettled](const std::string &worker) {
        serve::LeasedJob job;
        while (queue.lease(worker, 0, job)) {
            queue.complete(job.id, worker, executor.run(job.spec));
            depthGauge.set(static_cast<double>(
                unsettled.fetch_sub(1, std::memory_order_relaxed) - 1));
        }
    };

    const int nworkers = workerCount();
    if (nworkers <= 1 || specs.size() <= 1) {
        leaseLoop("local-0");
    } else {
        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(nworkers));
        for (int w = 0; w < nworkers; ++w)
            threads.emplace_back(leaseLoop,
                                 "local-" + std::to_string(w));
        for (std::thread &t : threads)
            t.join();
    }

    std::vector<JobResult> results(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        results[i] = queue.resultFor(ids[i]);
        if (dup[i]) {
            ++stats_.deduped;
            // A deduped row replays its twin's in-queue result: report
            // it as a (memoized) cache hit, never a second execution,
            // and don't double-count the twin's trace activity.
            if (results[i].status == JobStatus::kOk)
                results[i].status = JobStatus::kCached;
            results[i].tracedReplay = false;
            results[i].traceRecorded = false;
        }
    }

    for (const JobResult &r : results) {
        if (r.tracedReplay)
            ++stats_.traceReplays;
        if (r.traceRecorded)
            ++stats_.tracesRecorded;
        switch (r.status) {
        case JobStatus::kOk:
            ++stats_.executed;
            break;
        case JobStatus::kCached:
            ++stats_.cached;
            break;
        case JobStatus::kFailed:
            ++stats_.failed;
            break;
        }
    }
    stats_.baselinesComputed = executor.baselinesComputed();
    return results;
}

std::vector<JobResult>
runExperimentBatch(const std::vector<JobSpec> &specs,
                   const DriverOptions &options, BatchStats *stats)
{
    ExperimentDriver driver(options);
    std::vector<JobResult> results = driver.runBatch(specs);
    if (stats)
        *stats = driver.stats();
    return results;
}

} // namespace sst
