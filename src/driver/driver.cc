#include "driver.hh"

#include <stdexcept>
#include <thread>

#include "core/experiment.hh"
#include "driver/fingerprint.hh"
#include "driver/result_cache.hh"
#include "driver/thread_pool.hh"

namespace sst {
namespace {

/**
 * Reject specs the simulator would abort on. The driver turns these
 * into per-job failures instead of process death so a batch survives
 * one bad entry.
 */
void
validateSpec(const JobSpec &spec)
{
    if (spec.nthreads < 1)
        throw std::invalid_argument(
            "job '" + spec.profile.label() + "': nthreads must be >= 1, got " +
            std::to_string(spec.nthreads));
    if (spec.profile.totalIters == 0)
        throw std::invalid_argument("job '" + spec.profile.label() +
                                    "': profile has no work (totalIters == 0)");
    if (spec.profile.name.empty())
        throw std::invalid_argument("job: profile has no name");
    if (spec.params.cache.llcBytes == 0 || spec.params.cache.l1Bytes == 0)
        throw std::invalid_argument("job '" + spec.profile.label() +
                                    "': cache sizes must be non-zero");
}

} // namespace

ExperimentDriver::ExperimentDriver(DriverOptions opts)
    : opts_(std::move(opts))
{
    if (!opts_.cacheDir.empty())
        cache_ = std::make_unique<ResultCache>(opts_.cacheDir);
}

ExperimentDriver::~ExperimentDriver() = default;

int
ExperimentDriver::workerCount() const
{
    if (opts_.jobs > 0)
        return opts_.jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

JobResult
ExperimentDriver::runOneJob(const JobSpec &spec, BaselineStore &baselines,
                            ResultCache *cache)
{
    JobResult res;
    try {
        validateSpec(spec);
        const Fingerprint fp = fingerprintJob(spec);
        if (cache && !opts_.refresh) {
            SpeedupExperiment hit;
            if (cache->lookup(fp, hit)) {
                res.status = JobStatus::kCached;
                res.exp = std::move(hit);
                return res;
            }
        }

        const BenchmarkProfile profile = spec.effectiveProfile();
        SpeedupExperiment exp;
        if (opts_.shareBaselines) {
            // Keyed by the full canonical text (not the hash) so two
            // distinct baselines can never silently share a slot.
            const RunResult &baseline = baselines.get(
                fingerprintBaseline(spec).canonical, spec.params, profile);
            exp = runWithBaseline(spec.params, profile, spec.nthreads,
                                  baseline);
        } else {
            exp = runSpeedupExperiment(spec.params, profile, spec.nthreads);
        }
        if (cache)
            cache->store(fp, exp);
        res.status = JobStatus::kOk;
        res.exp = std::move(exp);
    } catch (const std::exception &e) {
        res.status = JobStatus::kFailed;
        res.error = e.what();
    }
    return res;
}

std::vector<JobResult>
ExperimentDriver::runBatch(const std::vector<JobSpec> &specs)
{
    stats_ = BatchStats{};
    stats_.total = specs.size();

    std::vector<JobResult> results(specs.size());
    BaselineStore baselines;
    ResultCache *cache = cache_.get();

    const int nworkers = workerCount();
    if (nworkers <= 1 || specs.size() <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i)
            results[i] = runOneJob(specs[i], baselines, cache);
    } else {
        WorkStealingPool pool(nworkers);
        for (std::size_t i = 0; i < specs.size(); ++i) {
            pool.submit([this, i, &specs, &results, &baselines, cache] {
                results[i] = runOneJob(specs[i], baselines, cache);
            });
        }
        pool.waitIdle();
    }

    for (const JobResult &r : results) {
        switch (r.status) {
        case JobStatus::kOk:
            ++stats_.executed;
            break;
        case JobStatus::kCached:
            ++stats_.cached;
            break;
        case JobStatus::kFailed:
            ++stats_.failed;
            break;
        }
    }
    stats_.baselinesComputed = baselines.computeCount();
    return results;
}

std::vector<JobResult>
runExperimentBatch(const std::vector<JobSpec> &specs,
                   const DriverOptions &options, BatchStats *stats)
{
    ExperimentDriver driver(options);
    std::vector<JobResult> results = driver.runBatch(specs);
    if (stats)
        *stats = driver.stats();
    return results;
}

} // namespace sst
