/**
 * @file
 * Canonical content fingerprints for experiment jobs. Every field that
 * can influence a simulation's outcome — the whole BenchmarkProfile, the
 * whole SimParams, the thread count and the seed offset — is serialized
 * into a stable `key=value` text form, which is then hashed (FNV-1a
 * 64-bit) to key the on-disk result cache and the in-memory baseline
 * store. The canonical text itself is persisted next to each cached
 * result so a hash collision degrades to a cache miss, never to a wrong
 * result.
 *
 * The encoding is versioned: bump kFingerprintVersion whenever the
 * simulation's observable behaviour changes in a way the parameter set
 * does not capture (e.g. a core-model bug fix), which invalidates every
 * previously cached result at once.
 */

#ifndef SST_DRIVER_FINGERPRINT_HH
#define SST_DRIVER_FINGERPRINT_HH

#include <cstdint>
#include <string>

#include "driver/job.hh"

namespace sst {

/**
 * Bump to invalidate all cached results after behavioural changes.
 * v2: unified event engine + scheduler subsystem; preemption wait is
 * now charged to yield time (changes oversubscribed-run counters), and
 * the encoding gained params.schedPolicy / params.schedSeed.
 * v3: declarative ExperimentSpec API — the params section is rendered
 * by the spec module's canonical machine-key table (spec files and
 * fingerprints can no longer drift), and jobs gained the ncores
 * oversubscription axis (encoded as machine.ncores, which now may be
 * smaller than job.nthreads).
 * v4: per-thread WorkloadSpec — heterogeneous jobs (mixes, pipelines)
 * encode a workload section (role + per-group thread counts and
 * profiles). Homogeneous jobs still simulate bit-identically, so they
 * keep emitting the v3 schema verbatim (kHomogeneousSchemaVersion):
 * every result cached before the refactor stays valid and shared.
 */
inline constexpr int kFingerprintVersion = 4;

/** Schema version homogeneous jobs (and all 1-profile baselines)
 *  canonicalize to — the pre-WorkloadSpec encoding, preserved exactly
 *  so existing cache entries survive the refactor. */
inline constexpr int kHomogeneousSchemaVersion = 3;

/** FNV-1a 64-bit hash of @p data. */
std::uint64_t fnv1a64(const std::string &data);

/** A job identity: the canonical text and its 64-bit digest. */
struct Fingerprint
{
    std::string canonical; ///< full `key=value` serialization
    std::uint64_t hash = 0;

    /** Fixed-width lowercase hex of the digest (cache file stem). */
    std::string hex() const;
};

/** Canonical serialization of every outcome-relevant profile field. */
void encodeProfile(std::string &out, const BenchmarkProfile &profile);

/**
 * Canonical serialization of every outcome-relevant SimParams field.
 * @p ncores_effective replaces params.ncores: simulate() pins the core
 * count to the job's effective core count (JobSpec::ncoresEffective()),
 * so the stored field is irrelevant and canonicalizing it maximizes
 * cache and baseline sharing. The field list is the spec module's
 * machine-key table (see src/spec/machine_keys.hh).
 */
void encodeParams(std::string &out, const SimParams &params,
                  int ncores_effective);

/** Fingerprint of a full job (workload x params x seed). */
Fingerprint fingerprintJob(const JobSpec &spec);

/**
 * Fingerprint of the job's single-threaded baseline run. Pins the
 * thread/core count to 1 and drops nthreads, so every job that differs
 * only in thread count shares one baseline. Heterogeneous jobs have
 * one baseline per group — see fingerprintProfileBaseline().
 */
Fingerprint fingerprintBaseline(const JobSpec &spec);

/**
 * Baseline fingerprint of one program: the 1-thread run of @p profile
 * (seed already applied) under @p params. This is the per-group
 * baseline key of heterogeneous jobs and is byte-identical to
 * fingerprintBaseline() for the same profile, so mix groups and
 * homogeneous sweeps share baseline computations.
 */
Fingerprint fingerprintProfileBaseline(const SimParams &params,
                                       const BenchmarkProfile &profile);

/**
 * Baseline fingerprint of group @p group of @p workload. Dispatches to
 * fingerprintProfileBaseline() for profile-backed groups (unchanged
 * keys) and to an IR-content encoding for WDL-backed ones: the section
 * hashes the compiled program's canonical text plus the group index and
 * effective seed, never the source path, so identical file content at
 * different paths shares one baseline.
 */
Fingerprint fingerprintWorkloadGroupBaseline(const SimParams &params,
                                             const WorkloadSpec &workload,
                                             int group);

} // namespace sst

#endif // SST_DRIVER_FINGERPRINT_HH
