#include "result_cache.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "telemetry/metrics.hh"
#include "util/logging.hh"

namespace sst {
namespace {

constexpr const char *kMagic = "sst-result-cache v1";

/**
 * Sanity bound on the embedded canonical text. Real canonical
 * serializations are O(1 KiB); a corrupt `canonical-bytes` line (bit
 * rot, a torn concurrent writer on a filesystem without atomic rename)
 * must degrade to a miss, not drive a multi-gigabyte allocation.
 */
constexpr std::uint64_t kMaxCanonicalBytes = 1ULL << 20;

void
putU64(std::ostream &os, const char *key, std::uint64_t v)
{
    os << key << ' ' << v << '\n';
}

void
putF64(std::ostream &os, const char *key, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << key << ' ' << buf << '\n';
}

/** Parse "key value" where value round-trips via strtoull/strtod. */
class LineReader
{
  public:
    explicit LineReader(std::istream &is) : is_(is) {}

    bool
    next(std::string &key, std::string &value)
    {
        std::string line;
        if (!std::getline(is_, line))
            return false;
        const std::size_t sp = line.find(' ');
        if (sp == std::string::npos) {
            key = line;
            value.clear();
        } else {
            key = line.substr(0, sp);
            value = line.substr(sp + 1);
        }
        return true;
    }

  private:
    std::istream &is_;
};

bool
toU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 10);
    return errno == 0 && end && *end == '\0';
}

bool
toF64(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtod(s.c_str(), &end);
    return errno == 0 && end && *end == '\0';
}

} // namespace

std::string
encodeExperimentSummary(const SpeedupExperiment &exp)
{
    std::ostringstream os;
    os << "label " << exp.label << '\n';
    putU64(os, "nthreads", static_cast<std::uint64_t>(exp.nthreads));
    putU64(os, "ts", exp.ts);
    putU64(os, "tp", exp.tp);
    putF64(os, "actualSpeedup", exp.actualSpeedup);
    putF64(os, "estimatedSpeedup", exp.estimatedSpeedup);
    putF64(os, "error", exp.error);
    putF64(os, "parOverheadMeasured", exp.parOverheadMeasured);
    putU64(os, "stack.nthreads",
           static_cast<std::uint64_t>(exp.stack.nthreads));
    putF64(os, "stack.posLlc", exp.stack.posLlc);
    putF64(os, "stack.negLlc", exp.stack.negLlc);
    putF64(os, "stack.negMem", exp.stack.negMem);
    putF64(os, "stack.spin", exp.stack.spin);
    putF64(os, "stack.yield", exp.stack.yield);
    putF64(os, "stack.imbalance", exp.stack.imbalance);
    putF64(os, "stack.coherency", exp.stack.coherency);
    putF64(os, "stack.baseSpeedup", exp.stack.baseSpeedup);
    putF64(os, "stack.estimatedSpeedup", exp.stack.estimatedSpeedup);
    putU64(os, "single.totalInstructions", exp.single.totalInstructions);
    putU64(os, "single.totalSpinInstructions",
           exp.single.totalSpinInstructions);
    putU64(os, "parallel.totalInstructions",
           exp.parallel.totalInstructions);
    putU64(os, "parallel.totalSpinInstructions",
           exp.parallel.totalSpinInstructions);
    os << "end\n";
    return os.str();
}

bool
decodeExperimentSummary(const std::string &text, SpeedupExperiment &out)
{
    std::istringstream in(text);
    SpeedupExperiment exp;
    bool sawEnd = false;
    LineReader reader(in);
    std::string key, value;
    while (reader.next(key, value)) {
        if (key == "end") {
            sawEnd = true;
            break;
        }
        std::uint64_t u = 0;
        bool ok = true;
        if (key == "label")
            exp.label = value;
        else if (key == "nthreads")
            ok = toU64(value, u), exp.nthreads = static_cast<int>(u);
        else if (key == "ts")
            ok = toU64(value, exp.ts);
        else if (key == "tp")
            ok = toU64(value, exp.tp);
        else if (key == "actualSpeedup")
            ok = toF64(value, exp.actualSpeedup);
        else if (key == "estimatedSpeedup")
            ok = toF64(value, exp.estimatedSpeedup);
        else if (key == "error")
            ok = toF64(value, exp.error);
        else if (key == "parOverheadMeasured")
            ok = toF64(value, exp.parOverheadMeasured);
        else if (key == "stack.nthreads")
            ok = toU64(value, u), exp.stack.nthreads = static_cast<int>(u);
        else if (key == "stack.posLlc")
            ok = toF64(value, exp.stack.posLlc);
        else if (key == "stack.negLlc")
            ok = toF64(value, exp.stack.negLlc);
        else if (key == "stack.negMem")
            ok = toF64(value, exp.stack.negMem);
        else if (key == "stack.spin")
            ok = toF64(value, exp.stack.spin);
        else if (key == "stack.yield")
            ok = toF64(value, exp.stack.yield);
        else if (key == "stack.imbalance")
            ok = toF64(value, exp.stack.imbalance);
        else if (key == "stack.coherency")
            ok = toF64(value, exp.stack.coherency);
        else if (key == "stack.baseSpeedup")
            ok = toF64(value, exp.stack.baseSpeedup);
        else if (key == "stack.estimatedSpeedup")
            ok = toF64(value, exp.stack.estimatedSpeedup);
        else if (key == "single.totalInstructions")
            ok = toU64(value, exp.single.totalInstructions);
        else if (key == "single.totalSpinInstructions")
            ok = toU64(value, exp.single.totalSpinInstructions);
        else if (key == "parallel.totalInstructions")
            ok = toU64(value, exp.parallel.totalInstructions);
        else if (key == "parallel.totalSpinInstructions")
            ok = toU64(value, exp.parallel.totalSpinInstructions);
        // Unknown keys are skipped: forward-compatible within a version.
        if (!ok)
            return false;
    }
    if (!sawEnd)
        return false; // truncated write that predates atomic publish

    exp.single.nthreads = 1;
    exp.single.executionTime = exp.ts;
    exp.parallel.nthreads = exp.nthreads;
    exp.parallel.ncores = exp.nthreads;
    exp.parallel.executionTime = exp.tp;
    out = std::move(exp);
    return true;
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        fatal("cannot create result cache directory '" + dir_ +
              "': " + ec.message());
}

std::string
ResultCache::entryPath(const Fingerprint &fp) const
{
    return dir_ + "/" + fp.hex() + ".result";
}

void
ResultCache::store(const Fingerprint &fp, const SpeedupExperiment &exp)
{
    std::ostringstream os;
    os << kMagic << '\n';
    os << "hash " << fp.hex() << '\n';
    os << "canonical-bytes " << fp.canonical.size() << '\n';
    os << fp.canonical;
    os << encodeExperimentSummary(exp);

    // Atomic publish: temp file + rename. The mutex keeps two threads of
    // this process from interleaving on the same temp name; the pid makes
    // the temp name unique across processes sharing one cache directory,
    // and rename() atomicity makes the publish itself safe either way.
    std::lock_guard<std::mutex> lock(writeMutex_);
    const std::string tmp =
        entryPath(fp) + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            warn("result cache: cannot write " + tmp);
            return;
        }
        out << os.str();
    }
    std::error_code ec;
    std::filesystem::rename(tmp, entryPath(fp), ec);
    if (ec) {
        warn("result cache: cannot publish " + entryPath(fp) + ": " +
             ec.message());
        std::filesystem::remove(tmp, ec);
    }
}

bool
ResultCache::lookup(const Fingerprint &fp, SpeedupExperiment &out) const
{
    bool opened = false;
    const bool hit = lookupImpl(fp, out, opened);
    // A "heal": the entry existed but failed validation (corruption,
    // truncation, hash mismatch) and degraded to a miss — the caller
    // re-executes and store() overwrites the bad entry. Only this
    // function can tell a heal from a plain miss.
    if (!hit && opened)
        telemetry::Registry::global()
            .counter("sst_driver_cache_heals_total")
            .inc();
    return hit;
}

bool
ResultCache::lookupImpl(const Fingerprint &fp, SpeedupExperiment &out,
                        bool &opened) const
{
    // Every failure mode of a corrupt or truncated entry — bad magic,
    // wrong hash, an absurd canonical-bytes value, malformed metric
    // lines, a missing end sentinel — is a miss, never a crash: the
    // caller re-executes and store() overwrites the bad entry.
    try {
        std::ifstream in(entryPath(fp), std::ios::binary);
        if (!in)
            return false;
        opened = true;

        std::string line;
        if (!std::getline(in, line) || line != kMagic)
            return false;
        if (!std::getline(in, line) || line != "hash " + fp.hex())
            return false;
        std::uint64_t nbytes = 0;
        if (!std::getline(in, line) ||
            line.rfind("canonical-bytes ", 0) != 0 ||
            !toU64(line.substr(std::strlen("canonical-bytes ")), nbytes))
            return false;
        if (nbytes > kMaxCanonicalBytes)
            return false; // corrupt length: don't even try to allocate
        std::string canonical(nbytes, '\0');
        if (!in.read(canonical.data(),
                     static_cast<std::streamsize>(nbytes)) ||
            canonical != fp.canonical)
            return false; // collision or stale encoding: treat as a miss

        std::ostringstream rest;
        rest << in.rdbuf();
        SpeedupExperiment exp;
        if (!decodeExperimentSummary(rest.str(), exp))
            return false;
        out = std::move(exp);
        return true;
    } catch (const std::exception &) {
        return false; // unreadable entry == miss
    }
}

void
ResultCache::erase(const Fingerprint &fp)
{
    std::error_code ec;
    std::filesystem::remove(entryPath(fp), ec);
}

} // namespace sst
