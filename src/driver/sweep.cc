#include "sweep.hh"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "spec/registries.hh"
#include "util/logging.hh"
#include "wdl/wdl.hh"
#include "workload/profile.hh"

namespace sst {
namespace {

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> parts;
    std::string cur;
    for (const char c : text) {
        if (c == ',') {
            parts.push_back(cur);
            cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            cur += c;
        }
    }
    parts.push_back(cur);
    return parts;
}

std::string
f64(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** CSV/JSON `suite` column: the profile's suite for homogeneous jobs
 *  (bit-identical to the pre-WorkloadSpec output), the workload role
 *  for mixes and pipelines. */
std::string
jobSuite(const JobSpec &s)
{
    if (s.workload.isHomogeneous())
        return s.workload.groups[0].profile.suite;
    return workloadRoleName(s.workload.role);
}

const char *
statusName(JobStatus s)
{
    switch (s) {
    case JobStatus::kOk:
        return "ok";
    case JobStatus::kCached:
        return "cached";
    case JobStatus::kFailed:
        return "failed";
    }
    return "?";
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::vector<int>
parseIntList(const std::string &text)
{
    std::vector<int> out;
    for (const std::string &part : splitCommas(text)) {
        if (part.empty())
            throw std::invalid_argument("empty entry in list '" + text +
                                        "'");
        errno = 0;
        char *end = nullptr;
        const long v = std::strtol(part.c_str(), &end, 10);
        if (errno != 0 || !end || *end != '\0' || v <= 0 || v > 1 << 20)
            throw std::invalid_argument("bad integer '" + part + "'");
        out.push_back(static_cast<int>(v));
    }
    return out;
}

std::vector<std::string>
parseLabelList(const std::string &text)
{
    std::vector<std::string> out = splitCommas(text);
    for (const std::string &label : out)
        if (label.empty())
            throw std::invalid_argument("empty entry in list '" + text +
                                        "'");
    return out;
}

std::uint64_t
parseSize(const std::string &text)
{
    if (text.empty())
        throw std::invalid_argument("empty size");
    std::uint64_t mult = 1;
    std::string digits = text;
    const char suffix =
        static_cast<char>(std::toupper(static_cast<unsigned char>(
            text.back())));
    if (suffix == 'K' || suffix == 'M' || suffix == 'G') {
        mult = suffix == 'K' ? 1024ULL
                             : suffix == 'M' ? 1024ULL * 1024
                                             : 1024ULL * 1024 * 1024;
        digits = text.substr(0, text.size() - 1);
    }
    if (digits.empty())
        throw std::invalid_argument("bad size '" + text + "'");
    // Digits only: strtoull silently wraps "-5" to a huge value.
    for (const char c : digits)
        if (c < '0' || c > '9')
            throw std::invalid_argument("bad size '" + text + "'");
    errno = 0;
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(digits.c_str(), &end, 10);
    if (errno != 0 || !end || *end != '\0' || v == 0)
        throw std::invalid_argument("bad size '" + text + "'");
    return v * mult;
}

std::vector<std::uint64_t>
parseSizeList(const std::string &text)
{
    std::vector<std::uint64_t> out;
    for (const std::string &part : splitCommas(text))
        out.push_back(parseSize(part));
    return out;
}

std::vector<JobSpec>
expandGrid(const SweepGrid &grid)
{
    // Resolve either axis into one list of workloads; the job
    // construction over cores x LLC is shared below.
    std::vector<WorkloadSpec> workloads;
    if (!grid.workloadFiles.empty()) {
        if (!grid.profiles.empty() || !grid.workloads.empty()) {
            throw std::invalid_argument(
                "sweep grid has workload files and profiles/workloads; "
                "the axes are exclusive (a .wdl file declares its own "
                "groups)");
        }
        workloads.reserve(grid.workloadFiles.size());
        for (const std::string &path : grid.workloadFiles)
            workloads.push_back(wdl::loadWorkloadFile(path)); // throws
    } else if (!grid.workloads.empty()) {
        if (!grid.profiles.empty()) {
            throw std::invalid_argument(
                "sweep grid has both workloads and profiles; the axes "
                "are exclusive (a workload names its own profiles)");
        }
        workloads.reserve(grid.workloads.size());
        for (const std::string &text : grid.workloads)
            workloads.push_back(parseWorkload(text)); // throws, lists names
    } else {
        if (grid.profiles.empty())
            throw std::invalid_argument("sweep grid has no profiles");
        if (grid.threads.empty())
            throw std::invalid_argument("sweep grid has no thread counts");

        // Resolve labels up front so a typo fails the whole expansion
        // loudly instead of producing a batch of failed jobs. Same
        // semantics as profileByLabel(): label or bare name.
        std::vector<const BenchmarkProfile *> profiles;
        for (const std::string &label : grid.profiles) {
            const BenchmarkProfile *found = findProfileByLabel(label);
            if (!found) {
                throw std::invalid_argument(
                    "unknown benchmark profile '" + label +
                    "'; valid labels: " + allProfileLabelsJoined());
            }
            profiles.push_back(found);
        }
        workloads.reserve(profiles.size() * grid.threads.size());
        for (const BenchmarkProfile *profile : profiles)
            for (const int nthreads : grid.threads)
                workloads.push_back(
                    WorkloadSpec::homogeneous(*profile, nthreads));
    }

    const std::size_t nllc =
        grid.llcBytes.empty() ? 1 : grid.llcBytes.size();
    const std::size_t ncores = grid.cores.empty() ? 1 : grid.cores.size();
    std::vector<JobSpec> jobs;
    jobs.reserve(workloads.size() * nllc * ncores);
    for (const WorkloadSpec &workload : workloads) {
        for (std::size_t l = 0; l < nllc; ++l) {
            for (std::size_t c = 0; c < ncores; ++c) {
                JobSpec spec;
                spec.workload = workload;
                if (!grid.cores.empty())
                    spec.ncores = grid.cores[c];
                spec.params = grid.baseParams;
                if (!grid.llcBytes.empty())
                    spec.params.cache.llcBytes = grid.llcBytes[l];
                spec.seedOffset = grid.seedOffset;
                jobs.push_back(std::move(spec));
            }
        }
    }
    return jobs;
}

std::string
sweepCsvHeader()
{
    return "benchmark,suite,nthreads,ncores,llc_bytes,seed_offset,status,"
           "ts,tp,"
           "actual_speedup,estimated_speedup,error,base,pos_llc,neg_llc,"
           "net_neg_llc,neg_mem,spin,yield,imbalance,coherency,"
           "par_overhead";
}

std::string
sweepCsvRow(const JobSpec &s, const JobResult &r)
{
    std::ostringstream os;
    os << s.label() << ',' << jobSuite(s) << ','
       << s.nthreads() << ',' << s.ncoresEffective() << ','
       << s.params.cache.llcBytes << ',' << s.seedOffset << ','
       << statusName(r.status);
    if (r.ok()) {
        const SpeedupExperiment &e = r.exp;
        os << ',' << e.ts << ',' << e.tp << ','
           << f64(e.actualSpeedup) << ',' << f64(e.estimatedSpeedup)
           << ',' << f64(e.error) << ',' << f64(e.stack.baseSpeedup)
           << ',' << f64(e.stack.posLlc) << ',' << f64(e.stack.negLlc)
           << ',' << f64(e.stack.netNegLlc()) << ','
           << f64(e.stack.negMem) << ',' << f64(e.stack.spin) << ','
           << f64(e.stack.yield) << ',' << f64(e.stack.imbalance)
           << ',' << f64(e.stack.coherency) << ','
           << f64(e.parOverheadMeasured);
    } else {
        for (int k = 0; k < 15; ++k)
            os << ',';
    }
    return os.str();
}

std::string
sweepCsv(const std::vector<JobSpec> &specs,
         const std::vector<JobResult> &results)
{
    sstAssert(specs.size() == results.size(),
              "sweepCsv: specs/results size mismatch");
    std::ostringstream os;
    os << sweepCsvHeader() << '\n';
    for (std::size_t i = 0; i < specs.size(); ++i)
        os << sweepCsvRow(specs[i], results[i]) << '\n';
    return os.str();
}

std::string
sweepJsonRow(const JobSpec &s, const JobResult &r)
{
    std::ostringstream os;
    os << "{\"benchmark\": \"" << jsonEscape(s.label())
       << "\", \"suite\": \"" << jsonEscape(jobSuite(s))
       << "\", \"nthreads\": " << s.nthreads()
       << ", \"ncores\": " << s.ncoresEffective()
       << ", \"llc_bytes\": " << s.params.cache.llcBytes
       << ", \"seed_offset\": " << s.seedOffset << ", \"status\": \""
       << statusName(r.status) << '"';
    if (r.ok()) {
        const SpeedupExperiment &e = r.exp;
        os << ", \"ts\": " << e.ts << ", \"tp\": " << e.tp
           << ", \"actual_speedup\": " << f64(e.actualSpeedup)
           << ", \"estimated_speedup\": " << f64(e.estimatedSpeedup)
           << ", \"error\": " << f64(e.error)
           << ", \"stack\": {\"base\": " << f64(e.stack.baseSpeedup)
           << ", \"pos_llc\": " << f64(e.stack.posLlc)
           << ", \"neg_llc\": " << f64(e.stack.negLlc)
           << ", \"neg_mem\": " << f64(e.stack.negMem)
           << ", \"spin\": " << f64(e.stack.spin)
           << ", \"yield\": " << f64(e.stack.yield)
           << ", \"imbalance\": " << f64(e.stack.imbalance)
           << ", \"coherency\": " << f64(e.stack.coherency) << '}'
           << ", \"par_overhead\": " << f64(e.parOverheadMeasured);
    } else {
        os << ", \"error_message\": \"" << jsonEscape(r.error) << '"';
    }
    os << '}';
    return os.str();
}

std::string
sweepJson(const std::vector<JobSpec> &specs,
          const std::vector<JobResult> &results)
{
    sstAssert(specs.size() == results.size(),
              "sweepJson: specs/results size mismatch");
    std::ostringstream os;
    os << "[\n";
    for (std::size_t i = 0; i < specs.size(); ++i) {
        os << "  " << sweepJsonRow(specs[i], results[i])
           << (i + 1 < specs.size() ? "," : "") << '\n';
    }
    os << "]\n";
    return os.str();
}

} // namespace sst
