/**
 * @file
 * A small work-stealing thread pool for experiment jobs. Each worker
 * owns a deque: it pops work LIFO from its own bottom (cache-warm) and,
 * when empty, steals FIFO from the top of a sibling's deque (oldest task
 * first, classic Blumofe–Leiserson order). External submissions are
 * distributed round-robin across the deques so a large batch starts out
 * balanced and stealing only has to correct drift from uneven job
 * lengths.
 *
 * Tasks must not rely on execution order — the experiment driver
 * guarantees determinism by making every job a pure function of its
 * spec, not by ordering execution.
 */

#ifndef SST_DRIVER_THREAD_POOL_HH
#define SST_DRIVER_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sst {

/** Work-stealing pool of std::threads. */
class WorkStealingPool
{
  public:
    /** Start @p nworkers threads (clamped to >= 1). */
    explicit WorkStealingPool(int nworkers);

    /** Drains remaining work, then joins all workers. */
    ~WorkStealingPool();

    WorkStealingPool(const WorkStealingPool &) = delete;
    WorkStealingPool &operator=(const WorkStealingPool &) = delete;

    /** Enqueue one task. Tasks must not throw (wrap and capture). */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void waitIdle();

    int nworkers() const { return static_cast<int>(workers_.size()); }

    /** Completed steals (diagnostic; > 0 shows stealing is live). */
    std::uint64_t stealCount() const { return steals_.load(); }

  private:
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(std::size_t self);
    bool popLocal(std::size_t self, std::function<void()> &task);
    bool stealRemote(std::size_t self, std::function<void()> &task);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    std::mutex stateMutex_;
    std::condition_variable workAvailable_;
    std::condition_variable allDone_;
    std::size_t pending_ = 0; ///< submitted but not yet finished
    /**
     * Bumped (under stateMutex_, after the queue push) by every
     * submit. A worker snapshots it before scanning the queues and
     * sleeps only while it is unchanged — a submission that raced the
     * scan flips the predicate, so no wakeup can be lost.
     */
    std::uint64_t submitEpoch_ = 0;
    bool shutdown_ = false;
    std::size_t nextQueue_ = 0;
    std::atomic<std::uint64_t> steals_{0};
};

} // namespace sst

#endif // SST_DRIVER_THREAD_POOL_HH
