/**
 * @file
 * Content-addressed on-disk memoization of completed experiment jobs.
 *
 * Layout: one plain-text file per result inside the cache directory,
 * named `<fnv1a64-hex>.result`. Each file embeds (a) the full canonical
 * parameter serialization that produced the hash — verified on lookup so
 * a hash collision degrades to a cache miss, never a wrong replay — and
 * (b) the summary metrics of the experiment: Ts, Tp, actual/estimated
 * speedup, validation error, every speedup-stack component and the
 * measured parallelization overhead. The heavyweight per-thread /
 * per-core RunResult payloads are deliberately not persisted: every
 * table and figure consumes only the summary, and omitting them keeps
 * cache files O(100) bytes and format churn low.
 *
 * Writes go through a temp file + atomic rename, so a cache directory
 * shared by concurrent sweep invocations never exposes torn results.
 */

#ifndef SST_DRIVER_RESULT_CACHE_HH
#define SST_DRIVER_RESULT_CACHE_HH

#include <mutex>
#include <string>

#include "core/experiment.hh"
#include "driver/fingerprint.hh"

namespace sst {

/**
 * Entry format version (the `sst-result-cache v1` magic line). Bump on
 * incompatible layout changes; unknown keys within a version are
 * skipped, so additive changes don't need one.
 */
inline constexpr int kResultCacheVersion = 1;

/**
 * Encode the persisted summary of @p exp as `key value` lines
 * terminated by an `end` line — the body of a cache entry and the
 * serve protocol's wire form of a completed job (one codec, so the
 * socket and the cache can never disagree about a result).
 */
std::string encodeExperimentSummary(const SpeedupExperiment &exp);

/**
 * Decode encodeExperimentSummary() text into @p out. Returns false on
 * malformed values or truncation (no `end` sentinel); unknown keys are
 * skipped. On success the derived single/parallel run fields are
 * filled exactly like a cache hit (see file comment).
 */
bool decodeExperimentSummary(const std::string &text,
                             SpeedupExperiment &out);

/** On-disk result store keyed by job fingerprints. */
class ResultCache
{
  public:
    /** Open (creating if needed) the cache directory @p dir. */
    explicit ResultCache(std::string dir);

    /**
     * Load the result for @p fp into @p out. Returns false on a miss, a
     * canonical-text mismatch (hash collision or truncated file) or an
     * unreadable/stale-format file; RunResult members of @p out stay
     * empty on a hit (see file comment).
     */
    bool lookup(const Fingerprint &fp, SpeedupExperiment &out) const;

    /** Persist @p exp as the result of @p fp (atomic overwrite). */
    void store(const Fingerprint &fp, const SpeedupExperiment &exp);

    /** Remove the entry for @p fp if present. */
    void erase(const Fingerprint &fp);

    const std::string &dir() const { return dir_; }

    /** Path of the entry backing @p fp (exists or not). */
    std::string entryPath(const Fingerprint &fp) const;

  private:
    bool lookupImpl(const Fingerprint &fp, SpeedupExperiment &out,
                    bool &opened) const;

    std::string dir_;
    std::mutex writeMutex_;
};

} // namespace sst

#endif // SST_DRIVER_RESULT_CACHE_HH
