/**
 * @file
 * The pluggable OS scheduler subsystem. A Scheduler owns every policy
 * decision the simulated OS makes — which ready thread a freed core
 * picks up (placement + affinity), where a woken thread lands (wake
 * placement), and when a running thread's time slice expires — while
 * the System keeps the mechanism: thread states, context-switch and
 * wake costs, and the accounting hooks.
 *
 * The contract mirrors a real kernel's run queue:
 *
 *  - enqueue() adds a runnable thread to the ready pool. The `preferred`
 *    flag marks the wake fast path: the waker found an idle core and the
 *    thread should be first in line for it (FIFO-ordered policies put it
 *    at the head of the queue).
 *  - pickNext(core) chooses AND removes the thread the now-idle @p core
 *    runs next, or kInvalidId when the pool is empty.
 *  - placeWoken() picks the idle core a woken thread is dispatched to
 *    (kInvalidId when every core is busy); the system tracks occupancy
 *    through onCoreBusy()/onCoreIdle().
 *  - shouldPreempt() is the time-slice test, evaluated before each op of
 *    a running thread when other threads are waiting.
 *
 * Policies must be deterministic: given the same event sequence they
 * must make the same decisions, so simulations stay bit-reproducible
 * (the random policy draws from a seeded private RNG stream).
 */

#ifndef SST_SCHED_SCHEDULER_HH
#define SST_SCHED_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sched/policy.hh"
#include "util/types.hh"

namespace sst {

struct SimParams;

/** A runnable thread as the scheduler sees it. */
struct ReadyThread
{
    ThreadId tid = kInvalidId;
    CoreId lastCore = kInvalidId; ///< where it last ran (affinity hint)
};

/** Policy half of the simulated OS scheduler (see file comment). */
class Scheduler
{
  public:
    /**
     * @param params machine configuration; the reference must outlive
     *        the scheduler (the System owns both)
     * @param nthreads software threads of the run
     */
    Scheduler(const SimParams &params, int nthreads);
    virtual ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Stable policy label (same string the CLI accepts). */
    virtual const char *name() const = 0;

    // ---- ready pool ------------------------------------------------------
    /** Add a runnable thread; @p preferred marks the wake fast path. */
    virtual void enqueue(const ReadyThread &t, bool preferred) = 0;

    /** Choose and remove the next thread for @p core (or kInvalidId). */
    virtual ThreadId pickNext(CoreId core) = 0;

    /** Any thread waiting for a core? */
    virtual bool hasReady() const = 0;

    // ---- core occupancy (maintained by the system) -------------------------
    void onCoreBusy(CoreId core);
    void onCoreIdle(CoreId core);

    // ---- workload affinity hints -------------------------------------------
    /**
     * Install per-thread preferred cores. Heterogeneous workloads use
     * this to keep pipeline stages on a stable core range (the stage's
     * working set stays resident); the table is empty for homogeneous
     * runs, which keeps every historical schedule bit-identical.
     * Policies consult affinityHint() as a placement tie-breaker after
     * last-run-core affinity.
     */
    void setAffinityHints(std::vector<CoreId> hints);

    /** Preferred core of @p tid (kInvalidId when no hint installed). */
    CoreId
    affinityHint(ThreadId tid) const
    {
        return hints_.empty() ? kInvalidId
                              : hints_[static_cast<std::size_t>(tid)];
    }

    bool hasAffinityHints() const { return !hints_.empty(); }

    // ---- wake placement ----------------------------------------------------
    /**
     * Idle core for woken thread @p tid, preferring @p last_core
     * (kInvalidId when all cores are busy). Default: the thread's last
     * core if idle, else the lowest-numbered idle core.
     */
    virtual CoreId placeWoken(ThreadId tid, CoreId last_core) const;

    // ---- time slicing ------------------------------------------------------
    /**
     * Preempt a thread running since @p slice_start? Default: only when
     * the machine is oversubscribed and timeSliceCycles have elapsed.
     */
    virtual bool shouldPreempt(Cycles now, Cycles slice_start) const;

  protected:
    /** Lowest-numbered idle core, preferring @p preferred; kInvalidId
     *  when every core is busy. */
    CoreId firstIdleCore(CoreId preferred) const;

    const SimParams &params_;
    int nthreads_;

  private:
    std::vector<std::uint8_t> idle_;
    std::vector<CoreId> hints_; ///< per-thread preferred cores (optional)
};

/** Build the scheduler selected by params.schedPolicy. */
std::unique_ptr<Scheduler> makeScheduler(const SimParams &params,
                                         int nthreads);

} // namespace sst

#endif // SST_SCHED_SCHEDULER_HH
