#include "random_sched.hh"

#include "sim/params.hh"

namespace sst {

namespace {

/**
 * Domain-separate the scheduler's RNG stream from the workload streams:
 * even schedSeed == profile.seed must not correlate the schedule with
 * the generated address streams.
 */
constexpr std::uint64_t kSchedStreamSalt = 0x5c4ed5eed0515ULL;

} // namespace

RandomScheduler::RandomScheduler(const SimParams &params, int nthreads)
    : Scheduler(params, nthreads),
      rng_(params.schedSeed ^ kSchedStreamSalt)
{
}

ThreadId
RandomScheduler::pickNext(CoreId)
{
    if (pool_.empty())
        return kInvalidId;
    const std::size_t idx =
        static_cast<std::size_t>(rng_.below(pool_.size()));
    const ThreadId tid = pool_[idx].tid;
    pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(idx));
    return tid;
}

} // namespace sst
