/**
 * @file
 * The default scheduler policy: FIFO ready queue with cache affinity.
 * Bit-identical to the scheduler that was historically hard-wired into
 * the simulator core, so it anchors every golden result.
 */

#ifndef SST_SCHED_AFFINITY_FIFO_HH
#define SST_SCHED_AFFINITY_FIFO_HH

#include <deque>

#include "sched/scheduler.hh"

namespace sst {

/**
 * Prefer a ready thread that last ran on the idle core (its L1 state
 * may still be resident, like a real scheduler's wake affinity); fall
 * back to the queue head. Woken threads with an idle core in hand jump
 * the queue (wake fast path).
 */
class AffinityFifoScheduler : public Scheduler
{
  public:
    using Scheduler::Scheduler;

    const char *name() const override { return "affinity-fifo"; }

    void
    enqueue(const ReadyThread &t, bool preferred) override
    {
        if (preferred)
            queue_.push_front(t);
        else
            queue_.push_back(t);
    }

    ThreadId pickNext(CoreId core) override;

    bool hasReady() const override { return !queue_.empty(); }

  protected:
    std::deque<ReadyThread> queue_; ///< shared with RoundRobinScheduler
};

} // namespace sst

#endif // SST_SCHED_AFFINITY_FIFO_HH
