#include "scheduler.hh"

#include "sched/affinity_fifo.hh"
#include "sched/random_sched.hh"
#include "sched/round_robin.hh"
#include "sim/params.hh"
#include "util/logging.hh"

namespace sst {

Scheduler::Scheduler(const SimParams &params, int nthreads)
    : params_(params), nthreads_(nthreads),
      idle_(static_cast<std::size_t>(params.ncores), 1)
{
    sstAssert(params.ncores >= 1, "Scheduler needs at least one core");
}

Scheduler::~Scheduler() = default;

void
Scheduler::onCoreBusy(CoreId core)
{
    idle_[static_cast<std::size_t>(core)] = 0;
}

void
Scheduler::onCoreIdle(CoreId core)
{
    idle_[static_cast<std::size_t>(core)] = 1;
}

CoreId
Scheduler::firstIdleCore(CoreId preferred) const
{
    if (preferred != kInvalidId &&
        idle_[static_cast<std::size_t>(preferred)]) {
        return preferred;
    }
    for (std::size_t c = 0; c < idle_.size(); ++c) {
        if (idle_[c])
            return static_cast<CoreId>(c);
    }
    return kInvalidId;
}

void
Scheduler::setAffinityHints(std::vector<CoreId> hints)
{
    sstAssert(hints.empty() ||
                  hints.size() == static_cast<std::size_t>(nthreads_),
              "affinity hint table must cover every thread");
    for (const CoreId c : hints)
        sstAssert(c >= 0 && c < params_.ncores,
                  "affinity hint outside the machine");
    hints_ = std::move(hints);
}

CoreId
Scheduler::placeWoken(ThreadId tid, CoreId last_core) const
{
    // Prefer the thread's last core (its L1 state), then its workload
    // affinity hint (its stage's core range), then any idle core.
    const CoreId preferred =
        last_core != kInvalidId ? last_core : affinityHint(tid);
    return firstIdleCore(preferred);
}

bool
Scheduler::shouldPreempt(Cycles now, Cycles slice_start) const
{
    return nthreads_ > params_.ncores &&
           now >= slice_start + params_.timeSliceCycles;
}

std::unique_ptr<Scheduler>
makeScheduler(const SimParams &params, int nthreads)
{
    switch (params.schedPolicy) {
      case SchedPolicy::kAffinityFifo:
        return std::make_unique<AffinityFifoScheduler>(params, nthreads);
      case SchedPolicy::kRoundRobin:
        return std::make_unique<RoundRobinScheduler>(params, nthreads);
      case SchedPolicy::kRandom:
        return std::make_unique<RandomScheduler>(params, nthreads);
    }
    panic("unhandled scheduler policy");
}

} // namespace sst
