/**
 * @file
 * OS scheduler policy selection. The policy is part of a run's identity:
 * it is carried in SimParams, folded into the driver's result-cache
 * fingerprint, recorded in trace headers, and selected on the command
 * line via `--sched LABEL`.
 */

#ifndef SST_SCHED_POLICY_HH
#define SST_SCHED_POLICY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sst {

/**
 * Which placement/pick policy the OS scheduler runs. Every policy keeps
 * the same mechanism (ready pool, wake fast path, time slicing); only
 * the decisions differ.
 */
enum class SchedPolicy : std::uint8_t {
    /**
     * The default, bit-identical to the historical hard-wired
     * scheduler: prefer a ready thread that last ran on the idle core
     * (cache affinity), fall back to FIFO order.
     */
    kAffinityFifo = 0,
    /** Plain FIFO pick, affinity ignored (classic round-robin). */
    kRoundRobin = 1,
    /** Uniform random pick from the ready pool (seeded, deterministic). */
    kRandom = 2,
};

/** Stable command-line/cache label of @p policy ("affinity-fifo", ...). */
const char *schedPolicyLabel(SchedPolicy policy);

/** All valid policy labels in enum order. */
const std::vector<std::string> &allSchedPolicyLabels();

/** All valid labels joined with ", " (for error messages and --help). */
std::string allSchedPolicyLabelsJoined();

/**
 * Parse a `--sched` label. Throws std::invalid_argument naming every
 * valid label when @p label is unknown.
 */
SchedPolicy parseSchedPolicy(const std::string &label);

/**
 * Validate a policy decoded from an external source (trace header,
 * cached result). Throws std::invalid_argument on out-of-range values.
 */
SchedPolicy schedPolicyFromRaw(std::uint32_t raw);

/**
 * The RNG stream a run's identity actually depends on: deterministic
 * policies ignore SimParams::schedSeed, so it canonicalizes to 0
 * everywhere a seed is keyed or recorded (result-cache fingerprints,
 * trace headers, trace file names). One helper so the rule cannot
 * drift between those sites.
 */
constexpr std::uint64_t
canonicalSchedSeed(SchedPolicy policy, std::uint64_t seed)
{
    return policy == SchedPolicy::kRandom ? seed : 0;
}

} // namespace sst

#endif // SST_SCHED_POLICY_HH
