/**
 * @file
 * Random scheduler policy: uniform pick from the ready pool, driven by
 * a private deterministic RNG stream (the toolkit's xoshiro256**
 * generator, seeded from SimParams::schedSeed). Useful as a
 * worst-case-affinity reference and for scheduling-noise studies —
 * distinct schedSeed values give independent, reproducible schedules.
 */

#ifndef SST_SCHED_RANDOM_SCHED_HH
#define SST_SCHED_RANDOM_SCHED_HH

#include <vector>

#include "sched/scheduler.hh"
#include "util/rng.hh"

namespace sst {

/** Uniform random pick; wake fast path and FIFO order are irrelevant. */
class RandomScheduler : public Scheduler
{
  public:
    RandomScheduler(const SimParams &params, int nthreads);

    const char *name() const override { return "random"; }

    void
    enqueue(const ReadyThread &t, bool) override
    {
        pool_.push_back(t);
    }

    ThreadId pickNext(CoreId core) override;

    bool hasReady() const override { return !pool_.empty(); }

  private:
    std::vector<ReadyThread> pool_;
    Rng rng_;
};

} // namespace sst

#endif // SST_SCHED_RANDOM_SCHED_HH
