/**
 * @file
 * Round-robin scheduler policy: strict FIFO pick, affinity ignored.
 * Isolates what cache affinity buys the default policy — under
 * oversubscription every context switch may migrate the thread, so the
 * incoming thread re-warms its L1 from the LLC. Shares the FIFO pool
 * and wake fast path with AffinityFifoScheduler; only the pick differs.
 */

#ifndef SST_SCHED_ROUND_ROBIN_HH
#define SST_SCHED_ROUND_ROBIN_HH

#include "sched/affinity_fifo.hh"

namespace sst {

/** Strict arrival-order pick from one shared ready queue. */
class RoundRobinScheduler : public AffinityFifoScheduler
{
  public:
    using AffinityFifoScheduler::AffinityFifoScheduler;

    const char *name() const override { return "round-robin"; }

    ThreadId
    pickNext(CoreId) override
    {
        if (queue_.empty())
            return kInvalidId;
        const ThreadId tid = queue_.front().tid;
        queue_.pop_front();
        return tid;
    }
};

} // namespace sst

#endif // SST_SCHED_ROUND_ROBIN_HH
