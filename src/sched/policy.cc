#include "policy.hh"

#include <stdexcept>

namespace sst {

namespace {

/**
 * The one source of truth: labels indexed by enum value. Every lookup
 * (label, parse, raw decode) goes through this table, so adding a
 * policy is a one-line change here plus the enumerator.
 */
constexpr const char *kPolicyLabels[] = {
    "affinity-fifo", // kAffinityFifo
    "round-robin",   // kRoundRobin
    "random",        // kRandom
};

constexpr std::size_t kPolicyCount =
    sizeof(kPolicyLabels) / sizeof(kPolicyLabels[0]);

} // namespace

const char *
schedPolicyLabel(SchedPolicy policy)
{
    const auto idx = static_cast<std::size_t>(policy);
    return idx < kPolicyCount ? kPolicyLabels[idx] : "?";
}

const std::vector<std::string> &
allSchedPolicyLabels()
{
    static const std::vector<std::string> labels(
        kPolicyLabels, kPolicyLabels + kPolicyCount);
    return labels;
}

std::string
allSchedPolicyLabelsJoined()
{
    std::string out;
    for (std::size_t i = 0; i < kPolicyCount; ++i) {
        if (!out.empty())
            out += ", ";
        out += kPolicyLabels[i];
    }
    return out;
}

SchedPolicy
parseSchedPolicy(const std::string &label)
{
    for (std::size_t i = 0; i < kPolicyCount; ++i) {
        if (label == kPolicyLabels[i])
            return static_cast<SchedPolicy>(i);
    }
    throw std::invalid_argument("unknown scheduler policy '" + label +
                                "'; valid policies: " +
                                allSchedPolicyLabelsJoined());
}

SchedPolicy
schedPolicyFromRaw(std::uint32_t raw)
{
    if (raw >= kPolicyCount) {
        throw std::invalid_argument(
            "scheduler policy id " + std::to_string(raw) +
            " out of range (0.." + std::to_string(kPolicyCount - 1) +
            ")");
    }
    return static_cast<SchedPolicy>(raw);
}

} // namespace sst
