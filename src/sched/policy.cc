#include "policy.hh"

#include <stdexcept>

#include "spec/registries.hh"

namespace sst {

// The label table lives in schedulerRegistry() (src/spec/registries.cc),
// registered in enum order so names()[enum value] is the label. Every
// lookup below delegates there, so adding a policy is one registry line
// plus the enumerator — parse errors, --list output and --help text all
// follow automatically.

const char *
schedPolicyLabel(SchedPolicy policy)
{
    const auto idx = static_cast<std::size_t>(policy);
    const auto &names = schedulerRegistry().names();
    return idx < names.size() ? names[idx].c_str() : "?";
}

const std::vector<std::string> &
allSchedPolicyLabels()
{
    return schedulerRegistry().names();
}

std::string
allSchedPolicyLabelsJoined()
{
    return schedulerRegistry().namesJoined();
}

SchedPolicy
parseSchedPolicy(const std::string &label)
{
    return schedulerRegistry().at(label); // throws listing valid labels
}

SchedPolicy
schedPolicyFromRaw(std::uint32_t raw)
{
    const std::size_t count = schedulerRegistry().size();
    if (raw >= count) {
        throw std::invalid_argument(
            "scheduler policy id " + std::to_string(raw) +
            " out of range (0.." + std::to_string(count - 1) + ")");
    }
    return static_cast<SchedPolicy>(raw);
}

} // namespace sst
