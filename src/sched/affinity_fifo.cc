#include "affinity_fifo.hh"

namespace sst {

ThreadId
AffinityFifoScheduler::pickNext(CoreId core)
{
    if (queue_.empty())
        return kInvalidId;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->lastCore == core) {
            const ThreadId tid = it->tid;
            queue_.erase(it);
            return tid;
        }
    }
    // No thread last ran here: prefer one whose workload affinity hint
    // names this core (pipeline stages return to their stage's core
    // range). The table is empty for homogeneous runs, so historical
    // schedules are untouched.
    if (hasAffinityHints()) {
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (affinityHint(it->tid) == core) {
                const ThreadId tid = it->tid;
                queue_.erase(it);
                return tid;
            }
        }
    }
    const ThreadId tid = queue_.front().tid;
    queue_.pop_front();
    return tid;
}

} // namespace sst
