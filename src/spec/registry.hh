/**
 * @file
 * NamedRegistry: the one lookup-by-name mechanism behind every pluggable
 * axis of an experiment (benchmark profiles, scheduler policies, workload
 * frontends). A registry is an ordered name -> value table plus optional
 * aliases; enumeration order is registration order, so `--list` output,
 * error messages and canonical spec serialization all agree without any
 * hand-maintained label list.
 */

#ifndef SST_SPEC_REGISTRY_HH
#define SST_SPEC_REGISTRY_HH

#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sst {

/**
 * An ordered, enumerable name -> T table. Primary names are what
 * names() enumerates; aliases resolve through find()/at() but stay out
 * of listings (e.g. a profile's bare name "facesim" aliases its first
 * input variant "facesim_small").
 */
template <typename T>
class NamedRegistry
{
  public:
    /** What this registry holds (singular/plural), for error messages. */
    NamedRegistry(std::string subject, std::string plural)
        : subject_(std::move(subject)), plural_(std::move(plural))
    {
    }

    /** Register @p value under primary @p name (must be unique). */
    void
    add(const std::string &name, T value)
    {
        if (index_.count(name))
            throw std::logic_error(subject_ + " '" + name +
                                   "' registered twice");
        index_.emplace(name, entries_.size());
        names_.push_back(name);
        entries_.push_back(std::move(value));
    }

    /**
     * Register @p alias resolving to primary @p name. First registration
     * wins when several targets want the same alias (matching the
     * historical "bare name matches its first input variant" rule); an
     * alias colliding with a primary name is ignored.
     */
    void
    addAlias(const std::string &alias, const std::string &name)
    {
        if (index_.count(alias))
            return;
        index_.emplace(alias, index_.at(name));
    }

    /** Value registered under @p name (or an alias); nullptr unknown. */
    const T *
    find(const std::string &name) const
    {
        const auto it = index_.find(name);
        return it == index_.end() ? nullptr : &entries_[it->second];
    }

    /**
     * Value registered under @p name. Throws std::invalid_argument
     * naming every valid primary name when unknown — the one place the
     * "unknown X, valid: ..." message is generated.
     */
    const T &
    at(const std::string &name) const
    {
        if (const T *v = find(name))
            return *v;
        throw std::invalid_argument("unknown " + subject_ + " '" + name +
                                    "'; valid " + plural_ + ": " +
                                    namesJoined());
    }

    /** Primary names, in registration order. */
    const std::vector<std::string> &names() const { return names_; }

    /** Primary names joined with ", " (error messages, --help). */
    std::string
    namesJoined() const
    {
        std::string out;
        for (const std::string &n : names_) {
            if (!out.empty())
                out += ", ";
            out += n;
        }
        return out;
    }

    const std::string &subject() const { return subject_; }

    std::size_t size() const { return entries_.size(); }

  private:
    std::string subject_;
    std::string plural_;
    std::vector<std::string> names_;
    std::vector<T> entries_;
    std::unordered_map<std::string, std::size_t> index_;
};

} // namespace sst

#endif // SST_SPEC_REGISTRY_HH
