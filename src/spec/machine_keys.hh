/**
 * @file
 * The canonical machine-parameter key table: every outcome-relevant
 * SimParams field (except the per-job core count and the scheduler
 * policy/seed, which are spec-level keys of their own) under a stable
 * `machine.<key>` name. One table drives
 *
 *  - spec-file parsing (`machine.llc-bytes = 4M`),
 *  - canonical spec serialization (table order = emission order),
 *  - the driver's result-cache fingerprint (fingerprint v3 encodes the
 *    params section through encodeMachineParams, so a spec-driven run
 *    and the equivalent flag-driven run hash identically by
 *    construction),
 *  - generated "valid keys" error messages.
 *
 * Adding a SimParams field means adding one table row; parse, print,
 * fingerprint and error text all follow.
 */

#ifndef SST_SPEC_MACHINE_KEYS_HH
#define SST_SPEC_MACHINE_KEYS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/params.hh"

namespace sst {

/** One machine parameter: name, value kind, and typed accessors. */
struct MachineKey
{
    /** Kebab-case key, serialized as `machine.<name>`. */
    const char *name;

    enum class Kind : std::uint8_t {
        kU64,      ///< plain decimal integer
        kSize,     ///< byte count; accepts K/M/G, prints the shortest form
        kBool,     ///< true/false (0/1 accepted on input)
        kDetector, ///< spin-detector selector: tian | li
    };
    Kind kind;

    std::uint64_t (*get)(const SimParams &);
    void (*set)(SimParams &, std::uint64_t);
};

/** All machine keys, in canonical (serialization) order. */
const std::vector<MachineKey> &machineKeys();

/** Key table entry for `machine.<name>`; nullptr when unknown. */
const MachineKey *findMachineKey(const std::string &name);

/** All `machine.<name>` keys joined with ", " (for error messages). */
std::string machineKeyNamesJoined();

/** Canonical text of @p key's current value in @p params. */
std::string machineValueText(const MachineKey &key, const SimParams &params);

/**
 * Parse @p text (canonical or user form) into @p params via @p key.
 * Throws std::invalid_argument on malformed values.
 */
void setMachineValue(SimParams &params, const MachineKey &key,
                     const std::string &text);

/**
 * Append `machine.<key> = <value>` lines for every table entry, in
 * canonical order. This is both the machine section of a serialized
 * spec and the params section of a job fingerprint.
 */
void encodeMachineParams(std::string &out, const SimParams &params);

/**
 * Render @p bytes in the shortest suffixed form parseSize() round-trips
 * ("2M", "64K", "1536" for non-multiples).
 */
std::string sizeText(std::uint64_t bytes);

/**
 * Strict base-10 u64 for spec values: digits only, so signs ("-1"
 * would silently wrap through strtoull), whitespace and suffixes are
 * all rejected. @p what names the key in the error. The one integer
 * parser behind every spec-level value (machine keys, seed-offset,
 * sched-seed).
 */
std::uint64_t parseU64Text(const char *what, const std::string &text);

/** Strict bool for spec values: true/1 or false/0. */
bool parseBoolText(const char *what, const std::string &text);

} // namespace sst

#endif // SST_SPEC_MACHINE_KEYS_HH
