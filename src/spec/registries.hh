/**
 * @file
 * The three named-factory registries every experiment description
 * resolves through:
 *
 *  - profileRegistry():   benchmark label -> BenchmarkProfile (the
 *                         Figure 6 suite; bare names alias their first
 *                         input variant, matching profileByLabel()).
 *  - schedulerRegistry(): `--sched` label -> SchedPolicy (src/sched/).
 *  - opSourceRegistry():  workload-frontend name -> frontend descriptor
 *                         ("program" generates op streams live from
 *                         ThreadProgram; "trace" replays recorded
 *                         .sstt containers; "pipeline" generates
 *                         barrier-coupled heterogeneous stages).
 *  - mixRegistry():       named heterogeneous workload -> WorkloadSpec
 *                         (the Figure 8 two-program mixes and the
 *                         ferret-style pipelines).
 *
 * Each registry is enumerable in a stable order, so `sst list ...`
 * output, spec validation and every unknown-label error message are
 * generated from the same table instead of hand-maintained lists.
 * Adding a component means registering a name here — no CLI or error
 * string needs touching.
 */

#ifndef SST_SPEC_REGISTRIES_HH
#define SST_SPEC_REGISTRIES_HH

#include "sched/policy.hh"
#include "spec/registry.hh"
#include "workload/profile.hh"
#include "workload/workload_spec.hh"

namespace sst {

/**
 * A workload frontend: how a job's op streams are produced. The
 * descriptor drives spec validation (a frontend that replays recordings
 * needs a trace directory) and `sst list frontends` output; the driver
 * maps the selected frontend onto its execution mode.
 */
struct OpSourceFrontend
{
    const char *description; ///< one-line summary for listings
    /** Frontend consumes recorded traces: `trace-dir` must be set. */
    bool needsTraceDir = false;
};

/** Benchmark-profile registry (suite order; bare-name aliases). */
const NamedRegistry<const BenchmarkProfile *> &profileRegistry();

/** Scheduler-policy registry (enum order, values = SchedPolicy). */
const NamedRegistry<SchedPolicy> &schedulerRegistry();

/** Workload-frontend registry ("program", "trace", "pipeline"). */
const NamedRegistry<OpSourceFrontend> &opSourceRegistry();

/**
 * Named heterogeneous workloads: the Figure 8 two-program mixes
 * ("fig08_<benchmark>": the benchmark on 8 threads co-running with a
 * cache-hungry canneal partner on 8) and the ferret-style pipelines
 * ("ferret4", "ferret16"). Values are complete WorkloadSpecs; `sst
 * list mixes`, spec validation and unknown-label errors all come from
 * this table.
 */
const NamedRegistry<WorkloadSpec> &mixRegistry();

/**
 * Resolve a workload descriptor: a mixRegistry() name, or an inline
 * form — `label[:count]` items joined with '+' (a mix of independent
 * programs) or '>' (pipeline stages). A count on only the final item
 * broadcasts to every item ("a+b:8" = 8 threads each); items without
 * any count run 1 thread. A single '+'-item is the homogeneous
 * configuration ("cholesky:8" = profiles cholesky, threads 8).
 * Unknown names throw std::invalid_argument listing the registered
 * mixes (or profiles, for inline labels).
 */
WorkloadSpec parseWorkload(const std::string &text);

/**
 * Canonical text of a workload descriptor: registry names stay
 * themselves; inline forms normalize to explicit per-group counts
 * ("a+b:8" -> "a:8+b:8"). parseWorkload(canonicalWorkloadText(t))
 * equals parseWorkload(t), and the function is a fixed point.
 */
std::string canonicalWorkloadText(const std::string &text);

} // namespace sst

#endif // SST_SPEC_REGISTRIES_HH
