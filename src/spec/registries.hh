/**
 * @file
 * The three named-factory registries every experiment description
 * resolves through:
 *
 *  - profileRegistry():   benchmark label -> BenchmarkProfile (the
 *                         Figure 6 suite; bare names alias their first
 *                         input variant, matching profileByLabel()).
 *  - schedulerRegistry(): `--sched` label -> SchedPolicy (src/sched/).
 *  - opSourceRegistry():  workload-frontend name -> frontend descriptor
 *                         ("program" generates op streams live from
 *                         ThreadProgram; "trace" replays recorded
 *                         .sstt containers).
 *
 * Each registry is enumerable in a stable order, so `sst list ...`
 * output, spec validation and every unknown-label error message are
 * generated from the same table instead of hand-maintained lists.
 * Adding a component means registering a name here — no CLI or error
 * string needs touching.
 */

#ifndef SST_SPEC_REGISTRIES_HH
#define SST_SPEC_REGISTRIES_HH

#include "sched/policy.hh"
#include "spec/registry.hh"
#include "workload/profile.hh"

namespace sst {

/**
 * A workload frontend: how a job's op streams are produced. The
 * descriptor drives spec validation (a frontend that replays recordings
 * needs a trace directory) and `sst list frontends` output; the driver
 * maps the selected frontend onto its execution mode.
 */
struct OpSourceFrontend
{
    const char *description; ///< one-line summary for listings
    /** Frontend consumes recorded traces: `trace-dir` must be set. */
    bool needsTraceDir = false;
};

/** Benchmark-profile registry (suite order; bare-name aliases). */
const NamedRegistry<const BenchmarkProfile *> &profileRegistry();

/** Scheduler-policy registry (enum order, values = SchedPolicy). */
const NamedRegistry<SchedPolicy> &schedulerRegistry();

/** Workload-frontend registry ("program", "trace"). */
const NamedRegistry<OpSourceFrontend> &opSourceRegistry();

} // namespace sst

#endif // SST_SPEC_REGISTRIES_HH
