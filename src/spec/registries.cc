#include "registries.hh"

namespace sst {

const NamedRegistry<const BenchmarkProfile *> &
profileRegistry()
{
    static const NamedRegistry<const BenchmarkProfile *> registry = [] {
        NamedRegistry<const BenchmarkProfile *> r("benchmark profile",
                                                  "benchmark profiles");
        for (const BenchmarkProfile &p : benchmarkSuite())
            r.add(p.label(), &p);
        // Bare names resolve to the first input variant ("facesim" ->
        // "facesim_small"), the historical profileByLabel() behaviour.
        // addAlias() keeps first-wins semantics and skips bare names
        // that already are primary labels (single-input benchmarks).
        for (const BenchmarkProfile &p : benchmarkSuite())
            r.addAlias(p.name, p.label());
        return r;
    }();
    return registry;
}

const NamedRegistry<SchedPolicy> &
schedulerRegistry()
{
    static const NamedRegistry<SchedPolicy> registry = [] {
        NamedRegistry<SchedPolicy> r("scheduler policy",
                                     "scheduler policies");
        // Registration order must equal enum order: schedPolicyLabel()
        // indexes names() by the enum value.
        r.add("affinity-fifo", SchedPolicy::kAffinityFifo);
        r.add("round-robin", SchedPolicy::kRoundRobin);
        r.add("random", SchedPolicy::kRandom);
        return r;
    }();
    return registry;
}

const NamedRegistry<OpSourceFrontend> &
opSourceRegistry()
{
    static const NamedRegistry<OpSourceFrontend> registry = [] {
        NamedRegistry<OpSourceFrontend> r("workload frontend",
                                          "workload frontends");
        r.add("program",
              OpSourceFrontend{
                  "synthetic generator: op streams built live from the "
                  "benchmark profile (ThreadProgram)",
                  false});
        r.add("trace",
              OpSourceFrontend{
                  "replay recorded .sstt op traces from trace-dir (see "
                  "`sst trace record`)",
                  true});
        return r;
    }();
    return registry;
}

} // namespace sst
