#include "registries.hh"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace sst {
namespace {

/** Stage profile of the synthetic ferret-style pipeline (Figure 7).
 *  Stages share one phase structure (they barrier-align every phase)
 *  but carry very different per-phase work, so the heavy rank stage
 *  paces the pipeline and the light stages wait — the stage-imbalance
 *  signature the paper observes for ferret. */
BenchmarkProfile
ferretStage(const char *stage, std::uint64_t iters, int compute, int mem,
            std::uint64_t priv_kb, std::uint64_t seed)
{
    BenchmarkProfile p;
    p.name = stage;
    p.suite = "pipeline";
    p.totalIters = iters;
    p.computePerIter = compute;
    p.memPerIter = mem;
    p.privateBytes = priv_kb * 1024;
    p.streamFrac = 0.5;
    p.sharedBytes = 128 * 1024;
    p.sharedFrac = 0.01;
    p.sharedHotFrac = 0.5;
    p.barrierPhases = 16; // equal across stages: they align every phase
    p.imbalanceSkew = 0.1;
    p.parOverheadFrac = 0.03;
    p.seed = seed;
    return p;
}

/** The four-stage ferret-style pipeline with @p per_stage threads per
 *  stage. The rank stage carries ~4x the work of the light stages. */
WorkloadSpec
ferretPipeline(const char *name, int per_stage)
{
    std::vector<WorkloadGroup> stages;
    stages.push_back(WorkloadGroup{
        ferretStage("ferret.segment", 6000, 160, 8, 32, 101), per_stage});
    stages.push_back(WorkloadGroup{
        ferretStage("ferret.extract", 8000, 220, 10, 48, 102), per_stage});
    stages.push_back(WorkloadGroup{
        ferretStage("ferret.rank", 20000, 320, 14, 96, 103), per_stage});
    stages.push_back(WorkloadGroup{
        ferretStage("ferret.output", 4000, 120, 6, 16, 104), per_stage});
    WorkloadSpec spec = WorkloadSpec::pipeline(std::move(stages));
    spec.name = name;
    return spec;
}

/** One Figure 8 two-program mix: the benchmark co-running with a
 *  cache-hungry canneal partner, 8 threads each on a 16-core machine. */
WorkloadSpec
fig08Mix(const std::string &name, const char *bench, const char *partner)
{
    WorkloadSpec spec = WorkloadSpec::mix(
        {WorkloadGroup{profileByLabel(bench), 8},
         WorkloadGroup{profileByLabel(partner), 8}});
    spec.name = name;
    return spec;
}

} // namespace

const NamedRegistry<const BenchmarkProfile *> &
profileRegistry()
{
    static const NamedRegistry<const BenchmarkProfile *> registry = [] {
        NamedRegistry<const BenchmarkProfile *> r("benchmark profile",
                                                  "benchmark profiles");
        for (const BenchmarkProfile &p : benchmarkSuite())
            r.add(p.label(), &p);
        // Bare names resolve to the first input variant ("facesim" ->
        // "facesim_small"), the historical profileByLabel() behaviour.
        // addAlias() keeps first-wins semantics and skips bare names
        // that already are primary labels (single-input benchmarks).
        for (const BenchmarkProfile &p : benchmarkSuite())
            r.addAlias(p.name, p.label());
        return r;
    }();
    return registry;
}

const NamedRegistry<SchedPolicy> &
schedulerRegistry()
{
    static const NamedRegistry<SchedPolicy> registry = [] {
        NamedRegistry<SchedPolicy> r("scheduler policy",
                                     "scheduler policies");
        // Registration order must equal enum order: schedPolicyLabel()
        // indexes names() by the enum value.
        r.add("affinity-fifo", SchedPolicy::kAffinityFifo);
        r.add("round-robin", SchedPolicy::kRoundRobin);
        r.add("random", SchedPolicy::kRandom);
        return r;
    }();
    return registry;
}

const NamedRegistry<OpSourceFrontend> &
opSourceRegistry()
{
    static const NamedRegistry<OpSourceFrontend> registry = [] {
        NamedRegistry<OpSourceFrontend> r("workload frontend",
                                          "workload frontends");
        r.add("program",
              OpSourceFrontend{
                  "synthetic generator: op streams built live from the "
                  "benchmark profile (ThreadProgram)",
                  false});
        r.add("trace",
              OpSourceFrontend{
                  "replay recorded .sstt op traces from trace-dir (see "
                  "`sst trace record`)",
                  true});
        r.add("pipeline",
              OpSourceFrontend{
                  "synthetic pipeline generator: heterogeneous stage "
                  "profiles co-scheduled with shared phase barriers "
                  "(select stages via `workload = <pipeline>`)",
                  false});
        r.add("workload-file",
              OpSourceFrontend{
                  "compile .wdl workload description files into op "
                  "streams (select files via `workload-file = "
                  "PATH[, PATH]`)",
                  false});
        return r;
    }();
    return registry;
}

const NamedRegistry<WorkloadSpec> &
mixRegistry()
{
    static const NamedRegistry<WorkloadSpec> registry = [] {
        NamedRegistry<WorkloadSpec> r("workload mix", "workload mixes");
        // The Figure 8 co-run study: every benchmark with a visible
        // positive-interference component paired against a
        // cache-hungry canneal instance (canneal itself gets the other
        // input as its partner).
        const char *fig08[] = {"cholesky",       "lu.cont",
                               "canneal_small",  "canneal_medium",
                               "bfs",            "lu.ncont",
                               "needle"};
        for (const char *bench : fig08) {
            const char *partner = std::string(bench) == "canneal_small"
                                      ? "canneal_medium"
                                      : "canneal_small";
            const std::string name = std::string("fig08_") + bench;
            r.add(name, fig08Mix(name, bench, partner));
        }
        // Ferret-style pipelines (Figure 7): 4 stages x 1 thread and
        // 4 stages x 4 threads.
        r.add("ferret4", ferretPipeline("ferret4", 1));
        r.add("ferret16", ferretPipeline("ferret16", 4));
        return r;
    }();
    return registry;
}

namespace {

/** Strip all whitespace (inline descriptors allow "a:8 + b:8"). */
std::string
stripSpaces(const std::string &text)
{
    std::string out;
    for (const char c : text)
        if (!std::isspace(static_cast<unsigned char>(c)))
            out += c;
    return out;
}

/** Parse the strictly positive thread count of an inline item. */
int
parseGroupCount(const std::string &item, const std::string &digits)
{
    if (digits.empty())
        throw std::invalid_argument("workload item '" + item +
                                    "' has an empty thread count");
    for (const char c : digits)
        if (c < '0' || c > '9')
            throw std::invalid_argument("workload item '" + item +
                                        "': bad thread count '" +
                                        digits + "'");
    const long v = std::strtol(digits.c_str(), nullptr, 10);
    if (v < 1 || v > 4096)
        throw std::invalid_argument("workload item '" + item +
                                    "': thread count out of range");
    return static_cast<int>(v);
}

} // namespace

WorkloadSpec
parseWorkload(const std::string &text)
{
    const std::string cleaned = stripSpaces(text);
    if (cleaned.empty())
        throw std::invalid_argument("empty workload descriptor");
    if (const WorkloadSpec *named = mixRegistry().find(cleaned))
        return *named;

    const bool has_pipe = cleaned.find('>') != std::string::npos;
    const bool has_plus = cleaned.find('+') != std::string::npos;
    if (has_pipe && has_plus) {
        throw std::invalid_argument(
            "workload '" + cleaned + "' mixes '+' (mix) and '>' "
            "(pipeline) separators; pick one");
    }
    if (!has_pipe && !has_plus && cleaned.find(':') == std::string::npos) {
        // A bare name that is not a registered mix: the registry
        // generates the valid-label list.
        mixRegistry().at(cleaned); // throws
    }

    // Inline form: label[:count] items.
    const char sep = has_pipe ? '>' : '+';
    std::vector<std::string> items;
    std::string cur;
    for (const char c : cleaned) {
        if (c == sep) {
            items.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    items.push_back(cur);

    std::vector<WorkloadGroup> groups;
    int with_count = 0;
    bool last_has_count = false;
    for (const std::string &item : items) {
        if (item.empty())
            throw std::invalid_argument("workload '" + cleaned +
                                        "' has an empty group entry");
        const std::size_t colon = item.find(':');
        const std::string label =
            colon == std::string::npos ? item : item.substr(0, colon);
        WorkloadGroup group;
        group.profile = *profileRegistry().at(label); // throws, lists
        if (colon != std::string::npos) {
            group.nthreads =
                parseGroupCount(item, item.substr(colon + 1));
            ++with_count;
            last_has_count = &item == &items.back();
        }
        groups.push_back(std::move(group));
    }
    // Count rules: all groups counted, none (1 thread each), or only
    // the final one (its count broadcasts: "a+b:8" = 8 threads each).
    if (with_count == 1 && last_has_count && groups.size() > 1) {
        for (WorkloadGroup &g : groups)
            g.nthreads = groups.back().nthreads;
    } else if (with_count != 0 &&
               with_count != static_cast<int>(groups.size())) {
        throw std::invalid_argument(
            "workload '" + cleaned + "': give every group its own "
            ":count, none, or only a final broadcast count");
    }

    WorkloadSpec spec = has_pipe ? WorkloadSpec::pipeline(std::move(groups))
                                 : WorkloadSpec::mix(std::move(groups));
    spec.validate();
    return spec;
}

std::string
canonicalWorkloadText(const std::string &text)
{
    const std::string cleaned = stripSpaces(text);
    if (mixRegistry().find(cleaned))
        return cleaned; // registry names are already canonical
    return parseWorkload(cleaned).descriptor();
}

} // namespace sst
