#include "machine_keys.hh"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

#include "driver/sweep.hh" // parseSize

namespace sst {
namespace {

/** Table row with field accessors generated from the member expression. */
#define SST_MACHINE_KEY(key_name, key_kind, field)                            \
    MachineKey                                                                \
    {                                                                         \
        key_name, MachineKey::Kind::key_kind,                                 \
            [](const SimParams &p) {                                          \
                return static_cast<std::uint64_t>(p.field);                   \
            },                                                                \
            [](SimParams &p, std::uint64_t v) {                               \
                p.field = static_cast<decltype(p.field)>(v);                  \
            }                                                                 \
    }

std::vector<MachineKey>
buildTable()
{
    return {
        // ---- core timing model ------------------------------------------
        SST_MACHINE_KEY("dispatch-width", kU64, dispatchWidth),
        SST_MACHINE_KEY("llc-hit-cycles", kU64, llcHitCycles),
        SST_MACHINE_KEY("c2c-transfer-cycles", kU64, c2cTransferCycles),
        SST_MACHINE_KEY("rob-overlap-cycles", kU64, robOverlapCycles),
        SST_MACHINE_KEY("coherency-miss-cycles", kU64, coherencyMissCycles),
        // ---- spin / yield policy ----------------------------------------
        SST_MACHINE_KEY("spin-check-cycles", kU64, spinCheckCycles),
        SST_MACHINE_KEY("spin-loop-instrs", kU64, spinLoopInstrs),
        SST_MACHINE_KEY("lock-spin-threshold", kU64, lockSpinThreshold),
        SST_MACHINE_KEY("barrier-spin-threshold", kU64,
                        barrierSpinThreshold),
        // ---- OS scheduler mechanism -------------------------------------
        SST_MACHINE_KEY("ctx-switch-cycles", kU64, ctxSwitchCycles),
        SST_MACHINE_KEY("wake-latency-cycles", kU64, wakeLatencyCycles),
        SST_MACHINE_KEY("sched-per-core-overhead", kU64,
                        schedPerCoreOverhead),
        SST_MACHINE_KEY("time-slice-cycles", kU64, timeSliceCycles),
        SST_MACHINE_KEY("migration-flushes-l1", kBool, migrationFlushesL1),
        // ---- cache hierarchy --------------------------------------------
        SST_MACHINE_KEY("l1-bytes", kSize, cache.l1Bytes),
        SST_MACHINE_KEY("l1-ways", kU64, cache.l1Ways),
        SST_MACHINE_KEY("llc-bytes", kSize, cache.llcBytes),
        SST_MACHINE_KEY("llc-ways", kU64, cache.llcWays),
        SST_MACHINE_KEY("atd-sampling-factor", kU64,
                        cache.atdSamplingFactor),
        SST_MACHINE_KEY("oracle-atds", kBool, cache.oracleAtds),
        // ---- DRAM --------------------------------------------------------
        SST_MACHINE_KEY("dram-banks", kU64, dram.nbanks),
        SST_MACHINE_KEY("dram-bus-cycles", kU64, dram.busCycles),
        SST_MACHINE_KEY("dram-data-cycles", kU64, dram.dataCycles),
        SST_MACHINE_KEY("dram-row-hit-cycles", kU64, dram.rowHitCycles),
        SST_MACHINE_KEY("dram-row-empty-cycles", kU64, dram.rowEmptyCycles),
        SST_MACHINE_KEY("dram-row-conflict-cycles", kU64,
                        dram.rowConflictCycles),
        SST_MACHINE_KEY("dram-row-bytes", kSize, dram.rowBytes),
        // ---- accounting hardware ----------------------------------------
        SST_MACHINE_KEY("tian-table-entries", kU64,
                        accounting.tian.tableEntries),
        SST_MACHINE_KEY("tian-mark-threshold", kU64,
                        accounting.tian.markThreshold),
        SST_MACHINE_KEY("li-table-entries", kU64,
                        accounting.li.tableEntries),
        MachineKey{"stack-detector", MachineKey::Kind::kDetector,
                   [](const SimParams &p) {
                       return static_cast<std::uint64_t>(
                           p.accounting.stackDetector);
                   },
                   [](SimParams &p, std::uint64_t v) {
                       p.accounting.stackDetector =
                           static_cast<AccountingParams::Detector>(v);
                   }},
    };
}

#undef SST_MACHINE_KEY

} // namespace

const std::vector<MachineKey> &
machineKeys()
{
    static const std::vector<MachineKey> table = buildTable();
    return table;
}

const MachineKey *
findMachineKey(const std::string &name)
{
    for (const MachineKey &k : machineKeys())
        if (name == k.name)
            return &k;
    return nullptr;
}

std::string
machineKeyNamesJoined()
{
    std::string out;
    for (const MachineKey &k : machineKeys()) {
        if (!out.empty())
            out += ", ";
        out += "machine.";
        out += k.name;
    }
    return out;
}

std::string
sizeText(std::uint64_t bytes)
{
    constexpr std::uint64_t K = 1024, M = K * K, G = M * K;
    if (bytes >= G && bytes % G == 0)
        return std::to_string(bytes / G) + "G";
    if (bytes >= M && bytes % M == 0)
        return std::to_string(bytes / M) + "M";
    if (bytes >= K && bytes % K == 0)
        return std::to_string(bytes / K) + "K";
    return std::to_string(bytes);
}

std::string
machineValueText(const MachineKey &key, const SimParams &params)
{
    const std::uint64_t v = key.get(params);
    switch (key.kind) {
    case MachineKey::Kind::kU64:
        return std::to_string(v);
    case MachineKey::Kind::kSize:
        return sizeText(v);
    case MachineKey::Kind::kBool:
        return v ? "true" : "false";
    case MachineKey::Kind::kDetector:
        return v == 0 ? "tian" : "li";
    }
    return std::to_string(v); // unreachable
}

std::uint64_t
parseU64Text(const char *what, const std::string &text)
{
    // Digits only: strtoull would silently wrap "-1" to 2^64-1, so a
    // character check is the only safe strictness.
    if (text.empty() || text.size() > 20)
        throw std::invalid_argument(std::string("bad value for ") +
                                    what + ": '" + text + "'");
    for (const char c : text)
        if (c < '0' || c > '9')
            throw std::invalid_argument(
                std::string("bad value for ") + what + ": '" + text +
                "' (expected an unsigned integer)");
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || !end || *end != '\0')
        throw std::invalid_argument(std::string("bad value for ") +
                                    what + ": '" + text + "'");
    return v;
}

bool
parseBoolText(const char *what, const std::string &text)
{
    if (text == "true" || text == "1")
        return true;
    if (text == "false" || text == "0")
        return false;
    throw std::invalid_argument(std::string("bad value for ") + what +
                                ": '" + text +
                                "' (expected true or false)");
}

void
setMachineValue(SimParams &params, const MachineKey &key,
                const std::string &text)
{
    std::uint64_t v = 0;
    switch (key.kind) {
    case MachineKey::Kind::kU64:
        v = parseU64Text(key.name, text);
        break;
    case MachineKey::Kind::kSize:
        v = parseSize(text);
        break;
    case MachineKey::Kind::kBool:
        v = parseBoolText(key.name, text) ? 1 : 0;
        break;
    case MachineKey::Kind::kDetector:
        if (text == "tian")
            v = 0;
        else if (text == "li")
            v = 1;
        else
            throw std::invalid_argument("bad spin detector '" + text +
                                        "' (expected tian or li)");
        break;
    }
    key.set(params, v);
}

void
encodeMachineParams(std::string &out, const SimParams &params)
{
    for (const MachineKey &k : machineKeys()) {
        out += "machine.";
        out += k.name;
        out += " = ";
        out += machineValueText(k, params);
        out += '\n';
    }
}

} // namespace sst
