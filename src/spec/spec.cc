#include "spec.hh"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "spec/machine_keys.hh"
#include "spec/registries.hh"

namespace sst {
namespace {

constexpr const char *kMachinePrefix = "machine.";

/** Top-level spec keys, in canonical serialization order. */
constexpr const char *kTopKeys[] = {
    "profiles", "workload",  "workload-file", "pipeline", "threads",
    "cores",    "llc",       "seed-offset",   "frontend", "trace-dir",
    "sched",    "sched-seed", "output.csv",   "output.json",
    "output.quiet",
};

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
joinInts(const std::vector<int> &v)
{
    std::string out;
    for (const int x : v) {
        if (!out.empty())
            out += ", ";
        out += std::to_string(x);
    }
    return out;
}

std::string
joinSizes(const std::vector<std::uint64_t> &v)
{
    std::string out;
    for (const std::uint64_t x : v) {
        if (!out.empty())
            out += ", ";
        out += sizeText(x);
    }
    return out;
}

/**
 * Split a comma-separated path list. Unlike parseLabelList this only
 * trims the ends of each element — paths may legitimately contain
 * interior spaces — and rejects empty elements.
 */
std::vector<std::string>
splitPaths(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? text.size() : comma;
        const std::string item = trim(text.substr(start, end - start));
        if (item.empty())
            throw std::invalid_argument(
                "empty path in list '" + text + "'");
        out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

std::string
joinLabels(const std::vector<std::string> &v)
{
    std::string out;
    for (const std::string &x : v) {
        if (!out.empty())
            out += ", ";
        out += x;
    }
    return out;
}

} // namespace

void
applySpecValue(ExperimentSpec &spec, const std::string &key,
               const std::string &value)
{
    if (key == "profiles") {
        if (value == "all" || value.empty())
            spec.profiles.clear();
        else
            spec.profiles = parseLabelList(value);
    } else if (key == "workload") {
        if (!spec.workloadFiles.empty() && !value.empty()) {
            throw std::invalid_argument(
                "`workload =` cannot be combined with "
                "`workload-file =`; a .wdl file declares its own "
                "groups");
        }
        spec.workloads.clear();
        if (!value.empty()) {
            for (const std::string &item : parseLabelList(value))
                spec.workloads.push_back(canonicalWorkloadText(item));
        }
    } else if (key == "workload-file" || key == "workload_file") {
        // Sugar like `pipeline =`: selecting .wdl scenario files also
        // selects the workload-file frontend, so one line runs a
        // user-authored workload. Serialization emits the expanded
        // workload-file/frontend keys (canonical form is a fixed
        // point). Combining with the other workload axes would
        // silently drop one of them — reject instead.
        if (!spec.workloads.empty() && !value.empty()) {
            throw std::invalid_argument(
                "`workload-file =` cannot be combined with "
                "`workload =`; a .wdl file declares its own groups");
        }
        spec.workloadFiles.clear();
        if (!value.empty()) {
            spec.workloadFiles = splitPaths(value);
            spec.frontend = "workload-file";
        }
    } else if (key == "pipeline") {
        // Sugar: select a registered pipeline and its frontend in one
        // line. Serialization emits the expanded workload/frontend
        // keys, so the canonical form stays a fixed point. Because the
        // key assigns two fields, combining it with `workload =` would
        // silently drop one of them — reject instead.
        if (!spec.workloads.empty()) {
            throw std::invalid_argument(
                "`pipeline =` cannot be combined with `workload =`; "
                "list pipelines in `workload =` with `frontend = "
                "pipeline` instead");
        }
        if (!spec.workloadFiles.empty()) {
            throw std::invalid_argument(
                "`pipeline =` cannot be combined with "
                "`workload-file =`");
        }
        const std::string canon = canonicalWorkloadText(value);
        if (parseWorkload(canon).role != WorkloadRole::kPipeline) {
            throw std::invalid_argument(
                "'" + value + "' is not a pipeline workload (use "
                "`workload =` for mixes)");
        }
        spec.workloads = {canon};
        spec.frontend = "pipeline";
    } else if (key == "threads") {
        spec.threads = value.empty() ? std::vector<int>{}
                                     : parseIntList(value);
    } else if (key == "cores") {
        spec.cores = value.empty() ? std::vector<int>{}
                                   : parseIntList(value);
    } else if (key == "llc") {
        spec.llcBytes = value.empty() ? std::vector<std::uint64_t>{}
                                      : parseSizeList(value);
    } else if (key == "seed-offset") {
        spec.seedOffset = parseU64Text("seed-offset", value);
    } else if (key == "frontend") {
        opSourceRegistry().at(value); // throws listing valid frontends
        spec.frontend = value;
    } else if (key == "trace-dir") {
        spec.traceDir = value;
    } else if (key == "sched") {
        spec.machine.schedPolicy = schedulerRegistry().at(value);
    } else if (key == "sched-seed") {
        spec.machine.schedSeed = parseU64Text("sched-seed", value);
    } else if (key == "output.csv") {
        spec.csvPath = value;
    } else if (key == "output.json") {
        spec.jsonPath = value;
    } else if (key == "output.quiet") {
        spec.quiet = parseBoolText("output.quiet", value);
    } else if (key.compare(0, std::string(kMachinePrefix).size(),
                           kMachinePrefix) == 0) {
        const std::string name =
            key.substr(std::string(kMachinePrefix).size());
        const MachineKey *mk = findMachineKey(name);
        if (!mk)
            throw std::invalid_argument("unknown machine key '" + key +
                                        "'; valid machine keys: " +
                                        machineKeyNamesJoined());
        setMachineValue(spec.machine, *mk, value);
    } else {
        throw std::invalid_argument("unknown spec key '" + key +
                                    "'; valid keys: " +
                                    specKeyNamesJoined());
    }
}

std::string
specKeyNamesJoined()
{
    std::string out;
    for (const char *k : kTopKeys) {
        if (!out.empty())
            out += ", ";
        out += k;
    }
    return out + ", " + machineKeyNamesJoined();
}

ExperimentSpec
parseSpec(const std::string &text)
{
    ExperimentSpec spec;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // '#' starts a comment only at line start or after whitespace,
        // so values like `output.csv = run#1.csv` survive intact.
        for (std::size_t i = 0; i < line.size(); ++i) {
            if (line[i] == '#' &&
                (i == 0 || std::isspace(static_cast<unsigned char>(
                               line[i - 1])))) {
                line.erase(i);
                break;
            }
        }
        line = trim(line);
        if (line.empty())
            continue;
        // Diagnostics carry the line number AND the offending line
        // (matching the WDL compiler's file:line + near-token style),
        // so a bad key in a 50-line spec is found without counting.
        const auto fail = [&](const std::string &msg) {
            throw std::invalid_argument("line " + std::to_string(lineno) +
                                        ": " + msg + " (near '" + line +
                                        "')");
        };
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            fail("expected 'key = value'");
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            fail("empty key");
        try {
            applySpecValue(spec, key, value);
        } catch (const std::invalid_argument &e) {
            fail(e.what());
        }
    }
    return spec;
}

ExperimentSpec
parseSpecFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::invalid_argument("cannot read spec file " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
        return parseSpec(buf.str());
    } catch (const std::invalid_argument &e) {
        throw std::invalid_argument(path + ": " + e.what());
    }
}

std::string
serializeSpec(const ExperimentSpec &spec)
{
    std::string out = "# sst experiment spec (canonical form)\n";
    auto put = [&out](const char *key, const std::string &value) {
        // Refuse to emit text that would re-parse differently: a '#'
        // at value start or after whitespace reads back as a comment,
        // and an embedded newline would split the line. Throwing here
        // keeps parse(serialize(s)) == s exact for every serializable
        // spec instead of silently corrupting the round trip.
        for (std::size_t i = 0; i < value.size(); ++i) {
            const bool comment_start =
                value[i] == '#' &&
                (i == 0 || std::isspace(static_cast<unsigned char>(
                               value[i - 1])));
            if (comment_start || value[i] == '\n') {
                throw std::invalid_argument(
                    std::string("cannot serialize ") + key +
                    " value '" + value +
                    "': it would re-parse as a comment or line break");
            }
        }
        out += key;
        out += value.empty() ? " =" : " = ";
        out += value;
        out += '\n';
    };
    put("profiles",
        spec.profiles.empty() ? "all" : joinLabels(spec.profiles));
    put("workload", joinLabels(spec.workloads));
    put("workload-file", joinLabels(spec.workloadFiles));
    put("threads", joinInts(spec.threads));
    put("cores", joinInts(spec.cores));
    put("llc", joinSizes(spec.llcBytes));
    put("seed-offset", std::to_string(spec.seedOffset));
    put("frontend", spec.frontend);
    put("trace-dir", spec.traceDir);
    put("sched", schedPolicyLabel(spec.machine.schedPolicy));
    put("sched-seed", std::to_string(spec.machine.schedSeed));
    encodeMachineParams(out, spec.machine);
    put("output.csv", spec.csvPath);
    put("output.json", spec.jsonPath);
    put("output.quiet", spec.quiet ? "true" : "false");
    return out;
}

bool
operator==(const ExperimentSpec &a, const ExperimentSpec &b)
{
    return serializeSpec(a) == serializeSpec(b);
}

bool
operator!=(const ExperimentSpec &a, const ExperimentSpec &b)
{
    return !(a == b);
}

void
validateSpec(const ExperimentSpec &spec)
{
    const OpSourceFrontend &frontend = opSourceRegistry().at(spec.frontend);
    if (frontend.needsTraceDir && spec.traceDir.empty())
        throw std::invalid_argument("frontend '" + spec.frontend +
                                    "' replays recordings: trace-dir "
                                    "must be set");
    if (!frontend.needsTraceDir && !spec.traceDir.empty())
        throw std::invalid_argument(
            "trace-dir is set but frontend '" + spec.frontend +
            "' does not replay traces (use `frontend = trace`)");
    if (frontend.needsTraceDir && !spec.cores.empty())
        throw std::invalid_argument(
            "frontend '" + spec.frontend + "' cannot drive a cores "
            "axis: recordings embed the schedule of a #cores == "
            "#threads run, so oversubscribed jobs would silently "
            "regenerate live instead of replaying");
    if (!spec.workloads.empty() && !spec.profiles.empty()) {
        throw std::invalid_argument(
            "workload and profiles are exclusive axes (a workload "
            "names its own profiles)");
    }
    if (!spec.workloadFiles.empty() &&
        (!spec.profiles.empty() || !spec.workloads.empty())) {
        throw std::invalid_argument(
            "workload-file is exclusive with the profiles and workload "
            "axes (a .wdl file declares its own groups)");
    }
    if (!spec.workloadFiles.empty() && spec.frontend != "workload-file")
        throw std::invalid_argument(
            "workload-file paths are set but frontend '" + spec.frontend +
            "' does not compile them (use `frontend = workload-file`)");
    if (spec.frontend == "workload-file" && spec.workloadFiles.empty())
        throw std::invalid_argument(
            "frontend 'workload-file' needs `workload-file = "
            "<path.wdl>[, <path.wdl>...]`");
    if ((!spec.workloads.empty() || !spec.workloadFiles.empty()) &&
        !(spec.threads.size() == 1 && spec.threads[0] == 16)) {
        // The default threads value {16} is indistinguishable from an
        // explicit `threads = 16`, which is harmless either way; any
        // other value would be silently ignored — reject it.
        throw std::invalid_argument(
            "the threads axis does not apply to workloads (each "
            "workload carries its own thread counts); drop `threads =`");
    }
    // Resolve every workload now (registry mixes, inline labels) and
    // tie pipeline workloads to the pipeline frontend, so a mismatch
    // fails with the registry's message before any job runs. One parse
    // per descriptor: both checks read the same resolved role.
    const bool pipeline_frontend = spec.frontend == "pipeline";
    for (const std::string &text : spec.workloads) {
        const WorkloadRole role = parseWorkload(text).role; // throws
        if (pipeline_frontend && role != WorkloadRole::kPipeline)
            throw std::invalid_argument(
                "frontend 'pipeline' selected but workload '" + text +
                "' is not a pipeline");
        if (!pipeline_frontend && spec.frontend == "program" &&
            role == WorkloadRole::kPipeline) {
            throw std::invalid_argument(
                "pipeline workloads need `frontend = pipeline` (or "
                "the `pipeline =` shorthand)");
        }
    }
    if (pipeline_frontend && spec.workloads.empty())
        throw std::invalid_argument(
            "frontend 'pipeline' needs `workload = <pipeline>` "
            "(e.g. one of: " + mixRegistry().namesJoined() + ")");
    if (spec.workloads.empty() && spec.workloadFiles.empty() &&
        spec.threads.empty())
        throw std::invalid_argument("spec selects no thread counts");
    if (spec.machine.schedSeed != 0 &&
        spec.machine.schedPolicy != SchedPolicy::kRandom) {
        throw std::invalid_argument(
            "sched-seed only affects `sched = random`; the seed would "
            "be silently ignored");
    }
    // Resolve every label now so a typo fails with the registry's
    // message before any job runs.
    for (const std::string &label : spec.profiles)
        if (!profileRegistry().find(label))
            profileRegistry().at(label); // throws, listing valid names
}

SweepGrid
specGrid(const ExperimentSpec &spec)
{
    validateSpec(spec);
    SweepGrid grid;
    if (!spec.workloadFiles.empty()) {
        // Each .wdl file carries its own groups and thread counts.
        grid.workloadFiles = spec.workloadFiles;
        grid.threads.clear();
    } else if (!spec.workloads.empty()) {
        // The workload axis carries its own profiles/thread counts.
        grid.workloads = spec.workloads;
        grid.threads.clear();
    } else {
        grid.profiles = spec.profiles.empty() ? allProfileLabels()
                                              : spec.profiles;
        grid.threads = spec.threads;
    }
    grid.cores = spec.cores;
    grid.llcBytes = spec.llcBytes;
    grid.baseParams = spec.machine;
    grid.seedOffset = spec.seedOffset;
    return grid;
}

ExperimentSpec
specForJob(const JobSpec &job)
{
    ExperimentSpec spec;
    const WorkloadSpec &w = job.workload;
    if (w.wdlProgram) {
        // WDL workloads serialize by source path: the leased worker
        // re-compiles the file, and the fingerprint (which hashes the
        // compiled IR, not the path) proves it reconstructed the
        // identical workload. A programmatically built WorkloadSpec
        // with no source path cannot be leased as a spec.
        if (w.wdlPath.empty())
            throw std::invalid_argument(
                "cannot serialize a WDL workload with no source path");
        spec.workloadFiles = {w.wdlPath};
        spec.frontend = "workload-file";
    } else if (w.isHomogeneous() && w.name.empty()) {
        spec.profiles = {w.groups[0].profile.label()};
        spec.threads = {w.groups[0].nthreads};
    } else {
        // Registry name when set, canonical inline descriptor
        // otherwise; either way canonicalWorkloadText() resolves it
        // through the registries (throwing on unknown labels) so the
        // receiving side reconstructs the identical workload. The
        // threads axis stays at its default — workloads carry their own
        // thread counts and validateSpec rejects anything else.
        spec.workloads = {canonicalWorkloadText(
            w.name.empty() ? w.descriptor() : w.name)};
        spec.frontend = w.role == WorkloadRole::kPipeline ? "pipeline"
                                                          : "program";
    }
    if (job.ncores > 0)
        spec.cores = {job.ncores};
    spec.seedOffset = job.seedOffset;
    spec.machine = job.params;
    // Deterministic policies ignore the seed; canonicalize it away so
    // the spec validates and fingerprints match the original job.
    spec.machine.schedSeed = canonicalSchedSeed(
        spec.machine.schedPolicy, spec.machine.schedSeed);
    return spec;
}

void
applySpecToDriverOptions(const ExperimentSpec &spec, DriverOptions &opts)
{
    if (opSourceRegistry().at(spec.frontend).needsTraceDir)
        opts.traceDir = spec.traceDir;
}

} // namespace sst
