/**
 * @file
 * ExperimentSpec: a fully declarative description of one speedup-stack
 * study — workload selection, sweep axes (threads, cores, LLC sizes),
 * machine parameters, scheduler policy + seed, workload frontend
 * (live generation or trace replay) and output options — that parses
 * from and serializes to a canonical `key = value` text format.
 *
 * Guarantees:
 *  - round trip: parseSpec(serializeSpec(s)) == s for every valid s;
 *  - canonical form: serializeSpec emits every key in one fixed order
 *    with normalized values, so equal specs produce byte-identical
 *    text (ExperimentSpec equality IS canonical-text equality);
 *  - fingerprint sharing: the machine section is rendered by the same
 *    table the driver's job fingerprint uses (fingerprint v3), so a
 *    spec-driven run and the equivalent flag-driven run hit the same
 *    result-cache entries by construction.
 *
 * Spec files are plain text: one `key = value` per line, `#` comments
 * (a '#' at line start or after whitespace; `run#1.csv` is a value),
 * blank lines ignored, later keys override earlier ones. All names
 * (profiles, scheduler policies, frontends, machine keys) resolve
 * through registries/tables, so every unknown-label error lists the
 * valid names.
 */

#ifndef SST_SPEC_SPEC_HH
#define SST_SPEC_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "driver/driver.hh"
#include "driver/sweep.hh"
#include "sim/params.hh"

namespace sst {

/** One declarative experiment description. See file comment. */
struct ExperimentSpec
{
    /** Benchmark labels; empty selects the whole Figure 6 suite. */
    std::vector<std::string> profiles;

    /**
     * Heterogeneous-workload axis (`workload = fig08_cholesky,
     * cholesky:8+fft:8`): registered mix/pipeline names or inline
     * descriptors, stored canonicalized. Mutually exclusive with
     * `profiles`; each workload carries its own thread counts, so the
     * `threads` axis does not apply. The `pipeline = <name>` spec key
     * is sugar for `workload = <name>` + `frontend = pipeline`.
     */
    std::vector<std::string> workloads;

    /**
     * Workload-description files (`workload-file = contention.wdl`):
     * paths to `.wdl` scenario sources compiled by the WDL frontend.
     * Mutually exclusive with `profiles` and `workloads`; each file
     * declares its own groups and thread counts, so the `threads` axis
     * does not apply. Setting the key is sugar for
     * `frontend = workload-file`. Fingerprints hash the compiled IR,
     * never these paths.
     */
    std::vector<std::string> workloadFiles;

    /** Thread counts (sweep axis). */
    std::vector<int> threads = {16};

    /**
     * Core counts (sweep axis); empty runs every job with
     * #cores == #threads. A list crosses with `threads`, enabling the
     * Figure 7 oversubscription studies (16 threads on 2/4/8/16 cores).
     */
    std::vector<int> cores;

    /** LLC sizes in bytes (sweep axis); empty keeps machine.llc-bytes. */
    std::vector<std::uint64_t> llcBytes;

    /** Replication RNG stream selector (see JobSpec::seedOffset). */
    std::uint64_t seedOffset = 0;

    /** Workload frontend name (opSourceRegistry): program | trace. */
    std::string frontend = "program";

    /** Recorded-trace directory; required by frontends that replay. */
    std::string traceDir;

    /**
     * Machine configuration, including the scheduler policy and seed
     * (spec keys `sched` / `sched-seed` and the `machine.*` section).
     */
    SimParams machine;

    // ---- output options ---------------------------------------------------
    std::string csvPath;  ///< write the batch as CSV when non-empty
    std::string jsonPath; ///< write the batch as JSON when non-empty
    bool quiet = false;   ///< suppress the result table
};

/** Equality is canonical-form equality. */
bool operator==(const ExperimentSpec &a, const ExperimentSpec &b);
bool operator!=(const ExperimentSpec &a, const ExperimentSpec &b);

/**
 * Apply one `key = value` assignment to @p spec. This is the single
 * mutation path shared by the file parser and the CLI flag layer (a
 * `--sched X` flag is applySpecValue(spec, "sched", "X")), so flags and
 * spec files can never drift apart. Throws std::invalid_argument on an
 * unknown key (listing every valid key) or a malformed value.
 */
void applySpecValue(ExperimentSpec &spec, const std::string &key,
                    const std::string &value);

/** All valid spec keys joined with ", " (generated, for errors/help). */
std::string specKeyNamesJoined();

/**
 * Parse spec text (see file comment for the format). Errors carry the
 * 1-based line number. Starts from a default-constructed spec.
 */
ExperimentSpec parseSpec(const std::string &text);

/** Parse the spec file at @p path; errors name the file and line. */
ExperimentSpec parseSpecFile(const std::string &path);

/** Canonical serialization: every key, fixed order, normalized values. */
std::string serializeSpec(const ExperimentSpec &spec);

/**
 * Validate cross-field constraints: known frontend (trace frontends
 * need trace-dir, generator frontends must not have one), resolvable
 * profile labels, non-empty axes, and sched-seed only with a stochastic
 * policy. Throws std::invalid_argument with registry-sourced messages.
 */
void validateSpec(const ExperimentSpec &spec);

/** Expand @p spec's axes into the driver's sweep grid. */
SweepGrid specGrid(const ExperimentSpec &spec);

/**
 * The single-job spec: an ExperimentSpec whose grid expands to exactly
 * @p job — the wire form the experiment service leases jobs in
 * (serialize on the server, parse + expand on the worker). The result
 * validates and round-trips: expandGrid(specGrid(specForJob(job)))
 * yields one job with a fingerprint equal to fingerprintJob(job).
 * Requires @p job's profiles/workload to be registry-resolvable (true
 * for every job a spec produced); the scheduler seed is canonicalized
 * (dropped for deterministic policies) exactly like the fingerprint.
 * Throws std::invalid_argument for non-registry workloads.
 */
ExperimentSpec specForJob(const JobSpec &job);

/**
 * Apply @p spec's execution-relevant settings (frontend -> trace-dir)
 * to @p opts. Jobs/cache settings stay CLI-level: they affect how a
 * batch executes, never what it computes.
 */
void applySpecToDriverOptions(const ExperimentSpec &spec,
                              DriverOptions &opts);

} // namespace sst

#endif // SST_SPEC_SPEC_HH
