/**
 * @file
 * The per-thread cycle accounting architecture (Section 4). One
 * AccountingUnit instance models the accounting hardware of the whole
 * CMP: per-thread raw counters plus per-thread spin detectors. The
 * simulator calls the on*() hooks at the architectural events a real
 * implementation would observe; no simulator-internal knowledge flows
 * into the hardware-visible counters.
 */

#ifndef SST_ACCOUNTING_ACCOUNTING_UNIT_HH
#define SST_ACCOUNTING_ACCOUNTING_UNIT_HH

#include <cstdint>
#include <vector>

#include "accounting/counters.hh"
#include "sync/spin_detect.hh"
#include "util/types.hh"

namespace sst {

/** Configuration of the accounting hardware. */
struct AccountingParams
{
    TianSpinDetector::Params tian;
    LiSpinDetector::Params li;
    /**
     * Which spin detector feeds the speedup stack. The paper uses the
     * Tian et al. mechanism because it is the simpler hardware; the Li
     * detector is kept for the ablation bench.
     */
    enum class Detector { kTian, kLi } stackDetector = Detector::kTian;
};

/** Accounting hardware for all threads of a run. */
class AccountingUnit
{
  public:
    AccountingUnit(int nthreads, const AccountingParams &params);

    // ---- event hooks, called by the simulator ----------------------------

    /** @p n program instructions committed by @p tid. */
    void onInstructions(ThreadId tid, std::uint64_t n);

    /** @p n spin-loop instructions executed by @p tid. */
    void onSpinInstructions(ThreadId tid, std::uint64_t n);

    /**
     * A committed load: feeds both spin detectors.
     * @param value version value at the loaded address
     * @param written_by_other last writer differs from @p tid
     */
    void onLoad(ThreadId tid, PC pc, Addr addr, std::uint64_t value,
                bool written_by_other, Cycles now);

    /**
     * A backward branch with compact state hash @p state_hash (Li
     * detector input).
     */
    void onBackwardBranch(ThreadId tid, PC pc, std::uint64_t state_hash,
                          Cycles now);

    /** An LLC access by @p tid; @p sampled if it mapped to an ATD set. */
    void onLlcAccess(ThreadId tid, bool sampled);

    /**
     * An LLC load miss completed after stalling the core for
     * @p visible_stall cycles (the portion blocking the ROB head).
     * Memory-interference attributions are clamped to the visible stall
     * (waits hidden by out-of-order overlap cost nothing, Section 4.1)
     * and recorded only for sampled, intra-thread misses so that the
     * cache and memory components never double-count the same cycles.
     */
    void onLlcLoadMissComplete(ThreadId tid, Cycles visible_stall,
                               bool sampled, bool inter_thread,
                               Cycles bus_wait_other,
                               Cycles bank_wait_other,
                               Cycles page_conflict_other);

    /** A sampled inter-thread LLC hit (positive interference event). */
    void onInterThreadHit(ThreadId tid);

    /** OS hook: @p tid was descheduled for @p cycles on a sync wait. */
    void onYield(ThreadId tid, Cycles cycles);

    /** A coherency miss (L1 invalid-tag re-reference). */
    void onCoherencyMiss(ThreadId tid);

    /**
     * OS hook: @p tid was descheduled. The per-core spin-detector tables
     * belong to the core, so a context switch flushes the thread's
     * tracked state (a real implementation would either flush or tag
     * entries; flushing is the conservative choice and a documented
     * source of spin-time underestimation).
     */
    void onDescheduled(ThreadId tid);

    /**
     * Region-of-interest start: zero @p tid's counters (the spin
     * detector state is hardware and persists).
     */
    void resetThread(ThreadId tid);

    // ---- ground-truth hooks (validation only) -----------------------------
    void gtLockSpin(ThreadId tid, Cycles cycles);
    void gtBarrierSpin(ThreadId tid, Cycles cycles);
    void gtLockYield(ThreadId tid, Cycles cycles);
    void gtBarrierYield(ThreadId tid, Cycles cycles);
    void gtPreemptYield(ThreadId tid, Cycles cycles);
    void gtMemWaitOther(ThreadId tid, Cycles cycles);
    void setFinishTime(ThreadId tid, Cycles when);

    // ---- access -----------------------------------------------------------
    const ThreadCounters &counters(ThreadId tid) const;
    ThreadCounters &countersMutable(ThreadId tid);
    int nthreads() const { return static_cast<int>(threads_.size()); }
    const AccountingParams &params() const { return params_; }

  private:
    AccountingParams params_;
    std::vector<ThreadCounters> threads_;
    std::vector<TianSpinDetector> tian_;
    std::vector<LiSpinDetector> li_;
};

} // namespace sst

#endif // SST_ACCOUNTING_ACCOUNTING_UNIT_HH
