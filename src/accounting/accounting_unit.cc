#include "accounting_unit.hh"

#include <algorithm>

#include "util/logging.hh"

namespace sst {

AccountingUnit::AccountingUnit(int nthreads, const AccountingParams &params)
    : params_(params)
{
    sstAssert(nthreads >= 1, "AccountingUnit needs >= 1 thread");
    threads_.resize(static_cast<std::size_t>(nthreads));
    for (int t = 0; t < nthreads; ++t) {
        tian_.emplace_back(params.tian);
        li_.emplace_back(params.li);
    }
}

void
AccountingUnit::onInstructions(ThreadId tid, std::uint64_t n)
{
    threads_[static_cast<std::size_t>(tid)].instructions += n;
}

void
AccountingUnit::onSpinInstructions(ThreadId tid, std::uint64_t n)
{
    auto &c = threads_[static_cast<std::size_t>(tid)];
    c.spinInstructions += n;
    c.instructions += n;
}

void
AccountingUnit::onLoad(ThreadId tid, PC pc, Addr addr, std::uint64_t value,
                       bool written_by_other, Cycles now)
{
    auto &c = threads_[static_cast<std::size_t>(tid)];
    c.spinDetectedTian += tian_[static_cast<std::size_t>(tid)].observeLoad(
        pc, addr, value, written_by_other, now);
}

void
AccountingUnit::onBackwardBranch(ThreadId tid, PC pc,
                                 std::uint64_t state_hash, Cycles now)
{
    auto &c = threads_[static_cast<std::size_t>(tid)];
    c.spinDetectedLi +=
        li_[static_cast<std::size_t>(tid)].observeBackwardBranch(
            pc, state_hash, now);
}

void
AccountingUnit::onLlcAccess(ThreadId tid, bool sampled)
{
    auto &c = threads_[static_cast<std::size_t>(tid)];
    ++c.llcAccesses;
    if (sampled)
        ++c.atdSampledAccesses;
}

void
AccountingUnit::onLlcLoadMissComplete(ThreadId tid, Cycles visible_stall,
                                      bool sampled, bool inter_thread,
                                      Cycles bus_wait_other,
                                      Cycles bank_wait_other,
                                      Cycles page_conflict_other)
{
    auto &c = threads_[static_cast<std::size_t>(tid)];
    c.llcLoadMissStall += visible_stall;
    ++c.llcLoadMisses;
    if (!sampled)
        return;

    if (inter_thread) {
        // Would be a hit with a private LLC: the entire ROB-blocking
        // stall is negative cache interference.
        c.negLlcSampledStall += visible_stall;
        ++c.interThreadMissesSampled;
        return;
    }

    // Would miss privately too: only the waiting behind other cores is
    // interference, clamped to the ROB-blocking portion.
    Cycles budget = visible_stall;
    const Cycles bus = std::min(bus_wait_other, budget);
    budget -= bus;
    const Cycles bank = std::min(bank_wait_other, budget);
    budget -= bank;
    const Cycles page = std::min(page_conflict_other, budget);
    c.busWaitOther += bus;
    c.bankWaitOther += bank;
    c.pageConflictOther += page;
}

void
AccountingUnit::onInterThreadHit(ThreadId tid)
{
    ++threads_[static_cast<std::size_t>(tid)].interThreadHitsSampled;
}

void
AccountingUnit::onYield(ThreadId tid, Cycles cycles)
{
    threads_[static_cast<std::size_t>(tid)].yieldCycles += cycles;
}

void
AccountingUnit::onCoherencyMiss(ThreadId tid)
{
    ++threads_[static_cast<std::size_t>(tid)].coherencyMisses;
}

void
AccountingUnit::resetThread(ThreadId tid)
{
    threads_[static_cast<std::size_t>(tid)] = ThreadCounters{};
}

void
AccountingUnit::onDescheduled(ThreadId tid)
{
    tian_[static_cast<std::size_t>(tid)] = TianSpinDetector(params_.tian);
    li_[static_cast<std::size_t>(tid)] = LiSpinDetector(params_.li);
}

void
AccountingUnit::gtLockSpin(ThreadId tid, Cycles cycles)
{
    threads_[static_cast<std::size_t>(tid)].gtLockSpin += cycles;
}

void
AccountingUnit::gtBarrierSpin(ThreadId tid, Cycles cycles)
{
    threads_[static_cast<std::size_t>(tid)].gtBarrierSpin += cycles;
}

void
AccountingUnit::gtLockYield(ThreadId tid, Cycles cycles)
{
    threads_[static_cast<std::size_t>(tid)].gtLockYield += cycles;
}

void
AccountingUnit::gtBarrierYield(ThreadId tid, Cycles cycles)
{
    threads_[static_cast<std::size_t>(tid)].gtBarrierYield += cycles;
}

void
AccountingUnit::gtPreemptYield(ThreadId tid, Cycles cycles)
{
    threads_[static_cast<std::size_t>(tid)].gtPreemptYield += cycles;
}

void
AccountingUnit::gtMemWaitOther(ThreadId tid, Cycles cycles)
{
    threads_[static_cast<std::size_t>(tid)].gtMemWaitOther += cycles;
}

void
AccountingUnit::setFinishTime(ThreadId tid, Cycles when)
{
    threads_[static_cast<std::size_t>(tid)].finishTime = when;
}

const ThreadCounters &
AccountingUnit::counters(ThreadId tid) const
{
    return threads_[static_cast<std::size_t>(tid)];
}

ThreadCounters &
AccountingUnit::countersMutable(ThreadId tid)
{
    return threads_[static_cast<std::size_t>(tid)];
}

} // namespace sst
