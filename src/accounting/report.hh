/**
 * @file
 * Software post-processing of the raw accounting counters (the "system
 * software" half of Section 4.7): extrapolation of sampled negative LLC
 * interference, interpolation of positive interference via the average
 * miss penalty, spin/yield/imbalance assembly — producing per-thread
 * cycle components O_ij and P_i of Equation 2.
 */

#ifndef SST_ACCOUNTING_REPORT_HH
#define SST_ACCOUNTING_REPORT_HH

#include <vector>

#include "accounting/counters.hh"
#include "util/types.hh"

namespace sst {

/** Per-thread cycle components (in cycles; fractional after scaling). */
struct CycleComponents
{
    double negLlc = 0.0;    ///< inter-thread LLC miss penalty (extrapolated)
    double posLlc = 0.0;    ///< inter-thread LLC hit benefit (interpolated)
    double negMem = 0.0;    ///< bus + bank + page conflict cycles
    double spin = 0.0;      ///< spin-detector output
    double yield = 0.0;     ///< OS descheduled time on sync waits
    double imbalance = 0.0; ///< end-of-region wait for the slowest thread
    double coherency = 0.0; ///< optional (disabled by default, Sec. 4.5)

    /** Sum of all overhead components O_ij (excludes positive interf.). */
    double
    overheadSum() const
    {
        return negLlc + negMem + spin + yield + imbalance + coherency;
    }
};

/** Options for the post-processing step. */
struct ReportOptions
{
    /**
     * Nominal ATD sampling factor, used as the extrapolation fallback
     * when a thread observed no sampled accesses.
     */
    double nominalSamplingFactor = 32.0;

    /** Use the Li detector's output instead of Tian's (ablation). */
    bool useLiDetector = false;

    /**
     * Account coherency misses at this penalty each; the paper leaves
     * this off because a balanced OoO core hides L1 misses (Sec. 4.5).
     */
    bool accountCoherency = false;
    double coherencyMissPenalty = 10.0;
};

/**
 * Compute the per-thread cycle components from raw counters.
 *
 * @param threads raw counters of every thread of the parallel run
 * @param tp the run's execution time Tp
 */
std::vector<CycleComponents>
computeComponents(const std::vector<ThreadCounters> &threads, Cycles tp,
                  const ReportOptions &opts = ReportOptions());

/**
 * Measured extrapolation factor of one thread: total LLC accesses over
 * sampled ATD accesses (Section 4.2), falling back to the nominal factor
 * when no samples were taken.
 */
double measuredSamplingFactor(const ThreadCounters &c,
                              double nominal_factor);

/** Average LLC load-miss penalty of one thread (cycles per miss). */
double averageMissPenalty(const ThreadCounters &c);

} // namespace sst

#endif // SST_ACCOUNTING_REPORT_HH
