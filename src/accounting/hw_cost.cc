#include "hw_cost.hh"

#include "util/bits.hh"

#include "util/logging.hh"
#include "util/types.hh"

namespace sst {

HwCostBreakdown
computeHwCost(const HwCostConfig &config)
{
    HwCostBreakdown b;

    const std::uint64_t llc_sets =
        config.llcBytes / kLineBytes /
        static_cast<std::uint64_t>(config.llcWays);
    sstAssert(llc_sets % static_cast<std::uint64_t>(
                             config.atdSamplingFactor) ==
                  0,
              "sampling factor must divide the LLC set count");
    const std::uint64_t monitored_sets =
        llc_sets / static_cast<std::uint64_t>(config.atdSamplingFactor);

    // ATD entry: tag + valid + dirty. Tags cover the physical address
    // minus line offset and set index bits.
    const int tag_bits = config.physAddrBits - log2i(kLineBytes) -
                         log2i(llc_sets);
    b.atdBits = monitored_sets *
                static_cast<std::uint64_t>(config.llcWays) *
                static_cast<std::uint64_t>(tag_bits + 2);

    // ORA: one open-row record per bank (row number + valid bit).
    const int row_bits = config.physAddrBits - log2i(kLineBytes) -
                         log2i(static_cast<std::uint64_t>(config.nbanks)) -
                         log2i(2048 / kLineBytes);
    b.oraBits = static_cast<std::uint64_t>(config.nbanks) *
                static_cast<std::uint64_t>(row_bits + 1);

    // Raw event counter file (stall cycles, miss counts, wait cycles...).
    b.counterBits = static_cast<std::uint64_t>(config.eventCounters) *
                    static_cast<std::uint64_t>(config.counterBits);

    // Tian et al. load table: 217 bytes with the default 8 entries.
    b.spinTableBits = TianSpinDetector::hardwareBits(config.tian);

    return b;
}

} // namespace sst
