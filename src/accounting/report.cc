#include "report.hh"

namespace sst {

double
measuredSamplingFactor(const ThreadCounters &c, double nominal_factor)
{
    if (c.atdSampledAccesses == 0)
        return nominal_factor;
    return static_cast<double>(c.llcAccesses) /
           static_cast<double>(c.atdSampledAccesses);
}

double
averageMissPenalty(const ThreadCounters &c)
{
    if (c.llcLoadMisses == 0)
        return 0.0;
    return static_cast<double>(c.llcLoadMissStall) /
           static_cast<double>(c.llcLoadMisses);
}

std::vector<CycleComponents>
computeComponents(const std::vector<ThreadCounters> &threads, Cycles tp,
                  const ReportOptions &opts)
{
    std::vector<CycleComponents> out;
    out.reserve(threads.size());

    for (const ThreadCounters &c : threads) {
        CycleComponents comp;

        // Negative LLC interference: the stall cycles of *sampled*
        // inter-thread misses, extrapolated by the measured sampling
        // factor (Section 4.1).
        const double factor =
            measuredSamplingFactor(c, opts.nominalSamplingFactor);
        comp.negLlc = static_cast<double>(c.negLlcSampledStall) * factor;

        // Positive interference: inter-thread hits have no measurable
        // penalty, so interpolate with the average load-miss penalty
        // (Section 4.2).
        comp.posLlc = static_cast<double>(c.interThreadHitsSampled) *
                      factor * averageMissPenalty(c);

        // Memory interference: sampled intra-thread wait attributions,
        // extrapolated like the cache component.
        comp.negMem = static_cast<double>(c.busWaitOther + c.bankWaitOther +
                                          c.pageConflictOther) *
                      factor;

        comp.spin = static_cast<double>(
            opts.useLiDetector ? c.spinDetectedLi : c.spinDetectedTian);
        comp.yield = static_cast<double>(c.yieldCycles);

        // Load imbalance (Section 4.6): pad every thread up to the
        // slowest thread's execution time.
        comp.imbalance = c.finishTime <= tp
                             ? static_cast<double>(tp - c.finishTime)
                             : 0.0;

        if (opts.accountCoherency) {
            comp.coherency = static_cast<double>(c.coherencyMisses) *
                             opts.coherencyMissPenalty;
        }
        out.push_back(comp);
    }
    return out;
}

} // namespace sst
