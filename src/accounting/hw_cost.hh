/**
 * @file
 * Hardware cost model of the cycle accounting architecture (Section 4.7
 * of the paper). The paper quotes 952 bytes per core for the
 * interference accounting (ATD + ORA + event counters, from [7]) plus
 * 217 bytes per core for the Tian et al. load table — about 1.1 KB per
 * core, 18 KB for a 16-core CMP. This model derives those numbers from
 * structure geometry so design-space sweeps (e.g. the ATD sampling
 * ablation) report cost alongside accuracy.
 */

#ifndef SST_ACCOUNTING_HW_COST_HH
#define SST_ACCOUNTING_HW_COST_HH

#include <cstdint>

#include "sync/spin_detect.hh"

namespace sst {

/** Geometry inputs of the cost model. */
struct HwCostConfig
{
    std::uint64_t llcBytes = 2 * 1024 * 1024;
    int llcWays = 16;
    int atdSamplingFactor = 128; ///< the hardware-proposal operating point
    int physAddrBits = 42;
    int nbanks = 8;
    int eventCounters = 8;   ///< raw event counter file per core
    int counterBits = 59;    ///< width of each event counter
    TianSpinDetector::Params tian;
};

/** Byte-level breakdown of the accounting hardware for one core. */
struct HwCostBreakdown
{
    std::uint64_t atdBits = 0;
    std::uint64_t oraBits = 0;
    std::uint64_t counterBits = 0;
    std::uint64_t spinTableBits = 0;

    std::uint64_t atdBytes() const { return (atdBits + 7) / 8; }
    std::uint64_t oraBytes() const { return (oraBits + 7) / 8; }
    std::uint64_t counterBytes() const { return (counterBits + 7) / 8; }
    std::uint64_t spinTableBytes() const { return (spinTableBits + 7) / 8; }

    /** Interference accounting bytes per core (the paper's 952 B). */
    std::uint64_t
    interferenceBytesPerCore() const
    {
        return atdBytes() + oraBytes() + counterBytes();
    }

    /** Total accounting bytes per core (the paper's ~1.1 KB). */
    std::uint64_t
    totalBytesPerCore() const
    {
        return interferenceBytesPerCore() + spinTableBytes();
    }

    /** Chip-level total for @p ncores cores (the paper's ~18 KB @ 16). */
    std::uint64_t
    totalBytesChip(int ncores) const
    {
        return totalBytesPerCore() * static_cast<std::uint64_t>(ncores);
    }
};

/** Compute the per-core hardware cost for @p config. */
HwCostBreakdown computeHwCost(const HwCostConfig &config = HwCostConfig());

} // namespace sst

#endif // SST_ACCOUNTING_HW_COST_HH
