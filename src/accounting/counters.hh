/**
 * @file
 * Raw per-thread event counters. The `hardware-visible` group contains
 * exactly what the paper's cycle accounting architecture can measure on
 * real silicon (Section 4): sampled ATD classifications, stall cycles,
 * wait-cycle attributions, detector outputs and OS yield bookkeeping.
 * The `ground truth` group contains simulator-internal measurements that
 * real hardware could NOT observe; they are used only for validation and
 * tests, never for building the estimated speedup stack.
 */

#ifndef SST_ACCOUNTING_COUNTERS_HH
#define SST_ACCOUNTING_COUNTERS_HH

#include <cstdint>

#include "util/types.hh"

namespace sst {

/** Raw accounting state of one thread (== one core when not
 *  oversubscribed). */
struct ThreadCounters
{
    // ---- hardware-visible raw events -----------------------------------
    std::uint64_t instructions = 0;     ///< committed program instructions
    std::uint64_t spinInstructions = 0; ///< instructions in spin loops

    Cycles llcLoadMissStall = 0;   ///< cycles stalled on LLC load misses
    std::uint64_t llcLoadMisses = 0;

    Cycles negLlcSampledStall = 0; ///< stalls on *sampled* inter-thread
                                   ///< load misses (to be extrapolated)
    std::uint64_t interThreadMissesSampled = 0;
    std::uint64_t interThreadHitsSampled = 0;

    std::uint64_t llcAccesses = 0;       ///< extrapolation numerator
    std::uint64_t atdSampledAccesses = 0; ///< extrapolation denominator

    /**
     * Memory interference attributions, gathered on *sampled* ATD sets
     * for misses NOT classified inter-thread, to be extrapolated by the
     * measured sampling factor. Partitioning by the sampled-set
     * classification keeps the negative-LLC and memory components
     * disjoint: an inter-thread miss would not exist with a private LLC,
     * so its whole penalty (including queueing) is cache interference;
     * only misses that would also occur privately contribute their
     * waiting-for-other-cores cycles to memory interference.
     */
    Cycles busWaitOther = 0;       ///< bus conflicts (sampled intra)
    Cycles bankWaitOther = 0;      ///< bank conflicts (sampled intra)
    Cycles pageConflictOther = 0;  ///< page conflicts (sampled intra)

    Cycles spinDetectedTian = 0;   ///< Tian et al. detector output
    Cycles spinDetectedLi = 0;     ///< Li et al. detector output (ablation)

    Cycles yieldCycles = 0;        ///< OS: time scheduled out on sync waits

    std::uint64_t coherencyMisses = 0; ///< L1 invalid-tag re-references

    // ---- simulator ground truth (validation only) -------------------------
    Cycles gtLockSpin = 0;         ///< exact cycles spent spinning on locks
    Cycles gtBarrierSpin = 0;      ///< exact cycles spinning on barriers
    Cycles gtLockYield = 0;        ///< exact descheduled time on locks
    Cycles gtBarrierYield = 0;     ///< exact descheduled time on barriers
    Cycles gtPreemptYield = 0;     ///< exact ready-queue wait after a
                                   ///< time-slice preemption
    Cycles gtMemWaitOther = 0;     ///< exact memory wait behind other cores
    Cycles finishTime = 0;         ///< cycle this thread completed

    Cycles gtSpin() const { return gtLockSpin + gtBarrierSpin; }
    Cycles
    gtYield() const
    {
        return gtLockYield + gtBarrierYield + gtPreemptYield;
    }
};

} // namespace sst

#endif // SST_ACCOUNTING_COUNTERS_HH
