/**
 * @file
 * WDL — the workload description language. A `.wdl` file describes a
 * parallel scenario as text: named locks and barriers, thread groups,
 * loop/phase structure, and compute/memory/lock/barrier/yield statements
 * with constant or distribution arguments (including a `zipf(theta)`
 * key->lock generator and `rw_ratio`/`txn_ops` sugar for DBx1000-style
 * transactional contention). The compiler lowers a validated program to
 * deterministic per-thread OpSource streams, so any scenario a user can
 * type runs through the same simulator/accounting/trace/cache stack as
 * the registered C++ profiles: scenario = text file + `sst run --spec`.
 *
 * Determinism contract: op streams are pure functions of (compiled IR,
 * group seed, thread placement). Fingerprints hash the *compiled IR*
 * (canonicalText), never the file path, so identical content at
 * different paths dedups to one cache entry and `sst serve` reschedules
 * WDL jobs safely.
 */

#ifndef SST_WDL_WDL_HH
#define SST_WDL_WDL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hh"
#include "workload/op_source.hh"
#include "workload/workload_spec.hh"

namespace sst {
namespace wdl {

/** Language/IR version, reported by `sst --version` and fingerprinted
 *  with every WDL job (bump on any semantics-visible change). */
inline constexpr int kWdlVersion = 1;

/** Largest workload file the loader accepts. Keeps the canonical IR
 *  comfortably inside the result cache's canonical-text bound. */
inline constexpr std::size_t kMaxFileBytes = 256 * 1024;

/** Most lock ids one program may declare (arrays count their size);
 *  bounds warmup sweeps and the sync-id namespace. */
inline constexpr std::uint64_t kMaxLockIds = 1024;

/** Largest private/shared region a group may request. */
inline constexpr std::uint64_t kMaxRegionBytes = 64ull * 1024 * 1024;

/** A cycle/count argument: a constant or a uniform integer range. */
struct Dist
{
    enum class Kind : std::uint8_t { kConst, kUniform };
    Kind kind = Kind::kConst;
    std::uint64_t a = 0; ///< constant value / uniform lo
    std::uint64_t b = 0; ///< uniform hi (inclusive)

    bool isConst() const { return kind == Kind::kConst; }
    std::uint64_t draw(Rng &rng) const;
};

/** How a `lock name[...]` statement selects a key in a lock array. */
struct LockSel
{
    enum class Kind : std::uint8_t { kFixed, kUniform, kZipf };
    Kind kind = Kind::kFixed;
    std::uint64_t index = 0; ///< kFixed: 0-based key
    double theta = 0.0;      ///< kZipf: skew in [0, 1)
};

/** Target region of a `memory` statement. */
enum class Region : std::uint8_t {
    kPrivate, ///< the thread's private working set
    kShared,  ///< the group's shared region
    kData,    ///< the innermost held lock's protected data (in-lock only)
};

/** One statement of a group body (a tree: lock/phase/loop have bodies). */
struct Stmt
{
    enum class Kind : std::uint8_t {
        kCompute, ///< `compute <dist>` ALU instructions
        kMemory,  ///< `memory <dist> [shared|data] [store=F]` references
        kLock,    ///< `lock name[sel] { body }` critical section
        kBarrier, ///< `barrier name` arrival at a declared barrier
        kYield,   ///< `yield` group rendezvous (implicit barrier)
        kPhase,   ///< `phase { body }` body then implicit barrier
        kLoop,    ///< `loop <dist> [each] { body }` repetition
        kTxn,     ///< `txn txn_ops=.. rw_ratio=.. locks=.. zipf(t) ..`
    };

    Kind kind = Kind::kCompute;
    int line = 0; ///< 1-based source line, for diagnostics

    Dist count;                      ///< compute/memory/loop/txn_ops amount
    Region region = Region::kPrivate; ///< memory target
    double storeFrac = 0.0;          ///< memory: store probability
    int lock = -1;                   ///< lock/txn: index into Program::locks
    LockSel sel;                     ///< lock: key selector
    int barrier = -1;                ///< barrier/yield/phase: barrier id
    bool each = false;               ///< loop: literal per-thread trips
    double rwRatio = 1.0;            ///< txn: fraction of read transactions
    double theta = 0.0;              ///< txn: zipf skew over the lock array
    Dist csCompute;                  ///< txn: compute per operation
    Dist csMemory;                   ///< txn: data references per operation
    std::vector<Stmt> body;          ///< lock/phase/loop children
};

/** `lock name` (size 1) or `lock name[N]`: N consecutive lock ids. */
struct LockDecl
{
    std::string name;
    std::uint64_t size = 1;
    int firstId = 0; ///< dense, declaration order
};

/** `barrier name`: id = declaration index. */
struct BarrierDecl
{
    std::string name;
};

/** One thread group and its body. */
struct GroupIR
{
    std::string name;
    int nthreads = 1;
    std::uint64_t seed = 0;               ///< resolved (file or program seed)
    std::uint64_t privateBytes = 64 * 1024;
    std::uint64_t sharedBytes = 0;
    std::vector<Stmt> body;
};

/** A parsed, validated workload program. */
struct Program
{
    std::string name;                           ///< `workload "..."`, may be empty
    WorkloadRole role = WorkloadRole::kReplicated;
    std::uint64_t seed = 1;                     ///< default group seed
    std::vector<LockDecl> locks;
    std::vector<BarrierDecl> barriers;
    /** Declared barriers + the widest implicit (yield/phase) sequence;
     *  the end-of-run rendezvous uses id == barrierSlots. */
    int barrierSlots = 0;
    std::vector<GroupIR> groups;

    /**
     * Deterministic serialization of the compiled IR. Re-parsing the
     * canonical text yields a program with identical canonical text
     * (fixed point); fingerprints and trace hashes are built from it.
     */
    std::string canonicalText() const;

    /** FNV-1a over canonicalText(). */
    std::uint64_t irHash() const;
};

/**
 * Parse and validate @p text. @p filename is used in diagnostics only.
 * Throws std::invalid_argument with single-line messages of the form
 * "file:line: message (near 'token')".
 */
Program parseProgram(const std::string &text, const std::string &filename);

/** Read @p path (<= kMaxFileBytes) and parse it. */
Program loadProgram(const std::string &path);

/**
 * Wrap a parsed program as a WorkloadSpec: one WorkloadGroup per WDL
 * group with a placeholder profile carrying the group's name (labels),
 * suite "wdl" and the group seed (so JobSpec seed-offset mixing works
 * unchanged), plus the compiled program itself (WorkloadSpec::wdlProgram).
 */
WorkloadSpec toWorkloadSpec(std::shared_ptr<const Program> program,
                            std::string source_path);

/** loadProgram + toWorkloadSpec in one step. */
WorkloadSpec loadWorkloadFile(const std::string &path);

/**
 * Op-source factory for a WDL-backed spec's parallel run (spec.wdlProgram
 * must be set). Per-thread streams are deterministic in the group seeds
 * and placement; with a single 1-thread group the stream is the
 * sequential program (no sync ops), matching ThreadProgram semantics.
 */
OpSourceFactory workloadSources(const WorkloadSpec &spec);

/**
 * 1-thread sequential baseline factory for @p group: full (undivided)
 * loop counts, critical-section bodies kept, lock/barrier/yield ops
 * elided — the serial program the paper's Ts refers to.
 */
OpSourceFactory groupBaselineSources(const WorkloadSpec &spec, int group);

} // namespace wdl
} // namespace sst

#endif // SST_WDL_WDL_HH
