/**
 * @file
 * WDL tokenizer. The whole file is tokenized up front; the parser walks
 * the token vector with one token of lookahead. Numbers accept K/M/G
 * size suffixes ("256K" -> 262144); floats carry a '.'; `#` comments run
 * to end of line. Lexical errors throw std::invalid_argument with the
 * shared "file:line: message (near 'token')" diagnostic shape.
 */

#ifndef SST_WDL_LEXER_HH
#define SST_WDL_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sst {
namespace wdl {

enum class TokKind : std::uint8_t {
    kIdent,
    kString,   ///< double-quoted, no escapes
    kInt,      ///< with optional K/M/G suffix, already applied
    kFloat,
    kLBrace,
    kRBrace,
    kLBracket,
    kRBracket,
    kLParen,
    kRParen,
    kEquals,
    kComma,
    kEof,
};

struct Token
{
    TokKind kind = TokKind::kEof;
    int line = 0;             ///< 1-based
    std::string text;         ///< raw spelling ("end of file" for kEof)
    std::uint64_t intValue = 0;
    double floatValue = 0.0;
};

/** Format the shared single-line diagnostic: "file:line: msg (near 'x')". */
std::string diag(const std::string &filename, int line, const std::string &msg,
                 const std::string &near);

/** Tokenize @p text; the result always ends with a kEof token. */
std::vector<Token> lex(const std::string &text, const std::string &filename);

} // namespace wdl
} // namespace sst

#endif // SST_WDL_LEXER_HH
