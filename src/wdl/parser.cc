/**
 * @file
 * WDL parser and validator: recursive descent over the token stream,
 * name resolution for locks/barriers, structural validation (sync
 * statements never deadlock inside critical sections or diverge across
 * a group's threads), implicit barrier-id assignment for yield/phase,
 * pipeline arrival-alignment checks, and the canonical IR serialization
 * that fingerprints and trace hashes are built from.
 */

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "wdl/lexer.hh"
#include "wdl/wdl.hh"

namespace sst {
namespace wdl {

namespace {

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

class Parser
{
  public:
    Parser(const std::string &text, std::string filename)
        : file_(std::move(filename)), toks_(lex(text, file_))
    {
    }

    Program
    parse()
    {
        while (peek().kind != TokKind::kEof)
            parseTop();
        finalize();
        return std::move(prog_);
    }

  private:
    // ---- token plumbing -------------------------------------------------

    const Token &
    peek(std::size_t ahead = 0) const
    {
        const std::size_t j = pos_ + ahead;
        return toks_[j < toks_.size() ? j : toks_.size() - 1];
    }

    Token
    next()
    {
        Token t = toks_[pos_];
        if (pos_ + 1 < toks_.size())
            ++pos_;
        return t;
    }

    [[noreturn]] void
    fail(const Token &t, const std::string &msg) const
    {
        throw std::invalid_argument(diag(file_, t.line, msg, t.text));
    }

    Token
    expect(TokKind kind, const char *what)
    {
        if (peek().kind != kind)
            fail(peek(), std::string("expected ") + what);
        return next();
    }

    bool
    peekIdent(const char *word, std::size_t ahead = 0) const
    {
        return peek(ahead).kind == TokKind::kIdent && peek(ahead).text == word;
    }

    // ---- values ---------------------------------------------------------

    std::uint64_t
    parseInt(const char *what)
    {
        const Token t = expect(TokKind::kInt, what);
        return t.intValue;
    }

    double
    parseFloat(const char *what)
    {
        if (peek().kind == TokKind::kInt)
            return static_cast<double>(next().intValue);
        if (peek().kind == TokKind::kFloat)
            return next().floatValue;
        fail(peek(), std::string("expected ") + what);
    }

    double
    parseFraction(const char *what)
    {
        const Token at = peek();
        const double v = parseFloat(what);
        if (v < 0.0 || v > 1.0)
            fail(at, std::string(what) + " must be in [0, 1]");
        return v;
    }

    Dist
    parseDist(const char *what)
    {
        Dist d;
        if (peek().kind == TokKind::kInt) {
            d.a = next().intValue;
            return d;
        }
        if (peekIdent("uniform")) {
            const Token at = next();
            expect(TokKind::kLParen, "'(' after uniform");
            d.kind = Dist::Kind::kUniform;
            d.a = parseInt("uniform lower bound");
            expect(TokKind::kComma, "',' between uniform bounds");
            d.b = parseInt("uniform upper bound");
            expect(TokKind::kRParen, "')' after uniform bounds");
            if (d.b < d.a)
                fail(at, "uniform(lo, hi) needs lo <= hi");
            return d;
        }
        fail(peek(), std::string("expected ") + what +
                         " (a count or uniform(lo, hi))");
    }

    double
    parseZipfTheta()
    {
        // caller consumed the `zipf` ident
        expect(TokKind::kLParen, "'(' after zipf");
        const Token at = peek();
        const double theta = parseFloat("zipf theta");
        if (theta < 0.0 || theta >= 1.0)
            fail(at, "zipf theta must be in [0, 1)");
        expect(TokKind::kRParen, "')' after zipf theta");
        return theta;
    }

    // ---- top level ------------------------------------------------------

    void
    parseTop()
    {
        const Token t = expect(TokKind::kIdent, "a top-level declaration");
        if (t.text == "wdl") {
            const Token v = peek();
            if (parseInt("wdl version") != kWdlVersion)
                fail(v, "unsupported wdl version (this build speaks " +
                            std::to_string(kWdlVersion) + ")");
        } else if (t.text == "workload") {
            prog_.name = expect(TokKind::kString, "a quoted workload name").text;
        } else if (t.text == "role") {
            const Token r = expect(TokKind::kIdent, "mix, pipeline or replicated");
            if (r.text == "mix")
                prog_.role = WorkloadRole::kMix;
            else if (r.text == "pipeline")
                prog_.role = WorkloadRole::kPipeline;
            else if (r.text == "replicated")
                prog_.role = WorkloadRole::kReplicated;
            else
                fail(r, "unknown role; expected mix, pipeline or replicated");
            roleSet_ = true;
        } else if (t.text == "seed") {
            prog_.seed = parseInt("a seed value");
        } else if (t.text == "lock") {
            parseLockDecl();
        } else if (t.text == "barrier") {
            const Token name = expect(TokKind::kIdent, "a barrier name");
            checkFreshName(name);
            prog_.barriers.push_back(BarrierDecl{name.text});
        } else if (t.text == "group") {
            parseGroup();
        } else {
            fail(t, "unknown top-level declaration; expected workload, role, "
                    "seed, lock, barrier or group");
        }
    }

    void
    parseLockDecl()
    {
        const Token name = expect(TokKind::kIdent, "a lock name");
        checkFreshName(name);
        LockDecl decl;
        decl.name = name.text;
        if (peek().kind == TokKind::kLBracket) {
            next();
            const Token sz = peek();
            decl.size = parseInt("a lock array size");
            expect(TokKind::kRBracket, "']' after lock array size");
            if (decl.size == 0)
                fail(sz, "lock array size must be positive");
        }
        decl.firstId = static_cast<int>(nextLockId_);
        nextLockId_ += decl.size;
        if (nextLockId_ > kMaxLockIds)
            fail(name, "too many lock ids (max " +
                           std::to_string(kMaxLockIds) + " per program)");
        prog_.locks.push_back(std::move(decl));
    }

    void
    checkFreshName(const Token &name)
    {
        if (!names_.insert(name.text).second)
            fail(name, "duplicate declaration of '" + name.text + "'");
    }

    void
    parseGroup()
    {
        const Token name = expect(TokKind::kIdent, "a group name");
        checkFreshName(name);
        GroupIR g;
        g.name = name.text;
        g.seed = prog_.seed;
        while (peek().kind == TokKind::kIdent &&
               peek(1).kind == TokKind::kEquals) {
            const Token key = next();
            next(); // '='
            if (key.text == "threads") {
                const Token at = peek();
                const std::uint64_t v = parseInt("a thread count");
                if (v == 0 || v > 1024)
                    fail(at, "group thread count must be in [1, 1024]");
                g.nthreads = static_cast<int>(v);
            } else if (key.text == "seed") {
                g.seed = parseInt("a group seed");
            } else if (key.text == "private") {
                const Token at = peek();
                g.privateBytes = parseInt("a private region size");
                if (g.privateBytes > kMaxRegionBytes)
                    fail(at, "private region too large (max 64M)");
            } else if (key.text == "shared") {
                const Token at = peek();
                g.sharedBytes = parseInt("a shared region size");
                if (g.sharedBytes > kMaxRegionBytes)
                    fail(at, "shared region too large (max 64M)");
            } else {
                fail(key, "unknown group attribute; expected threads, seed, "
                          "private or shared");
            }
        }
        const Token open = expect(TokKind::kLBrace, "'{' opening the group body");
        g.body = parseBody(open);
        groupLines_.push_back(name.line);
        prog_.groups.push_back(std::move(g));
    }

    // ---- statements -----------------------------------------------------

    std::vector<Stmt>
    parseBody(const Token &open)
    {
        std::vector<Stmt> body;
        while (peek().kind != TokKind::kRBrace) {
            if (peek().kind == TokKind::kEof)
                fail(peek(), "unexpected end of file (block opened at line " +
                                 std::to_string(open.line) + " is not closed)");
            body.push_back(parseStmt());
        }
        next(); // '}'
        return body;
    }

    Stmt
    parseStmt()
    {
        const Token t = expect(TokKind::kIdent, "a statement");
        Stmt s;
        s.line = t.line;
        if (t.text == "compute") {
            s.kind = Stmt::Kind::kCompute;
            s.count = parseDist("a compute amount");
        } else if (t.text == "memory") {
            parseMemory(s);
        } else if (t.text == "lock") {
            parseLockStmt(s);
        } else if (t.text == "barrier") {
            s.kind = Stmt::Kind::kBarrier;
            const Token name = expect(TokKind::kIdent, "a barrier name");
            s.barrier = lookupBarrier(name);
        } else if (t.text == "yield") {
            s.kind = Stmt::Kind::kYield;
        } else if (t.text == "phase") {
            s.kind = Stmt::Kind::kPhase;
            const Token open = expect(TokKind::kLBrace, "'{' opening the phase body");
            s.body = parseBody(open);
        } else if (t.text == "loop") {
            s.kind = Stmt::Kind::kLoop;
            s.count = parseDist("a trip count");
            if (peekIdent("each")) {
                next();
                s.each = true;
            }
            const Token open = expect(TokKind::kLBrace, "'{' opening the loop body");
            s.body = parseBody(open);
        } else if (t.text == "txn") {
            parseTxn(s, t);
        } else {
            fail(t, "unknown statement; expected compute, memory, lock, "
                    "barrier, yield, phase, loop or txn");
        }
        return s;
    }

    void
    parseMemory(Stmt &s)
    {
        s.kind = Stmt::Kind::kMemory;
        s.count = parseDist("a reference count");
        while (peek().kind == TokKind::kIdent) {
            if (peekIdent("shared")) {
                next();
                s.region = Region::kShared;
            } else if (peekIdent("data")) {
                next();
                s.region = Region::kData;
            } else if (peekIdent("store") &&
                       peek(1).kind == TokKind::kEquals) {
                next();
                next();
                s.storeFrac = parseFraction("store fraction");
            } else {
                break; // next statement
            }
        }
    }

    void
    parseLockStmt(Stmt &s)
    {
        s.kind = Stmt::Kind::kLock;
        const Token name = expect(TokKind::kIdent, "a lock name");
        s.lock = lookupLock(name);
        const LockDecl &decl = prog_.locks[static_cast<std::size_t>(s.lock)];
        if (peek().kind == TokKind::kLBracket) {
            next();
            if (decl.size == 1)
                fail(name, "lock '" + decl.name +
                               "' is scalar; declare it as " + decl.name +
                               "[N] to use a key selector");
            if (peek().kind == TokKind::kInt) {
                const Token idx = next();
                if (idx.intValue >= decl.size)
                    fail(idx, "lock index out of range (array size " +
                                  std::to_string(decl.size) + ")");
                s.sel.kind = LockSel::Kind::kFixed;
                s.sel.index = idx.intValue;
            } else if (peekIdent("uniform")) {
                next();
                s.sel.kind = LockSel::Kind::kUniform;
            } else if (peekIdent("zipf")) {
                next();
                s.sel.kind = LockSel::Kind::kZipf;
                s.sel.theta = parseZipfTheta();
            } else {
                fail(peek(), "expected a lock key selector: an index, "
                             "uniform, or zipf(theta)");
            }
            expect(TokKind::kRBracket, "']' after the lock key selector");
        } else if (decl.size != 1) {
            fail(name, "lock '" + decl.name + "' is an array of " +
                           std::to_string(decl.size) + "; select a key with " +
                           decl.name + "[i], " + decl.name + "[uniform] or " +
                           decl.name + "[zipf(theta)]");
        }
        const Token open = expect(TokKind::kLBrace,
                                  "'{' opening the critical section");
        s.body = parseBody(open);
    }

    void
    parseTxn(Stmt &s, const Token &kw)
    {
        s.kind = Stmt::Kind::kTxn;
        s.count = Dist{Dist::Kind::kConst, 16, 0};
        s.rwRatio = 0.5;
        s.theta = 0.0;
        s.csCompute = Dist{Dist::Kind::kConst, 20, 0};
        s.csMemory = Dist{Dist::Kind::kConst, 2, 0};
        bool haveLocks = false;
        for (;;) {
            if (peekIdent("zipf") && peek(1).kind == TokKind::kLParen) {
                next();
                s.theta = parseZipfTheta();
                continue;
            }
            if (peek().kind != TokKind::kIdent ||
                peek(1).kind != TokKind::kEquals)
                break;
            const Token key = peek();
            if (key.text == "locks") {
                next();
                next();
                const Token name = expect(TokKind::kIdent, "a lock name");
                s.lock = lookupLock(name);
                haveLocks = true;
            } else if (key.text == "txn_ops") {
                next();
                next();
                s.count = parseDist("a txn_ops count");
            } else if (key.text == "rw_ratio") {
                next();
                next();
                s.rwRatio = parseFraction("rw_ratio");
            } else if (key.text == "compute") {
                next();
                next();
                s.csCompute = parseDist("a per-op compute amount");
            } else if (key.text == "memory") {
                next();
                next();
                s.csMemory = parseDist("a per-op reference count");
            } else {
                break; // belongs to the next statement
            }
        }
        if (!haveLocks)
            fail(kw, "txn needs locks=NAME naming the lock array it keys into");
    }

    int
    lookupLock(const Token &name)
    {
        for (std::size_t i = 0; i < prog_.locks.size(); ++i)
            if (prog_.locks[i].name == name.text)
                return static_cast<int>(i);
        std::string known;
        for (const LockDecl &l : prog_.locks)
            known += (known.empty() ? "" : ", ") + l.name;
        fail(name, "undefined lock '" + name.text + "'" +
                       (known.empty() ? " (no locks declared)"
                                      : " (declared locks: " + known + ")"));
    }

    int
    lookupBarrier(const Token &name)
    {
        for (std::size_t i = 0; i < prog_.barriers.size(); ++i)
            if (prog_.barriers[i].name == name.text)
                return static_cast<int>(i);
        std::string known;
        for (const BarrierDecl &b : prog_.barriers)
            known += (known.empty() ? "" : ", ") + b.name;
        fail(name, "undefined barrier '" + name.text + "'" +
                       (known.empty() ? " (no barriers declared)"
                                      : " (declared barriers: " + known + ")"));
    }

    // ---- validation -----------------------------------------------------

    void
    finalize()
    {
        if (prog_.groups.empty())
            fail(peek(), "a workload needs at least one group");
        if (prog_.groups.size() > static_cast<std::size_t>(kMaxWorkloadGroups))
            fail(peek(), "too many groups (max " +
                             std::to_string(kMaxWorkloadGroups) + ")");
        if (prog_.groups.size() == 1) {
            if (roleSet_ && prog_.role == WorkloadRole::kPipeline)
                fail(peek(), "role pipeline needs at least 2 groups");
            prog_.role = WorkloadRole::kReplicated;
        } else {
            if (roleSet_ && prog_.role == WorkloadRole::kReplicated)
                fail(peek(), "role replicated allows exactly one group");
            if (!roleSet_)
                prog_.role = WorkloadRole::kMix;
        }

        int maxImplicit = 0;
        for (std::size_t gi = 0; gi < prog_.groups.size(); ++gi) {
            GroupIR &g = prog_.groups[gi];
            int implicit = 0;
            checkBody(g.body, g, /*inLock=*/-1, /*barrierSafe=*/true,
                      implicit);
            if (implicit > maxImplicit)
                maxImplicit = implicit;
        }
        prog_.barrierSlots =
            static_cast<int>(prog_.barriers.size()) + maxImplicit;

        if (prog_.role == WorkloadRole::kPipeline) {
            std::string first;
            for (std::size_t gi = 0; gi < prog_.groups.size(); ++gi) {
                std::string sig;
                arrivalSignature(prog_.groups[gi].body, prog_.groups[gi], sig);
                if (gi == 0) {
                    first = sig;
                } else if (sig != first) {
                    throw std::invalid_argument(diag(
                        file_, groupLines_[gi],
                        "pipeline groups must arrive at the same barriers "
                        "in the same per-thread order; group '" +
                            prog_.groups[gi].name + "' diverges from '" +
                            prog_.groups[0].name + "'",
                        prog_.groups[gi].name));
                }
            }
        }
    }

    /**
     * Recursive structural checks. @p inLock is the statement line of the
     * enclosing critical section (-1 outside); @p barrierSafe is false
     * under any loop whose per-thread trip count may differ across the
     * group's threads. Assigns implicit barrier ids in pre-order.
     */
    void
    checkBody(std::vector<Stmt> &body, const GroupIR &g, int inLock,
              bool barrierSafe, int &implicit)
    {
        for (Stmt &s : body) {
            switch (s.kind) {
            case Stmt::Kind::kCompute:
                break;
            case Stmt::Kind::kMemory:
                if (s.region == Region::kShared && g.sharedBytes == 0)
                    failAt(s, "group '" + g.name +
                                  "' has no shared region (set shared=SIZE "
                                  "on the group)");
                if (s.region == Region::kData && inLock < 0)
                    failAt(s, "memory ... data is only meaningful inside a "
                              "critical section");
                break;
            case Stmt::Kind::kLock:
            case Stmt::Kind::kTxn:
                if (inLock >= 0)
                    failAt(s, "nested critical sections are not supported "
                              "(enclosing lock at line " +
                                  std::to_string(inLock) + ")");
                if (s.kind == Stmt::Kind::kLock)
                    checkBody(s.body, g, s.line, barrierSafe, implicit);
                break;
            case Stmt::Kind::kBarrier:
            case Stmt::Kind::kYield:
            case Stmt::Kind::kPhase:
                if (inLock >= 0)
                    failAt(s, "synchronizing inside a critical section would "
                              "deadlock (enclosing lock at line " +
                                  std::to_string(inLock) + ")");
                if (!barrierSafe)
                    failAt(s, "synchronization inside a loop whose per-thread "
                              "trip count can differ across threads; use a "
                              "constant count divisible by the group's " +
                                  std::to_string(g.nthreads) +
                                  " threads, or 'each'");
                if (s.kind == Stmt::Kind::kYield) {
                    s.barrier =
                        static_cast<int>(prog_.barriers.size()) + implicit++;
                } else if (s.kind == Stmt::Kind::kPhase) {
                    s.barrier =
                        static_cast<int>(prog_.barriers.size()) + implicit++;
                    checkBody(s.body, g, inLock, barrierSafe, implicit);
                }
                break;
            case Stmt::Kind::kLoop: {
                const bool childSafe =
                    barrierSafe && s.count.isConst() &&
                    (s.each ||
                     s.count.a % static_cast<std::uint64_t>(g.nthreads) == 0);
                checkBody(s.body, g, inLock, childSafe, implicit);
                break;
            }
            }
        }
    }

    [[noreturn]] void
    failAt(const Stmt &s, const std::string &msg) const
    {
        throw std::invalid_argument(diag(file_, s.line, msg, ""));
    }

    /**
     * Serialize the per-thread barrier-arrival structure of @p body
     * (loops with no barriers underneath are skipped); pipeline groups
     * must agree on it or the run would deadlock.
     */
    void
    arrivalSignature(const std::vector<Stmt> &body, const GroupIR &g,
                     std::string &out) const
    {
        for (const Stmt &s : body) {
            switch (s.kind) {
            case Stmt::Kind::kBarrier:
            case Stmt::Kind::kYield:
                out += "B" + std::to_string(s.barrier) + ";";
                break;
            case Stmt::Kind::kPhase:
                arrivalSignature(s.body, g, out);
                out += "B" + std::to_string(s.barrier) + ";";
                break;
            case Stmt::Kind::kLoop: {
                std::string inner;
                arrivalSignature(s.body, g, inner);
                if (inner.empty())
                    break;
                // validated: constant count, divisible unless `each`
                const std::uint64_t trips =
                    s.each ? s.count.a
                           : s.count.a / static_cast<std::uint64_t>(g.nthreads);
                out += "L" + std::to_string(trips) + "(" + inner + ")";
                break;
            }
            default:
                break;
            }
        }
    }

    std::string file_;
    std::vector<Token> toks_;
    std::size_t pos_ = 0;
    Program prog_;
    std::set<std::string> names_;
    std::vector<int> groupLines_;
    std::uint64_t nextLockId_ = 0;
    bool roleSet_ = false;
};

void
serializeDist(std::string &out, const Dist &d)
{
    if (d.isConst()) {
        out += std::to_string(d.a);
    } else {
        out += "uniform(" + std::to_string(d.a) + "," + std::to_string(d.b) +
               ")";
    }
}

void
serializeBody(std::string &out, const Program &prog,
              const std::vector<Stmt> &body, int depth)
{
    const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    for (const Stmt &s : body) {
        out += pad;
        switch (s.kind) {
        case Stmt::Kind::kCompute:
            out += "compute ";
            serializeDist(out, s.count);
            break;
        case Stmt::Kind::kMemory:
            out += "memory ";
            serializeDist(out, s.count);
            if (s.region == Region::kShared)
                out += " shared";
            else if (s.region == Region::kData)
                out += " data";
            out += " store=" + fmtDouble(s.storeFrac);
            break;
        case Stmt::Kind::kLock: {
            const LockDecl &decl = prog.locks[static_cast<std::size_t>(s.lock)];
            out += "lock " + decl.name;
            if (decl.size != 1) {
                out += "[";
                if (s.sel.kind == LockSel::Kind::kFixed)
                    out += std::to_string(s.sel.index);
                else if (s.sel.kind == LockSel::Kind::kUniform)
                    out += "uniform";
                else
                    out += "zipf(" + fmtDouble(s.sel.theta) + ")";
                out += "]";
            }
            out += " {\n";
            serializeBody(out, prog, s.body, depth + 1);
            out += pad + "}";
            break;
        }
        case Stmt::Kind::kBarrier:
            out += "barrier " +
                   prog.barriers[static_cast<std::size_t>(s.barrier)].name;
            break;
        case Stmt::Kind::kYield:
            out += "yield";
            break;
        case Stmt::Kind::kPhase:
            out += "phase {\n";
            serializeBody(out, prog, s.body, depth + 1);
            out += pad + "}";
            break;
        case Stmt::Kind::kLoop:
            out += "loop ";
            serializeDist(out, s.count);
            if (s.each)
                out += " each";
            out += " {\n";
            serializeBody(out, prog, s.body, depth + 1);
            out += pad + "}";
            break;
        case Stmt::Kind::kTxn:
            out += "txn txn_ops=";
            serializeDist(out, s.count);
            out += " rw_ratio=" + fmtDouble(s.rwRatio);
            out += " locks=" + prog.locks[static_cast<std::size_t>(s.lock)].name;
            out += " zipf(" + fmtDouble(s.theta) + ")";
            out += " compute=";
            serializeDist(out, s.csCompute);
            out += " memory=";
            serializeDist(out, s.csMemory);
            break;
        }
        out += "\n";
    }
}

} // namespace

std::uint64_t
Dist::draw(Rng &rng) const
{
    if (isConst())
        return a;
    return a + rng.below(b - a + 1);
}

std::string
Program::canonicalText() const
{
    std::string out = "wdl " + std::to_string(kWdlVersion) + "\n";
    if (!name.empty())
        out += "workload \"" + name + "\"\n";
    out += std::string("role ") + workloadRoleName(role) + "\n";
    out += "seed " + std::to_string(seed) + "\n";
    for (const LockDecl &l : locks) {
        out += "lock " + l.name;
        if (l.size != 1)
            out += "[" + std::to_string(l.size) + "]";
        out += "\n";
    }
    for (const BarrierDecl &b : barriers)
        out += "barrier " + b.name + "\n";
    for (const GroupIR &g : groups) {
        out += "group " + g.name + " threads=" + std::to_string(g.nthreads) +
               " seed=" + std::to_string(g.seed) +
               " private=" + std::to_string(g.privateBytes) +
               " shared=" + std::to_string(g.sharedBytes) + " {\n";
        serializeBody(out, *this, g.body, 1);
        out += "}\n";
    }
    return out;
}

std::uint64_t
Program::irHash() const
{
    return fnv1a(canonicalText());
}

Program
parseProgram(const std::string &text, const std::string &filename)
{
    return Parser(text, filename).parse();
}

Program
loadProgram(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::invalid_argument(path + ": cannot open workload file");
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    if (text.size() > kMaxFileBytes)
        throw std::invalid_argument(
            path + ": workload file too large (max " +
            std::to_string(kMaxFileBytes) + " bytes)");
    return parseProgram(text, path);
}

} // namespace wdl
} // namespace sst
