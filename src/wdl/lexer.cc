#include "wdl/lexer.hh"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace sst {
namespace wdl {

std::string
diag(const std::string &filename, int line, const std::string &msg,
     const std::string &near)
{
    std::string out = filename;
    out += ':';
    out += std::to_string(line);
    out += ": ";
    out += msg;
    if (!near.empty()) {
        out += " (near '";
        out += near;
        out += "')";
    }
    return out;
}

namespace {

[[noreturn]] void
fail(const std::string &filename, int line, const std::string &msg,
     const std::string &near)
{
    throw std::invalid_argument(diag(filename, line, msg, near));
}

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

} // namespace

std::vector<Token>
lex(const std::string &text, const std::string &filename)
{
    std::vector<Token> toks;
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = text.size();

    auto simple = [&](TokKind kind, char c) {
        Token t;
        t.kind = kind;
        t.line = line;
        t.text.assign(1, c);
        toks.push_back(std::move(t));
    };

    while (i < n) {
        const char c = text[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r') {
            ++i;
            continue;
        }
        if (c == '#') {
            while (i < n && text[i] != '\n')
                ++i;
            continue;
        }
        switch (c) {
        case '{': simple(TokKind::kLBrace, c); ++i; continue;
        case '}': simple(TokKind::kRBrace, c); ++i; continue;
        case '[': simple(TokKind::kLBracket, c); ++i; continue;
        case ']': simple(TokKind::kRBracket, c); ++i; continue;
        case '(': simple(TokKind::kLParen, c); ++i; continue;
        case ')': simple(TokKind::kRParen, c); ++i; continue;
        case '=': simple(TokKind::kEquals, c); ++i; continue;
        case ',': simple(TokKind::kComma, c); ++i; continue;
        default: break;
        }
        if (c == '"') {
            const std::size_t start = ++i;
            while (i < n && text[i] != '"' && text[i] != '\n')
                ++i;
            if (i >= n || text[i] != '"')
                fail(filename, line, "unterminated string literal",
                     text.substr(start - 1, std::min<std::size_t>(
                                                i - start + 1, 24)));
            Token t;
            t.kind = TokKind::kString;
            t.line = line;
            t.text = text.substr(start, i - start);
            toks.push_back(std::move(t));
            ++i;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            const std::size_t start = i;
            while (i < n && std::isdigit(static_cast<unsigned char>(text[i])))
                ++i;
            bool isFloat = false;
            if (i < n && text[i] == '.') {
                isFloat = true;
                ++i;
                if (i >= n || !std::isdigit(static_cast<unsigned char>(text[i])))
                    fail(filename, line, "malformed number",
                         text.substr(start, i - start));
                while (i < n &&
                       std::isdigit(static_cast<unsigned char>(text[i])))
                    ++i;
            }
            std::uint64_t scale = 1;
            if (!isFloat && i < n) {
                const char s = text[i];
                if (s == 'K' || s == 'k')
                    scale = 1024;
                else if (s == 'M' || s == 'm')
                    scale = 1024 * 1024;
                else if (s == 'G' || s == 'g')
                    scale = 1024ull * 1024 * 1024;
                if (scale != 1)
                    ++i;
            }
            if (i < n && identChar(text[i]))
                fail(filename, line, "malformed number",
                     text.substr(start, i - start + 1));
            Token t;
            t.line = line;
            t.text = text.substr(start, i - start);
            if (isFloat) {
                t.kind = TokKind::kFloat;
                t.floatValue = std::stod(t.text);
            } else {
                t.kind = TokKind::kInt;
                std::uint64_t v = 0;
                for (std::size_t j = start;
                     j < i && std::isdigit(static_cast<unsigned char>(text[j]));
                     ++j) {
                    const std::uint64_t d =
                        static_cast<std::uint64_t>(text[j] - '0');
                    if (v > (UINT64_MAX - d) / 10)
                        fail(filename, line, "integer literal overflows",
                             t.text);
                    v = v * 10 + d;
                }
                if (scale != 1 && v > UINT64_MAX / scale)
                    fail(filename, line, "integer literal overflows", t.text);
                t.intValue = v * scale;
            }
            toks.push_back(std::move(t));
            continue;
        }
        if (identStart(c)) {
            const std::size_t start = i;
            while (i < n && identChar(text[i]))
                ++i;
            Token t;
            t.kind = TokKind::kIdent;
            t.line = line;
            t.text = text.substr(start, i - start);
            toks.push_back(std::move(t));
            continue;
        }
        fail(filename, line, "unexpected character", std::string(1, c));
    }

    Token eof;
    eof.kind = TokKind::kEof;
    eof.line = line;
    eof.text = "end of file";
    toks.push_back(std::move(eof));
    return toks;
}

} // namespace wdl
} // namespace sst
