/**
 * @file
 * WDL compiler back end: lowers a validated Program to deterministic
 * per-thread OpSource streams. Each thread interprets its group's
 * statement tree with an explicit frame stack and a buffered refill
 * (the ThreadProgram pattern), drawing every stochastic choice from a
 * per-thread Rng seeded by (group seed, local tid) so streams are pure
 * functions of the compiled IR and thread placement.
 *
 * Parallel streams (any workload with > 1 total thread) emit warmup
 * sweeps, a warmup barrier, lock/barrier ops and an end-of-run
 * rendezvous; the 1-thread baseline stream is the sequential program —
 * full undivided loop counts, critical-section bodies kept, sync ops
 * elided — exactly the serial reference the paper's Ts means.
 */

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "wdl/wdl.hh"
#include "workload/op.hh"

namespace sst {
namespace wdl {

namespace {

/** Bytes of lock-protected data per lock id (addrmap region stride). */
constexpr Addr kLockDataBytes = 4096;

/** Ops the interpreter accumulates per refill before yielding a batch. */
constexpr std::size_t kRefillTarget = 256;

/** SplitMix64-style finalizer mixing a group seed with a thread id. */
std::uint64_t
threadSeed(std::uint64_t seed, std::uint64_t tid)
{
    std::uint64_t z = seed ^ (0x9e3779b97f4a7c15ULL + tid * 0xbf58476d1ce4e5b9ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * Zipfian key generator over [0, n) — the YCSB/Gray formulation also
 * used by DBx1000's contention knobs. theta in [0, 1); theta == 0 is
 * uniform, 0.9 is the classic highly-skewed setting.
 */
struct ZipfGen
{
    std::uint64_t n = 1;
    double theta = 0.0;
    double alpha = 0.0;
    double zetan = 0.0;
    double eta = 0.0;

    static double
    zeta(std::uint64_t count, double th)
    {
        double sum = 0.0;
        for (std::uint64_t i = 1; i <= count; ++i)
            sum += 1.0 / std::pow(static_cast<double>(i), th);
        return sum;
    }

    void
    init(std::uint64_t count, double th)
    {
        n = count;
        theta = th;
        if (n <= 1)
            return;
        alpha = 1.0 / (1.0 - theta);
        zetan = zeta(n, theta);
        const double zeta2 = zeta(2, theta);
        eta = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
              (1.0 - zeta2 / zetan);
    }

    std::uint64_t
    draw(Rng &rng) const
    {
        if (n <= 1)
            return 0;
        const double u = rng.uniform();
        const double uz = u * zetan;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + std::pow(0.5, theta))
            return 1;
        const std::uint64_t key = static_cast<std::uint64_t>(
            static_cast<double>(n) * std::pow(eta * u - eta + 1.0, alpha));
        return key >= n ? n - 1 : key;
    }
};

/** One thread's interpreter over the statement tree. */
class ProgramSource final : public OpSource
{
  public:
    ProgramSource(std::shared_ptr<const Program> prog, int group,
                  int local_tid, ThreadId data_tid, int group_threads,
                  std::uint64_t seed, bool parallel, int barrier_offset)
        : prog_(std::move(prog)),
          group_(prog_->groups[static_cast<std::size_t>(group)]),
          groupIndex_(group), localTid_(local_tid), dataTid_(data_tid),
          groupThreads_(group_threads), parallel_(parallel),
          barrierOffset_(barrier_offset), rng_(threadSeed(seed, static_cast<std::uint64_t>(local_tid)))
    {
        precomputeZipf(group_.body);
    }

    Op
    nextOp() override
    {
        if (finished_)
            return Op::end();
        if (cursor_ >= buf_.size())
            refill();
        if (finished_)
            return Op::end();
        return buf_[cursor_++];
    }

    bool
    finished() const override
    {
        return finished_;
    }

  private:
    enum class RunPhase : std::uint8_t { kWarmup, kBody, kDone };

    struct Frame
    {
        const std::vector<Stmt> *body;
        std::size_t idx = 0;
        std::uint64_t trips = 1;      ///< body passes left (loops)
        const Stmt *owner = nullptr;  ///< lock/phase that opened the frame
        LockId lockId = 0;            ///< resolved key for lock owners
    };

    void
    precomputeZipf(const std::vector<Stmt> &body)
    {
        for (const Stmt &s : body) {
            if (s.kind == Stmt::Kind::kLock &&
                s.sel.kind == LockSel::Kind::kZipf) {
                ZipfGen z;
                z.init(prog_->locks[static_cast<std::size_t>(s.lock)].size,
                       s.sel.theta);
                zipf_.emplace(&s, z);
            } else if (s.kind == Stmt::Kind::kTxn) {
                ZipfGen z;
                z.init(prog_->locks[static_cast<std::size_t>(s.lock)].size,
                       s.theta);
                zipf_.emplace(&s, z);
            }
            if (!s.body.empty())
                precomputeZipf(s.body);
        }
    }

    void
    refill()
    {
        buf_.clear();
        cursor_ = 0;
        if (phase_ == RunPhase::kWarmup) {
            emitWarmup();
            phase_ = RunPhase::kBody;
            stack_.push_back(Frame{&group_.body, 0, 1, nullptr, 0});
            return;
        }
        while (phase_ == RunPhase::kBody && buf_.size() < kRefillTarget) {
            if (!step()) {
                if (parallel_)
                    buf_.push_back(
                        Op::barrier(prog_->barrierSlots + barrierOffset_));
                phase_ = RunPhase::kDone;
            }
        }
        if (buf_.empty() && phase_ == RunPhase::kDone)
            finished_ = true;
    }

    /** Advance the interpreter by one statement/frame event. Returns
     *  false once the whole group body has been executed. */
    bool
    step()
    {
        while (!stack_.empty()) {
            Frame &f = stack_.back();
            if (f.idx >= f.body->size()) {
                if (f.trips > 1) {
                    --f.trips;
                    f.idx = 0;
                    continue;
                }
                const Stmt *owner = f.owner;
                const LockId lockId = f.lockId;
                stack_.pop_back();
                if (owner) {
                    if (owner->kind == Stmt::Kind::kLock) {
                        lockStack_.pop_back();
                        if (parallel_)
                            buf_.push_back(Op::lockRelease(lockId));
                    } else if (owner->kind == Stmt::Kind::kPhase) {
                        if (parallel_)
                            buf_.push_back(
                                Op::barrier(owner->barrier + barrierOffset_));
                    }
                }
                if (!stack_.empty())
                    ++stack_.back().idx;
                return true;
            }

            const Stmt &s = (*f.body)[f.idx];
            switch (s.kind) {
            case Stmt::Kind::kCompute: {
                const std::uint64_t n = s.count.draw(rng_);
                if (n > 0)
                    buf_.push_back(Op::compute(clampCount(n)));
                ++f.idx;
                break;
            }
            case Stmt::Kind::kMemory:
                emitMemory(s);
                ++f.idx;
                break;
            case Stmt::Kind::kBarrier:
            case Stmt::Kind::kYield:
                if (parallel_)
                    buf_.push_back(Op::barrier(s.barrier + barrierOffset_));
                ++f.idx;
                break;
            case Stmt::Kind::kTxn:
                emitTxn(s);
                ++f.idx;
                break;
            case Stmt::Kind::kLoop: {
                const std::uint64_t trips = tripsFor(s);
                if (trips == 0) {
                    ++f.idx;
                    break;
                }
                stack_.push_back(Frame{&s.body, 0, trips, nullptr, 0});
                break; // parent idx advances when the frame pops
            }
            case Stmt::Kind::kLock: {
                const LockId id = resolveLock(s);
                if (parallel_)
                    buf_.push_back(Op::lockAcquire(id));
                lockStack_.push_back(id);
                stack_.push_back(Frame{&s.body, 0, 1, &s, id});
                break;
            }
            case Stmt::Kind::kPhase:
                stack_.push_back(Frame{&s.body, 0, 1, &s, 0});
                break;
            }
            return true;
        }
        return false;
    }

    /** Per-thread trips of a loop: divided over the group's threads
     *  (remainder to the low local tids) unless `each`. */
    std::uint64_t
    tripsFor(const Stmt &s)
    {
        const std::uint64_t n = s.count.draw(rng_);
        if (s.each)
            return n;
        const std::uint64_t t = static_cast<std::uint64_t>(groupThreads_);
        return n / t +
               (static_cast<std::uint64_t>(localTid_) < n % t ? 1 : 0);
    }

    LockId
    resolveLock(const Stmt &s)
    {
        const LockDecl &decl = prog_->locks[static_cast<std::size_t>(s.lock)];
        std::uint64_t key = 0;
        switch (s.sel.kind) {
        case LockSel::Kind::kFixed:
            key = s.sel.index;
            break;
        case LockSel::Kind::kUniform:
            key = rng_.below(decl.size);
            break;
        case LockSel::Kind::kZipf:
            key = zipf_.at(&s).draw(rng_);
            break;
        }
        return static_cast<LockId>(static_cast<std::uint64_t>(decl.firstId) +
                                   key);
    }

    static std::uint32_t
    clampCount(std::uint64_t n)
    {
        return n > UINT32_MAX ? UINT32_MAX : static_cast<std::uint32_t>(n);
    }

    void
    emitMemRef(Addr addr, bool store)
    {
        const PC pc = 0x40000 + (memSlot_++ % 64) * 4;
        buf_.push_back(store ? Op::store(addr, pc) : Op::load(addr, pc));
    }

    void
    emitMemory(const Stmt &s)
    {
        const std::uint64_t n = s.count.draw(rng_);
        for (std::uint64_t i = 0; i < n; ++i) {
            Addr base = 0;
            std::uint64_t span = 0;
            switch (s.region) {
            case Region::kPrivate:
                base = addrmap::privateBase(dataTid_);
                span = group_.privateBytes;
                break;
            case Region::kShared:
                base = addrmap::groupSharedBase(groupIndex_);
                span = group_.sharedBytes;
                break;
            case Region::kData:
                base = addrmap::lockDataBase(lockStack_.back());
                span = kLockDataBytes;
                break;
            }
            const Addr addr = span ? base + rng_.below(span) : base;
            emitMemRef(addr, rng_.chance(s.storeFrac));
        }
    }

    void
    emitTxn(const Stmt &s)
    {
        const ZipfGen &gen = zipf_.at(&s);
        const LockDecl &decl = prog_->locks[static_cast<std::size_t>(s.lock)];
        const std::uint64_t ops = s.count.draw(rng_);
        for (std::uint64_t i = 0; i < ops; ++i) {
            const LockId id = static_cast<LockId>(
                static_cast<std::uint64_t>(decl.firstId) + gen.draw(rng_));
            const bool write = !rng_.chance(s.rwRatio);
            if (parallel_)
                buf_.push_back(Op::lockAcquire(id));
            const std::uint64_t c = s.csCompute.draw(rng_);
            if (c > 0)
                buf_.push_back(Op::compute(clampCount(c)));
            const std::uint64_t m = s.csMemory.draw(rng_);
            for (std::uint64_t j = 0; j < m; ++j)
                emitMemRef(addrmap::lockDataBase(id) +
                               rng_.below(kLockDataBytes),
                           write);
            if (parallel_)
                buf_.push_back(Op::lockRelease(id));
        }
    }

    /** Pre-RoI warmup: sweep the private and group-shared regions and
     *  every lock's protected data so the RoI starts from warmed caches,
     *  then rendezvous (parallel runs) and open the RoI. */
    void
    emitWarmup()
    {
        const Addr pbase = addrmap::privateBase(dataTid_);
        for (Addr off = 0; off < group_.privateBytes; off += kLineBytes)
            buf_.push_back(Op::load(pbase + off, 0x30000));
        const Addr sbase = addrmap::groupSharedBase(groupIndex_);
        for (Addr off = 0; off < group_.sharedBytes; off += kLineBytes)
            buf_.push_back(Op::load(sbase + off, 0x30010));
        for (const LockDecl &l : prog_->locks) {
            for (std::uint64_t k = 0; k < l.size; ++k) {
                const Addr base = addrmap::lockDataBase(
                    static_cast<LockId>(static_cast<std::uint64_t>(l.firstId) + k));
                for (Addr off = 0; off < kLockDataBytes; off += kLineBytes)
                    buf_.push_back(Op::load(base + off, 0x30020));
            }
        }
        if (parallel_)
            buf_.push_back(Op::barrier(kWarmupBarrierId + barrierOffset_));
        buf_.push_back(Op::roiBegin());
    }

    std::shared_ptr<const Program> prog_;
    const GroupIR &group_;
    int groupIndex_;
    int localTid_;
    ThreadId dataTid_;
    int groupThreads_;
    bool parallel_;
    int barrierOffset_;
    Rng rng_;
    std::unordered_map<const Stmt *, ZipfGen> zipf_;

    std::vector<LockId> lockStack_;
    std::vector<Frame> stack_;
    std::vector<Op> buf_;
    std::size_t cursor_ = 0;
    std::uint64_t memSlot_ = 0;
    RunPhase phase_ = RunPhase::kWarmup;
    bool finished_ = false;
};

/** Strip directory and a trailing ".wdl" from @p path for display. */
std::string
pathStem(const std::string &path)
{
    const std::size_t slash = path.find_last_of("/\\");
    std::string stem =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const std::string ext = ".wdl";
    if (stem.size() > ext.size() &&
        stem.compare(stem.size() - ext.size(), ext.size(), ext) == 0)
        stem.resize(stem.size() - ext.size());
    return stem.empty() ? std::string("workload") : stem;
}

} // namespace

WorkloadSpec
toWorkloadSpec(std::shared_ptr<const Program> program, std::string source_path)
{
    if (!program)
        throw std::invalid_argument("toWorkloadSpec: null program");
    WorkloadSpec spec;
    spec.role = program->role;
    spec.name =
        program->name.empty() ? pathStem(source_path) : program->name;
    for (const GroupIR &g : program->groups) {
        WorkloadGroup wg;
        // Placeholder profile: carries the per-group label, suite and
        // seed through the driver/trace/CSV layers. The op streams and
        // fingerprints come from the compiled IR, never from these
        // knobs.
        wg.profile.name = g.name;
        wg.profile.suite = "wdl";
        wg.profile.seed = g.seed;
        wg.profile.totalIters = 1;
        wg.profile.barrierPhases = 1;
        wg.profile.finalBarrier = true;
        wg.nthreads = g.nthreads;
        spec.groups.push_back(std::move(wg));
    }
    spec.wdlProgram = std::move(program);
    spec.wdlPath = std::move(source_path);
    spec.validate();
    return spec;
}

WorkloadSpec
loadWorkloadFile(const std::string &path)
{
    return toWorkloadSpec(
        std::make_shared<const Program>(loadProgram(path)), path);
}

OpSourceFactory
workloadSources(const WorkloadSpec &spec)
{
    const std::shared_ptr<const Program> prog = spec.wdlProgram;
    if (!prog)
        throw std::invalid_argument(
            "workloadSources: spec has no compiled WDL program");
    struct GroupCtx
    {
        int first;
        int threads;
        std::uint64_t seed;
        int barrierOffset;
    };
    std::vector<GroupCtx> ctx;
    int first = 0;
    for (std::size_t g = 0; g < spec.groups.size(); ++g) {
        const int offset = spec.role == WorkloadRole::kMix
                               ? static_cast<int>(g) * kGroupSyncStride
                               : 0;
        ctx.push_back(GroupCtx{first, spec.groups[g].nthreads,
                               spec.groups[g].profile.seed, offset});
        first += spec.groups[g].nthreads;
    }
    const bool parallel = spec.nthreads() > 1;
    return [prog, ctx, parallel](ThreadId tid,
                                 int nthreads) -> std::unique_ptr<OpSource> {
        (void)nthreads;
        for (std::size_t g = 0; g < ctx.size(); ++g) {
            const GroupCtx &c = ctx[g];
            if (static_cast<int>(tid) < c.first + c.threads) {
                return std::make_unique<ProgramSource>(
                    prog, static_cast<int>(g),
                    static_cast<int>(tid) - c.first, tid, c.threads, c.seed,
                    parallel, c.barrierOffset);
            }
        }
        throw std::out_of_range("workloadSources: thread id out of range");
    };
}

OpSourceFactory
groupBaselineSources(const WorkloadSpec &spec, int group)
{
    const std::shared_ptr<const Program> prog = spec.wdlProgram;
    if (!prog)
        throw std::invalid_argument(
            "groupBaselineSources: spec has no compiled WDL program");
    if (group < 0 || group >= spec.ngroups())
        throw std::out_of_range("groupBaselineSources: bad group index");
    const std::uint64_t seed =
        spec.groups[static_cast<std::size_t>(group)].profile.seed;
    return [prog, group, seed](ThreadId tid,
                               int nthreads) -> std::unique_ptr<OpSource> {
        (void)tid;
        (void)nthreads;
        return std::make_unique<ProgramSource>(prog, group, /*local_tid=*/0,
                                               /*data_tid=*/0,
                                               /*group_threads=*/1, seed,
                                               /*parallel=*/false,
                                               /*barrier_offset=*/0);
    };
}

} // namespace wdl
} // namespace sst
