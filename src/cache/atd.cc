#include "atd.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace sst {

Atd::Atd(std::uint64_t llc_size_bytes, int llc_ways, int sampling_factor)
    : llcSets_(static_cast<int>(llc_size_bytes / kLineBytes /
                                static_cast<std::uint64_t>(llc_ways))),
      sampling_(sampling_factor),
      atdSets_(llcSets_ / sampling_factor),
      array_(SetAssocArray::fromSets(atdSets_ > 0 ? atdSets_ : 1,
                                     llc_ways))
{
    sstAssert(sampling_ >= 1, "ATD sampling factor must be >= 1");
    sstAssert(llcSets_ % sampling_ == 0,
              "ATD sampling factor must divide the LLC set count");
    llcSetBits_ = log2i(static_cast<std::uint64_t>(llcSets_));
    atdSetBits_ = log2i(static_cast<std::uint64_t>(array_.sets()));
    const std::uint64_t f = static_cast<std::uint64_t>(sampling_);
    if (isPow2(f))
        samplingMask_ = f - 1;
}

bool
Atd::isSampled(Addr line) const
{
    const std::uint64_t llc_set =
        line & (static_cast<std::uint64_t>(llcSets_) - 1);
    if (samplingMask_ != 0 || sampling_ == 1)
        return (llc_set & samplingMask_) == 0;
    return llc_set % static_cast<std::uint64_t>(sampling_) == 0;
}

Atd::Probe
Atd::access(Addr line)
{
    Probe probe;
    if (!isSampled(line))
        return probe;
    probe.sampled = true;
    ++sampledAccesses_;

    // Remap to a dense pseudo line number so the backing array indexes
    // monitored sets contiguously: atd_set = llc_set / sampling, tag kept
    // in the upper bits.
    const std::uint64_t llc_set =
        line & (static_cast<std::uint64_t>(llcSets_) - 1);
    const std::uint64_t tag = line >> llcSetBits_;
    const std::uint64_t atd_set =
        llc_set / static_cast<std::uint64_t>(sampling_);
    const Addr pseudo = (tag << atdSetBits_) | atd_set;

    if (TagEntry *e = array_.findValid(pseudo)) {
        probe.hit = true;
        array_.touch(*e);
    } else {
        probe.hit = false;
        array_.insert(pseudo);
    }
    return probe;
}

std::uint64_t
Atd::hardwareBits() const
{
    // Per entry: tag bits for a 48-bit physical address plus 2 status
    // bits (valid + dirty), matching the cost accounting in [7].
    const int addr_bits = 48;
    const int line_off_bits = log2i(kLineBytes);
    const int set_bits = log2i(static_cast<std::uint64_t>(llcSets_));
    const int tag_bits = addr_bits - line_off_bits - set_bits;
    const int entry_bits = tag_bits + 2;
    return static_cast<std::uint64_t>(array_.sets()) *
           static_cast<std::uint64_t>(array_.ways()) *
           static_cast<std::uint64_t>(entry_bits);
}

} // namespace sst
