/**
 * @file
 * The two-level cache hierarchy of the simulated CMP: per-core private
 * L1 data caches and a shared, inclusive last-level cache (LLC) with a
 * directory-based MSI write-invalidate coherence protocol. The hierarchy
 * also hosts the per-core ATDs (and optional full-shadow oracle ATDs used
 * by tests and ablations) and classifies every access for the accounting
 * architecture: inter-thread hits/misses, coherency misses, writebacks.
 *
 * Latency is *not* applied here — the hierarchy reports what happened and
 * the core model / DRAM model translate outcomes into cycles. This keeps
 * tag manipulation single-pass and testable in isolation.
 */

#ifndef SST_CACHE_HIERARCHY_HH
#define SST_CACHE_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/atd.hh"
#include "cache/set_assoc.hh"
#include "util/types.hh"

namespace sst {

/**
 * Hard cap on simulated cores: the LLC directory tracks L1 copies in a
 * 64-bit sharers bitmap. Layers that accept a core/thread count from
 * users (driver validation, CLIs) check against this instead of letting
 * the constructor assert abort the process.
 */
inline constexpr int kMaxSimCores = 64;


/** Geometry of the cache hierarchy; defaults follow the paper (Sec. 5). */
struct CacheParams
{
    std::uint64_t l1Bytes = 64 * 1024; ///< private L1D, 64KB
    int l1Ways = 8;
    std::uint64_t llcBytes = 2 * 1024 * 1024; ///< shared L2 = LLC, 2MB
    int llcWays = 16;
    int atdSamplingFactor = 32; ///< monitor every 32nd LLC set
    bool oracleAtds = false;    ///< also keep full-shadow ATDs (testing)
};

/** Everything the rest of the system needs to know about one access. */
struct AccessOutcome
{
    Addr line = 0;
    bool l1Hit = false;
    bool llcHit = false;          ///< meaningful when !l1Hit
    bool coherencyMiss = false;   ///< L1 tag resident but invalidated
    bool dirtyInOtherL1 = false;  ///< needed a cache-to-cache transfer
    bool atdSampled = false;
    bool atdHit = false;
    bool interThreadMiss = false; ///< LLC miss, ATD hit (negative interf.)
    bool interThreadHit = false;  ///< LLC hit, ATD miss (positive interf.)
    bool oracleInterThreadMiss = false; ///< full-shadow classification
    bool oracleInterThreadHit = false;
    bool victimWriteback = false; ///< LLC evicted a dirty line
    Addr victimLine = 0;

    /** Did the access go to DRAM? */
    bool dramAccess() const { return !l1Hit && !llcHit; }
};

/** Per-core ground-truth counters kept by the hierarchy. */
struct CacheStats
{
    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t coherencyMisses = 0;
    std::uint64_t llcAccesses = 0;
    std::uint64_t llcHits = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t interThreadHitsSampled = 0;
    std::uint64_t interThreadMissesSampled = 0;
    std::uint64_t oracleInterThreadHits = 0;
    std::uint64_t oracleInterThreadMisses = 0;
    std::uint64_t invalidationsReceived = 0;
    std::uint64_t writebacks = 0;
};

/** Private L1s + shared LLC + coherence + ATDs. */
class CacheHierarchy
{
  public:
    CacheHierarchy(int ncores, const CacheParams &params);

    /**
     * Perform one access by @p core to byte address @p addr.
     * Updates all tag state (L1, LLC, directory, ATDs) and returns the
     * outcome classification.
     */
    AccessOutcome access(CoreId core, Addr addr, bool is_write);

    /**
     * Drop all of @p core's L1 contents (thread migration cost model:
     * the next thread starts with a cold L1).
     */
    void flushL1(CoreId core);

    /** Zero all per-core counters (region-of-interest start). */
    void resetStats();

    const CacheStats &stats(CoreId core) const
    {
        return stats_[static_cast<std::size_t>(core)];
    }

    const Atd &atd(CoreId core) const
    {
        return *atds_[static_cast<std::size_t>(core)];
    }

    int ncores() const { return ncores_; }
    const CacheParams &params() const { return params_; }

  private:
    void invalidateOtherL1s(Addr line, CoreId keeper, TagEntry &dir);
    void insertIntoL1(CoreId core, Addr line, bool dirty,
                      TagEntry &dir_entry);

    int ncores_;
    CacheParams params_;
    std::vector<SetAssocArray> l1s_;
    SetAssocArray llc_;
    std::vector<std::unique_ptr<Atd>> atds_;
    std::vector<std::unique_ptr<Atd>> oracleAtds_;
    std::vector<CacheStats> stats_;
};

} // namespace sst

#endif // SST_CACHE_HIERARCHY_HH
