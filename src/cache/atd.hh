/**
 * @file
 * Auxiliary tag directory (ATD). One ATD per core models a *private* LLC
 * of the same geometry as the shared LLC, fed by that core's L1-miss
 * stream. Comparing shared-LLC outcomes with ATD outcomes classifies
 * interference (Sections 4.1 and 4.2 of the paper):
 *
 *   - shared-LLC miss + ATD hit  -> inter-thread miss (negative
 *     interference: another thread evicted this core's data),
 *   - shared-LLC hit + ATD miss  -> inter-thread hit (positive
 *     interference: another thread prefetched shared data).
 *
 * To bound hardware cost only every `samplingFactor`-th LLC set is
 * monitored; the accounting software extrapolates sampled penalties by
 * the measured ratio of LLC accesses to sampled ATD accesses.
 */

#ifndef SST_CACHE_ATD_HH
#define SST_CACHE_ATD_HH

#include <cstdint>

#include "cache/set_assoc.hh"
#include "util/types.hh"

namespace sst {

/** Per-core sampled auxiliary tag directory. */
class Atd
{
  public:
    /**
     * @param llc_size_bytes size of the shared LLC being shadowed
     * @param llc_ways associativity of the shared LLC
     * @param sampling_factor monitor every sampling_factor-th set
     *        (1 = full shadow ATD, used as the oracle in tests)
     */
    Atd(std::uint64_t llc_size_bytes, int llc_ways, int sampling_factor);

    /** Outcome of one ATD probe. */
    struct Probe
    {
        bool sampled = false; ///< the access mapped to a monitored set
        bool hit = false;     ///< valid only when sampled
    };

    /**
     * Probe and update the ATD with an LLC access to @p line (the line is
     * inserted/promoted exactly as the private LLC would).
     */
    Probe access(Addr line);

    /** True if @p line maps to a monitored set. */
    bool isSampled(Addr line) const;

    int samplingFactor() const { return sampling_; }

    /** Number of sampled accesses observed (denominator of the measured
     *  extrapolation factor). */
    std::uint64_t sampledAccesses() const { return sampledAccesses_; }

    /**
     * Hardware cost of this ATD in bits: monitored sets x ways x
     * (tag + status). Used by the hardware cost model (Section 4.7).
     */
    std::uint64_t hardwareBits() const;

  private:
    int llcSets_;
    int sampling_;
    int atdSets_;
    int llcSetBits_ = 0;  ///< log2(llcSets_), cached off the hot path
    int atdSetBits_ = 0;  ///< log2(array_.sets()), cached likewise
    /** sampling_ - 1 when sampling_ is a power of two, else 0 (slow
     *  modulo path); the sampled-set test runs on every LLC access. */
    std::uint64_t samplingMask_ = 0;
    SetAssocArray array_;
    std::uint64_t sampledAccesses_ = 0;
};

} // namespace sst

#endif // SST_CACHE_ATD_HH
