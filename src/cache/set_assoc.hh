/**
 * @file
 * Generic set-associative tag array with true-LRU replacement. Used for
 * the private L1 caches, the shared LLC and the per-core auxiliary tag
 * directories (ATDs). Tracks tags only — the toolkit never models data
 * values, just presence and status bits, like a simulator tag pipeline.
 */

#ifndef SST_CACHE_SET_ASSOC_HH
#define SST_CACHE_SET_ASSOC_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace sst {

/**
 * One cached line's bookkeeping. `valid` distinguishes live lines;
 * `coherenceInvalidated` marks tags that were invalidated by a coherence
 * upgrade and are still resident in the tag array — re-references to such
 * tags are coherency misses (Section 4.5 of the paper).
 */
struct TagEntry
{
    Addr line = 0;         ///< full line number (tag + set, unambiguous)
    bool valid = false;
    bool dirty = false;
    bool coherenceInvalidated = false;
    std::uint64_t lruStamp = 0;
    std::uint64_t sharers = 0; ///< LLC directory: bitmap of L1 copies
    CoreId dirtyOwner = kInvalidId; ///< LLC directory: core with M copy
    CoreId filledBy = kInvalidId;   ///< core whose miss brought the line
};

/**
 * Set-associative tag array. Geometry is (sets x ways); lines are mapped
 * by line number modulo the set count. LRU uses a global access stamp.
 *
 * Lookups scan a compact parallel array of resident line numbers (8
 * bytes per way) instead of the ~48-byte TagEntry records, so a 16-way
 * probe touches two cache lines rather than twelve — tag search is the
 * hottest function in the whole simulator (every L1/LLC/ATD access).
 */
class SetAssocArray
{
  public:
    /**
     * @param size_bytes total capacity in bytes
     * @param ways associativity
     */
    SetAssocArray(std::uint64_t size_bytes, int ways);

    /** Construct directly from a set count and associativity. */
    static SetAssocArray fromSets(int sets, int ways);

    /** Set index of a line number. */
    std::uint64_t
    setIndex(Addr line) const
    {
        return line & (static_cast<std::uint64_t>(sets_) - 1);
    }

    /** Find a valid entry for @p line; nullptr on miss. */
    TagEntry *
    findValid(Addr line)
    {
        TagEntry *e = findResident(line);
        return e && e->valid ? e : nullptr;
    }

    /** Find any resident entry (valid or coherence-invalidated). */
    TagEntry *
    findAny(Addr line)
    {
        return findResident(line);
    }

    /** Update the LRU stamp of @p entry (call on every hit). */
    void
    touch(TagEntry &entry)
    {
        entry.lruStamp = ++stamp_;
        stamps_[static_cast<std::size_t>(&entry - entries_.data())] =
            entry.lruStamp;
    }

    /**
     * Insert @p line, evicting the LRU way of its set if needed.
     * @param[out] victim filled with the evicted entry (valid == true only
     *             if a live line was displaced)
     * @return reference to the (re)initialized entry
     */
    TagEntry &insert(Addr line, TagEntry *victim = nullptr);

    /**
     * Invalidate @p line if present.
     * @param keep_tag keep the tag resident and mark it
     *        coherenceInvalidated (used by the L1s for coherency-miss
     *        detection); otherwise the entry is fully cleared
     * @return true if the line was valid
     */
    bool invalidate(Addr line, bool keep_tag = false);

    int sets() const { return sets_; }
    int ways() const { return ways_; }

    /** Number of currently valid entries (test/diagnostic helper). */
    std::uint64_t validCount() const;

    /** Read-only entry storage (whole-cache walks, e.g. L1 flushes).
     *  Mutation goes through the API so the compact resident-tag index
     *  stays consistent. */
    const std::vector<TagEntry> &raw() const { return entries_; }

    /** Clear every entry (flush). */
    void reset();

  private:
    /** No line resident in this way slot. */
    static constexpr Addr kNoTag = ~Addr(0);

    SetAssocArray(int sets, int ways, bool);

    TagEntry *entryAt(std::uint64_t set, int way);

    /** Resident (valid or coherence-invalidated) entry for @p line. */
    TagEntry *
    findResident(Addr line)
    {
        const std::size_t base = static_cast<std::size_t>(
            setIndex(line) * static_cast<std::uint64_t>(ways_));
        for (int w = 0; w < ways_; ++w) {
            // insert() never duplicates a line within a set, so the
            // first tag match is the only one.
            if (tags_[base + static_cast<std::size_t>(w)] == line)
                return &entries_[base + static_cast<std::size_t>(w)];
        }
        return nullptr;
    }

    int sets_;
    int ways_;
    std::vector<TagEntry> entries_;
    /** Resident line number per way slot (kNoTag when empty); the
     *  probe array all lookups scan. */
    std::vector<Addr> tags_;
    /** Mirror of each entry's lruStamp, so the replacement scan reads
     *  8 bytes per way instead of whole TagEntry records. */
    std::vector<std::uint64_t> stamps_;
    std::uint64_t stamp_ = 0;
};

} // namespace sst

#endif // SST_CACHE_SET_ASSOC_HH
