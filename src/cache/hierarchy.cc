#include "hierarchy.hh"

#include "util/logging.hh"

namespace sst {

namespace {

std::uint64_t
bit(CoreId core)
{
    return std::uint64_t(1) << static_cast<unsigned>(core);
}

} // namespace

CacheHierarchy::CacheHierarchy(int ncores, const CacheParams &params)
    : ncores_(ncores), params_(params),
      llc_(params.llcBytes, params.llcWays)
{
    sstAssert(ncores >= 1 && ncores <= kMaxSimCores,
              "CacheHierarchy supports 1.." +
                  std::to_string(kMaxSimCores) + " cores");
    l1s_.reserve(static_cast<std::size_t>(ncores));
    for (int c = 0; c < ncores; ++c) {
        l1s_.emplace_back(params.l1Bytes, params.l1Ways);
        atds_.push_back(std::make_unique<Atd>(
            params.llcBytes, params.llcWays, params.atdSamplingFactor));
        if (params.oracleAtds) {
            oracleAtds_.push_back(std::make_unique<Atd>(
                params.llcBytes, params.llcWays, 1));
        }
    }
    stats_.resize(static_cast<std::size_t>(ncores));
}

void
CacheHierarchy::invalidateOtherL1s(Addr line, CoreId keeper, TagEntry &dir)
{
    // Walk set bits (ascending core id, like the old full-core loop)
    // instead of scanning all ncores per upgrade.
    for (std::uint64_t rest = dir.sharers; rest != 0; rest &= rest - 1) {
        const int c = __builtin_ctzll(rest);
        if (c == keeper)
            continue;
        if (l1s_[static_cast<std::size_t>(c)].invalidate(line,
                                                         /*keep_tag=*/true))
            ++stats_[static_cast<std::size_t>(c)].invalidationsReceived;
        dir.sharers &= ~bit(c);
    }
    if (dir.dirtyOwner != kInvalidId && dir.dirtyOwner != keeper)
        dir.dirtyOwner = kInvalidId;
}

void
CacheHierarchy::insertIntoL1(CoreId core, Addr line, bool dirty,
                             TagEntry &dir_entry)
{
    auto &l1 = l1s_[static_cast<std::size_t>(core)];
    TagEntry victim;
    TagEntry &e = l1.insert(line, &victim);
    e.dirty = dirty;
    (void)dir_entry;

    if (victim.valid && victim.line != line) {
        // Silent drop for clean lines; dirty lines write back into the
        // LLC, which then owns the only up-to-date copy.
        if (TagEntry *vdir = llc_.findValid(victim.line)) {
            vdir->sharers &= ~bit(core);
            if (victim.dirty) {
                vdir->dirty = true;
                if (vdir->dirtyOwner == core)
                    vdir->dirtyOwner = kInvalidId;
            }
        }
    }
}

AccessOutcome
CacheHierarchy::access(CoreId core, Addr addr, bool is_write)
{
    AccessOutcome out;
    const Addr line = lineNum(addr);
    out.line = line;

    auto &st = stats_[static_cast<std::size_t>(core)];
    auto &l1 = l1s_[static_cast<std::size_t>(core)];
    ++st.l1Accesses;

    // One resident probe serves both the hit test and the
    // coherency-miss classification (the stale tag case).
    TagEntry *resident = l1.findAny(line);

    // ---- L1 hit path ----------------------------------------------------
    if (resident && resident->valid) {
        TagEntry *e = resident;
        out.l1Hit = true;
        ++st.l1Hits;
        l1.touch(*e);
        if (is_write && !e->dirty) {
            // Upgrade: gain exclusivity by invalidating other copies.
            if (TagEntry *dir = llc_.findValid(line)) {
                invalidateOtherL1s(line, core, *dir);
                dir->sharers = bit(core);
                dir->dirtyOwner = core;
                dir->dirty = true;
            }
            e->dirty = true;
        }
        return out;
    }

    // ---- L1 miss: classify a possible coherency miss ---------------------
    if (resident && resident->coherenceInvalidated) {
        out.coherencyMiss = true;
        ++st.coherencyMisses;
    }

    // ---- shared LLC access ------------------------------------------------
    ++st.llcAccesses;
    const Atd::Probe probe = atds_[static_cast<std::size_t>(core)]->access(
        line);
    out.atdSampled = probe.sampled;
    out.atdHit = probe.hit;
    Atd::Probe oracle;
    if (params_.oracleAtds) {
        oracle = oracleAtds_[static_cast<std::size_t>(core)]->access(line);
    }

    if (TagEntry *dir = llc_.findValid(line)) {
        out.llcHit = true;
        ++st.llcHits;
        llc_.touch(*dir);

        // Dirty copy lives in another core's L1: cache-to-cache transfer
        // through the LLC (M -> S on a read, M -> I on a write).
        if (dir->dirtyOwner != kInvalidId && dir->dirtyOwner != core) {
            out.dirtyInOtherL1 = true;
            auto &owner_l1 =
                l1s_[static_cast<std::size_t>(dir->dirtyOwner)];
            if (is_write) {
                if (owner_l1.invalidate(line, /*keep_tag=*/true)) {
                    ++stats_[static_cast<std::size_t>(dir->dirtyOwner)]
                          .invalidationsReceived;
                }
                dir->sharers &= ~bit(dir->dirtyOwner);
            } else if (TagEntry *oe = owner_l1.findValid(line)) {
                oe->dirty = false; // downgrade to shared
            }
            dir->dirty = true;
            dir->dirtyOwner = kInvalidId;
        }

        if (is_write) {
            invalidateOtherL1s(line, core, *dir);
            dir->sharers = bit(core);
            dir->dirtyOwner = core;
            dir->dirty = true;
        } else {
            dir->sharers |= bit(core);
        }

        if (probe.sampled && !probe.hit) {
            out.interThreadHit = true;
            ++st.interThreadHitsSampled;
        }
        if (params_.oracleAtds && !oracle.hit) {
            out.oracleInterThreadHit = true;
            ++st.oracleInterThreadHits;
        }
        insertIntoL1(core, line, is_write, *dir);
        return out;
    }

    // ---- LLC miss: fill from DRAM -----------------------------------------
    ++st.llcMisses;
    if (probe.sampled && probe.hit) {
        out.interThreadMiss = true;
        ++st.interThreadMissesSampled;
    }
    if (params_.oracleAtds && oracle.hit) {
        out.oracleInterThreadMiss = true;
        ++st.oracleInterThreadMisses;
    }

    TagEntry victim;
    TagEntry &dir = llc_.insert(line, &victim);
    if (victim.valid) {
        // Inclusive LLC: back-invalidate every L1 copy of the victim.
        for (std::uint64_t rest = victim.sharers; rest != 0;
             rest &= rest - 1) {
            const int c = __builtin_ctzll(rest);
            l1s_[static_cast<std::size_t>(c)].invalidate(
                victim.line, /*keep_tag=*/false);
        }
        if (victim.dirty || victim.dirtyOwner != kInvalidId) {
            out.victimWriteback = true;
            out.victimLine = victim.line;
            ++st.writebacks;
        }
    }
    dir.sharers = bit(core);
    dir.dirtyOwner = is_write ? core : kInvalidId;
    dir.dirty = is_write;
    dir.filledBy = core;
    insertIntoL1(core, line, is_write, dir);
    return out;
}

void
CacheHierarchy::resetStats()
{
    for (auto &st : stats_)
        st = CacheStats{};
}

void
CacheHierarchy::flushL1(CoreId core)
{
    auto &l1 = l1s_[static_cast<std::size_t>(core)];
    for (const TagEntry &e : l1.raw()) {
        if (!e.valid)
            continue;
        if (TagEntry *vdir = llc_.findValid(e.line)) {
            vdir->sharers &= ~bit(core);
            if (e.dirty) {
                vdir->dirty = true;
                if (vdir->dirtyOwner == core)
                    vdir->dirtyOwner = kInvalidId;
            }
        }
    }
    l1.reset();
}

} // namespace sst
