#include "set_assoc.hh"

#include "util/logging.hh"

namespace sst {

namespace {

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

SetAssocArray::SetAssocArray(std::uint64_t size_bytes, int ways)
    : sets_(static_cast<int>(size_bytes / kLineBytes /
                             static_cast<std::uint64_t>(ways))),
      ways_(ways)
{
    sstAssert(ways_ > 0, "cache needs at least one way");
    sstAssert(sets_ > 0, "cache needs at least one set");
    sstAssert(isPow2(static_cast<std::uint64_t>(sets_)),
              "cache set count must be a power of two");
    entries_.resize(static_cast<std::size_t>(sets_) *
                    static_cast<std::size_t>(ways_));
}

SetAssocArray::SetAssocArray(int sets, int ways, bool)
    : sets_(sets), ways_(ways)
{
    sstAssert(ways_ > 0, "cache needs at least one way");
    sstAssert(sets_ > 0, "cache needs at least one set");
    sstAssert(isPow2(static_cast<std::uint64_t>(sets_)),
              "cache set count must be a power of two");
    entries_.resize(static_cast<std::size_t>(sets_) *
                    static_cast<std::size_t>(ways_));
}

SetAssocArray
SetAssocArray::fromSets(int sets, int ways)
{
    return SetAssocArray(sets, ways, true);
}

TagEntry *
SetAssocArray::entryAt(std::uint64_t set, int way)
{
    return &entries_[set * static_cast<std::uint64_t>(ways_) +
                     static_cast<std::uint64_t>(way)];
}

TagEntry *
SetAssocArray::findValid(Addr line)
{
    const std::uint64_t set = setIndex(line);
    for (int w = 0; w < ways_; ++w) {
        TagEntry *e = entryAt(set, w);
        if (e->valid && e->line == line)
            return e;
    }
    return nullptr;
}

TagEntry *
SetAssocArray::findAny(Addr line)
{
    const std::uint64_t set = setIndex(line);
    for (int w = 0; w < ways_; ++w) {
        TagEntry *e = entryAt(set, w);
        if ((e->valid || e->coherenceInvalidated) && e->line == line)
            return e;
    }
    return nullptr;
}

void
SetAssocArray::touch(TagEntry &entry)
{
    entry.lruStamp = ++stamp_;
}

TagEntry &
SetAssocArray::insert(Addr line, TagEntry *victim)
{
    const std::uint64_t set = setIndex(line);

    // Prefer reusing a resident-but-invalid entry for the same line, then
    // any free way, then the LRU way.
    TagEntry *target = nullptr;
    for (int w = 0; w < ways_; ++w) {
        TagEntry *e = entryAt(set, w);
        if (e->line == line && (e->valid || e->coherenceInvalidated)) {
            target = e;
            break;
        }
    }
    if (!target) {
        for (int w = 0; w < ways_; ++w) {
            TagEntry *e = entryAt(set, w);
            if (!e->valid && !e->coherenceInvalidated) {
                target = e;
                break;
            }
        }
    }
    if (!target) {
        target = entryAt(set, 0);
        for (int w = 1; w < ways_; ++w) {
            TagEntry *e = entryAt(set, w);
            if (e->lruStamp < target->lruStamp)
                target = e;
        }
    }

    if (victim) {
        *victim = *target;
        // A coherence-invalidated resident tag is not a live victim.
        if (!target->valid)
            victim->valid = false;
    }

    *target = TagEntry{};
    target->line = line;
    target->valid = true;
    target->lruStamp = ++stamp_;
    return *target;
}

bool
SetAssocArray::invalidate(Addr line, bool keep_tag)
{
    TagEntry *e = findValid(line);
    if (!e)
        return false;
    if (keep_tag) {
        e->valid = false;
        e->coherenceInvalidated = true;
        e->dirty = false;
    } else {
        *e = TagEntry{};
    }
    return true;
}

std::uint64_t
SetAssocArray::validCount() const
{
    std::uint64_t n = 0;
    for (const auto &e : entries_) {
        if (e.valid)
            ++n;
    }
    return n;
}

} // namespace sst
