#include "set_assoc.hh"

#include "util/bits.hh"
#include "util/logging.hh"

namespace sst {

SetAssocArray::SetAssocArray(std::uint64_t size_bytes, int ways)
    : sets_(static_cast<int>(size_bytes / kLineBytes /
                             static_cast<std::uint64_t>(ways))),
      ways_(ways)
{
    sstAssert(ways_ > 0, "cache needs at least one way");
    sstAssert(sets_ > 0, "cache needs at least one set");
    sstAssert(isPow2(static_cast<std::uint64_t>(sets_)),
              "cache set count must be a power of two");
    entries_.resize(static_cast<std::size_t>(sets_) *
                    static_cast<std::size_t>(ways_));
    tags_.assign(entries_.size(), kNoTag);
    stamps_.assign(entries_.size(), 0);
}

SetAssocArray::SetAssocArray(int sets, int ways, bool)
    : sets_(sets), ways_(ways)
{
    sstAssert(ways_ > 0, "cache needs at least one way");
    sstAssert(sets_ > 0, "cache needs at least one set");
    sstAssert(isPow2(static_cast<std::uint64_t>(sets_)),
              "cache set count must be a power of two");
    entries_.resize(static_cast<std::size_t>(sets_) *
                    static_cast<std::size_t>(ways_));
    tags_.assign(entries_.size(), kNoTag);
    stamps_.assign(entries_.size(), 0);
}

SetAssocArray
SetAssocArray::fromSets(int sets, int ways)
{
    return SetAssocArray(sets, ways, true);
}

TagEntry *
SetAssocArray::entryAt(std::uint64_t set, int way)
{
    return &entries_[set * static_cast<std::uint64_t>(ways_) +
                     static_cast<std::uint64_t>(way)];
}

TagEntry &
SetAssocArray::insert(Addr line, TagEntry *victim)
{
    const std::uint64_t set = setIndex(line);

    // Prefer reusing a resident-but-invalid entry for the same line, then
    // the first free way, then the LRU way — selected in one fused pass
    // over the compact side arrays (tag search was three passes before,
    // and insert is the hottest function in the simulator). The LRU
    // candidate tracks the first minimum in way order among occupied
    // ways, exactly like the historical dedicated scan.
    const std::size_t base =
        static_cast<std::size_t>(set * static_cast<std::uint64_t>(ways_));
    std::size_t match = base + static_cast<std::size_t>(ways_);
    std::size_t free_way = match;
    std::size_t lru = match;
    for (std::size_t i = base; i < base + static_cast<std::size_t>(ways_);
         ++i) {
        const Addr tag = tags_[i];
        if (tag == line) {
            match = i;
            break;
        }
        if (tag == kNoTag) {
            if (free_way == base + static_cast<std::size_t>(ways_))
                free_way = i;
        } else if (lru == base + static_cast<std::size_t>(ways_) ||
                   stamps_[i] < stamps_[lru]) {
            lru = i;
        }
    }
    const std::size_t end = base + static_cast<std::size_t>(ways_);
    TagEntry *target = &entries_[match != end    ? match
                                 : free_way != end ? free_way
                                                   : lru];

    if (victim) {
        *victim = *target;
        // A coherence-invalidated resident tag is not a live victim.
        if (!target->valid)
            victim->valid = false;
    }

    *target = TagEntry{};
    target->line = line;
    target->valid = true;
    target->lruStamp = ++stamp_;
    const std::size_t idx =
        static_cast<std::size_t>(target - entries_.data());
    tags_[idx] = line;
    stamps_[idx] = target->lruStamp;
    return *target;
}

bool
SetAssocArray::invalidate(Addr line, bool keep_tag)
{
    TagEntry *e = findValid(line);
    if (!e)
        return false;
    if (keep_tag) {
        e->valid = false;
        e->coherenceInvalidated = true;
        e->dirty = false;
        // Still resident: the tag stays in the probe array.
    } else {
        *e = TagEntry{};
        const std::size_t idx =
            static_cast<std::size_t>(e - entries_.data());
        tags_[idx] = kNoTag;
        stamps_[idx] = 0;
    }
    return true;
}

void
SetAssocArray::reset()
{
    for (TagEntry &e : entries_)
        e = TagEntry{};
    tags_.assign(entries_.size(), kNoTag);
    stamps_.assign(entries_.size(), 0);
}

std::uint64_t
SetAssocArray::validCount() const
{
    std::uint64_t n = 0;
    for (const auto &e : entries_) {
        if (e.valid)
            ++n;
    }
    return n;
}

} // namespace sst
