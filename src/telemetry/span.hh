/**
 * @file
 * Named timed spans recorded into per-thread ring buffers and exported
 * as Chrome `trace_event` JSON (loadable in Perfetto / chrome://tracing).
 *
 * Span sources:
 *  - driver job lifecycle: validate → baseline → simulate → cache-store
 *    (one lane per pool worker thread);
 *  - serve lifecycle: submit → enqueue → lease → heartbeat → done (one
 *    lane per connection-handler / local-worker thread).
 *
 * Disabled by default: ScopedSpan checks one relaxed atomic and reads
 * no clock when tracing is off, so instrumented code paths cost nothing
 * outside `--trace-out` runs. Recording takes a per-ring mutex that is
 * uncontended in practice (only the owning thread writes; export reads
 * briefly). Rings are fixed-capacity; overflow overwrites the oldest
 * span and is counted in dropped().
 *
 * Tracing is write-only for the simulation — span recording never feeds
 * back into scheduling or results, so traces cannot perturb determinism.
 */

#ifndef SST_TELEMETRY_SPAN_HH
#define SST_TELEMETRY_SPAN_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sst {
namespace telemetry {

/** One completed span, times in nanoseconds since the tracer epoch. */
struct Span
{
    std::string name;
    const char *category = "";
    std::uint64_t startNs = 0;
    std::uint64_t endNs = 0;
    std::uint64_t seq = 0; ///< per-ring record order (for stable sorts)
};

/** The process-wide span recorder. See file comment. */
class SpanTracer
{
  public:
    /** Spans kept per thread before the oldest is overwritten. */
    static constexpr std::size_t kRingCapacity = 1 << 16;

    static SpanTracer &global();

    /** Enabling (re)stamps the epoch; all span times are relative. */
    void setEnabled(bool on);

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Nanoseconds since the epoch set by setEnabled(true). */
    std::uint64_t nowNs() const;

    /** Record a completed span on the calling thread's ring. */
    void record(std::string name, const char *category,
                std::uint64_t start_ns, std::uint64_t end_ns);

    /** Spans overwritten because a ring filled, over all rings. */
    std::uint64_t dropped() const;

    /**
     * Export every recorded span as Chrome trace_event JSON: B/E pairs
     * per thread lane, timestamps in microseconds. Spans recorded by a
     * thread nest properly (RAII), so the per-lane B/E stream is
     * well-formed.
     */
    std::string chromeTraceJson() const;

    /** Drop every recorded span (rings stay registered). */
    void clear();

  private:
    struct Ring
    {
        mutable std::mutex mutex;
        std::vector<Span> spans; ///< ring storage, capacity-bounded
        std::size_t next = 0;    ///< overwrite cursor once full
        std::uint64_t seq = 0;
        std::uint64_t drops = 0;
        int lane = 0; ///< stable tid for the export
    };

    Ring &ringForThisThread();

    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex ringsMutex_;
    std::vector<std::unique_ptr<Ring>> rings_;
};

/**
 * RAII span: records [construction, destruction) on the calling
 * thread when tracing is enabled, does nothing (one branch, no clock
 * read) otherwise. @p name and @p category must outlive the scope
 * (string literals).
 */
class ScopedSpan
{
  public:
    ScopedSpan(const char *name, const char *category)
        : name_(name), category_(category)
    {
        SpanTracer &tracer = SpanTracer::global();
        if (tracer.enabled()) {
            active_ = true;
            startNs_ = tracer.nowNs();
        }
    }

    ~ScopedSpan()
    {
        if (active_) {
            SpanTracer &tracer = SpanTracer::global();
            tracer.record(name_, category_, startNs_, tracer.nowNs());
        }
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const char *name_;
    const char *category_;
    std::uint64_t startNs_ = 0;
    bool active_ = false;
};

} // namespace telemetry
} // namespace sst

#endif // SST_TELEMETRY_SPAN_HH
