/**
 * @file
 * Lock-cheap metrics registry: monotonic counters, gauges and
 * fixed-bucket histograms, exposed as Prometheus-style text
 * (`name{label="v"} value`).
 *
 * Design:
 *  - acquisition (`Registry::counter(...)`) takes a mutex once and
 *    returns a handle wrapping a raw pointer into registry-owned,
 *    address-stable storage; the hot path (inc/set/observe) is a single
 *    relaxed atomic op behind an inlined null check;
 *  - when the registry is disabled (the default outside `sst serve` /
 *    `--trace-out` runs) acquisition returns a null handle whose
 *    operations compile down to a predictable no-op branch — telemetry
 *    never costs a run that did not ask for it;
 *  - exposition is one flat walk over a std::map keyed by
 *    (family name, canonical label string), so the rendered text is
 *    deterministically ordered and golden-diffable;
 *  - telemetry is write-only for the simulation: nothing in sim/ or
 *    driver/ ever reads a metric back, so enabling it cannot perturb
 *    results (CI diffs golden CSVs with telemetry on vs off).
 */

#ifndef SST_TELEMETRY_METRICS_HH
#define SST_TELEMETRY_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sst {
namespace telemetry {

/** Metric labels as (name, value) pairs; sorted by name on lookup. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Monotonic counter. */
class Counter
{
  public:
    void
    inc(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram: cumulative-style buckets with configured
 * upper bounds plus an implicit +Inf bucket. observe() is a linear
 * scan over the (few) bounds and two relaxed atomic adds; quantiles
 * are estimated from bucket counts at render time (the reported value
 * is the upper bound of the bucket containing the quantile).
 */
class Histogram
{
  public:
    /** @p bounds must be strictly ascending upper bounds. */
    explicit Histogram(std::vector<double> bounds);

    void observe(double v);

    std::uint64_t count() const;
    double sum() const;

    /** Upper bound of the bucket holding quantile @p q in [0,1]. */
    double quantile(double q) const;

    const std::vector<double> &bounds() const { return bounds_; }

    /** Count in bucket @p i (0..bounds().size(); last is +Inf). */
    std::uint64_t bucketCount(std::size_t i) const;

  private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/** No-op-when-null handle over a registry-owned counter. */
class CounterHandle
{
  public:
    CounterHandle() = default;
    explicit CounterHandle(Counter *c) : c_(c) {}

    void
    inc(std::uint64_t n = 1)
    {
        if (c_)
            c_->inc(n);
    }

    explicit operator bool() const { return c_ != nullptr; }

  private:
    Counter *c_ = nullptr;
};

/** No-op-when-null handle over a registry-owned gauge. */
class GaugeHandle
{
  public:
    GaugeHandle() = default;
    explicit GaugeHandle(Gauge *g) : g_(g) {}

    void
    set(double v)
    {
        if (g_)
            g_->set(v);
    }

    explicit operator bool() const { return g_ != nullptr; }

  private:
    Gauge *g_ = nullptr;
};

/** No-op-when-null handle over a registry-owned histogram. */
class HistogramHandle
{
  public:
    HistogramHandle() = default;
    explicit HistogramHandle(Histogram *h) : h_(h) {}

    void
    observe(double v)
    {
        if (h_)
            h_->observe(v);
    }

    explicit operator bool() const { return h_ != nullptr; }

  private:
    Histogram *h_ = nullptr;
};

/**
 * The process-wide metric registry. Disabled by default: every
 * acquisition returns a null handle until setEnabled(true). Metrics
 * live for the registry's lifetime (handles are never invalidated
 * except by reset(), which is test-only).
 */
class Registry
{
  public:
    static Registry &global();

    void setEnabled(bool on);
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    CounterHandle counter(const std::string &name,
                          const Labels &labels = {});
    GaugeHandle gauge(const std::string &name, const Labels &labels = {});

    /** @p bounds: ascending bucket upper bounds (+Inf is implicit). */
    HistogramHandle histogram(const std::string &name, const Labels &labels,
                              std::vector<double> bounds);

    /**
     * Render every registered metric as Prometheus-style text, ordered
     * by (family name, label string) — byte-stable across runs given
     * the same metric values. Histograms render `_bucket{le=...}`,
     * `_sum`, `_count` plus p50/p95/p99 `{quantile="..."}` lines.
     */
    std::string renderText() const;

    /** Drop every metric and disable. Test-only: invalidates handles. */
    void reset();

  private:
    enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

    struct Entry
    {
        Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    /** (family, canonical rendered label string) — the render order. */
    using Key = std::pair<std::string, std::string>;

    Entry &entryFor(const std::string &name, const Labels &labels,
                    Kind kind, const std::vector<double> *bounds);

    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;
    std::map<Key, Entry> entries_;
};

/** Escape a label value: backslash, double quote and newline. */
std::string escapeLabelValue(const std::string &v);

/** Canonical `{a="x",b="y"}` rendering ("" when no labels). */
std::string renderLabels(const Labels &labels);

/** Stable shortest-ish decimal rendering used by the exposition. */
std::string formatMetricValue(double v);

} // namespace telemetry
} // namespace sst

#endif // SST_TELEMETRY_METRICS_HH
