#include "span.hh"

#include <algorithm>
#include <cstdio>

namespace sst {
namespace telemetry {

SpanTracer &
SpanTracer::global()
{
    static SpanTracer instance;
    return instance;
}

void
SpanTracer::setEnabled(bool on)
{
    if (on)
        epoch_ = std::chrono::steady_clock::now();
    enabled_.store(on, std::memory_order_relaxed);
}

std::uint64_t
SpanTracer::nowNs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

SpanTracer::Ring &
SpanTracer::ringForThisThread()
{
    thread_local Ring *cached = nullptr;
    if (cached)
        return *cached;
    std::lock_guard<std::mutex> lock(ringsMutex_);
    rings_.push_back(std::make_unique<Ring>());
    Ring &ring = *rings_.back();
    ring.lane = static_cast<int>(rings_.size());
    ring.spans.reserve(256);
    cached = &ring;
    return ring;
}

void
SpanTracer::record(std::string name, const char *category,
                   std::uint64_t start_ns, std::uint64_t end_ns)
{
    Ring &ring = ringForThisThread();
    std::lock_guard<std::mutex> lock(ring.mutex);
    Span span;
    span.name = std::move(name);
    span.category = category;
    span.startNs = start_ns;
    span.endNs = end_ns;
    span.seq = ring.seq++;
    if (ring.spans.size() < kRingCapacity) {
        ring.spans.push_back(std::move(span));
    } else {
        ring.spans[ring.next] = std::move(span);
        ring.next = (ring.next + 1) % kRingCapacity;
        ++ring.drops;
    }
}

std::uint64_t
SpanTracer::dropped() const
{
    std::lock_guard<std::mutex> lock(ringsMutex_);
    std::uint64_t total = 0;
    for (const auto &ring : rings_) {
        std::lock_guard<std::mutex> ringLock(ring->mutex);
        total += ring->drops;
    }
    return total;
}

void
SpanTracer::clear()
{
    std::lock_guard<std::mutex> lock(ringsMutex_);
    for (auto &ring : rings_) {
        std::lock_guard<std::mutex> ringLock(ring->mutex);
        ring->spans.clear();
        ring->next = 0;
        ring->seq = 0;
        ring->drops = 0;
    }
}

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
microseconds(std::uint64_t ns)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    return buf;
}

void
appendEvent(std::string &out, bool &first, const Span &span, int lane,
            char phase)
{
    if (!first)
        out += ",\n";
    first = false;
    out += "{\"name\":\"" + jsonEscape(span.name) + "\",\"cat\":\"" +
           jsonEscape(span.category) + "\",\"ph\":\"";
    out += phase;
    out += "\",\"pid\":1,\"tid\":" + std::to_string(lane) +
           ",\"ts\":" +
           microseconds(phase == 'B' ? span.startNs : span.endNs) + "}";
}

} // namespace

std::string
SpanTracer::chromeTraceJson() const
{
    std::lock_guard<std::mutex> lock(ringsMutex_);
    std::string out = "{\"traceEvents\":[\n";
    bool first = true;
    for (const auto &ringPtr : rings_) {
        const Ring &ring = *ringPtr;
        std::lock_guard<std::mutex> ringLock(ring.mutex);
        std::vector<const Span *> spans;
        spans.reserve(ring.spans.size());
        for (const Span &span : ring.spans)
            spans.push_back(&span);
        // A thread records a span when its scope *closes*, so ring
        // order is end-time order. For B/E emission sort by start time
        // (ties: outermost — later end — first; then record order).
        std::sort(spans.begin(), spans.end(),
                  [](const Span *a, const Span *b) {
                      if (a->startNs != b->startNs)
                          return a->startNs < b->startNs;
                      if (a->endNs != b->endNs)
                          return a->endNs > b->endNs;
                      return a->seq > b->seq;
                  });
        // Emit B/E pairs with a scope stack: RAII guarantees spans on
        // one thread either nest or are disjoint, so closing every
        // stacked span that ends before the next one starts yields a
        // well-formed stream.
        std::vector<const Span *> stack;
        for (const Span *span : spans) {
            while (!stack.empty() &&
                   stack.back()->endNs <= span->startNs) {
                appendEvent(out, first, *stack.back(), ring.lane, 'E');
                stack.pop_back();
            }
            appendEvent(out, first, *span, ring.lane, 'B');
            stack.push_back(span);
        }
        while (!stack.empty()) {
            appendEvent(out, first, *stack.back(), ring.lane, 'E');
            stack.pop_back();
        }
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

} // namespace telemetry
} // namespace sst
