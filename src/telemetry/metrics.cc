#include "metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace sst {
namespace telemetry {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds))
{
    for (std::size_t i = 1; i < bounds_.size(); ++i)
        sstAssert(bounds_[i - 1] < bounds_[i],
                  "Histogram: bucket bounds must be strictly ascending");
    buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
        bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
}

void
Histogram::observe(double v)
{
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i])
        ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed))
        ;
}

std::uint64_t
Histogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    return buckets_[i].load(std::memory_order_relaxed);
}

double
Histogram::quantile(double q) const
{
    const std::uint64_t total = count();
    if (total == 0)
        return 0.0;
    // Rank of the quantile observation (1-based, ceil).
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::ceil(q * total)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        seen += bucketCount(i);
        if (seen >= rank)
            return bounds_[i];
    }
    // In the +Inf bucket: the histogram cannot bound it better than the
    // largest finite bound.
    return bounds_.empty() ? 0.0 : bounds_.back();
}

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

void
Registry::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

std::string
escapeLabelValue(const std::string &v)
{
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '"':
            out += "\\\"";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out += c;
        }
    }
    return out;
}

std::string
renderLabels(const Labels &labels)
{
    if (labels.empty())
        return "";
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    std::string out = "{";
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        if (i)
            out += ",";
        out += sorted[i].first;
        out += "=\"";
        out += escapeLabelValue(sorted[i].second);
        out += "\"";
    }
    out += "}";
    return out;
}

std::string
formatMetricValue(double v)
{
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::abs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

Registry::Entry &
Registry::entryFor(const std::string &name, const Labels &labels,
                   Kind kind, const std::vector<double> *bounds)
{
    const Key key{name, renderLabels(labels)};
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        Entry entry;
        entry.kind = kind;
        switch (kind) {
        case Kind::kCounter:
            entry.counter = std::make_unique<Counter>();
            break;
        case Kind::kGauge:
            entry.gauge = std::make_unique<Gauge>();
            break;
        case Kind::kHistogram:
            entry.histogram = std::make_unique<Histogram>(*bounds);
            break;
        }
        it = entries_.emplace(key, std::move(entry)).first;
    }
    sstAssert(it->second.kind == kind,
              "Registry: metric '" + name +
                  "' re-registered with a different kind");
    return it->second;
}

CounterHandle
Registry::counter(const std::string &name, const Labels &labels)
{
    if (!enabled())
        return CounterHandle();
    std::lock_guard<std::mutex> lock(mutex_);
    return CounterHandle(
        entryFor(name, labels, Kind::kCounter, nullptr).counter.get());
}

GaugeHandle
Registry::gauge(const std::string &name, const Labels &labels)
{
    if (!enabled())
        return GaugeHandle();
    std::lock_guard<std::mutex> lock(mutex_);
    return GaugeHandle(
        entryFor(name, labels, Kind::kGauge, nullptr).gauge.get());
}

HistogramHandle
Registry::histogram(const std::string &name, const Labels &labels,
                    std::vector<double> bounds)
{
    if (!enabled())
        return HistogramHandle();
    std::lock_guard<std::mutex> lock(mutex_);
    return HistogramHandle(
        entryFor(name, labels, Kind::kHistogram, &bounds)
            .histogram.get());
}

namespace {

/** Insert the extra `le`/`quantile` label into a rendered label set. */
std::string
withExtraLabel(const std::string &rendered, const std::string &label,
               const std::string &value)
{
    std::string extra = label + "=\"" + value + "\"";
    if (rendered.empty())
        return "{" + extra + "}";
    // rendered == "{...}": splice before the closing brace.
    return rendered.substr(0, rendered.size() - 1) + "," + extra + "}";
}

} // namespace

std::string
Registry::renderText() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    std::string lastFamily;
    for (const auto &kv : entries_) {
        const std::string &name = kv.first.first;
        const std::string &labels = kv.first.second;
        const Entry &entry = kv.second;
        if (name != lastFamily) {
            const char *type = entry.kind == Kind::kCounter ? "counter"
                               : entry.kind == Kind::kGauge
                                   ? "gauge"
                                   : "histogram";
            out += "# TYPE " + name + " " + type + "\n";
            lastFamily = name;
        }
        switch (entry.kind) {
        case Kind::kCounter:
            out += name + labels + " " +
                   std::to_string(entry.counter->value()) + "\n";
            break;
        case Kind::kGauge:
            out += name + labels + " " +
                   formatMetricValue(entry.gauge->value()) + "\n";
            break;
        case Kind::kHistogram: {
            const Histogram &h = *entry.histogram;
            std::uint64_t cum = 0;
            for (std::size_t i = 0; i < h.bounds().size(); ++i) {
                cum += h.bucketCount(i);
                out += name + "_bucket" +
                       withExtraLabel(labels, "le",
                                      formatMetricValue(h.bounds()[i])) +
                       " " + std::to_string(cum) + "\n";
            }
            cum += h.bucketCount(h.bounds().size());
            out += name + "_bucket" +
                   withExtraLabel(labels, "le", "+Inf") + " " +
                   std::to_string(cum) + "\n";
            out += name + "_sum" + labels + " " +
                   formatMetricValue(h.sum()) + "\n";
            out += name + "_count" + labels + " " +
                   std::to_string(h.count()) + "\n";
            static const struct
            {
                const char *label;
                double q;
            } kQuantiles[] = {
                {"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}};
            for (const auto &q : kQuantiles)
                out += name +
                       withExtraLabel(labels, "quantile", q.label) +
                       " " + formatMetricValue(h.quantile(q.q)) + "\n";
            break;
        }
        }
    }
    return out;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    enabled_.store(false, std::memory_order_relaxed);
    entries_.clear();
}

} // namespace telemetry
} // namespace sst
