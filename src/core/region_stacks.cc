#include "region_stacks.hh"

#include "util/logging.hh"

namespace sst {

namespace {

/** Component-relevant counter delta between two snapshots. */
ThreadCounters
delta(const ThreadCounters &now, const ThreadCounters &before)
{
    ThreadCounters d = now;
    d.instructions -= before.instructions;
    d.spinInstructions -= before.spinInstructions;
    d.llcLoadMissStall -= before.llcLoadMissStall;
    d.llcLoadMisses -= before.llcLoadMisses;
    d.negLlcSampledStall -= before.negLlcSampledStall;
    d.interThreadMissesSampled -= before.interThreadMissesSampled;
    d.interThreadHitsSampled -= before.interThreadHitsSampled;
    d.llcAccesses -= before.llcAccesses;
    d.atdSampledAccesses -= before.atdSampledAccesses;
    d.busWaitOther -= before.busWaitOther;
    d.bankWaitOther -= before.bankWaitOther;
    d.pageConflictOther -= before.pageConflictOther;
    d.spinDetectedTian -= before.spinDetectedTian;
    d.spinDetectedLi -= before.spinDetectedLi;
    d.yieldCycles -= before.yieldCycles;
    d.coherencyMisses -= before.coherencyMisses;
    return d;
}

} // namespace

std::vector<RegionStack>
buildRegionStacks(const RunResult &run, const ReportOptions &opts)
{
    std::vector<RegionStack> out;
    const std::size_t nthreads =
        static_cast<std::size_t>(run.nthreads);

    Cycles prev_at = 0;
    const std::vector<ThreadCounters> *prev = nullptr;

    auto emit = [&](BarrierId barrier, Cycles at,
                    const std::vector<ThreadCounters> &counters) {
        if (at <= prev_at)
            return;
        const Cycles span = at - prev_at;
        std::vector<ThreadCounters> deltas;
        deltas.reserve(nthreads);
        for (std::size_t t = 0; t < nthreads; ++t) {
            ThreadCounters d =
                prev ? delta(counters[t], (*prev)[t]) : counters[t];
            // Within a region every thread "finishes" at the closing
            // barrier: imbalance is zero by construction and the
            // barrier wait shows up as spin/yield of this region.
            d.finishTime = span;
            deltas.push_back(d);
        }
        RegionStack rs;
        rs.barrier = barrier;
        rs.begin = prev_at;
        rs.end = at;
        rs.stack = buildSpeedupStack(computeComponents(deltas, span, opts),
                                     span);
        out.push_back(std::move(rs));
    };

    for (const RegionBoundary &rb : run.regions) {
        sstAssert(rb.counters.size() == nthreads,
                  "region snapshot thread count mismatch");
        emit(rb.barrier, rb.at, rb.counters);
        prev_at = rb.at;
        prev = &rb.counters;
    }

    // Tail region after the last barrier (work before the threads end).
    if (run.executionTime > prev_at) {
        // Final counters, with per-thread finish times preserved so the
        // tail's imbalance is measured as in the whole-run stack.
        std::vector<ThreadCounters> deltas;
        for (std::size_t t = 0; t < nthreads; ++t) {
            ThreadCounters d =
                prev ? delta(run.threads[t], (*prev)[t]) : run.threads[t];
            d.finishTime = run.threads[t].finishTime > prev_at
                               ? run.threads[t].finishTime - prev_at
                               : 0;
            deltas.push_back(d);
        }
        RegionStack rs;
        rs.barrier = kInvalidId;
        rs.begin = prev_at;
        rs.end = run.executionTime;
        const Cycles span = run.executionTime - prev_at;
        rs.stack = buildSpeedupStack(computeComponents(deltas, span, opts),
                                     span);
        out.push_back(std::move(rs));
    }
    return out;
}

} // namespace sst
