#include "speedup_stack.hh"

#include <cmath>

#include "util/logging.hh"

namespace sst {

const char *
stackComponentName(StackComponent comp)
{
    switch (comp) {
      case StackComponent::kBase:
        return "base speedup";
      case StackComponent::kPosLlc:
        return "positive LLC interference";
      case StackComponent::kNegLlcNet:
        return "net negative LLC interference";
      case StackComponent::kNegMem:
        return "negative memory interference";
      case StackComponent::kSpin:
        return "spinning";
      case StackComponent::kYield:
        return "yielding";
      case StackComponent::kImbalance:
        return "imbalance";
      case StackComponent::kCoherency:
        return "cache coherency";
    }
    return "?";
}

const std::vector<StackComponent> &
allStackComponents()
{
    static const std::vector<StackComponent> order = {
        StackComponent::kBase,      StackComponent::kPosLlc,
        StackComponent::kNegLlcNet, StackComponent::kNegMem,
        StackComponent::kSpin,      StackComponent::kYield,
        StackComponent::kImbalance, StackComponent::kCoherency,
    };
    return order;
}

double
SpeedupStack::componentValue(StackComponent comp) const
{
    switch (comp) {
      case StackComponent::kBase:
        return baseSpeedup;
      case StackComponent::kPosLlc:
        return posLlc;
      case StackComponent::kNegLlcNet:
        return netNegLlc();
      case StackComponent::kNegMem:
        return negMem;
      case StackComponent::kSpin:
        return spin;
      case StackComponent::kYield:
        return yield;
      case StackComponent::kImbalance:
        return imbalance;
      case StackComponent::kCoherency:
        return coherency;
    }
    return 0.0;
}

bool
SpeedupStack::sumsToHeight(double tol) const
{
    double sum = 0.0;
    for (const StackComponent comp : allStackComponents())
        sum += componentValue(comp);
    return std::fabs(sum - static_cast<double>(nthreads)) <= tol;
}

SpeedupStack
buildSpeedupStack(const std::vector<CycleComponents> &comps, Cycles tp)
{
    sstAssert(tp > 0, "buildSpeedupStack needs a positive Tp");
    SpeedupStack stack;
    stack.nthreads = static_cast<int>(comps.size());

    const double tpd = static_cast<double>(tp);
    double overhead_sum = 0.0;
    for (const CycleComponents &c : comps) {
        stack.posLlc += c.posLlc / tpd;
        stack.negLlc += c.negLlc / tpd;
        stack.negMem += c.negMem / tpd;
        stack.spin += c.spin / tpd;
        stack.yield += c.yield / tpd;
        stack.imbalance += c.imbalance / tpd;
        stack.coherency += c.coherency / tpd;
        overhead_sum += c.overheadSum() / tpd;
    }
    stack.baseSpeedup = static_cast<double>(stack.nthreads) - overhead_sum;
    stack.estimatedSpeedup = stack.baseSpeedup + stack.posLlc;
    return stack;
}

double
speedupError(double estimated, double actual, int nthreads)
{
    return (estimated - actual) / static_cast<double>(nthreads);
}

} // namespace sst
