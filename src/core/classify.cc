#include "classify.hh"

#include <algorithm>

#include "util/format.hh"

namespace sst {

const char *
scalingClassName(ScalingClass c)
{
    switch (c) {
      case ScalingClass::kGood:
        return "good";
      case ScalingClass::kModerate:
        return "moderate";
      case ScalingClass::kPoor:
        return "poor";
    }
    return "?";
}

ScalingClass
classifySpeedup(double speedup)
{
    if (speedup >= 10.0)
        return ScalingClass::kGood;
    if (speedup < 5.0)
        return ScalingClass::kPoor;
    return ScalingClass::kModerate;
}

const char *
shortComponentName(StackComponent comp)
{
    switch (comp) {
      case StackComponent::kNegLlcNet:
        return "cache";
      case StackComponent::kNegMem:
        return "memory";
      case StackComponent::kSpin:
        return "spinning";
      case StackComponent::kYield:
        return "yielding";
      case StackComponent::kImbalance:
        return "imbalance";
      case StackComponent::kCoherency:
        return "coherency";
      case StackComponent::kBase:
        return "base";
      case StackComponent::kPosLlc:
        return "positive";
    }
    return "?";
}

std::vector<StackComponent>
rankedDelimiters(const SpeedupStack &stack, double negligible)
{
    struct Item
    {
        StackComponent comp;
        double value;
    };
    // The "cache" delimiter is the gross negative LLC interference: that
    // is the speedup recoverable by removing all negative cache sharing
    // (Section 7.1).
    std::vector<Item> items = {
        {StackComponent::kNegLlcNet, stack.negLlc},
        {StackComponent::kNegMem, stack.negMem},
        {StackComponent::kSpin, stack.spin},
        {StackComponent::kYield, stack.yield},
        {StackComponent::kImbalance, stack.imbalance},
        {StackComponent::kCoherency, stack.coherency},
    };
    std::stable_sort(items.begin(), items.end(),
                     [](const Item &a, const Item &b) {
                         return a.value > b.value;
                     });
    std::vector<StackComponent> out;
    for (const Item &it : items) {
        if (it.value >= negligible)
            out.push_back(it.comp);
    }
    return out;
}

ClassifiedBenchmark
classifyBenchmark(const std::string &label, const std::string &suite,
                  double actual_speedup, const SpeedupStack &stack,
                  double negligible)
{
    ClassifiedBenchmark row;
    row.label = label;
    row.suite = suite;
    row.speedup = actual_speedup;
    row.scaling = classifySpeedup(actual_speedup);
    row.delimiters = rankedDelimiters(stack, negligible);
    if (row.delimiters.size() > 3)
        row.delimiters.resize(3);
    return row;
}

std::string
renderClassificationTree(const std::vector<ClassifiedBenchmark> &rows)
{
    std::vector<ClassifiedBenchmark> sorted = rows;
    auto rank = [](ScalingClass c) {
        switch (c) {
          case ScalingClass::kGood:
            return 0;
          case ScalingClass::kModerate:
            return 1;
          case ScalingClass::kPoor:
            return 2;
        }
        return 3;
    };
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&](const ClassifiedBenchmark &a,
                         const ClassifiedBenchmark &b) {
                         if (rank(a.scaling) != rank(b.scaling))
                             return rank(a.scaling) < rank(b.scaling);
                         return a.speedup > b.speedup;
                     });

    TextTable table;
    table.setHeader({"scaling", "1st comp", "2nd comp", "3rd comp",
                     "benchmark", "suite", "speedup"});
    ScalingClass prev = ScalingClass::kGood;
    bool first = true;
    for (const auto &row : sorted) {
        if (!first && row.scaling != prev)
            table.addRule();
        first = false;
        prev = row.scaling;
        auto comp = [&](std::size_t i) {
            return i < row.delimiters.size()
                       ? std::string(shortComponentName(row.delimiters[i]))
                       : std::string("-");
        };
        table.addRow({scalingClassName(row.scaling), comp(0), comp(1),
                      comp(2), row.label, row.suite,
                      fmtDouble(row.speedup, 2)});
    }
    return table.render();
}

} // namespace sst
