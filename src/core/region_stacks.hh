/**
 * @file
 * Per-region speedup stacks (Section 4.6). The whole-run stack folds
 * barrier imbalance into spinning/yielding because the hardware cannot
 * tell lock waits from barrier waits. Splitting the run at barrier
 * releases and building one stack per region isolates where in the
 * program each delimiter bites: a region whose ending barrier is skewed
 * shows the wait concentrated in its own stack.
 */

#ifndef SST_CORE_REGION_STACKS_HH
#define SST_CORE_REGION_STACKS_HH

#include <vector>

#include "accounting/report.hh"
#include "core/speedup_stack.hh"
#include "sim/run_result.hh"

namespace sst {

/** One region's stack plus its span. */
struct RegionStack
{
    BarrierId barrier = 0; ///< barrier that closed the region
    Cycles begin = 0;      ///< RoI-relative start
    Cycles end = 0;        ///< RoI-relative end (barrier release)
    SpeedupStack stack;
};

/**
 * Build per-region stacks from a parallel run's boundary snapshots.
 * Region i spans (boundary[i-1].at, boundary[i].at]; counter deltas
 * between consecutive snapshots feed the usual component math, with the
 * region's own span as Tp. A final partial region (after the last
 * barrier) is emitted if the run continued past it.
 */
std::vector<RegionStack> buildRegionStacks(
    const RunResult &run, const ReportOptions &opts = ReportOptions());

} // namespace sst

#endif // SST_CORE_REGION_STACKS_HH
