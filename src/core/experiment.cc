#include "experiment.hh"

#include <chrono>

#include "telemetry/metrics.hh"
#include "util/logging.hh"

namespace sst {

ReportOptions
defaultReportOptions(const SimParams &params)
{
    ReportOptions opts;
    opts.nominalSamplingFactor =
        static_cast<double>(params.cache.atdSamplingFactor);
    return opts;
}

RunResult
runSingleThreaded(const SimParams &params, const BenchmarkProfile &profile)
{
    return simulate(params, profile, 1);
}

SpeedupExperiment
assembleExperiment(const std::string &label, int nthreads,
                   const SimParams &params, const RunResult &baseline,
                   RunResult parallel, const ReportOptions *opts)
{
    sstAssert(baseline.nthreads == 1,
              "baseline run must be single-threaded");
    const ReportOptions options =
        opts ? *opts : defaultReportOptions(params);

    SpeedupExperiment exp;
    exp.label = label;
    exp.nthreads = nthreads;
    exp.single = baseline;
    exp.parallel = std::move(parallel);

    exp.ts = exp.single.executionTime;
    exp.tp = exp.parallel.executionTime;
    exp.actualSpeedup = static_cast<double>(exp.ts) /
                        static_cast<double>(exp.tp);

    const std::vector<CycleComponents> comps =
        computeComponents(exp.parallel.threads, exp.tp, options);
    exp.stack = buildSpeedupStack(comps, exp.tp);
    exp.estimatedSpeedup = exp.stack.estimatedSpeedup;
    exp.error = speedupError(exp.estimatedSpeedup, exp.actualSpeedup,
                             nthreads);

    if (exp.single.totalInstructions > 0) {
        const double st =
            static_cast<double>(exp.single.totalInstructions);
        const double mt =
            static_cast<double>(exp.parallel.totalInstructions);
        exp.parOverheadMeasured = (mt - st) / st;
    }
    return exp;
}

SpeedupExperiment
runWithBaseline(const SimParams &params, const BenchmarkProfile &profile,
                int nthreads, const RunResult &baseline,
                const ReportOptions *opts, int ncores_override)
{
    // Check before the expensive parallel simulation, not after.
    sstAssert(baseline.nthreads == 1,
              "baseline run must be single-threaded");
    return assembleExperiment(
        profile.label(), nthreads, params, baseline,
        simulate(params, profile, nthreads, ncores_override), opts);
}

SpeedupExperiment
runSpeedupExperiment(const SimParams &params,
                     const BenchmarkProfile &profile, int nthreads,
                     const ReportOptions *opts, int ncores_override)
{
    const RunResult baseline = runSingleThreaded(params, profile);
    return runWithBaseline(params, profile, nthreads, baseline, opts,
                           ncores_override);
}

RunResult
combineGroupBaselines(const std::vector<RunResult> &group_baselines)
{
    sstAssert(!group_baselines.empty(),
              "combineGroupBaselines needs at least one run");
    if (group_baselines.size() == 1)
        return group_baselines[0];
    RunResult combined;
    combined.nthreads = 1;
    combined.ncores = 1;
    for (const RunResult &r : group_baselines) {
        sstAssert(r.nthreads == 1,
                  "group baselines must be single-threaded runs");
        combined.executionTime += r.executionTime;
        combined.totalInstructions += r.totalInstructions;
        combined.totalSpinInstructions += r.totalSpinInstructions;
        combined.engineEvents += r.engineEvents;
    }
    return combined;
}

SpeedupExperiment
runMixExperiment(const SimParams &params, const WorkloadSpec &workload,
                 const ReportOptions *opts, int ncores_override)
{
    workload.validate();
    if (workload.isHomogeneous()) {
        return runSpeedupExperiment(params, workload.groups[0].profile,
                                    workload.groups[0].nthreads, opts,
                                    ncores_override);
    }
    std::vector<RunResult> bases;
    bases.reserve(workload.groups.size());
    for (const WorkloadGroup &g : workload.groups)
        bases.push_back(runSingleThreaded(params, g.profile));
    return assembleExperiment(
        workload.label(), workload.nthreads(), params,
        combineGroupBaselines(bases),
        simulateWorkload(params, workload, ncores_override), opts);
}

const RunResult &
BaselineStore::get(const std::string &key, const SimParams &params,
                   const BenchmarkProfile &profile)
{
    return get(key,
               [&] { return runSingleThreaded(params, profile); });
}

const RunResult &
BaselineStore::get(const std::string &key,
                   const std::function<RunResult()> &compute)
{
    std::promise<std::shared_ptr<const RunResult>> promise;
    std::shared_future<std::shared_ptr<const RunResult>> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = futures_.find(key);
        if (it == futures_.end()) {
            future = promise.get_future().share();
            futures_.emplace(key, future);
            ++computes_;
            owner = true;
        } else {
            future = it->second;
        }
    }
    // Contention telemetry: a non-owner whose future is not yet ready
    // is blocked behind an in-flight compute of the same key. Sampled
    // only (never branched on), so results are unaffected.
    telemetry::Registry &registry = telemetry::Registry::global();
    if (registry.enabled()) {
        const char *outcome =
            owner ? "compute"
                  : future.wait_for(std::chrono::seconds(0)) ==
                            std::future_status::ready
                        ? "hit"
                        : "wait";
        registry
            .counter("sst_driver_baseline_requests_total",
                     {{"outcome", outcome}})
            .inc();
    }
    if (owner) {
        // Compute outside the lock so other keys proceed concurrently. A
        // failure propagates to every waiter of the same key.
        try {
            promise.set_value(
                std::make_shared<const RunResult>(compute()));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return *future.get();
}

std::size_t
BaselineStore::computeCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return computes_;
}

} // namespace sst
