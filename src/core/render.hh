/**
 * @file
 * Text rendering of speedup stacks: component breakdown tables, CSV
 * export, and Figure-5-style vertical ASCII stacked bars for side-by-side
 * visual comparison of benchmarks / thread counts.
 */

#ifndef SST_CORE_RENDER_HH
#define SST_CORE_RENDER_HH

#include <string>
#include <vector>

#include "core/speedup_stack.hh"

namespace sst {

/** Component table of a single stack (values in speedup units). */
std::string renderStackTable(const SpeedupStack &stack,
                             double actual_speedup = -1.0);

/**
 * Figure-5-style chart: one vertical stacked bar per entry, @p height
 * character rows tall, scaled to the tallest stack's N. Each component
 * renders with a distinct fill character, explained in a legend.
 */
std::string renderStackBars(const std::vector<SpeedupStack> &stacks,
                            const std::vector<std::string> &labels,
                            int height = 24);

/** CSV header + rows, one row per stack (for external plotting). */
std::string renderStacksCsv(const std::vector<SpeedupStack> &stacks,
                            const std::vector<std::string> &labels);

} // namespace sst

#endif // SST_CORE_RENDER_HH
