/**
 * @file
 * The speedup stack — the paper's primary contribution (Section 2).
 *
 * A speedup stack decomposes the gap between the ideal speedup N and the
 * achieved speedup of an N-threaded run into scaling delimiters. From
 * per-thread cycle components O_ij and P_i measured on the parallel run
 * alone:
 *
 *     T^_i = Tp - sum_j O_ij + P_i                        (Eq. 2)
 *     S^   = sum_i T^_i / Tp                              (Eq. 3)
 *          = N - sum_i sum_j O_ij / Tp + sum_i P_i / Tp   (Eq. 4)
 *     S^_base = N - sum_i sum_j O_ij / Tp                 (Eq. 5)
 *
 * All stack components are expressed in *speedup units* (cycles summed
 * over threads, divided by Tp), so base + all overhead components equals
 * N exactly, and the estimated speedup is base + positive interference.
 */

#ifndef SST_CORE_SPEEDUP_STACK_HH
#define SST_CORE_SPEEDUP_STACK_HH

#include <string>
#include <vector>

#include "accounting/report.hh"
#include "util/types.hh"

namespace sst {

/** Identifier of a stack component (display order: bottom to top). */
enum class StackComponent {
    kBase,       ///< base speedup (Eq. 5)
    kPosLlc,     ///< positive LLC interference
    kNegLlcNet,  ///< net negative LLC interference (neg - pos)
    kNegMem,     ///< negative memory interference (bus/bank/page)
    kSpin,       ///< spinning on locks and barriers
    kYield,      ///< descheduled while waiting on sync
    kImbalance,  ///< end-of-region load imbalance
    kCoherency,  ///< cache coherency (optional, off by default)
};

/** Human-readable component name as used in the paper's figures. */
const char *stackComponentName(StackComponent comp);

/** All components in display order. */
const std::vector<StackComponent> &allStackComponents();

/** A complete speedup stack for one (benchmark, thread-count) pair. */
struct SpeedupStack
{
    int nthreads = 0;

    // Aggregate components in speedup units.
    double posLlc = 0.0;
    double negLlc = 0.0; ///< gross negative LLC interference
    double negMem = 0.0;
    double spin = 0.0;
    double yield = 0.0;
    double imbalance = 0.0;
    double coherency = 0.0;

    /** Base speedup (Eq. 5): N minus all overhead components. */
    double baseSpeedup = 0.0;

    /** Estimated speedup (Eq. 3/4): base + positive interference. */
    double estimatedSpeedup = 0.0;

    /** Net negative LLC interference, the white component of Fig. 5. */
    double netNegLlc() const { return negLlc - posLlc; }

    /** Value of one display component in speedup units. */
    double componentValue(StackComponent comp) const;

    /**
     * Invariant check: all display components sum to N (the stack height)
     * within @p tol.
     */
    bool sumsToHeight(double tol = 1e-6) const;
};

/**
 * Build a speedup stack from per-thread cycle components (Section 2
 * math). @p tp is the parallel run's execution time.
 */
SpeedupStack buildSpeedupStack(const std::vector<CycleComponents> &comps,
                               Cycles tp);

/**
 * The paper's validation error metric (Eq. 6):
 * (estimated - actual) / N.
 */
double speedupError(double estimated, double actual, int nthreads);

} // namespace sst

#endif // SST_CORE_SPEEDUP_STACK_HH
