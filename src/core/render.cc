#include "render.hh"

#include <algorithm>
#include <cmath>

#include "util/format.hh"

namespace sst {

namespace {

/** Fill characters for the vertical bars, indexed like
 *  allStackComponents(). */
char
fillChar(StackComponent comp)
{
    switch (comp) {
      case StackComponent::kBase:
        return '#'; // base speedup (the paper's black component)
      case StackComponent::kPosLlc:
        return '+'; // positive LLC interference (dark gray)
      case StackComponent::kNegLlcNet:
        return '.'; // net negative LLC interference (white)
      case StackComponent::kNegMem:
        return 'm';
      case StackComponent::kSpin:
        return 's';
      case StackComponent::kYield:
        return 'y';
      case StackComponent::kImbalance:
        return 'i';
      case StackComponent::kCoherency:
        return 'c';
    }
    return '?';
}

} // namespace

std::string
renderStackTable(const SpeedupStack &stack, double actual_speedup)
{
    TextTable table;
    table.setHeader({"component", "speedup units"});
    for (const StackComponent comp : allStackComponents()) {
        const double v = stack.componentValue(comp);
        if (comp != StackComponent::kBase && std::fabs(v) < 1e-9)
            continue;
        table.addRow({stackComponentName(comp), fmtDouble(v, 3)});
    }
    table.addRule();
    table.addRow({"estimated speedup",
                  fmtDouble(stack.estimatedSpeedup, 3)});
    if (actual_speedup >= 0.0)
        table.addRow({"actual speedup", fmtDouble(actual_speedup, 3)});
    table.addRow({"stack height (N)",
                  fmtDouble(static_cast<double>(stack.nthreads), 0)});
    return table.render();
}

std::string
renderStackBars(const std::vector<SpeedupStack> &stacks,
                const std::vector<std::string> &labels, int height)
{
    if (stacks.empty())
        return "";

    int max_n = 1;
    for (const auto &s : stacks)
        max_n = std::max(max_n, s.nthreads);

    const int bar_width = 7;
    const std::size_t nbars = stacks.size();

    // Build each bar as a bottom-up vector of fill characters.
    std::vector<std::vector<char>> bars(nbars);
    for (std::size_t b = 0; b < nbars; ++b) {
        const SpeedupStack &s = stacks[b];
        std::vector<char> col;
        for (const StackComponent comp : allStackComponents()) {
            const double v = std::max(0.0, s.componentValue(comp));
            const int rows = static_cast<int>(
                std::lround(v / max_n * height));
            for (int r = 0; r < rows; ++r)
                col.push_back(fillChar(comp));
        }
        // Rounding can over/undershoot the exact height of this stack.
        const int want = static_cast<int>(
            std::lround(static_cast<double>(s.nthreads) / max_n * height));
        while (static_cast<int>(col.size()) > want)
            col.pop_back();
        while (static_cast<int>(col.size()) < want)
            col.push_back(fillChar(StackComponent::kYield));
        bars[b] = std::move(col);
    }

    std::string out;
    for (int row = height - 1; row >= 0; --row) {
        // Y axis: speedup value at this row.
        const double yval = static_cast<double>(max_n) * (row + 1) / height;
        out += padLeft(fmtDouble(yval, 1), 5) + " |";
        for (std::size_t b = 0; b < nbars; ++b) {
            const char fill =
                row < static_cast<int>(bars[b].size()) ? bars[b][static_cast<std::size_t>(row)] : ' ';
            out += ' ';
            out += std::string(static_cast<std::size_t>(bar_width) - 1,
                               fill == ' ' ? ' ' : fill);
        }
        out += '\n';
    }
    out += "      +" +
           std::string(nbars * static_cast<std::size_t>(bar_width), '-') +
           '\n';
    out += "       ";
    for (std::size_t b = 0; b < nbars; ++b) {
        std::string lab = b < labels.size() ? labels[b] : "";
        if (lab.size() > static_cast<std::size_t>(bar_width - 1))
            lab.resize(static_cast<std::size_t>(bar_width - 1));
        out += padRight(lab, static_cast<std::size_t>(bar_width));
    }
    out += '\n';

    out += "legend: ";
    for (const StackComponent comp : allStackComponents()) {
        bool used = false;
        for (const auto &s : stacks) {
            if (s.componentValue(comp) > 1e-9)
                used = true;
        }
        if (!used && comp != StackComponent::kBase)
            continue;
        out += std::string(1, fillChar(comp)) + "=" +
               stackComponentName(comp) + "  ";
    }
    out += '\n';
    return out;
}

std::string
renderStacksCsv(const std::vector<SpeedupStack> &stacks,
                const std::vector<std::string> &labels)
{
    TextTable table;
    table.setHeader({"label", "nthreads", "base", "pos_llc", "net_neg_llc",
                     "neg_mem", "spin", "yield", "imbalance", "coherency",
                     "estimated"});
    for (std::size_t i = 0; i < stacks.size(); ++i) {
        const SpeedupStack &s = stacks[i];
        table.addRow({i < labels.size() ? labels[i] : "",
                      std::to_string(s.nthreads),
                      fmtDouble(s.baseSpeedup, 4), fmtDouble(s.posLlc, 4),
                      fmtDouble(s.netNegLlc(), 4), fmtDouble(s.negMem, 4),
                      fmtDouble(s.spin, 4), fmtDouble(s.yield, 4),
                      fmtDouble(s.imbalance, 4),
                      fmtDouble(s.coherency, 4),
                      fmtDouble(s.estimatedSpeedup, 4)});
    }
    return table.renderCsv();
}

} // namespace sst
