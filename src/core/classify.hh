/**
 * @file
 * Benchmark classification from speedup stacks (Section 7.2, Figure 6):
 * scaling category (good >= 10x, poor < 5x at 16 threads, moderate
 * in between), and the largest / second / third scaling delimiters with
 * a negligibility threshold. Includes the tree-style text rendering.
 */

#ifndef SST_CORE_CLASSIFY_HH
#define SST_CORE_CLASSIFY_HH

#include <string>
#include <vector>

#include "core/speedup_stack.hh"

namespace sst {

/** Scaling category of Figure 6. */
enum class ScalingClass { kGood, kModerate, kPoor };

const char *scalingClassName(ScalingClass c);

/** Category from the achieved speedup (paper thresholds: 10x and 5x). */
ScalingClass classifySpeedup(double speedup);

/**
 * The overhead components of @p stack in decreasing order of magnitude,
 * dropping components below @p negligible speedup units. Only true
 * scaling delimiters are ranked (base speedup and positive interference
 * are excluded; LLC interference ranks by its *gross* negative value,
 * matching how the paper discusses "cache" as a delimiter).
 */
std::vector<StackComponent> rankedDelimiters(const SpeedupStack &stack,
                                             double negligible = 0.25);

/** One row of the classification tree. */
struct ClassifiedBenchmark
{
    std::string label;
    std::string suite;
    double speedup = 0.0;          ///< achieved speedup
    ScalingClass scaling = ScalingClass::kPoor;
    std::vector<StackComponent> delimiters; ///< up to 3, largest first
};

/** Classify one benchmark's 16-thread result. */
ClassifiedBenchmark classifyBenchmark(const std::string &label,
                                      const std::string &suite,
                                      double actual_speedup,
                                      const SpeedupStack &stack,
                                      double negligible = 0.25);

/**
 * Render the Figure 6 tree: rows sorted good -> moderate -> poor, with
 * the scaling class, the top-3 delimiter names, the benchmark label,
 * suite and speedup.
 */
std::string renderClassificationTree(
    const std::vector<ClassifiedBenchmark> &rows);

/** Short component name used in the tree ("cache", "memory", ...). */
const char *shortComponentName(StackComponent comp);

} // namespace sst

#endif // SST_CORE_CLASSIFY_HH
