/**
 * @file
 * High-level experiment runner: execute the single-threaded reference run
 * (measuring Ts) and the N-threaded run (measuring Tp and the raw
 * accounting counters), then assemble actual speedup, the estimated
 * speedup stack and the validation error. This is the primary entry
 * point of the library for benches, tests and examples.
 */

#ifndef SST_CORE_EXPERIMENT_HH
#define SST_CORE_EXPERIMENT_HH

#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "accounting/report.hh"
#include "core/speedup_stack.hh"
#include "sim/params.hh"
#include "sim/run_result.hh"
#include "sim/system.hh"
#include "workload/profile.hh"
#include "workload/workload_spec.hh"

namespace sst {

/** Everything measured for one (benchmark, thread count) pair. */
struct SpeedupExperiment
{
    std::string label;
    int nthreads = 0;

    Cycles ts = 0; ///< single-threaded execution time (measured)
    Cycles tp = 0; ///< parallel execution time (measured)

    double actualSpeedup = 0.0;    ///< S = Ts / Tp (Eq. 1)
    double estimatedSpeedup = 0.0; ///< S^ from accounting only (Eq. 3)
    double error = 0.0;            ///< (S^ - S) / N (Eq. 6)

    SpeedupStack stack;            ///< estimated speedup stack

    RunResult single;   ///< the 1-thread reference run
    RunResult parallel; ///< the N-thread run

    /**
     * Parallelization overhead: relative dynamic instruction increase of
     * the parallel run over the sequential one, spin instructions
     * excluded (the Section 6 metric).
     */
    double parOverheadMeasured = 0.0;
};

/** Run the sequential reference configuration of @p profile. */
RunResult runSingleThreaded(const SimParams &params,
                            const BenchmarkProfile &profile);

/**
 * Assemble a SpeedupExperiment from two already-completed runs: the
 * 1-thread reference and the parallel run. This is the pure math tail
 * of every experiment (Eqs. 1, 3, 6 + the stack build) and is shared by
 * the live path (runWithBaseline) and the trace-replay path, where the
 * runs come from recorded op streams instead of ThreadProgram.
 */
SpeedupExperiment assembleExperiment(const std::string &label,
                                     int nthreads, const SimParams &params,
                                     const RunResult &baseline,
                                     RunResult parallel,
                                     const ReportOptions *opts = nullptr);

/**
 * Run the @p nthreads-thread configuration and assemble the experiment
 * against an existing baseline run (reuse the baseline when sweeping
 * thread counts). @p ncores_override places the parallel run on that
 * many cores instead of @p nthreads (0 = #cores == #threads); fewer
 * cores than threads oversubscribes the machine, the Figure 7 regime.
 */
SpeedupExperiment runWithBaseline(const SimParams &params,
                                  const BenchmarkProfile &profile,
                                  int nthreads, const RunResult &baseline,
                                  const ReportOptions *opts = nullptr,
                                  int ncores_override = 0);

/** Convenience wrapper: baseline + parallel run in one call. */
SpeedupExperiment runSpeedupExperiment(const SimParams &params,
                                       const BenchmarkProfile &profile,
                                       int nthreads,
                                       const ReportOptions *opts = nullptr,
                                       int ncores_override = 0);

/**
 * Fold per-program 1-thread reference runs into one baseline for a
 * heterogeneous workload: per the paper's per-thread normalization,
 * a mix's (or pipeline's) sequential reference time Ts is the sum of
 * each program's own single-threaded run. @p group_baselines must be
 * one 1-thread RunResult per workload group, in group order. With one
 * group the input run is returned unchanged (the homogeneous path);
 * with several, the combined result carries the summed times and
 * instruction counts only (no per-thread counters — the parallel run
 * provides those).
 */
RunResult combineGroupBaselines(const std::vector<RunResult> &group_baselines);

/**
 * Run the heterogeneous-workload experiment: per-group 1-thread
 * reference runs (summed into the mix baseline) plus the co-scheduled
 * parallel run of every group, assembled into a speedup experiment.
 * For a homogeneous spec this is runSpeedupExperiment() bit for bit.
 * @p ncores_override places the parallel run on that many cores
 * (0 = one per thread); fewer cores oversubscribes the machine.
 */
SpeedupExperiment runMixExperiment(const SimParams &params,
                                   const WorkloadSpec &workload,
                                   const ReportOptions *opts = nullptr,
                                   int ncores_override = 0);

/** Default report options consistent with @p params. */
ReportOptions defaultReportOptions(const SimParams &params);

/**
 * Thread-safe memoization of single-threaded baseline runs, shared by
 * every job of a batch that sweeps thread counts (or any other parameter
 * the 1-thread run does not depend on). The first caller of a key
 * computes the baseline; concurrent callers of the same key block until
 * it is ready and then share the stored result. Keys are caller-defined:
 * two keys must be equal iff the baseline runs they describe are
 * identical (the driver uses a canonical fingerprint of
 * (profile, params-with-ncores-pinned-to-1)).
 */
class BaselineStore
{
  public:
    /**
     * Return the 1-thread run for @p key, computing it (at most once
     * per key, even under concurrency) via @p compute. The caller
     * chooses how the baseline is produced — live generation or trace
     * replay — which must not matter for the result (both are
     * deterministic functions of the key's identity).
     */
    const RunResult &get(const std::string &key,
                         const std::function<RunResult()> &compute);

    /**
     * Convenience: compute the baseline via runSingleThreaded() on the
     * synthetic-generator frontend.
     */
    const RunResult &get(const std::string &key, const SimParams &params,
                         const BenchmarkProfile &profile);

    /** Number of baselines actually computed (not lookups). */
    std::size_t computeCount() const;

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::string,
                       std::shared_future<std::shared_ptr<const RunResult>>>
        futures_;
    std::size_t computes_ = 0;
};

} // namespace sst

#endif // SST_CORE_EXPERIMENT_HH
