#include "workload_spec.hh"

#include <memory>
#include <stdexcept>

#include "util/logging.hh"
#include "wdl/wdl.hh"
#include "workload/op.hh"
#include "workload/thread_program.hh"

namespace sst {

const char *
workloadRoleName(WorkloadRole role)
{
    switch (role) {
      case WorkloadRole::kReplicated:
        return "replicated";
      case WorkloadRole::kMix:
        return "mix";
      case WorkloadRole::kPipeline:
        return "pipeline";
    }
    panic("unhandled workload role");
}

WorkloadRole
workloadRoleFromRaw(std::uint32_t raw)
{
    if (raw > static_cast<std::uint32_t>(WorkloadRole::kPipeline))
        throw std::invalid_argument("workload role value " +
                                    std::to_string(raw) + " out of range");
    return static_cast<WorkloadRole>(raw);
}

WorkloadSpec
WorkloadSpec::homogeneous(const BenchmarkProfile &profile, int nthreads)
{
    WorkloadSpec spec;
    spec.role = WorkloadRole::kReplicated;
    spec.groups.push_back(WorkloadGroup{profile, nthreads});
    return spec;
}

WorkloadSpec
WorkloadSpec::mix(std::vector<WorkloadGroup> groups)
{
    if (groups.size() == 1) // a one-program mix IS the homogeneous case
        return homogeneous(groups[0].profile, groups[0].nthreads);
    WorkloadSpec spec;
    spec.role = WorkloadRole::kMix;
    spec.groups = std::move(groups);
    return spec;
}

WorkloadSpec
WorkloadSpec::pipeline(std::vector<WorkloadGroup> stages)
{
    WorkloadSpec spec;
    spec.role = WorkloadRole::kPipeline;
    spec.groups = std::move(stages);
    return spec;
}

int
WorkloadSpec::nthreads() const
{
    int n = 0;
    for (const WorkloadGroup &g : groups)
        n += g.nthreads;
    return n;
}

int
WorkloadSpec::groupOfThread(ThreadId tid) const
{
    int base = 0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        base += groups[g].nthreads;
        if (tid < base)
            return static_cast<int>(g);
    }
    panic("thread id out of the workload's range");
}

const BenchmarkProfile &
WorkloadSpec::profileOfThread(ThreadId tid) const
{
    return groups[static_cast<std::size_t>(groupOfThread(tid))].profile;
}

std::string
WorkloadSpec::descriptor() const
{
    std::string out;
    const char sep = role == WorkloadRole::kPipeline ? '>' : '+';
    for (const WorkloadGroup &g : groups) {
        if (!out.empty())
            out += sep;
        out += g.profile.label();
        out += ':';
        out += std::to_string(g.nthreads);
    }
    return out;
}

std::string
WorkloadSpec::label() const
{
    // WDL workloads are labelled by the program (or file) name even
    // when they have a single group.
    if (wdlProgram && !name.empty())
        return name;
    if (isHomogeneous())
        return groups[0].profile.label();
    if (!name.empty())
        return name;
    return descriptor();
}

void
WorkloadSpec::validate() const
{
    if (groups.empty())
        throw std::invalid_argument("workload has no program groups");
    if (role == WorkloadRole::kReplicated && groups.size() != 1) {
        throw std::invalid_argument(
            "replicated workload must have exactly one group, got " +
            std::to_string(groups.size()));
    }
    if (role == WorkloadRole::kPipeline && groups.size() < 2) {
        throw std::invalid_argument(
            "pipeline workload needs at least two stages");
    }
    if (groups.size() > static_cast<std::size_t>(kMaxWorkloadGroups)) {
        throw std::invalid_argument(
            "workload has " + std::to_string(groups.size()) +
            " groups, exceeding the " +
            std::to_string(kMaxWorkloadGroups) + "-group limit");
    }
    for (const WorkloadGroup &g : groups) {
        if (g.nthreads < 1) {
            throw std::invalid_argument(
                "workload group '" + g.profile.label() +
                "': nthreads must be >= 1, got " +
                std::to_string(g.nthreads));
        }
    }
    if (role == WorkloadRole::kPipeline) {
        // Stages barrier-align every phase: unequal phase counts would
        // deadlock the shared barrier namespace.
        const int phases = groups[0].profile.barrierPhases;
        for (const WorkloadGroup &g : groups) {
            if (g.profile.barrierPhases != phases) {
                throw std::invalid_argument(
                    "pipeline stages must agree on barrier phases: '" +
                    groups[0].profile.label() + "' has " +
                    std::to_string(phases) + ", '" + g.profile.label() +
                    "' has " + std::to_string(g.profile.barrierPhases));
            }
            if (!g.profile.finalBarrier) {
                throw std::invalid_argument(
                    "pipeline stage '" + g.profile.label() +
                    "' must keep the final barrier (stages finish "
                    "together)");
            }
        }
    }
}

ThreadTopology
topologyFor(WorkloadRole role, const std::vector<int> &group_sizes,
            int ncores)
{
    ThreadTopology topo;
    int nthreads = 0;
    for (const int n : group_sizes)
        nthreads += n;

    if (role == WorkloadRole::kMix) {
        // Barriers are group-local: a program's barrier opens when the
        // program's own threads arrive.
        topo.barrierQuorum.reserve(static_cast<std::size_t>(nthreads));
        for (const int n : group_sizes)
            for (int t = 0; t < n; ++t)
                topo.barrierQuorum.push_back(n);
    }
    if (role == WorkloadRole::kPipeline && ncores > 0) {
        // Stages occupy contiguous thread-id ranges; hint them onto a
        // proportional contiguous core range so stage working sets stay
        // resident across context switches.
        topo.affinityHint.reserve(static_cast<std::size_t>(nthreads));
        for (int t = 0; t < nthreads; ++t) {
            topo.affinityHint.push_back(static_cast<CoreId>(
                static_cast<long long>(t) * ncores / nthreads));
        }
    }
    return topo;
}

ThreadTopology
WorkloadSpec::topology(int ncores) const
{
    std::vector<int> sizes;
    sizes.reserve(groups.size());
    for (const WorkloadGroup &g : groups)
        sizes.push_back(g.nthreads);
    return topologyFor(role, sizes, ncores);
}

OpSourceFactory
workloadOpSources(const WorkloadSpec &spec)
{
    // WDL-backed workloads compile their op streams from the IR; the
    // placeholder profiles never reach a ThreadProgram.
    if (spec.wdlProgram)
        return wdl::workloadSources(spec);

    // The factory owns the spec: group profiles must outlive every
    // ThreadProgram (which holds its profile by reference).
    auto owned = std::make_shared<const WorkloadSpec>(spec);

    // Homogeneous: exactly the historical factory, no scoping.
    if (owned->isHomogeneous()) {
        return [owned](ThreadId tid, int n) -> std::unique_ptr<OpSource> {
            return std::make_unique<ThreadProgram>(owned->groups[0].profile,
                                                   tid, n);
        };
    }

    const bool pipeline = owned->role == WorkloadRole::kPipeline;
    return [owned, pipeline](ThreadId tid,
                             int n) -> std::unique_ptr<OpSource> {
        sstAssert(n == owned->nthreads(),
                  "workload op-source factory used with a foreign "
                  "thread count");
        const int group = owned->groupOfThread(tid);
        const WorkloadGroup &wg =
            owned->groups[static_cast<std::size_t>(group)];
        int first = 0;
        for (int g = 0; g < group; ++g)
            first += owned->groups[static_cast<std::size_t>(g)].nthreads;

        ThreadScope scope;
        scope.dataTid = tid; // global: private sets disjoint across groups
        scope.sharedBase = addrmap::groupSharedBase(group);
        scope.lockIdOffset = group * kGroupSyncStride;
        // Mixes run independent programs (group-local barriers); each
        // behaves exactly as it would alone at its own thread count, so
        // a 1-thread program in a mix runs its sequential form and its
        // slowdown is pure interference. Pipeline stages instead share
        // one global barrier namespace (every phase spans all stages)
        // and are always part of a parallel run, even 1-thread stages.
        scope.barrierIdOffset = pipeline ? 0 : group * kGroupSyncStride;
        scope.forceParallel = pipeline;
        return std::make_unique<ThreadProgram>(wg.profile, tid - first,
                                               wg.nthreads, scope);
    };
}

OpSourceFactory
workloadGroupBaselineSources(const WorkloadSpec &spec, int group)
{
    if (group < 0 || group >= spec.ngroups())
        throw std::out_of_range(
            "workloadGroupBaselineSources: bad group index");
    if (spec.wdlProgram)
        return wdl::groupBaselineSources(spec, group);
    auto owned = std::make_shared<const BenchmarkProfile>(
        spec.groups[static_cast<std::size_t>(group)].profile);
    return [owned](ThreadId tid, int n) -> std::unique_ptr<OpSource> {
        return std::make_unique<ThreadProgram>(*owned, tid, n);
    };
}

} // namespace sst
