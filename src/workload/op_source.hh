/**
 * @file
 * OpSource: the abstract per-thread op-stream interface the CMP
 * simulator consumes. The simulator is workload-agnostic — it pulls one
 * Op at a time and never inspects how the stream is produced — so any
 * frontend that can emit the op DSL plugs in here: the synthetic
 * ThreadProgram generator, the binary-trace replay frontend
 * (TraceProgram), and future scenario generators (pipelines,
 * producer/consumer graphs, ...).
 *
 * Contract: nextOp() delivers the stream in order and returns the kEnd
 * op exactly once as the final element (then Op::end() forever);
 * finished() turns true once kEnd has been delivered. The simulator
 * calls nextOp() exactly once per executed op, which is what makes a
 * recording wrapper around any source an exact capture.
 */

#ifndef SST_WORKLOAD_OP_SOURCE_HH
#define SST_WORKLOAD_OP_SOURCE_HH

#include <functional>
#include <memory>

#include "util/types.hh"
#include "workload/op.hh"

namespace sst {

/** Abstract producer of one simulated thread's op stream. */
class OpSource
{
  public:
    virtual ~OpSource() = default;

    /** Next op of the stream; returns Op::end() forever once finished. */
    virtual Op nextOp() = 0;

    /** True once the stream has delivered its kEnd op. */
    virtual bool finished() const = 0;
};

/**
 * Factory producing the op source of thread @p tid in an @p nthreads
 * run. The System constructs one source per software thread; a factory
 * plus a thread count fully describes a workload.
 */
using OpSourceFactory =
    std::function<std::unique_ptr<OpSource>(ThreadId tid, int nthreads)>;

} // namespace sst

#endif // SST_WORKLOAD_OP_SOURCE_HH
