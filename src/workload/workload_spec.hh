/**
 * @file
 * WorkloadSpec: the per-thread workload description every layer of the
 * stack consumes. A workload is an ordered list of (BenchmarkProfile,
 * thread count) groups plus a role describing how the groups relate:
 *
 *  - kReplicated: one program, every thread runs it — the historical
 *    homogeneous configuration. WorkloadSpec::homogeneous(p, n)
 *    reproduces the pre-WorkloadSpec stack bit for bit.
 *  - kMix: independent programs co-scheduled on one machine (the
 *    paper's Figure 8 multi-program LLC-interference setting). Groups
 *    are fully disjoint: private working sets, shared regions, lock
 *    and barrier namespaces never overlap, so programs interact only
 *    through the shared hardware (LLC, bus, DRAM, scheduler).
 *  - kPipeline: heterogeneous stages of one program (the paper's
 *    Figure 7 ferret). Stages keep disjoint data and locks but share
 *    one global barrier namespace: every phase barrier spans all
 *    threads, so stage imbalance surfaces as synchronization time —
 *    the slowest stage paces the pipeline.
 *
 * The per-thread baseline semantics follow the paper's per-program
 * normalization: a heterogeneous workload's single-threaded reference
 * time Ts is the *sum* of each program's own 1-thread run, so speedup
 * stacks of mixes remain normalized per program.
 */

#ifndef SST_WORKLOAD_WORKLOAD_SPEC_HH
#define SST_WORKLOAD_WORKLOAD_SPEC_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/types.hh"
#include "workload/op_source.hh"
#include "workload/profile.hh"

namespace sst {

namespace wdl {
struct Program;
} // namespace wdl

/** How a workload's program groups relate to each other. */
enum class WorkloadRole : std::uint8_t {
    kReplicated = 0, ///< one program, all threads (homogeneous)
    kMix = 1,        ///< independent co-running programs
    kPipeline = 2,   ///< stages of one program, globally barrier-coupled
};

/** Stable lowercase label of @p role ("replicated", "mix", "pipeline"). */
const char *workloadRoleName(WorkloadRole role);

/** Validate a role decoded from an external source (trace header). */
WorkloadRole workloadRoleFromRaw(std::uint32_t raw);

/** One program group: a profile and the threads that run it. */
struct WorkloadGroup
{
    BenchmarkProfile profile;
    int nthreads = 1;
};

/**
 * Per-thread topology the simulator needs beyond the op streams:
 * barrier quorums (how many threads a barrier waits for — the arriving
 * thread's group for mixes, everyone for pipelines) and optional
 * scheduler affinity hints (pipeline stages prefer a stable core
 * range so stage data stays L1-resident).
 */
struct ThreadTopology
{
    /** Barrier quorum per thread; empty means "all threads". */
    std::vector<int> barrierQuorum;

    /** Preferred core per thread; empty means no hints. */
    std::vector<CoreId> affinityHint;
};

/** The per-thread workload description (see file comment). */
struct WorkloadSpec
{
    std::vector<WorkloadGroup> groups;
    WorkloadRole role = WorkloadRole::kReplicated;

    /** Optional display name (registry mixes keep their label). */
    std::string name;

    /**
     * Compiled WDL program backing this workload, or null for
     * profile-backed workloads. When set, op streams, fingerprints and
     * trace hashes come from the compiled IR; the groups' profiles are
     * placeholders carrying only the per-group label, suite ("wdl") and
     * seed (so JobSpec seed-offset mixing applies unchanged).
     */
    std::shared_ptr<const wdl::Program> wdlProgram;

    /** Source path of the WDL file (spec re-serialization only; never
     *  fingerprinted — content-identical files dedup to one entry). */
    std::string wdlPath;

    /** The historical homogeneous configuration: @p nthreads threads
     *  all running @p profile. Bit-identical to the pre-WorkloadSpec
     *  stack everywhere (op streams, fingerprints, traces, CSV). */
    static WorkloadSpec homogeneous(const BenchmarkProfile &profile,
                                    int nthreads);

    /** Independent co-running programs. A single group collapses to
     *  the homogeneous configuration. */
    static WorkloadSpec mix(std::vector<WorkloadGroup> groups);

    /** Barrier-coupled heterogeneous stages (>= 2 of them). */
    static WorkloadSpec pipeline(std::vector<WorkloadGroup> stages);

    /** Total software threads across all groups. */
    int nthreads() const;

    int ngroups() const { return static_cast<int>(groups.size()); }

    /** One replicated group: the bit-compatible homogeneous path. */
    bool
    isHomogeneous() const
    {
        return role == WorkloadRole::kReplicated && groups.size() == 1;
    }

    /** Group index of global thread @p tid (groups are contiguous). */
    int groupOfThread(ThreadId tid) const;

    /** Profile global thread @p tid runs. */
    const BenchmarkProfile &profileOfThread(ThreadId tid) const;

    /**
     * Display label: the profile label for homogeneous workloads
     * (unchanged CSV/table output), the registry name when set, else
     * the canonical inline descriptor ("a:8+b:8", "s1:1>s2:2").
     */
    std::string label() const;

    /** Canonical inline descriptor, ignoring `name` ("a:8+b:8"). */
    std::string descriptor() const;

    /**
     * Structural validation: at least one group, positive thread
     * counts, the group-count cap, one group iff replicated, and equal
     * stage phase counts for pipelines (stages barrier-align every
     * phase). Throws std::invalid_argument.
     */
    void validate() const;

    /** Per-thread quorums and affinity hints for a @p ncores machine. */
    ThreadTopology topology(int ncores) const;
};

/**
 * Per-thread quorums/hints from the topology-relevant subset of a
 * workload (role + group sizes) — what a trace header retains.
 */
ThreadTopology topologyFor(WorkloadRole role,
                           const std::vector<int> &group_sizes,
                           int ncores);

/**
 * Op-source factory for @p spec's threads: each thread runs a
 * ThreadProgram of its group's profile, scoped so groups never share
 * data or sync primitives (see ThreadScope). Owns a copy of the spec,
 * so the factory outlives the caller's argument. For homogeneous specs
 * the produced streams are bit-identical to the historical
 * ThreadProgram(profile, tid, nthreads) streams.
 */
OpSourceFactory workloadOpSources(const WorkloadSpec &spec);

/**
 * 1-thread baseline op-source factory for group @p group of @p spec:
 * ThreadProgram(profile, tid, nthreads) for profile-backed workloads
 * (bit-identical to the historical baselines) and the sequential WDL
 * program for WDL-backed ones. The driver and the trace recorder share
 * this so generated and recorded baselines agree.
 */
OpSourceFactory workloadGroupBaselineSources(const WorkloadSpec &spec,
                                             int group);

} // namespace sst

#endif // SST_WORKLOAD_WORKLOAD_SPEC_HH
