#include "thread_program.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace sst {

namespace {

/** Stateless 64-bit mix for phase-level decisions shared by all threads. */
std::uint64_t
mix64(std::uint64_t a, std::uint64_t b, std::uint64_t c = 0)
{
    std::uint64_t x = a * 0x9e3779b97f4a7c15ULL + b + 0x5157 + c * 0xabcdef;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/** Deterministic value in [-1, 1] from a hash. */
double
signedUnit(std::uint64_t h)
{
    return ((h >> 11) * (1.0 / 9007199254740992.0)) * 2.0 - 1.0;
}

} // namespace

int
ThreadProgram::activeThreads(const BenchmarkProfile &p, int nthreads,
                             int phase)
{
    if (p.parallelismCap <= 0.0 || nthreads <= 1)
        return nthreads;
    const double u = signedUnit(mix64(p.seed, 0xCA9, phase));
    double cap = p.parallelismCap;
    if (nthreads < 16 && p.capScale > 0.0)
        cap *= std::pow(nthreads / 16.0, p.capScale);
    cap *= 1.0 + p.capJitter * u;
    int active = static_cast<int>(std::lround(cap));
    return std::clamp(active, 1, nthreads);
}

ThreadProgram::ThreadProgram(const BenchmarkProfile &profile, ThreadId tid,
                             int nthreads, const ThreadScope &scope)
    : prof_(profile), tid_(tid), nthreads_(nthreads), scope_(scope),
      dataTid_(scope.dataTid == kInvalidId ? tid : scope.dataTid),
      rng_(mix64(profile.seed, 0x7EAD, static_cast<std::uint64_t>(tid)))
{
    sstAssert(nthreads >= 1, "ThreadProgram needs nthreads >= 1");
    sstAssert(tid >= 0 && tid < nthreads, "ThreadProgram tid out of range");
    for (int ph = 0; ph < prof_.barrierPhases; ++ph)
        plannedIters_ += itersInPhase(ph);
}

std::uint64_t
ThreadProgram::itersInPhase(int phase) const
{
    const int phases = std::max(1, prof_.barrierPhases);
    std::uint64_t phase_iters = prof_.totalIters / phases;
    if (phase == phases - 1)
        phase_iters += prof_.totalIters % phases;

    if (nthreads_ == 1)
        return phase_iters;

    const int active = activeThreads(prof_, nthreads_, phase);
    // Rotate the active window across phases so no thread is permanently
    // starved; thread `i` is active iff its rotated index falls below
    // `active`.
    const int rot = (tid_ + phase) % nthreads_;
    if (rot >= active)
        return 0;

    // Skewed division of the phase's iterations over the active threads.
    // All threads compute the same weight vector from shared hashes, so
    // the division is consistent without communication.
    double wsum = 0.0;
    double wself = 0.0;
    std::uint64_t assigned = 0;
    std::vector<double> w(static_cast<std::size_t>(active));
    for (int slot = 0; slot < active; ++slot) {
        const double u = signedUnit(mix64(prof_.seed, 0x5E3 + slot, phase));
        w[static_cast<std::size_t>(slot)] =
            1.0 + prof_.imbalanceSkew * u;
        wsum += w[static_cast<std::size_t>(slot)];
    }
    wself = w[static_cast<std::size_t>(rot)];

    // Deterministic rounding: earlier slots take floor(share); the last
    // slot absorbs the remainder so the total is conserved exactly.
    std::uint64_t before = 0;
    for (int slot = 0; slot < active; ++slot) {
        const std::uint64_t share = static_cast<std::uint64_t>(
            std::floor(phase_iters * w[static_cast<std::size_t>(slot)] /
                       wsum));
        if (slot < rot)
            before += share;
        if (slot == rot)
            assigned = share;
    }
    if (rot == active - 1) {
        // Recompute exact remainder for the last active slot.
        std::uint64_t others = 0;
        for (int slot = 0; slot < active - 1; ++slot) {
            others += static_cast<std::uint64_t>(std::floor(
                phase_iters * w[static_cast<std::size_t>(slot)] / wsum));
        }
        assigned = phase_iters - others;
    }
    (void)before;
    (void)wself;
    return assigned;
}

Op
ThreadProgram::nextOp()
{
    if (finished_)
        return Op::end();
    if (cursor_ >= buf_.size())
        refill();
    if (finished_)
        return Op::end();
    return buf_[cursor_++];
}

void
ThreadProgram::refill()
{
    buf_.clear();
    cursor_ = 0;

    // Pre-RoI warmup, mirroring SPLASH-2/PARSEC methodology: every
    // thread sweeps its private region once so the measured region of
    // interest starts with warm caches (the paper's results are gathered
    // from the parallel fraction with the same property). A barrier
    // aligns the threads, then kRoiBegin resets the measurements.
    if (!warmupDone_) {
        warmupDone_ = true;
        const std::uint64_t lines =
            std::max<std::uint64_t>(prof_.privateBytes, kLineBytes) /
            kLineBytes;
        for (std::uint64_t l = 0; l < lines; ++l) {
            buf_.push_back(Op::load(
                addrmap::privateBase(dataTid_) + l * kLineBytes, 0x30000));
        }
        // Re-touch the hot window last so it is MRU when measurement
        // starts; otherwise the LRU sweep order would leave exactly the
        // lines the RoI uses first in line for eviction, creating an
        // artificial inter-thread miss burst at RoI start.
        const std::uint64_t priv_hot =
            (prof_.privateHotBytes == 0
                 ? std::max<std::uint64_t>(prof_.privateBytes, kLineBytes)
                 : std::min<std::uint64_t>(prof_.privateHotBytes,
                                           prof_.privateBytes)) /
            kLineBytes;
        if (priv_hot < lines) {
            for (std::uint64_t l = 0; l < priv_hot; ++l) {
                buf_.push_back(Op::load(
                    addrmap::privateBase(dataTid_) + l * kLineBytes,
                    0x30001));
            }
        }
        // Also sweep the initial shared hot window so steady-state
        // positive interference reflects window movement, not the
        // first-touch transient (each core's ATD must know the lines a
        // private cache would already hold).
        const std::uint64_t hot = std::min<std::uint64_t>(
            prof_.sharedHotBytes, prof_.sharedBytes);
        if (prof_.sharedFrac > 0.0 && hot > 0) {
            for (std::uint64_t l = 0; l < hot / kLineBytes; ++l) {
                buf_.push_back(Op::load(
                    scope_.sharedBase + l * kLineBytes, 0x30010));
            }
        }
        // Lock-protected data regions are shared too: sweep them so CS
        // accesses do not register as first-touch positive interference.
        for (int lk = 0; lk < prof_.numLocks; ++lk) {
            for (Addr l = 0; l < 4096 / kLineBytes; ++l) {
                buf_.push_back(Op::load(
                    addrmap::lockDataBase(lk + scope_.lockIdOffset) +
                        l * kLineBytes,
                    0x30020));
            }
        }
        if (parallelMode())
            buf_.push_back(Op::barrier(kWarmupBarrierId +
                                       scope_.barrierIdOffset));
        buf_.push_back(Op::roiBegin());
        return;
    }

    const int phases = std::max(1, prof_.barrierPhases);
    for (;;) {
        if (phase_ >= phases) {
            finished_ = true;
            return;
        }
        if (!phaseInitDone_) {
            phaseItersLeft_ = itersInPhase(phase_);
            phaseInitDone_ = true;
        }
        if (phaseItersLeft_ > 0) {
            --phaseItersLeft_;
            emitIteration();
            return;
        }
        // Phase complete: emit the phase barrier (multi-threaded only) and
        // move on. The very last barrier is controlled by finalBarrier.
        const bool last = (phase_ == phases - 1);
        ++phase_;
        phaseInitDone_ = false;
        if (parallelMode() && (!last || prof_.finalBarrier)) {
            buf_.push_back(Op::barrier(phase_ - 1 +
                                       scope_.barrierIdOffset));
            return;
        }
    }
}

void
ThreadProgram::emitIteration()
{
    // Loop bookkeeping plus parallelization overhead (parallel mode only):
    // extra instructions for work division, communication and redundant
    // computation, per Section 3.5 of the paper.
    std::uint32_t overhead_instr = 4;
    if (parallelMode()) {
        overhead_instr += static_cast<std::uint32_t>(std::lround(
            prof_.parOverheadFrac *
            (prof_.computePerIter + prof_.memPerIter)));
    }
    buf_.push_back(Op::compute(overhead_instr));
    instrEmitted_ += overhead_instr;

    // First half of the iteration's compute.
    const std::uint32_t c1 = static_cast<std::uint32_t>(
        prof_.computePerIter / 2);
    const std::uint32_t c2 = static_cast<std::uint32_t>(
        prof_.computePerIter - static_cast<int>(c1));
    if (c1 > 0) {
        buf_.push_back(Op::compute(c1));
        instrEmitted_ += c1;
    }

    // Memory references. Shared data is read-mostly: the store
    // probability depends on the region the reference targets.
    for (int m = 0; m < prof_.memPerIter; ++m) {
        const Addr addr = pickDataAddr();
        const bool shared = addr >= scope_.sharedBase &&
                            addr < scope_.sharedBase + prof_.sharedBytes;
        emitMemRef(rng_.chance(shared ? prof_.sharedStoreFrac
                                      : prof_.storeFrac),
                   addr);
    }

    if (c2 > 0) {
        buf_.push_back(Op::compute(c2));
        instrEmitted_ += c2;
    }

    // Critical section (parallel mode); in the sequential program the same
    // work is done without lock operations.
    if (prof_.numLocks > 0 && rng_.chance(prof_.lockFreq)) {
        const LockId lock = static_cast<LockId>(
            rng_.below(static_cast<std::uint64_t>(prof_.numLocks)));
        if (parallelMode()) {
            buf_.push_back(Op::lockAcquire(lock + scope_.lockIdOffset));
            instrEmitted_ += kLockOpInstrs;
        }
        if (prof_.csCompute > 0) {
            buf_.push_back(Op::compute(
                static_cast<std::uint32_t>(prof_.csCompute)));
            instrEmitted_ += static_cast<std::uint32_t>(prof_.csCompute);
        }
        for (int m = 0; m < prof_.csMem; ++m)
            emitMemRef(rng_.chance(0.5), pickCsAddr(lock));
        if (parallelMode()) {
            buf_.push_back(Op::lockRelease(lock + scope_.lockIdOffset));
            instrEmitted_ += kLockOpInstrs;
        }
    }
}

void
ThreadProgram::emitMemRef(bool is_store, Addr addr)
{
    const PC pc = 0x40000 + (memSlot_ % 64) * 4;
    ++memSlot_;
    if (is_store)
        buf_.push_back(Op::store(addr, pc));
    else
        buf_.push_back(Op::load(addr, pc));
    instrEmitted_ += 1;
}

Addr
ThreadProgram::pickDataAddr()
{
    if (prof_.sharedBytes > 0 && rng_.chance(prof_.sharedFrac)) {
        const std::uint64_t hot =
            std::min<std::uint64_t>(prof_.sharedHotBytes,
                                    prof_.sharedBytes);
        if (hot > 0 && rng_.chance(prof_.sharedHotFrac)) {
            // The hot window moves across the shared region every phase
            // (blocked algorithms touch fresh shared data each step), so
            // cross-thread prefetching — positive interference — keeps
            // occurring in steady state: the first thread to touch a
            // window line misses, the others hit.
            const std::uint64_t span =
                prof_.sharedBytes > hot ? prof_.sharedBytes - hot : 1;
            const std::uint64_t window =
                prof_.sharedWindowPhases > 0
                    ? static_cast<std::uint64_t>(phase_) /
                          static_cast<std::uint64_t>(
                              prof_.sharedWindowPhases)
                    : 0;
            const std::uint64_t base = (window * hot) % span;
            return scope_.sharedBase + base + rng_.below(hot);
        }
        return scope_.sharedBase + rng_.below(prof_.sharedBytes);
    }
    // Private region. In the sequential run the single thread owns region
    // 0, which is also what thread 0 of the parallel run uses; regions are
    // per-thread so the parallel footprint grows with the thread count
    // (per-thread state, ghost zones, replicated buffers).
    const std::uint64_t size = std::max<std::uint64_t>(prof_.privateBytes,
                                                       kLineBytes);
    const std::uint64_t hot =
        prof_.privateHotBytes == 0
            ? size
            : std::min<std::uint64_t>(prof_.privateHotBytes, size);

    if (!rng_.chance(prof_.privateHotFrac)) {
        // Cold tail: a far reference into the full region.
        return addrmap::privateBase(dataTid_) + rng_.below(size);
    }
    if (rng_.chance(prof_.streamFrac)) {
        // Sequential sweep through the hot window with wraparound.
        const Addr a = addrmap::privateBase(dataTid_) +
                       (streamCursor_ % hot);
        streamCursor_ += kLineBytes;
        return a;
    }
    return addrmap::privateBase(dataTid_) + rng_.below(hot);
}

Addr
ThreadProgram::pickCsAddr(LockId lock)
{
    return addrmap::lockDataBase(lock + scope_.lockIdOffset) +
           rng_.below(4096);
}

} // namespace sst
