/**
 * @file
 * The workload op DSL. A simulated thread is a stream of ops: bundles of
 * compute instructions, loads/stores with explicit addresses and PCs, and
 * synchronization events (lock acquire/release, barrier). The CMP
 * simulator consumes this stream; spin loops are *not* part of the
 * stream — they are executed by the core model when a lock or barrier
 * acquisition fails, so the spin detectors observe genuine load streams.
 */

#ifndef SST_WORKLOAD_OP_HH
#define SST_WORKLOAD_OP_HH

#include <cstdint>

#include "util/types.hh"

namespace sst {

/** Kind of a workload op. */
enum class OpType : std::uint8_t {
    kCompute,       ///< `count` back-to-back ALU instructions
    kLoad,          ///< one load from `addr` at program counter `pc`
    kStore,         ///< one store to `addr` at program counter `pc`
    kLockAcquire,   ///< acquire lock `id` (may spin / yield)
    kLockRelease,   ///< release lock `id`
    kBarrier,       ///< arrive at barrier `id`, wait for all threads
    kRoiBegin,      ///< region-of-interest start: reset measurements
    kEnd,           ///< thread has finished its program
};

/**
 * One element of a thread's op stream. Plain aggregate: the generator
 * fills only the fields relevant to `type` (others are zero).
 */
struct Op
{
    OpType type = OpType::kEnd;
    std::uint32_t count = 0; ///< instruction count for kCompute
    Addr addr = 0;           ///< byte address for kLoad / kStore
    PC pc = 0;               ///< program counter for kLoad / kStore
    int id = 0;              ///< lock or barrier identifier

    static Op
    compute(std::uint32_t n)
    {
        Op op;
        op.type = OpType::kCompute;
        op.count = n;
        return op;
    }

    static Op
    load(Addr a, PC p)
    {
        Op op;
        op.type = OpType::kLoad;
        op.addr = a;
        op.pc = p;
        return op;
    }

    static Op
    store(Addr a, PC p)
    {
        Op op;
        op.type = OpType::kStore;
        op.addr = a;
        op.pc = p;
        return op;
    }

    static Op
    lockAcquire(LockId id)
    {
        Op op;
        op.type = OpType::kLockAcquire;
        op.id = id;
        return op;
    }

    static Op
    lockRelease(LockId id)
    {
        Op op;
        op.type = OpType::kLockRelease;
        op.id = id;
        return op;
    }

    static Op
    barrier(BarrierId id)
    {
        Op op;
        op.type = OpType::kBarrier;
        op.id = id;
        return op;
    }

    static Op
    roiBegin()
    {
        Op op;
        op.type = OpType::kRoiBegin;
        return op;
    }

    static Op
    end()
    {
        return Op{};
    }
};

/** Barrier id used by the pre-RoI warmup phase. */
inline constexpr BarrierId kWarmupBarrierId = 1'000'000;

/**
 * Stride between the sync-id namespaces of a heterogeneous workload's
 * program groups: group g's lock/barrier ids are its local ids plus
 * g * kGroupSyncStride, so two co-running programs can never alias each
 * other's primitives. The stride exceeds kWarmupBarrierId, which keeps
 * `id % kGroupSyncStride == kWarmupBarrierId` a valid warmup-barrier
 * test for every group (including group 0, whose ids are the plain
 * local ids — the homogeneous encoding, unchanged).
 */
inline constexpr int kGroupSyncStride = 0x20'0000; // 2'097'152

/** True when @p id is some group's pre-RoI warmup barrier. */
constexpr bool
isWarmupBarrier(BarrierId id)
{
    return id % kGroupSyncStride == kWarmupBarrierId;
}

/** Most program groups one workload may co-schedule (mix programs or
 *  pipeline stages); bounds the group address/sync namespaces. */
inline constexpr int kMaxWorkloadGroups = 8;

/**
 * Fixed layout of the simulated physical address space. Regions are far
 * apart so they never alias in any cache configuration we simulate.
 * Group-0 (and homogeneous) addresses are the historical layout,
 * bit-for-bit; ids/regions of additional workload groups live in a
 * disjoint high range far above the per-thread private regions.
 */
namespace addrmap {

/** Base of thread @p tid's private data region (256MB apart, above the
 *  4GB line so they can never alias the shared/lock/barrier regions).
 *  Threads are numbered globally across a workload's groups, so private
 *  working sets of co-running programs are disjoint by construction. */
constexpr Addr
privateBase(ThreadId tid)
{
    return 0x1'0000'0000ULL + static_cast<Addr>(tid) * 0x1000'0000ULL;
}

/** Base of the application-wide shared data region (group 0). */
inline constexpr Addr kSharedBase = 0x8000'0000ULL;

/** Base of workload group @p group's shared data region (64GB apart). */
constexpr Addr
groupSharedBase(int group)
{
    return group == 0 ? kSharedBase
                      : 0x6000'0000'0000ULL +
                            static_cast<Addr>(group) * 0x10'0000'0000ULL;
}

/** Base of the lock-protected shared data region for lock @p id. */
constexpr Addr
lockDataBase(LockId id)
{
    return id < kGroupSyncStride
               ? 0xA000'0000ULL + static_cast<Addr>(id) * 4096
               : 0x6800'0000'0000ULL + static_cast<Addr>(id) * 4096;
}

/** Address of the lock word for lock @p id (one cache line each). */
constexpr Addr
lockWord(LockId id)
{
    return id < kGroupSyncStride
               ? 0xF000'0000ULL + static_cast<Addr>(id) * kLineBytes
               : 0x7000'0000'0000ULL + static_cast<Addr>(id) * kLineBytes;
}

/** Address of the barrier word for barrier @p id. */
constexpr Addr
barrierWord(BarrierId id)
{
    return id < kGroupSyncStride
               ? 0xF800'0000ULL + static_cast<Addr>(id) * kLineBytes
               : 0x7800'0000'0000ULL + static_cast<Addr>(id) * kLineBytes;
}

/** Synthetic PC of the spin-loop load polling lock @p id. */
constexpr PC
lockSpinPc(LockId id)
{
    return 0xDEAD'0000ULL + static_cast<PC>(id) * 16;
}

/** Synthetic PC of the spin-loop load polling barrier @p id. */
constexpr PC
barrierSpinPc(BarrierId id)
{
    return 0xBEEF'0000ULL + static_cast<PC>(id) * 16;
}

} // namespace addrmap

} // namespace sst

#endif // SST_WORKLOAD_OP_HH
