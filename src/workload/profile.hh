/**
 * @file
 * Benchmark profiles: tunable synthetic stand-ins for the SPLASH-2,
 * PARSEC and Rodinia benchmark/input pairs evaluated in the paper
 * (Figure 6 lists 28 rows). Each profile parameterizes the workload
 * generator so that the profile exercises the same scaling delimiters the
 * real benchmark exhibits: lock contention drives spinning, long waits
 * drive yielding, barrier skew drives synchronization imbalance, working
 * set sizes drive LLC interference, shared hot data drives positive
 * interference, and memory intensity drives bus/bank conflicts.
 */

#ifndef SST_WORKLOAD_PROFILE_HH
#define SST_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hh"

namespace sst {

/**
 * All knobs of one synthetic benchmark. The `paper*` fields record the
 * reference values from the paper (Figure 6) so the bench harness can
 * print paper-vs-measured side by side.
 */
struct BenchmarkProfile
{
    std::string name;         ///< benchmark name, e.g. "facesim"
    std::string suite;        ///< "parsec" | "splash2" | "rodinia"
    std::string input;        ///< "small" | "medium" | "" (one input)
    double paperSpeedup16 = 0.0; ///< speedup @16 threads reported in Fig. 6
    std::string paperClass;   ///< "good" | "moderate" | "poor"

    // --- work shape -----------------------------------------------------
    std::uint64_t totalIters = 0; ///< total loop iterations (strong scaling)
    int computePerIter = 0;   ///< ALU instructions per iteration
    int memPerIter = 0;       ///< memory references per iteration
    double storeFrac = 0.1;   ///< fraction of private refs that are stores
    /**
     * Fraction of *shared-region* references that are stores. Shared
     * data is read-mostly in the modelled workloads; every shared store
     * invalidates the other threads' L1 copies (coherence ping-pong), a
     * cost the accounting deliberately does not measure (Section 4.5),
     * so this knob directly controls one of the paper's documented
     * estimation-error sources.
     */
    double sharedStoreFrac = 0.02;

    // --- data footprint ---------------------------------------------------
    std::uint64_t privateBytes = 0; ///< per-thread private working set
    /**
     * Hot window inside the private region (0 = the whole region is
     * hot). References hit the hot window with probability
     * privateHotFrac and the full region otherwise; the cold tail is
     * what generates steady DRAM traffic, so the two knobs decouple
     * footprint (cache pressure) from memory intensity (bus pressure).
     */
    std::uint64_t privateHotBytes = 0;
    double privateHotFrac = 1.0;
    /**
     * Fraction of hot-window references that stream sequentially through
     * it (line after line) instead of hitting a random offset.
     * Streaming references enjoy DRAM row-buffer hits; random ones
     * mostly cause row conflicts.
     */
    double streamFrac = 0.7;
    std::uint64_t sharedBytes = 0;  ///< shared read-mostly working set
    double sharedFrac = 0.0;  ///< fraction of refs going to shared region
    double sharedHotFrac = 0.0; ///< of shared refs, fraction into hot subset
    std::uint64_t sharedHotBytes = 64 * 1024; ///< hot subset size
    /**
     * Phases between movements of the shared hot window (0 = static).
     * A static window produces almost no steady-state positive
     * interference (each private cache would hold it after first touch);
     * a moving window models blocked algorithms touching fresh shared
     * data, the paper's Figure 8 benchmarks.
     */
    int sharedWindowPhases = 0;

    // --- synchronization --------------------------------------------------
    int numLocks = 0;         ///< lock granularity (0 = lock-free)
    double lockFreq = 0.0;    ///< probability of a critical section per iter
    int csCompute = 0;        ///< ALU instructions inside a critical section
    int csMem = 0;            ///< memory refs inside a critical section
    int barrierPhases = 1;    ///< number of barrier-separated phases
    double imbalanceSkew = 0.0; ///< per-phase work skew in [0, 1)

    /**
     * Average available task parallelism (0 = unlimited). When positive,
     * each barrier phase activates only ~parallelismCap of the N threads;
     * the rest go straight to the barrier and yield. This models the
     * limited-parallelism behaviour the paper observes for yield-dominated
     * benchmarks ("the speedup number is an approximation of the average
     * number of active threads", Section 7.2). The work itself is
     * conserved: active threads split the phase's iterations.
     */
    double parallelismCap = 0.0;
    double capJitter = 0.0;   ///< relative per-phase jitter on the cap
    /**
     * How the available parallelism scales below 16 threads:
     * effective cap = parallelismCap * (nthreads/16)^capScale. Zero
     * means the cap is a pure application property (pipeline width);
     * positive values model work partitions whose parallelism shrinks
     * with fewer threads (e.g. domain decompositions).
     */
    double capScale = 0.4;
    bool finalBarrier = true; ///< emit a barrier at the very end of the run

    // --- parallelization overhead ------------------------------------------
    double parOverheadFrac = 0.0; ///< extra instructions per iter when N > 1

    std::uint64_t seed = 1;   ///< base RNG seed

    /** "name" or "name_input" for display, matching the paper's labels. */
    std::string label() const;
};

/**
 * The full 28-row benchmark suite of the paper's Figure 6 (benchmark x
 * input). Order matches the paper's tree listing.
 */
const std::vector<BenchmarkProfile> &benchmarkSuite();

/**
 * Look up a profile by label ("cholesky", "facesim_medium", ...) or
 * bare name ("facesim" matches its first input variant). Returns
 * nullptr when unknown.
 */
const BenchmarkProfile *findProfileByLabel(const std::string &label);

/**
 * Look up a profile by label ("cholesky", "facesim_medium", ...).
 * Fatal error if not found.
 */
const BenchmarkProfile &profileByLabel(const std::string &label);

/** All profile labels, in suite order. */
std::vector<std::string> allProfileLabels();

/** All labels joined with ", " — for error messages listing them. */
std::string allProfileLabelsJoined();

} // namespace sst

#endif // SST_WORKLOAD_PROFILE_HH
