/**
 * @file
 * ThreadProgram: the per-thread op-stream generator. Given a
 * BenchmarkProfile, a thread id and the thread count, it deterministically
 * produces the thread's op stream: barrier-separated phases of loop
 * iterations mixing compute, private/shared memory references and
 * critical sections.
 *
 * Strong scaling semantics: the profile's totalIters are divided over the
 * threads (restricted to each phase's active set when the profile caps
 * available parallelism), so the single-threaded run executes the same
 * total work. With nThreads == 1 the generator emits the *sequential*
 * program: no lock/barrier ops and no parallelization-overhead
 * instructions, exactly like the original serial code the paper's Ts
 * refers to.
 */

#ifndef SST_WORKLOAD_THREAD_PROGRAM_HH
#define SST_WORKLOAD_THREAD_PROGRAM_HH

#include <cstdint>
#include <vector>

#include "util/rng.hh"
#include "util/types.hh"
#include "workload/op.hh"
#include "workload/op_source.hh"
#include "workload/profile.hh"

namespace sst {

/**
 * Placement of one thread's program inside a (possibly heterogeneous)
 * workload. The defaults reproduce the historical homogeneous stream
 * bit for bit; heterogeneous workloads (mixes, pipelines) scope each
 * group into disjoint data regions and sync-id namespaces:
 *
 *  - dataTid: the *global* thread id the private working set is based
 *    at (kInvalidId = the constructor's tid). Groups construct their
 *    programs with group-local tids for work division but global data
 *    tids, so private regions never collide across groups.
 *  - sharedBase: base of the program's shared region (groups get
 *    disjoint regions via addrmap::groupSharedBase).
 *  - lockIdOffset / barrierIdOffset: added to every emitted sync id
 *    (multiples of kGroupSyncStride). Mixes offset both; pipelines
 *    offset locks only, so phase barriers span all stages.
 *  - forceParallel: emit the parallel program (sync ops, overhead)
 *    even when the group has one thread — a 1-thread pipeline stage
 *    still takes part in a parallel run's barriers.
 */
struct ThreadScope
{
    ThreadId dataTid = kInvalidId;
    Addr sharedBase = addrmap::kSharedBase;
    int lockIdOffset = 0;
    int barrierIdOffset = 0;
    bool forceParallel = false;
};

/** Deterministic generator of one thread's op stream. */
class ThreadProgram : public OpSource
{
  public:
    ThreadProgram(const BenchmarkProfile &profile, ThreadId tid,
                  int nthreads, const ThreadScope &scope = ThreadScope{});

    /** Next op of the stream; returns Op::end() forever once finished. */
    Op nextOp() override;

    /** True once the stream has delivered its kEnd op. */
    bool finished() const override { return finished_; }

    /**
     * Total instructions emitted so far (compute counts + one per memory
     * reference + fixed costs for lock ops). Spin-loop instructions are
     * *not* included — the core model executes and counts those.
     */
    std::uint64_t instructionsEmitted() const { return instrEmitted_; }

    /** Number of iterations this thread executes across all phases. */
    std::uint64_t plannedIters() const { return plannedIters_; }

    /**
     * Number of threads active in phase @p phase for the given
     * configuration (exposed for tests and for reasoning about the
     * parallelism cap).
     */
    static int activeThreads(const BenchmarkProfile &profile, int nthreads,
                             int phase);

    /** Instruction cost charged for a lock acquire/release op. */
    static constexpr std::uint32_t kLockOpInstrs = 8;

  private:
    void refill();
    void emitIteration();
    void emitMemRef(bool isStore, Addr addr);
    Addr pickDataAddr();
    Addr pickCsAddr(LockId lock);

    /** Iterations assigned to this thread in @p phase. */
    std::uint64_t itersInPhase(int phase) const;

    /** Parallel program mode: sync ops + parallelization overhead. */
    bool parallelMode() const { return nthreads_ > 1 || scope_.forceParallel; }

    const BenchmarkProfile &prof_;
    ThreadId tid_;
    int nthreads_;
    ThreadScope scope_;
    ThreadId dataTid_; ///< resolved scope_.dataTid (private region base)
    Rng rng_;

    std::vector<Op> buf_;
    std::size_t cursor_ = 0;

    int phase_ = 0;
    std::uint64_t phaseItersLeft_ = 0;
    bool phaseInitDone_ = false;
    bool warmupDone_ = false;
    bool finished_ = false;

    std::uint64_t instrEmitted_ = 0;
    std::uint64_t plannedIters_ = 0;
    std::uint64_t memSlot_ = 0;
    Addr streamCursor_ = 0;
};

} // namespace sst

#endif // SST_WORKLOAD_THREAD_PROGRAM_HH
