#include "profile.hh"

#include "spec/registries.hh"
#include "util/logging.hh"

namespace sst {

std::string
BenchmarkProfile::label() const
{
    return input.empty() ? name : name + "_" + input;
}

namespace {

constexpr std::uint64_t KB = 1024;
constexpr std::uint64_t MB = 1024 * 1024;

/**
 * Builds the 28-row suite. Parameters are tuned so that the measured
 * speedups and dominant stack components land near the paper's Figure 6;
 * the mapping from workload knob to scaling delimiter:
 *
 *  - parallelismCap: limited task parallelism -> inactive threads yield
 *    at phase barriers (the paper's dominant "yielding" delimiter).
 *  - numLocks/lockFreq/cs*: critical-section contention; short waits
 *    surface as spinning, long waits as yielding.
 *  - privateBytes/privateHot*: footprint (LLC pressure) vs memory
 *    intensity (DRAM bus pressure) of the private working set.
 *  - sharedFrac/sharedHot*: cross-thread reuse -> positive interference;
 *    cold shared references -> DRAM traffic.
 *  - imbalanceSkew + barrierPhases: barrier waiting.
 *  - parOverheadFrac: extra instructions in parallel mode (unaccounted,
 *    reproducing the estimation-error correlation of Section 6).
 *
 * Bandwidth sanity: the shared bus serves one access per ~6 cycles, so
 * the suite keeps aggregate DRAM demand below ~0.8 of that except for
 * deliberately memory-saturated workloads (radix, srad, canneal).
 */
std::vector<BenchmarkProfile>
buildSuite()
{
    std::vector<BenchmarkProfile> v;

    auto add = [&v](BenchmarkProfile p) {
        p.seed = 0x5157ULL * (v.size() + 1);
        v.push_back(std::move(p));
    };

    // ---- good scaling ---------------------------------------------------
    {
        BenchmarkProfile p;
        p.name = "blackscholes"; p.suite = "parsec"; p.input = "medium";
        p.paperSpeedup16 = 15.94; p.paperClass = "good";
        p.totalIters = 96000; p.computePerIter = 280; p.memPerIter = 8;
        p.privateBytes = 16 * KB; p.streamFrac = 0.5;
        p.sharedBytes = 32 * KB; p.sharedFrac = 0.01; p.sharedHotFrac = 0.5;
        p.barrierPhases = 1; p.imbalanceSkew = 0.01;
        p.parOverheadFrac = 0.005;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "blackscholes"; p.suite = "parsec"; p.input = "small";
        p.paperSpeedup16 = 15.71; p.paperClass = "good";
        p.totalIters = 48000; p.computePerIter = 280; p.memPerIter = 8;
        p.privateBytes = 16 * KB; p.streamFrac = 0.5;
        p.sharedBytes = 32 * KB; p.sharedFrac = 0.01; p.sharedHotFrac = 0.5;
        p.barrierPhases = 1; p.imbalanceSkew = 0.02;
        p.parOverheadFrac = 0.01;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "radix"; p.suite = "splash2";
        p.paperSpeedup16 = 11.60; p.paperClass = "good";
        p.totalIters = 32000; p.computePerIter = 160; p.memPerIter = 16;
        p.privateBytes = 8 * MB;
        p.privateHotBytes = 32 * KB; p.privateHotFrac = 0.985;
        p.streamFrac = 0.9;
        p.sharedBytes = 128 * KB; p.sharedFrac = 0.02;
        p.sharedHotFrac = 0.5;
        p.barrierPhases = 8; p.imbalanceSkew = 0.05;
        p.parOverheadFrac = 0.01;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "swaptions"; p.suite = "parsec"; p.input = "medium";
        p.paperSpeedup16 = 12.99; p.paperClass = "good";
        p.totalIters = 48000; p.computePerIter = 300; p.memPerIter = 10;
        p.privateBytes = 24 * KB; p.streamFrac = 0.5;
        p.sharedBytes = 32 * KB; p.sharedFrac = 0.01; p.sharedHotFrac = 0.5;
        p.parallelismCap = 14.62; p.capJitter = 0.08;
        p.barrierPhases = 26; p.imbalanceSkew = 0.06;
        p.parOverheadFrac = 0.02;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "heartwall"; p.suite = "rodinia";
        p.paperSpeedup16 = 10.39; p.paperClass = "good";
        p.totalIters = 40000; p.computePerIter = 240; p.memPerIter = 12;
        p.privateBytes = 32 * KB; p.streamFrac = 0.6;
        p.sharedBytes = 64 * KB; p.sharedFrac = 0.015;
        p.sharedHotFrac = 0.4;
        p.parallelismCap = 12.56; p.capJitter = 0.12;
        p.barrierPhases = 24; p.imbalanceSkew = 0.08;
        p.parOverheadFrac = 0.02;
        add(p);
    }

    // ---- moderate scaling -------------------------------------------------
    {
        BenchmarkProfile p;
        p.name = "srad"; p.suite = "rodinia";
        p.paperSpeedup16 = 5.20; p.paperClass = "moderate";
        p.totalIters = 24000; p.computePerIter = 160; p.memPerIter = 24;
        p.privateBytes = 8 * MB;
        p.privateHotBytes = 24 * KB; p.privateHotFrac = 0.966;
        p.streamFrac = 0.85;
        p.sharedBytes = 1 * MB; p.sharedFrac = 0.04; p.sharedHotFrac = 0.7;
        p.barrierPhases = 32; p.imbalanceSkew = 0.15;
        p.parOverheadFrac = 0.02;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "cholesky"; p.suite = "splash2";
        p.paperSpeedup16 = 5.02; p.paperClass = "moderate";
        p.totalIters = 24000; p.computePerIter = 240; p.memPerIter = 12;
        p.privateBytes = 88 * KB; p.streamFrac = 0.5;
        p.sharedBytes = 3 * MB; p.sharedFrac = 0.10;
        p.sharedHotFrac = 0.45; p.sharedHotBytes = 64 * KB;
        p.numLocks = 1; p.lockFreq = 0.82;
        p.csCompute = 80; p.csMem = 1;
        p.barrierPhases = 12; p.imbalanceSkew = 0.15;
        p.sharedWindowPhases = 6;
        p.parOverheadFrac = 0.03;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "lud"; p.suite = "rodinia";
        p.paperSpeedup16 = 5.77; p.paperClass = "moderate";
        p.totalIters = 32000; p.computePerIter = 220; p.memPerIter = 14;
        p.privateBytes = 32 * KB; p.streamFrac = 0.6;
        p.sharedBytes = 128 * KB; p.sharedFrac = 0.02;
        p.sharedHotFrac = 0.5;
        p.parallelismCap = 7.68; p.capJitter = 0.2;
        p.barrierPhases = 40; p.imbalanceSkew = 0.15;
        p.parOverheadFrac = 0.02;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "water-nsquared"; p.suite = "splash2";
        p.paperSpeedup16 = 5.77; p.paperClass = "moderate";
        p.totalIters = 32000; p.computePerIter = 260; p.memPerIter = 12;
        p.privateBytes = 32 * KB; p.streamFrac = 0.5;
        p.sharedBytes = 128 * KB; p.sharedFrac = 0.02;
        p.sharedHotFrac = 0.5;
        p.numLocks = 16; p.lockFreq = 0.3; p.csCompute = 60; p.csMem = 2;
        p.parallelismCap = 7.06; p.capJitter = 0.15;
        p.barrierPhases = 12; p.imbalanceSkew = 0.10;
        p.parOverheadFrac = 0.02;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "fluidanimate"; p.suite = "parsec"; p.input = "medium";
        p.paperSpeedup16 = 5.71; p.paperClass = "moderate";
        p.totalIters = 32000; p.computePerIter = 200; p.memPerIter = 16;
        p.privateBytes = 48 * KB; p.streamFrac = 0.6;
        p.sharedBytes = 256 * KB; p.sharedFrac = 0.02; p.sharedHotFrac = 0.4;
        p.numLocks = 64; p.lockFreq = 0.4; p.csCompute = 24; p.csMem = 2;
        p.parallelismCap = 9.24; p.capJitter = 0.18;
        p.barrierPhases = 40; p.imbalanceSkew = 0.12;
        p.parOverheadFrac = 0.18;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "lu.ncont"; p.suite = "splash2";
        p.paperSpeedup16 = 5.53; p.paperClass = "moderate";
        p.totalIters = 28000; p.computePerIter = 220; p.memPerIter = 16;
        p.privateBytes = 160 * KB;
        p.privateHotBytes = 84 * KB; p.privateHotFrac = 0.994;
        p.streamFrac = 0.5;
        p.sharedBytes = 768 * KB; p.sharedFrac = 0.04;
        p.sharedHotFrac = 0.10; p.sharedHotBytes = 48 * KB;
        p.parallelismCap = 9.75; p.capJitter = 0.2;
        p.barrierPhases = 32; p.imbalanceSkew = 0.15;
        p.sharedWindowPhases = 16;
        p.parOverheadFrac = 0.03;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "lu.cont"; p.suite = "splash2";
        p.paperSpeedup16 = 5.79; p.paperClass = "moderate";
        p.totalIters = 28000; p.computePerIter = 240; p.memPerIter = 14;
        p.privateBytes = 128 * KB;
        p.privateHotBytes = 88 * KB; p.privateHotFrac = 0.99;
        p.streamFrac = 0.5;
        p.sharedBytes = 768 * KB; p.sharedFrac = 0.05;
        p.sharedHotFrac = 0.12; p.sharedHotBytes = 48 * KB;
        p.parallelismCap = 11.87; p.capJitter = 0.2;
        p.barrierPhases = 32; p.imbalanceSkew = 0.12;
        p.sharedWindowPhases = 16;
        p.parOverheadFrac = 0.02;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "facesim"; p.suite = "parsec"; p.input = "medium";
        p.paperSpeedup16 = 5.50; p.paperClass = "moderate";
        p.totalIters = 24000; p.computePerIter = 240; p.memPerIter = 14;
        p.privateBytes = 192 * KB;
        p.privateHotBytes = 96 * KB; p.privateHotFrac = 0.996;
        p.streamFrac = 0.4;
        p.sharedBytes = 256 * KB; p.sharedFrac = 0.02; p.sharedHotFrac = 0.3;
        p.parallelismCap = 11.28; p.capJitter = 0.18;
        p.barrierPhases = 48; p.imbalanceSkew = 0.15;
        p.capScale = 0.75;
        p.parOverheadFrac = 0.03;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "facesim"; p.suite = "parsec"; p.input = "small";
        p.paperSpeedup16 = 5.46; p.paperClass = "moderate";
        p.totalIters = 18000; p.computePerIter = 240; p.memPerIter = 14;
        p.privateBytes = 160 * KB;
        p.privateHotBytes = 92 * KB; p.privateHotFrac = 0.997;
        p.streamFrac = 0.4;
        p.sharedBytes = 256 * KB; p.sharedFrac = 0.02;
        p.sharedHotFrac = 0.3;
        p.parallelismCap = 9.43; p.capJitter = 0.18;
        p.barrierPhases = 40; p.imbalanceSkew = 0.15;
        p.capScale = 0.75;
        p.parOverheadFrac = 0.04;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "fft"; p.suite = "splash2";
        p.paperSpeedup16 = 9.43; p.paperClass = "moderate";
        p.totalIters = 32000; p.computePerIter = 200; p.memPerIter = 20;
        p.privateBytes = 192 * KB;
        p.privateHotBytes = 32 * KB; p.privateHotFrac = 0.997;
        p.streamFrac = 0.85;
        p.sharedBytes = 256 * KB; p.sharedFrac = 0.02; p.sharedHotFrac = 0.5;
        p.parallelismCap = 10.93; p.capJitter = 0.1;
        p.barrierPhases = 6; p.imbalanceSkew = 0.06;
        p.parOverheadFrac = 0.02;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "canneal"; p.suite = "parsec"; p.input = "medium";
        p.paperSpeedup16 = 7.61; p.paperClass = "moderate";
        p.totalIters = 24000; p.computePerIter = 180; p.memPerIter = 16;
        p.privateBytes = 80 * KB; p.streamFrac = 0.3;
        p.sharedBytes = 6 * MB; p.sharedFrac = 0.03;
        p.sharedHotFrac = 0.10; p.sharedHotBytes = 64 * KB;
        p.parallelismCap = 14.03; p.capJitter = 0.12;
        p.barrierPhases = 16; p.imbalanceSkew = 0.08;
        p.sharedWindowPhases = 8;
        p.parOverheadFrac = 0.02;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "canneal"; p.suite = "parsec"; p.input = "small";
        p.paperSpeedup16 = 6.93; p.paperClass = "moderate";
        p.totalIters = 18000; p.computePerIter = 180; p.memPerIter = 16;
        p.privateBytes = 64 * KB; p.streamFrac = 0.3;
        p.sharedBytes = 3 * MB; p.sharedFrac = 0.05;
        p.sharedHotFrac = 0.06; p.sharedHotBytes = 48 * KB;
        p.parallelismCap = 12.21; p.capJitter = 0.12;
        p.barrierPhases = 16; p.imbalanceSkew = 0.08;
        p.sharedWindowPhases = 8;
        p.parOverheadFrac = 0.03;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "bfs"; p.suite = "rodinia";
        p.paperSpeedup16 = 5.65; p.paperClass = "moderate";
        p.totalIters = 24000; p.computePerIter = 160; p.memPerIter = 20;
        p.privateBytes = 80 * KB; p.streamFrac = 0.3;
        p.sharedBytes = 1 * MB; p.sharedFrac = 0.04;
        p.sharedHotFrac = 0.03; p.sharedHotBytes = 48 * KB;
        p.parallelismCap = 11.58; p.capJitter = 0.25;
        p.barrierPhases = 48; p.imbalanceSkew = 0.15;
        p.sharedWindowPhases = 32;
        p.parOverheadFrac = 0.03;
        add(p);
    }

    // ---- poor scaling -----------------------------------------------------
    {
        BenchmarkProfile p;
        p.name = "ferret"; p.suite = "parsec"; p.input = "medium";
        p.paperSpeedup16 = 4.77; p.paperClass = "poor";
        p.totalIters = 24000; p.computePerIter = 220; p.memPerIter = 12;
        p.privateBytes = 48 * KB; p.streamFrac = 0.5;
        p.sharedBytes = 128 * KB; p.sharedFrac = 0.015;
        p.sharedHotFrac = 0.5;
        p.parallelismCap = 6.95; p.capJitter = 0.18;
        p.barrierPhases = 48; p.imbalanceSkew = 0.10;
        p.capScale = 0.85;
        p.parOverheadFrac = 0.04;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "water-spatial"; p.suite = "splash2";
        p.paperSpeedup16 = 4.57; p.paperClass = "poor";
        p.totalIters = 28000; p.computePerIter = 240; p.memPerIter = 12;
        p.privateBytes = 32 * KB; p.streamFrac = 0.5;
        p.sharedBytes = 128 * KB; p.sharedFrac = 0.015;
        p.sharedHotFrac = 0.5;
        p.numLocks = 8; p.lockFreq = 0.2; p.csCompute = 60; p.csMem = 2;
        p.parallelismCap = 5.26; p.capJitter = 0.15;
        p.barrierPhases = 12; p.imbalanceSkew = 0.08;
        p.parOverheadFrac = 0.02;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "dedup"; p.suite = "parsec"; p.input = "medium";
        p.paperSpeedup16 = 4.12; p.paperClass = "poor";
        p.totalIters = 22000; p.computePerIter = 200; p.memPerIter = 16;
        p.privateBytes = 64 * KB; p.streamFrac = 0.5;
        p.sharedBytes = 256 * KB; p.sharedFrac = 0.02; p.sharedHotFrac = 0.4;
        p.parallelismCap = 5.19; p.capJitter = 0.2;
        p.barrierPhases = 44; p.imbalanceSkew = 0.10;
        p.parOverheadFrac = 0.05;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "freqmine"; p.suite = "parsec"; p.input = "small";
        p.paperSpeedup16 = 4.09; p.paperClass = "poor";
        p.totalIters = 20000; p.computePerIter = 220; p.memPerIter = 14;
        p.privateBytes = 64 * KB; p.streamFrac = 0.4;
        p.sharedBytes = 192 * KB; p.sharedFrac = 0.02;
        p.sharedHotFrac = 0.4;
        p.parallelismCap = 5.00; p.capJitter = 0.15;
        p.barrierPhases = 24; p.imbalanceSkew = 0.10;
        p.parOverheadFrac = 0.04;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "freqmine"; p.suite = "parsec"; p.input = "medium";
        p.paperSpeedup16 = 3.89; p.paperClass = "poor";
        p.totalIters = 24000; p.computePerIter = 220; p.memPerIter = 14;
        p.privateBytes = 96 * KB; p.streamFrac = 0.4;
        p.sharedBytes = 256 * KB; p.sharedFrac = 0.02; p.sharedHotFrac = 0.4;
        p.parallelismCap = 6.09; p.capJitter = 0.15;
        p.barrierPhases = 24; p.imbalanceSkew = 0.10;
        p.parOverheadFrac = 0.04;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "swaptions"; p.suite = "parsec"; p.input = "small";
        p.paperSpeedup16 = 3.81; p.paperClass = "poor";
        p.totalIters = 8000; p.computePerIter = 300; p.memPerIter = 10;
        p.privateBytes = 16 * KB; p.streamFrac = 0.5;
        p.sharedBytes = 32 * KB; p.sharedFrac = 0.01; p.sharedHotFrac = 0.5;
        p.parallelismCap = 5.62; p.capJitter = 0.2;
        p.barrierPhases = 16; p.imbalanceSkew = 0.20;
        p.parOverheadFrac = 0.26;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "dedup"; p.suite = "parsec"; p.input = "small";
        p.paperSpeedup16 = 3.56; p.paperClass = "poor";
        p.totalIters = 16000; p.computePerIter = 200; p.memPerIter = 16;
        p.privateBytes = 48 * KB; p.streamFrac = 0.5;
        p.sharedBytes = 256 * KB; p.sharedFrac = 0.02;
        p.sharedHotFrac = 0.4;
        p.parallelismCap = 5.12; p.capJitter = 0.2;
        p.barrierPhases = 20; p.imbalanceSkew = 0.10;
        p.parOverheadFrac = 0.06;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "bodytrack"; p.suite = "parsec"; p.input = "small";
        p.paperSpeedup16 = 3.02; p.paperClass = "poor";
        p.totalIters = 16000; p.computePerIter = 220; p.memPerIter = 12;
        p.privateBytes = 32 * KB; p.streamFrac = 0.5;
        p.sharedBytes = 128 * KB; p.sharedFrac = 0.015;
        p.sharedHotFrac = 0.5;
        p.parallelismCap = 4.02; p.capJitter = 0.15;
        p.barrierPhases = 32; p.imbalanceSkew = 0.12;
        p.parOverheadFrac = 0.08;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "ferret"; p.suite = "parsec"; p.input = "small";
        p.paperSpeedup16 = 2.94; p.paperClass = "poor";
        p.totalIters = 18000; p.computePerIter = 220; p.memPerIter = 12;
        p.privateBytes = 48 * KB; p.streamFrac = 0.5;
        p.sharedBytes = 128 * KB; p.sharedFrac = 0.015;
        p.sharedHotFrac = 0.5;
        p.parallelismCap = 4.02; p.capJitter = 0.15;
        p.barrierPhases = 56; p.imbalanceSkew = 0.10;
        p.capScale = 0.85;
        p.parOverheadFrac = 0.05;
        add(p);
    }
    {
        BenchmarkProfile p;
        p.name = "needle"; p.suite = "rodinia";
        p.paperSpeedup16 = 4.14; p.paperClass = "poor";
        p.totalIters = 20000; p.computePerIter = 160; p.memPerIter = 20;
        p.privateBytes = 80 * KB; p.streamFrac = 0.4;
        p.sharedBytes = 1 * MB; p.sharedFrac = 0.05;
        p.sharedHotFrac = 0.08; p.sharedHotBytes = 48 * KB;
        p.parallelismCap = 7.89; p.capJitter = 0.25;
        p.barrierPhases = 48; p.imbalanceSkew = 0.18;
        p.sharedWindowPhases = 24;
        p.parOverheadFrac = 0.04;
        add(p);
    }

    return v;
}

} // namespace

const std::vector<BenchmarkProfile> &
benchmarkSuite()
{
    static const std::vector<BenchmarkProfile> suite = buildSuite();
    return suite;
}

// The lookup functions below are thin wrappers over profileRegistry()
// (src/spec/registries.hh), which owns the label index, the bare-name
// aliasing rule, and the generated unknown-label error message.

const BenchmarkProfile *
findProfileByLabel(const std::string &label)
{
    const BenchmarkProfile *const *p = profileRegistry().find(label);
    return p ? *p : nullptr;
}

const BenchmarkProfile &
profileByLabel(const std::string &label)
{
    try {
        return *profileRegistry().at(label);
    } catch (const std::invalid_argument &e) {
        fatal(e.what()); // lists every valid label
    }
}

std::vector<std::string>
allProfileLabels()
{
    return profileRegistry().names();
}

std::string
allProfileLabelsJoined()
{
    return profileRegistry().namesJoined();
}

} // namespace sst
