/**
 * @file
 * The shared memory subsystem: one command/data bus feeding a multi-bank
 * DRAM with an open-page (open-row) policy. All cores share the bus and
 * the banks, which creates the three negative memory interference effects
 * of Section 3.1 of the paper:
 *
 *   1. bus conflicts   — a request waits while the bus carries another
 *                        core's command or data,
 *   2. bank conflicts  — a request waits while its bank services another
 *                        core's access,
 *   3. page conflicts  — a core's open row was closed by another core's
 *                        access, forcing a precharge + activate that the
 *                        core would not have paid with the memory to
 *                        itself. Attribution uses the per-core open row
 *                        array (ORA) exactly as in Section 4.1.
 *
 * Timing is computed at issue: the model keeps per-resource free
 * timestamps and schedules each request FCFS, which is exact as long as
 * requests are issued in nondecreasing time order (the event loop
 * guarantees this).
 */

#ifndef SST_MEM_DRAM_HH
#define SST_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace sst {

/** DRAM and bus timing parameters; defaults follow the paper's setup. */
struct DramParams
{
    int nbanks = 8;            ///< shared memory banks
    Cycles busCycles = 2;      ///< bus occupancy per command transfer
    Cycles dataCycles = 4;     ///< bus occupancy for the data burst
    Cycles rowHitCycles = 30;  ///< CAS only (open-page hit)
    Cycles rowEmptyCycles = 50;  ///< activate + CAS (bank idle)
    Cycles rowConflictCycles = 70; ///< precharge + activate + CAS
    std::uint64_t rowBytes = 2048; ///< open page size
};

/** Complete timing/attribution breakdown of one DRAM access. */
struct DramResult
{
    Cycles completeAt = 0;     ///< cycle the data burst finishes
    Cycles serviceCycles = 0;  ///< completeAt - issue time
    Cycles busWait = 0;        ///< cycles waiting for the bus
    Cycles busWaitOther = 0;   ///< ... while held by another core
    Cycles bankWait = 0;       ///< cycles waiting for the bank
    Cycles bankWaitOther = 0;  ///< ... while held by another core
    bool rowConflict = false;  ///< access needed precharge + activate
    Cycles pageConflictPenalty = 0; ///< extra cycles vs an open-row hit
    bool pageConflictByOther = false; ///< ORA: another core closed our row
    int bank = 0;
    std::uint64_t row = 0;
};

/** Per-core ground-truth counters. */
struct DramStats
{
    std::uint64_t accesses = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowConflicts = 0;
    std::uint64_t busWaitOther = 0;
    std::uint64_t bankWaitOther = 0;
    std::uint64_t pageConflictOtherCycles = 0;
};

/**
 * Busy-interval allocator for the shared bus. The command and the data
 * burst of a request occupy the bus separately, and the bank access in
 * between leaves the bus free for other cores — so the allocator must be
 * able to fill gaps between existing reservations. Requests are issued
 * in nondecreasing time order, which lets reserve() prune intervals that
 * ended before the current issue time.
 */
class BusTimeline
{
  public:
    /**
     * Reserve @p len bus cycles at the earliest point >= @p t.
     * @param[out] blocker core whose reservation forced the final wait
     *             (kInvalidId if none)
     * @return the reservation's start cycle
     */
    Cycles reserve(Cycles t, Cycles len, CoreId who, CoreId &blocker);

    /**
     * Drop reservations that ended before @p t. Callers must pass a
     * watermark no later than any future reserve() time (the monotone
     * request issue time qualifies).
     */
    void pruneBefore(Cycles t);

    /**
     * Amortized-O(1) variant for the per-access hot path: drop only the
     * leading run of expired reservations by advancing a head index
     * (compacting the backing vector when the dead prefix grows).
     * Interior expired intervals are left in place — reserve() skips
     * them anyway, so the computed schedule is identical to pruning
     * fully on every access.
     */
    void pruneFront(Cycles t);

    /** Number of retained reservations (test/diagnostic helper). */
    std::size_t liveReservations() const { return busy_.size() - head_; }

  private:
    struct Interval
    {
        Cycles start;
        Cycles end;
        CoreId owner;
    };
    std::vector<Interval> busy_; ///< busy_[head_..]: sorted by start
    std::size_t head_ = 0;       ///< first live slot in busy_
};

/** Shared bus + banked open-page DRAM + per-core ORAs. */
class DramModel
{
  public:
    DramModel(int ncores, const DramParams &params);

    /**
     * Issue an access and compute its full schedule.
     * @param now issue cycle; must be >= every earlier call's @p now
     */
    DramResult access(CoreId core, Addr addr, Cycles now);

    /** Zero all per-core counters (region-of-interest start). */
    void resetStats();

    const DramStats &stats(CoreId core) const
    {
        return stats_[static_cast<std::size_t>(core)];
    }

    const DramParams &params() const { return params_; }

    /** Bank index for @p addr (exposed for tests). */
    int bankOf(Addr addr) const;

    /** Row number within its bank for @p addr (exposed for tests). */
    std::uint64_t rowOf(Addr addr) const;

    /** Hardware bits of one core's ORA (Section 4.7 cost model). */
    std::uint64_t oraHardwareBitsPerCore() const;

  private:
    int ncores_;
    DramParams params_;

    /** nbanks - 1 when nbanks is a power of two, else 0 (slow modulo
     *  path); bankOf/rowOf run on every DRAM access. */
    std::uint64_t bankMask_ = 0;
    int bankBits_ = 0;
    int rowShift_ = 0; ///< log2(lines per row), 0 when not a power of two

    BusTimeline bus_;

    struct Bank
    {
        Cycles freeAt = 0;
        CoreId holder = kInvalidId;
        std::uint64_t openRow = 0;
        bool anyOpen = false;
        CoreId lastOpener = kInvalidId;
    };
    std::vector<Bank> banks_;

    /** ORA: per core x bank, the row this core opened most recently. */
    struct OraEntry
    {
        std::uint64_t row = 0;
        bool valid = false;
    };
    std::vector<std::vector<OraEntry>> ora_;

    std::vector<DramStats> stats_;
};

} // namespace sst

#endif // SST_MEM_DRAM_HH
