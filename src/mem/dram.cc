#include "dram.hh"

#include <algorithm>

#include "util/bits.hh"
#include "util/logging.hh"

namespace sst {

void
BusTimeline::pruneBefore(Cycles t)
{
    // Only safe with a watermark no later than any future reserve() time:
    // callers use the (monotone) request issue time.
    std::size_t keep = 0;
    for (std::size_t i = head_; i < busy_.size(); ++i) {
        if (busy_[i].end > t)
            busy_[keep++] = busy_[i];
    }
    busy_.resize(keep);
    head_ = 0;
}

void
BusTimeline::pruneFront(Cycles t)
{
    while (head_ < busy_.size() && busy_[head_].end <= t)
        ++head_;
    // Compact once the dead prefix dominates; amortized O(1) per call.
    if (head_ >= 64 && head_ * 2 >= busy_.size()) {
        busy_.erase(busy_.begin(),
                    busy_.begin() + static_cast<std::ptrdiff_t>(head_));
        head_ = 0;
    }
}

Cycles
BusTimeline::reserve(Cycles t, Cycles len, CoreId who, CoreId &blocker)
{
    blocker = kInvalidId;

    // First-fit gap search along the sorted busy list.
    Cycles cur = t;
    std::size_t pos = head_;
    for (; pos < busy_.size(); ++pos) {
        const Interval &iv = busy_[pos];
        if (iv.end <= cur)
            continue;
        if (iv.start >= cur + len)
            break; // the gap before iv fits
        if (iv.end > cur) {
            cur = iv.end;
            blocker = iv.owner;
        }
    }
    if (cur == t)
        blocker = kInvalidId; // no wait, no blocker

    // Insert keeping the start order.
    Interval mine{cur, cur + len, who};
    auto it = busy_.begin() + static_cast<std::ptrdiff_t>(head_);
    while (it != busy_.end() && it->start < mine.start)
        ++it;
    busy_.insert(it, mine);
    return cur;
}

DramModel::DramModel(int ncores, const DramParams &params)
    : ncores_(ncores), params_(params),
      banks_(static_cast<std::size_t>(params.nbanks)),
      stats_(static_cast<std::size_t>(ncores))
{
    sstAssert(params.nbanks > 0, "DRAM needs at least one bank");
    ora_.resize(static_cast<std::size_t>(ncores));
    for (auto &per_core : ora_)
        per_core.resize(static_cast<std::size_t>(params.nbanks));

    const std::uint64_t nb = static_cast<std::uint64_t>(params.nbanks);
    if (isPow2(nb)) {
        bankMask_ = nb - 1;
        bankBits_ = log2i(nb);
    }
    const std::uint64_t lines_per_row = params.rowBytes / kLineBytes;
    if (lines_per_row > 1 && isPow2(lines_per_row))
        rowShift_ = log2i(lines_per_row);
}

int
DramModel::bankOf(Addr addr) const
{
    if (bankMask_ != 0 || params_.nbanks == 1)
        return static_cast<int>(lineNum(addr) & bankMask_);
    return static_cast<int>(lineNum(addr) %
                            static_cast<std::uint64_t>(params_.nbanks));
}

std::uint64_t
DramModel::rowOf(Addr addr) const
{
    const std::uint64_t lines_per_row = params_.rowBytes / kLineBytes;
    if ((bankMask_ != 0 || params_.nbanks == 1) && rowShift_ != 0)
        return (lineNum(addr) >> bankBits_) >> rowShift_;
    return lineNum(addr) / static_cast<std::uint64_t>(params_.nbanks) /
           lines_per_row;
}

DramResult
DramModel::access(CoreId core, Addr addr, Cycles now)
{
    DramResult res;
    auto &st = stats_[static_cast<std::size_t>(core)];
    ++st.accesses;

    res.bank = bankOf(addr);
    res.row = rowOf(addr);
    Bank &bank = banks_[static_cast<std::size_t>(res.bank)];

    bus_.pruneFront(now);

    // ---- command transfer on the shared bus -----------------------------
    CoreId blocker = kInvalidId;
    const Cycles cmd_start =
        bus_.reserve(now, params_.busCycles, core, blocker);
    res.busWait = cmd_start - now;
    if (res.busWait > 0 && blocker != kInvalidId && blocker != core)
        res.busWaitOther = res.busWait;
    const Cycles cmd_done = cmd_start + params_.busCycles;

    // ---- bank access with open-page policy --------------------------------
    const Cycles bank_start = std::max(cmd_done, bank.freeAt);
    res.bankWait = bank_start - cmd_done;
    if (res.bankWait > 0 && bank.holder != kInvalidId &&
        bank.holder != core) {
        res.bankWaitOther = res.bankWait;
    }

    Cycles service;
    if (!bank.anyOpen) {
        service = params_.rowEmptyCycles;
    } else if (bank.openRow == res.row) {
        service = params_.rowHitCycles;
        ++st.rowHits;
    } else {
        service = params_.rowConflictCycles;
        res.rowConflict = true;
        ++st.rowConflicts;
        res.pageConflictPenalty =
            params_.rowConflictCycles - params_.rowHitCycles;

        // ORA attribution (Section 4.1): this core opened the row it now
        // needs most recently, and another core has since opened a
        // different one -> the precharge/activate penalty is negative
        // interference caused by that other core.
        const OraEntry &oe =
            ora_[static_cast<std::size_t>(core)]
                [static_cast<std::size_t>(res.bank)];
        if (oe.valid && oe.row == res.row && bank.lastOpener != core)
            res.pageConflictByOther = true;
    }

    const Cycles bank_done = bank_start + service;
    bank.freeAt = bank_done;
    bank.holder = core;
    bank.openRow = res.row;
    bank.anyOpen = true;
    bank.lastOpener = core;
    ora_[static_cast<std::size_t>(core)]
        [static_cast<std::size_t>(res.bank)] = {res.row, true};

    // ---- data burst back over the shared bus -------------------------------
    const Cycles data_start =
        bus_.reserve(bank_done, params_.dataCycles, core, blocker);
    const Cycles data_wait = data_start - bank_done;
    res.busWait += data_wait;
    if (data_wait > 0 && blocker != kInvalidId && blocker != core)
        res.busWaitOther += data_wait;
    res.completeAt = data_start + params_.dataCycles;

    res.serviceCycles = res.completeAt - now;

    st.busWaitOther += res.busWaitOther;
    st.bankWaitOther += res.bankWaitOther;
    if (res.pageConflictByOther)
        st.pageConflictOtherCycles += res.pageConflictPenalty;
    return res;
}

void
DramModel::resetStats()
{
    for (auto &st : stats_)
        st = DramStats{};
}

std::uint64_t
DramModel::oraHardwareBitsPerCore() const
{
    // One row number per bank; rows are addressed with up to 28 bits in a
    // 42-bit physical address space, plus a valid bit.
    const std::uint64_t row_bits = 28 + 1;
    return static_cast<std::uint64_t>(params_.nbanks) * row_bits;
}

} // namespace sst
