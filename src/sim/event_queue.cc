#include "event_queue.hh"

#include "util/logging.hh"

namespace sst {

EventQueue::EventQueue(int ncores)
    : ncores_(static_cast<std::size_t>(ncores))
{
    sstAssert(ncores >= 1, "EventQueue needs at least one core");
    heap_.reserve(ncores_ * 2);
    corePos_.resize(ncores_);
    for (std::size_t c = 0; c < ncores_; ++c) {
        heap_.push_back(Entry{kNeverCycles,
                              static_cast<std::uint8_t>(Kind::kCore),
                              static_cast<std::int32_t>(c)});
        corePos_[c] = static_cast<std::int32_t>(c);
    }
    // All keys equal (kNeverCycles): any array order is a valid heap.
}

bool
EventQueue::before(const Entry &a, const Entry &b)
{
    if (a.at != b.at)
        return a.at < b.at;
    if (a.kind != b.kind)
        return a.kind < b.kind;
    return a.id < b.id;
}

void
EventQueue::moveTo(const Entry &e, std::size_t i)
{
    heap_[i] = e;
    if (e.kind == static_cast<std::uint8_t>(Kind::kCore))
        corePos_[static_cast<std::size_t>(e.id)] =
            static_cast<std::int32_t>(i);
}

void
EventQueue::siftUp(std::size_t i)
{
    const Entry e = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!before(e, heap_[parent]))
            break;
        moveTo(heap_[parent], i);
        i = parent;
    }
    moveTo(e, i);
}

void
EventQueue::siftDown(std::size_t i)
{
    const Entry e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && before(heap_[child + 1], heap_[child]))
            ++child;
        if (!before(heap_[child], e))
            break;
        moveTo(heap_[child], i);
        i = child;
    }
    moveTo(e, i);
}

void
EventQueue::updateCore(CoreId core, Cycles at)
{
    ++ops_;
    const std::size_t pos =
        static_cast<std::size_t>(corePos_[static_cast<std::size_t>(core)]);
    const Cycles old = heap_[pos].at;
    heap_[pos].at = at;
    if (at < old)
        siftUp(pos);
    else if (at > old)
        siftDown(pos);
}

void
EventQueue::pushWake(Cycles at, ThreadId tid)
{
    ++ops_;
    heap_.push_back(Entry{at, static_cast<std::uint8_t>(Kind::kWake),
                          static_cast<std::int32_t>(tid)});
    siftUp(heap_.size() - 1);
}

EventQueue::Event
EventQueue::peek() const
{
    const Entry &top = heap_.front();
    return Event{top.at, static_cast<Kind>(top.kind), top.id};
}

void
EventQueue::popWake()
{
    ++ops_;
    sstAssert(heap_.front().kind ==
                  static_cast<std::uint8_t>(Kind::kWake),
              "popWake: minimum event is not a wake");
    const Entry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_.front() = last; // moveTo via siftDown below
        siftDown(0);
    }
}

} // namespace sst
