/**
 * @file
 * All configuration of one simulated CMP run. Defaults follow the
 * paper's methodology (Section 5): four-wide out-of-order cores, private
 * L1s, a shared 2MB LLC, a shared memory bus and 8 DRAM banks.
 */

#ifndef SST_SIM_PARAMS_HH
#define SST_SIM_PARAMS_HH

#include "accounting/accounting_unit.hh"
#include "cache/hierarchy.hh"
#include "mem/dram.hh"
#include "sched/policy.hh"
#include "util/types.hh"

namespace sst {

/** Full CMP + OS + accounting configuration. */
struct SimParams
{
    int ncores = 16;

    // ---- core timing model -----------------------------------------------
    int dispatchWidth = 4;     ///< instructions per cycle when not stalled
    Cycles llcHitCycles = 6;   ///< visible L2-hit penalty after OoO hiding
    Cycles c2cTransferCycles = 14; ///< extra for dirty-in-other-L1 lines
    /**
     * Out-of-order overlap credit per LLC miss: the first
     * robOverlapCycles of each miss are hidden by the ROB draining useful
     * work; only the remainder blocks the ROB head and stalls the core
     * (the paper accounts interference only for ROB-blocking cycles).
     */
    Cycles robOverlapCycles = 28;
    Cycles coherencyMissCycles = 0; ///< L1 coherency misses hidden (Sec 4.5)

    // ---- spin / yield policy -----------------------------------------------
    Cycles spinCheckCycles = 20;  ///< cycles per spin-loop iteration
    std::uint32_t spinLoopInstrs = 4; ///< instructions per spin iteration
    /**
     * Spin budget before a lock waiter yields (adaptive-mutex style:
     * locks are worth spinning on because critical sections are short).
     */
    Cycles lockSpinThreshold = 2500;
    /**
     * Spin budget before a barrier waiter yields. Pthread-style barriers
     * go to sleep almost immediately since barrier waits are long.
     */
    Cycles barrierSpinThreshold = 150;

    // ---- OS scheduler -------------------------------------------------------
    Cycles ctxSwitchCycles = 300;  ///< cost to switch a core to a thread
    Cycles wakeLatencyCycles = 150; ///< futex-wake to ready
    /**
     * Per-wake scheduler bookkeeping that grows with the machine size
     * (run-queue locking, IPIs); models the "Linux scheduler less
     * efficient at higher core counts" effect seen in Figure 7.
     */
    Cycles schedPerCoreOverhead = 5;
    Cycles timeSliceCycles = 4000;  ///< preemption quantum (oversubscribed)
    /**
     * Scheduler policy (src/sched/): thread placement, affinity and
     * pick order. The default reproduces the historical hard-wired
     * scheduler bit for bit; alternatives open the Figure 7
     * scheduling-scenario axis.
     */
    SchedPolicy schedPolicy = SchedPolicy::kAffinityFifo;
    /**
     * RNG stream selector for stochastic policies (SchedPolicy::kRandom).
     * Distinct seeds give independent, reproducible schedules.
     */
    std::uint64_t schedSeed = 0;
    /**
     * Explicitly flush the L1 when a core switches to a different
     * thread. Off by default: cold-start behaviour already emerges
     * naturally from the tag state (the incoming thread's lines simply
     * are not resident), so flushing would double-charge migrations.
     */
    bool migrationFlushesL1 = false;

    CacheParams cache;
    DramParams dram;
    AccountingParams accounting;

    /** Scheduler bookkeeping cost for one wake on this machine. */
    Cycles
    wakeCost() const
    {
        return wakeLatencyCycles +
               schedPerCoreOverhead * static_cast<Cycles>(ncores);
    }
};

} // namespace sst

#endif // SST_SIM_PARAMS_HH
