/**
 * @file
 * The output of one simulated run: wall-clock (cycle) execution time,
 * per-thread raw accounting counters, per-core cache/DRAM ground truth
 * and instruction counts. Downstream consumers: the accounting report
 * (Section 4 software post-processing) and the speedup-stack builder
 * (Section 2 math).
 */

#ifndef SST_SIM_RUN_RESULT_HH
#define SST_SIM_RUN_RESULT_HH

#include <cstdint>
#include <vector>

#include "accounting/counters.hh"
#include "cache/hierarchy.hh"
#include "mem/dram.hh"
#include "util/types.hh"

namespace sst {

/**
 * Per-thread counter snapshot taken when a barrier opens: the boundary
 * between two regions (Section 4.6: computing speedup stacks per region
 * between consecutive barriers isolates barrier imbalance).
 */
struct RegionBoundary
{
    BarrierId barrier = 0;
    Cycles at = 0; ///< RoI-relative cycle of the barrier release
    std::vector<ThreadCounters> counters; ///< cumulative at the boundary
};

/** Results of one System::run(). */
struct RunResult
{
    int nthreads = 0;
    int ncores = 0;
    Cycles executionTime = 0; ///< cycles until the last thread finished

    std::vector<ThreadCounters> threads; ///< raw accounting per thread
    std::vector<CacheStats> cacheStats;  ///< ground truth per core
    std::vector<DramStats> dramStats;    ///< ground truth per core

    std::uint64_t totalInstructions = 0; ///< committed program instructions
    std::uint64_t totalSpinInstructions = 0;

    /** Barrier-release snapshots for per-region stacks (Section 4.6). */
    std::vector<RegionBoundary> regions;

    /** Events the engine dispatched (core actions + wakes); the
     *  denominator of event-loop throughput (bench/perf_engine). */
    std::uint64_t engineEvents = 0;

    /** Futex-style wake events dispatched (a subset of engineEvents).
     *  Deterministic; exact-compared by the perf gate. */
    std::uint64_t engineWakes = 0;

    /** Time-slice preemptions taken by the scheduler. Deterministic. */
    std::uint64_t enginePreemptions = 0;

    /** Mutating event-heap operations (EventQueue::ops()). */
    std::uint64_t engineHeapOps = 0;

    /** Sum of a per-thread counter over all threads. */
    template <typename F>
    std::uint64_t
    sumThreads(F f) const
    {
        std::uint64_t acc = 0;
        for (const auto &t : threads)
            acc += f(t);
        return acc;
    }
};

} // namespace sst

#endif // SST_SIM_RUN_RESULT_HH
