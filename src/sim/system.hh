/**
 * @file
 * The CMP system simulator. Executes one multi-threaded workload on N
 * cores with private L1s, a shared LLC, a shared memory bus + banked
 * DRAM, an OS scheduler with spin-then-yield synchronization, and the
 * per-thread cycle accounting architecture observing it all.
 *
 * Simulation is event-driven: cores run ahead locally through compute
 * ops and stop at every globally visible action (memory reference, lock,
 * barrier). The event engine (EventQueue, one indexed min-heap over core
 * and wake events) always advances the earliest pending action, so
 * shared structures (LLC tags, DRAM bus/banks, locks) observe accesses
 * in global time order, which keeps the computed-at-issue DRAM schedule
 * exact — at O(log ncores) per event instead of a per-event core scan.
 *
 * OS policy decisions (which thread a freed core runs, wake placement,
 * time slicing) are delegated to the pluggable Scheduler subsystem
 * (src/sched/, selected by SimParams::schedPolicy); the system keeps the
 * mechanism: thread states, switch/wake costs, accounting hooks.
 *
 * Synchronization protocol: a failed lock acquire (or non-final barrier
 * arrival) enters a spin loop that polls the lock/barrier word through
 * the cache hierarchy every spinCheckCycles; after spinYieldThreshold
 * cycles the thread yields, is parked on the primitive's wait list, and
 * is woken by the releaser (futex-style), paying wake + context-switch
 * costs. Short waits therefore register as spinning and long waits as
 * yielding, matching Sections 4.3 and 4.4 of the paper.
 */

#ifndef SST_SIM_SYSTEM_HH
#define SST_SIM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "accounting/accounting_unit.hh"
#include "cache/hierarchy.hh"
#include "mem/dram.hh"
#include "sched/scheduler.hh"
#include "sim/event_queue.hh"
#include "sim/params.hh"
#include "sim/run_result.hh"
#include "sync/sync_state.hh"
#include "util/types.hh"
#include "workload/op_source.hh"
#include "workload/profile.hh"
#include "workload/workload_spec.hh"

namespace sst {

/**
 * One simulated execution of a workload on a CMP. The workload is any
 * set of per-thread OpSource streams: the synthetic ThreadProgram
 * generator, a recorded-trace replay, or any future frontend — the
 * simulator itself never depends on how the streams are produced.
 */
class System
{
  public:
    /**
     * Generic form: one op source per software thread, built by
     * @p sources. This is the primary constructor; every workload
     * frontend plugs in here.
     *
     * @param params machine + OS + accounting configuration
     * @param sources factory producing each thread's op stream
     * @param nthreads software threads to spawn (may exceed
     *        params.ncores; the scheduler then time-shares cores)
     * @param topo per-thread barrier quorums and scheduler affinity
     *        hints for heterogeneous workloads; nullptr (or empty
     *        members) means the homogeneous defaults: every barrier
     *        waits for all threads, no hints
     */
    System(const SimParams &params, const OpSourceFactory &sources,
           int nthreads, const ThreadTopology *topo = nullptr);

    /**
     * Convenience form: generate the streams with ThreadProgram from
     * @p profile (the synthetic-benchmark frontend).
     */
    System(const SimParams &params, const BenchmarkProfile &profile,
           int nthreads);

    /** The scheduler holds a reference to this system's params; the
     *  system is therefore neither copyable nor movable. */
    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Run to completion and return all measurements. */
    RunResult run();

    /** Accounting hardware (valid after run()). */
    const AccountingUnit &accounting() const { return acct_; }

    /** Cache hierarchy (valid after run()). */
    const CacheHierarchy &hierarchy() const { return hierarchy_; }

    /** Sync state, exposed for tests. */
    const SyncManager &sync() const { return sync_; }

    /** The scheduler policy driving this run (exposed for tests). */
    const Scheduler &scheduler() const { return *sched_; }

  private:
    static constexpr Cycles kNever = kNeverCycles;

    enum class ThreadState : std::uint8_t {
        kReady,        ///< runnable, waiting for a core
        kRunning,      ///< executing on a core
        kSpinLock,     ///< spin loop on a lock word
        kSpinBarrier,  ///< spin loop on a barrier word
        kBlockedLock,  ///< yielded, parked on a lock wait list
        kBlockedBarrier, ///< yielded, parked on a barrier wait list
        kFinished,
    };

    enum class BlockReason : std::uint8_t {
        kNone,
        kLock,
        kBarrier,
        kPreempt, ///< time-slice expiry; wait is charged on resume
    };

    struct Thread
    {
        ThreadId tid = 0;
        ThreadState state = ThreadState::kReady;
        std::unique_ptr<OpSource> program;
        Op pending;
        bool hasPending = false;
        int pendingSlots = 0;     ///< sub-cycle dispatch slot accumulator
        Cycles spinStart = 0;
        int waitId = 0;
        std::uint64_t waitGeneration = 0;
        Cycles blockStart = 0;
        BlockReason blockReason = BlockReason::kNone;
        CoreId lastCore = kInvalidId;
        Cycles sliceStart = 0;
        std::uint64_t storeSerial = 0;  ///< Li detector state component
        std::uint64_t lastLoadValue = 0;
    };

    struct Core
    {
        CoreId id = 0;
        ThreadId thread = kInvalidId;
        // The core's next event time lives solely in the event engine
        // (events_); setCoreNext re-keys it there.
    };

    // ---- event processing --------------------------------------------------
    void processCore(Core &core, Cycles now);
    void executeFrom(Core &core, Thread &th, Cycles now);
    void spinLockCheck(Core &core, Thread &th, Cycles now);
    void spinBarrierCheck(Core &core, Thread &th, Cycles now);

    // ---- op handlers (return false if the core rescheduled/blocked) --------
    bool doMemRef(Core &core, Thread &th, const Op &op, Cycles &now);
    bool doLockAcquire(Core &core, Thread &th, const Op &op, Cycles &now);
    void doLockRelease(Core &core, Thread &th, const Op &op, Cycles &now);
    bool doBarrier(Core &core, Thread &th, const Op &op, Cycles &now);
    void finishThread(Core &core, Thread &th, Cycles now);

    // ---- scheduling mechanism (policy lives in sched_) ---------------------
    void blockThread(Core &core, Thread &th, BlockReason reason,
                     Cycles now);
    void scheduleNext(Core &core, Cycles now);
    void wakeThread(ThreadId tid, Cycles now);
    void enqueueWake(ThreadId tid, Cycles now);

    // ---- helpers ---------------------------------------------------------------
    void chargeInstructions(Thread &th, std::uint32_t count, Cycles &now);
    Cycles spinBranchHash(const Thread &th, std::uint64_t value) const;

    /** Re-key @p core's event-engine entry to @p at. */
    void setCoreNext(Core &core, Cycles at);

    SimParams params_;
    int nthreads_;

    CacheHierarchy hierarchy_;
    DramModel dram_;
    SyncManager sync_;
    ValueTracker tracker_;
    AccountingUnit acct_;

    std::vector<Thread> threads_;
    /** Barrier quorum per thread: its program group's size for mixes,
     *  all threads otherwise (groups namespace their barrier ids, so
     *  the arriving thread determines a barrier's participant set). */
    std::vector<int> quorums_;
    std::vector<Core> cores_;
    EventQueue events_;
    std::unique_ptr<Scheduler> sched_;
    std::uint64_t engineEvents_ = 0; ///< events dispatched by run()
    std::uint64_t engineWakes_ = 0;  ///< wake events dispatched
    std::uint64_t enginePreemptions_ = 0; ///< time-slice preemptions
    int finishedThreads_ = 0;
    Cycles roiStart_ = 0;  ///< cycle at which all measurements (re)start
    int roiPassed_ = 0;
    std::vector<RegionBoundary> regions_;
    bool ran_ = false;
};

/**
 * Convenience runner used by benches, tests and examples: simulate
 * @p profile with @p nthreads threads on @p nthreads cores (or on
 * @p ncores_override cores when oversubscribing).
 */
RunResult simulate(const SimParams &base, const BenchmarkProfile &profile,
                   int nthreads, int ncores_override = 0);

/**
 * Like simulate(), but over arbitrary op sources: run @p nthreads
 * streams built by @p sources on @p nthreads cores (or
 * @p ncores_override cores when oversubscribing). This is the entry
 * point trace replay and other non-ThreadProgram frontends use.
 * Heterogeneous frontends pass their @p topo (quorums, hints).
 */
RunResult simulateSources(const SimParams &base,
                          const OpSourceFactory &sources, int nthreads,
                          int ncores_override = 0,
                          const ThreadTopology *topo = nullptr);

/**
 * Simulate a (possibly heterogeneous) workload: every thread runs its
 * group's profile with disjoint data/sync namespaces, barrier quorums
 * and affinity hints derived from the spec. For homogeneous specs this
 * is bit-identical to simulate(profile, nthreads).
 */
RunResult simulateWorkload(const SimParams &base, const WorkloadSpec &spec,
                           int ncores_override = 0);

} // namespace sst

#endif // SST_SIM_SYSTEM_HH
