/**
 * @file
 * Virtual-to-physical address translation. Workload addresses are
 * region-aligned virtual addresses; mapping them directly onto cache
 * sets and DRAM banks would alias every thread's region base into set 0
 * / bank 0 — a pathology real systems do not have because the OS
 * scatters physical pages. This deterministic page-hash mapping models
 * that scattering: each 4KB virtual page maps to a pseudo-random
 * physical frame (stateless, reproducible), preserving in-page offsets.
 */

#ifndef SST_SIM_PHYS_MAP_HH
#define SST_SIM_PHYS_MAP_HH

#include "util/types.hh"

namespace sst {

/** Page size of the simulated system. */
inline constexpr Addr kPageBytes = 4096;

/** Physical address space size: 40 bits. */
inline constexpr int kPhysBits = 40;

/** Translate a virtual address to its simulated physical address. */
constexpr Addr
toPhysical(Addr vaddr)
{
    const Addr vpage = vaddr / kPageBytes;
    // SplitMix64-style stateless hash of the page number.
    Addr x = vpage + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x = x ^ (x >> 31);
    const Addr frame = x & ((Addr(1) << (kPhysBits - 12)) - 1);
    return frame * kPageBytes + (vaddr & (kPageBytes - 1));
}

} // namespace sst

#endif // SST_SIM_PHYS_MAP_HH
