/**
 * @file
 * The unified simulation event queue: one indexed min-heap holding both
 * kinds of future events — each core's next scheduled action and every
 * pending futex-style wake — ordered by the total key
 * (cycle, kind, id). The event loop used to rescan all cores linearly
 * on every event (O(ncores) per event) next to a separate wake queue;
 * the heap makes each advance O(log ncores) and preserves the exact
 * historical tie-breaks, so results are bit-identical:
 *
 *  - wakes fire before core events at the same cycle (the old loop's
 *    `wake_at <= core_at` test), hence Kind::kWake < Kind::kCore;
 *  - simultaneous wakes fire in ascending thread id;
 *  - simultaneous core events fire in ascending core id (the old linear
 *    scan kept the first minimum).
 *
 * Core events are resident: every core always has exactly one entry,
 * re-keyed in place via its heap-position index (an idle core sits at
 * kNeverCycles). Wake events are one-shot: pushed on enqueueWake,
 * popped when dispatched.
 */

#ifndef SST_SIM_EVENT_QUEUE_HH
#define SST_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace sst {

/** Sentinel cycle: no event scheduled. Sorts after every real cycle. */
inline constexpr Cycles kNeverCycles = ~Cycles(0);

/** Indexed binary min-heap over core and wake events (see file doc). */
class EventQueue
{
  public:
    enum class Kind : std::uint8_t {
        kWake = 0, ///< a blocked thread becomes ready (id = thread)
        kCore = 1, ///< a core's next scheduled action (id = core)
    };

    /** The earliest pending event. */
    struct Event
    {
        Cycles at = kNeverCycles;
        Kind kind = Kind::kCore;
        std::int32_t id = 0; ///< core id or woken thread id, per kind
    };

    /** All @p ncores core entries start resident at kNeverCycles. */
    explicit EventQueue(int ncores);

    /** Re-key core @p core's resident entry to @p at. O(log size). */
    void updateCore(CoreId core, Cycles at);

    /** Add a one-shot wake of @p tid at @p at. O(log size). */
    void pushWake(Cycles at, ThreadId tid);

    /** The minimum event. Never empty: core entries are resident. */
    Event peek() const;

    /** Pop the minimum, which must be a wake event. */
    void popWake();

    /** Resident core entries + pending wakes. */
    std::size_t size() const { return heap_.size(); }

    /** Pending wake events. */
    std::size_t pendingWakes() const { return heap_.size() - ncores_; }

    /** Mutating heap operations (updateCore/pushWake/popWake calls)
     *  since construction. Deterministic for a deterministic run — part
     *  of the perf gate's exact-compare counter set. */
    std::uint64_t ops() const { return ops_; }

  private:
    struct Entry
    {
        Cycles at;
        std::uint8_t kind; ///< raw Kind, lexicographic after `at`
        std::int32_t id;
    };

    static bool before(const Entry &a, const Entry &b);
    void siftUp(std::size_t i);
    void siftDown(std::size_t i);
    void moveTo(const Entry &e, std::size_t i);

    std::vector<Entry> heap_;
    /** Heap position of each core's resident entry. */
    std::vector<std::int32_t> corePos_;
    std::size_t ncores_;
    std::uint64_t ops_ = 0;
};

} // namespace sst

#endif // SST_SIM_EVENT_QUEUE_HH
