#include "system.hh"

#include <algorithm>
#include <chrono>

#include "sim/phys_map.hh"
#include "telemetry/metrics.hh"
#include "util/logging.hh"
#include "workload/thread_program.hh"

namespace sst {

namespace {

/** PC of the synthetic per-iteration backward branch (Li detector). */
constexpr PC kIterationBranchPc = 0x1000;

std::uint64_t
hashState(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t x = a * 0x9e3779b97f4a7c15ULL ^ (b + 0x7f4a7c15);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
}

} // namespace

System::System(const SimParams &params, const OpSourceFactory &sources,
               int nthreads, const ThreadTopology *topo)
    : params_(params), nthreads_(nthreads),
      hierarchy_(params.ncores, params.cache),
      dram_(params.ncores, params.dram),
      acct_(nthreads, params.accounting),
      events_(params.ncores)
{
    sstAssert(nthreads >= 1, "System needs at least one thread");
    sstAssert(params.ncores >= 1, "System needs at least one core");
    sstAssert(static_cast<bool>(sources), "System needs an op-source factory");
    sched_ = makeScheduler(params_, nthreads);

    if (topo && !topo->barrierQuorum.empty()) {
        sstAssert(topo->barrierQuorum.size() ==
                      static_cast<std::size_t>(nthreads),
                  "barrier quorum table must cover every thread");
        quorums_ = topo->barrierQuorum;
    } else {
        quorums_.assign(static_cast<std::size_t>(nthreads), nthreads);
    }
    if (topo && !topo->affinityHint.empty()) {
        sstAssert(topo->affinityHint.size() ==
                      static_cast<std::size_t>(nthreads),
                  "affinity hint table must cover every thread");
        sched_->setAffinityHints(topo->affinityHint);
    }

    threads_.resize(static_cast<std::size_t>(nthreads));
    for (int t = 0; t < nthreads; ++t) {
        Thread &th = threads_[static_cast<std::size_t>(t)];
        th.tid = t;
        th.program = sources(t, nthreads);
        sstAssert(th.program != nullptr,
                  "op-source factory returned a null stream");
    }
    cores_.resize(static_cast<std::size_t>(params.ncores));
    for (int c = 0; c < params.ncores; ++c)
        cores_[static_cast<std::size_t>(c)].id = c;
}

System::System(const SimParams &params, const BenchmarkProfile &profile,
               int nthreads)
    : System(params,
             [&profile](ThreadId tid, int n) -> std::unique_ptr<OpSource> {
                 return std::make_unique<ThreadProgram>(profile, tid, n);
             },
             nthreads)
{
}

RunResult
System::run()
{
    sstAssert(!ran_, "System::run() may only be called once");
    ran_ = true;

    // Initial placement: the first ncores threads start on the cores, the
    // rest wait in the ready pool (oversubscription, Figure 7).
    const int placed = std::min(nthreads_, params_.ncores);
    for (int t = 0; t < placed; ++t) {
        Thread &th = threads_[static_cast<std::size_t>(t)];
        th.state = ThreadState::kRunning;
        th.lastCore = t;
        th.sliceStart = 0;
        Core &core = cores_[static_cast<std::size_t>(t)];
        core.thread = t;
        setCoreNext(core, 0);
        sched_->onCoreBusy(core.id);
    }
    for (int t = placed; t < nthreads_; ++t) {
        threads_[static_cast<std::size_t>(t)].state = ThreadState::kReady;
        sched_->enqueue(ReadyThread{t, kInvalidId}, /*preferred=*/false);
    }

    // Telemetry is sampled, never consulted: a null handle (registry
    // disabled) costs one predictable branch per 64Ki events and the
    // simulation result is byte-identical either way.
    telemetry::GaugeHandle simRate = telemetry::Registry::global().gauge(
        "sst_sim_cycles_per_wall_second");
    const auto wallStart = std::chrono::steady_clock::now();

    constexpr Cycles kCycleCap = 60'000'000'000ULL;
    while (finishedThreads_ < nthreads_) {
        const EventQueue::Event ev = events_.peek();
        if (ev.at == kNever)
            panic("simulation deadlock: no runnable events");
        ++engineEvents_;
        if (simRate && (engineEvents_ & 0xFFFFu) == 0) {
            const double secs =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wallStart)
                    .count();
            if (secs > 0)
                simRate.set(static_cast<double>(ev.at) / secs);
        }
        if (ev.kind == EventQueue::Kind::kWake) {
            ++engineWakes_;
            events_.popWake();
            wakeThread(ev.id, ev.at);
            continue;
        }
        if (ev.at > kCycleCap)
            fatal("simulation exceeded the cycle cap (livelock?)");
        processCore(cores_[static_cast<std::size_t>(ev.id)], ev.at);
    }

    RunResult res;
    res.nthreads = nthreads_;
    res.ncores = params_.ncores;
    for (int t = 0; t < nthreads_; ++t) {
        const ThreadCounters &c = acct_.counters(t);
        res.executionTime = std::max(res.executionTime, c.finishTime);
        res.threads.push_back(c);
        res.totalInstructions += c.instructions - c.spinInstructions;
        res.totalSpinInstructions += c.spinInstructions;
    }
    for (int c = 0; c < params_.ncores; ++c) {
        res.cacheStats.push_back(hierarchy_.stats(c));
        res.dramStats.push_back(dram_.stats(c));
    }
    res.regions = regions_;
    res.engineEvents = engineEvents_;
    res.engineWakes = engineWakes_;
    res.enginePreemptions = enginePreemptions_;
    res.engineHeapOps = events_.ops();

    telemetry::Registry &registry = telemetry::Registry::global();
    if (registry.enabled()) {
        registry.counter("sst_sim_events_total").inc(engineEvents_);
        registry.counter("sst_sim_wakes_total").inc(engineWakes_);
        registry.counter("sst_sim_preemptions_total")
            .inc(enginePreemptions_);
        registry.counter("sst_sim_heap_ops_total").inc(events_.ops());
        registry.counter("sst_sim_cycles_total")
            .inc(res.executionTime);
    }
    return res;
}

void
System::processCore(Core &core, Cycles now)
{
    Thread &th = threads_[static_cast<std::size_t>(core.thread)];
    switch (th.state) {
      case ThreadState::kRunning:
        executeFrom(core, th, now);
        break;
      case ThreadState::kSpinLock:
        spinLockCheck(core, th, now);
        break;
      case ThreadState::kSpinBarrier:
        spinBarrierCheck(core, th, now);
        break;
      default:
        panic("core event for a thread in a non-executing state");
    }
}

void
System::chargeInstructions(Thread &th, std::uint32_t count, Cycles &now)
{
    acct_.onInstructions(th.tid, count);
    const int width = params_.dispatchWidth;
    const std::uint64_t total =
        static_cast<std::uint64_t>(th.pendingSlots) + count;
    now += total / static_cast<std::uint64_t>(width);
    th.pendingSlots = static_cast<int>(
        total % static_cast<std::uint64_t>(width));
}

void
System::executeFrom(Core &core, Thread &th, Cycles event_time)
{
    Cycles now = event_time;
    for (;;) {
        if (!th.hasPending) {
            th.pending = th.program->nextOp();
            th.hasPending = true;
        }
        const Op op = th.pending;

        // Preemption (only meaningful when oversubscribed).
        if (op.type != OpType::kEnd && sched_->hasReady() &&
            sched_->shouldPreempt(now, th.sliceStart)) {
            ++enginePreemptions_;
            th.state = ThreadState::kReady;
            th.blockReason = BlockReason::kPreempt;
            th.blockStart = now;
            sched_->enqueue(ReadyThread{th.tid, th.lastCore},
                            /*preferred=*/false);
            scheduleNext(core, now);
            return;
        }

        if (op.type == OpType::kCompute) {
            chargeInstructions(th, op.count, now);
            // Per-iteration backward branch for the Li detector: the
            // instruction count folds into the state hash, so real work
            // never looks like a spin.
            acct_.onBackwardBranch(
                th.tid, kIterationBranchPc,
                hashState(acct_.counters(th.tid).instructions,
                          th.storeSerial),
                now);
            th.hasPending = false;
            continue;
        }

        // Everything below touches globally shared state and must run at
        // the core's scheduled event time. If local execution ran ahead,
        // resubmit the event so other cores' earlier actions go first.
        if (now > event_time) {
            setCoreNext(core, now);
            return;
        }

        switch (op.type) {
          case OpType::kLoad:
          case OpType::kStore:
            if (!doMemRef(core, th, op, now))
                return;
            break;
          case OpType::kLockAcquire:
            if (!doLockAcquire(core, th, op, now))
                return;
            break;
          case OpType::kLockRelease:
            doLockRelease(core, th, op, now);
            break;
          case OpType::kBarrier:
            if (!doBarrier(core, th, op, now))
                return;
            break;
          case OpType::kRoiBegin:
            // Region of interest: measurements start here, caches warm.
            acct_.resetThread(th.tid);
            if (now > roiStart_)
                roiStart_ = now;
            ++roiPassed_;
            if (roiPassed_ == nthreads_) {
                hierarchy_.resetStats();
                dram_.resetStats();
            }
            th.hasPending = false;
            break;
          case OpType::kEnd:
            finishThread(core, th, now);
            return;
          default:
            panic("unhandled op type");
        }
    }
}

bool
System::doMemRef(Core &core, Thread &th, const Op &op, Cycles &now)
{
    const bool is_store = op.type == OpType::kStore;
    const Addr paddr = toPhysical(op.addr);
    const AccessOutcome out = hierarchy_.access(core.id, paddr, is_store);

    if (is_store) {
        tracker_.onStore(op.addr, th.tid);
        ++th.storeSerial;
    } else {
        const ValueTracker::LoadView view = tracker_.onLoad(op.addr,
                                                            th.tid);
        th.lastLoadValue = view.value;
        acct_.onLoad(th.tid, op.pc, lineNum(op.addr), view.value,
                     view.writtenByOther, now);
    }

    if (out.coherencyMiss) {
        acct_.onCoherencyMiss(th.tid);
        now += params_.coherencyMissCycles; // 0 by default (Section 4.5)
    }

    Cycles stall_until = 0;
    if (!out.l1Hit) {
        acct_.onLlcAccess(th.tid, out.atdSampled);
        if (out.llcHit) {
            if (!is_store) {
                now += params_.llcHitCycles +
                       (out.dirtyInOtherL1 ? params_.c2cTransferCycles
                                           : 0);
                if (out.interThreadHit)
                    acct_.onInterThreadHit(th.tid);
            }
        } else {
            // DRAM fill; the demand access goes first, the victim
            // writeback drains from the write buffer behind it.
            const DramResult res = dram_.access(core.id, paddr, now);
            if (out.victimWriteback)
                dram_.access(core.id, out.victimLine * kLineBytes, now);

            if (!is_store) {
                const Cycles total = res.completeAt - now;
                const Cycles visible =
                    total > params_.robOverlapCycles
                        ? total - params_.robOverlapCycles
                        : 0;
                const Cycles page_other =
                    res.pageConflictByOther ? res.pageConflictPenalty : 0;
                acct_.onLlcLoadMissComplete(th.tid, visible,
                                            out.atdSampled,
                                            out.interThreadMiss,
                                            res.busWaitOther,
                                            res.bankWaitOther, page_other);
                acct_.gtMemWaitOther(
                    th.tid,
                    std::min(visible, res.busWaitOther +
                                          res.bankWaitOther + page_other));
                if (visible > 0)
                    stall_until = now + visible;
            }
        }
    }

    chargeInstructions(th, 1, now);
    th.hasPending = false;
    if (stall_until > now) {
        setCoreNext(core, stall_until);
        return false;
    }
    return true;
}

Cycles
System::spinBranchHash(const Thread &th, std::uint64_t value) const
{
    return hashState(value, th.storeSerial);
}

bool
System::doLockAcquire(Core &core, Thread &th, const Op &op, Cycles &now)
{
    const Addr word = toPhysical(addrmap::lockWord(op.id));
    if (sync_.tryAcquire(op.id, th.tid)) {
        hierarchy_.access(core.id, word, true); // test-and-set write
        chargeInstructions(th, ThreadProgram::kLockOpInstrs, now);
        th.hasPending = false;
        return true;
    }

    // Contended: read the word, start spinning.
    hierarchy_.access(core.id, word, false);
    acct_.onLoad(th.tid, addrmap::lockSpinPc(op.id), lineNum(word),
                 sync_.lockWord(op.id),
                 sync_.lockWordWriter(op.id) != th.tid, now);
    chargeInstructions(th, ThreadProgram::kLockOpInstrs, now);
    th.state = ThreadState::kSpinLock;
    th.spinStart = now;
    th.waitId = op.id;
    setCoreNext(core, now + params_.spinCheckCycles);
    return false; // pending kLockAcquire stays: retried on success/wake
}

void
System::doLockRelease(Core &core, Thread &th, const Op &op, Cycles &now)
{
    const ThreadId waiter = sync_.release(op.id, th.tid);
    hierarchy_.access(core.id, toPhysical(addrmap::lockWord(op.id)), true);
    if (waiter != kInvalidId)
        enqueueWake(waiter, now);
    chargeInstructions(th, ThreadProgram::kLockOpInstrs, now);
    th.hasPending = false;
}

bool
System::doBarrier(Core &core, Thread &th, const Op &op, Cycles &now)
{
    std::vector<ThreadId> woken;
    const bool last = sync_.barrierArrive(
        op.id, th.tid, quorums_[static_cast<std::size_t>(th.tid)], woken);
    hierarchy_.access(core.id, toPhysical(addrmap::barrierWord(op.id)), true);
    chargeInstructions(th, 4, now);

    if (last) {
        for (const ThreadId w : woken)
            enqueueWake(w, now);
        // Region boundary (Section 4.6): snapshot all counters so
        // per-region stacks can be built from deltas. The warmup
        // barrier precedes the RoI and is not a region.
        if (!isWarmupBarrier(op.id) && roiPassed_ == nthreads_) {
            RegionBoundary rb;
            rb.barrier = op.id;
            rb.at = now > roiStart_ ? now - roiStart_ : 0;
            for (int t = 0; t < nthreads_; ++t)
                rb.counters.push_back(acct_.counters(t));
            regions_.push_back(std::move(rb));
        }
        th.hasPending = false;
        return true;
    }
    th.state = ThreadState::kSpinBarrier;
    th.spinStart = now;
    th.waitId = op.id;
    th.waitGeneration = sync_.barrierWord(op.id);
    setCoreNext(core, now + params_.spinCheckCycles);
    return false;
}

void
System::finishThread(Core &core, Thread &th, Cycles now)
{
    th.state = ThreadState::kFinished;
    th.hasPending = false;
    ++finishedThreads_;
    acct_.setFinishTime(th.tid, now > roiStart_ ? now - roiStart_ : 0);
    scheduleNext(core, now);
}

void
System::spinLockCheck(Core &core, Thread &th, Cycles now)
{
    const LockId lock = th.waitId;
    const Addr word = toPhysical(addrmap::lockWord(lock));

    acct_.onSpinInstructions(th.tid, params_.spinLoopInstrs);
    hierarchy_.access(core.id, word, false);
    const std::uint64_t value = sync_.lockWord(lock);
    const ThreadId writer = sync_.lockWordWriter(lock);
    acct_.onLoad(th.tid, addrmap::lockSpinPc(lock), lineNum(word), value,
                 writer != kInvalidId && writer != th.tid, now);
    acct_.onBackwardBranch(th.tid, addrmap::lockSpinPc(lock) + 8,
                           spinBranchHash(th, value), now);

    if (sync_.tryAcquire(lock, th.tid)) {
        acct_.gtLockSpin(th.tid, now - th.spinStart);
        hierarchy_.access(core.id, word, true);
        th.state = ThreadState::kRunning;
        th.hasPending = false; // acquire op completed
        setCoreNext(core, now + 1);
        return;
    }

    const bool oversubscribed =
        nthreads_ > params_.ncores && sched_->hasReady();
    if (oversubscribed ||
        now - th.spinStart >= params_.lockSpinThreshold) {
        acct_.gtLockSpin(th.tid, now - th.spinStart);
        sync_.addLockWaiter(lock, th.tid);
        blockThread(core, th, BlockReason::kLock, now);
        return;
    }
    setCoreNext(core, now + params_.spinCheckCycles);
}

void
System::spinBarrierCheck(Core &core, Thread &th, Cycles now)
{
    const BarrierId barrier = th.waitId;
    const Addr word = toPhysical(addrmap::barrierWord(barrier));

    acct_.onSpinInstructions(th.tid, params_.spinLoopInstrs);
    hierarchy_.access(core.id, word, false);
    const std::uint64_t value = sync_.barrierWord(barrier);
    const ThreadId writer = sync_.barrierWordWriter(barrier);
    acct_.onLoad(th.tid, addrmap::barrierSpinPc(barrier), lineNum(word),
                 value, writer != kInvalidId && writer != th.tid, now);
    acct_.onBackwardBranch(th.tid, addrmap::barrierSpinPc(barrier) + 8,
                           spinBranchHash(th, value), now);

    if (value != th.waitGeneration) {
        acct_.gtBarrierSpin(th.tid, now - th.spinStart);
        th.state = ThreadState::kRunning;
        th.hasPending = false; // barrier op completed
        setCoreNext(core, now + 1);
        return;
    }

    const bool oversubscribed =
        nthreads_ > params_.ncores && sched_->hasReady();
    if (oversubscribed ||
        now - th.spinStart >= params_.barrierSpinThreshold) {
        acct_.gtBarrierSpin(th.tid, now - th.spinStart);
        sync_.addBarrierWaiter(barrier, th.tid);
        th.hasPending = false; // arrival already registered
        blockThread(core, th, BlockReason::kBarrier, now);
        return;
    }
    setCoreNext(core, now + params_.spinCheckCycles);
}

void
System::blockThread(Core &core, Thread &th, BlockReason reason, Cycles now)
{
    th.state = reason == BlockReason::kLock ? ThreadState::kBlockedLock
                                            : ThreadState::kBlockedBarrier;
    th.blockReason = reason;
    th.blockStart = now;
    acct_.onDescheduled(th.tid);
    scheduleNext(core, now);
}

void
System::scheduleNext(Core &core, Cycles now)
{
    core.thread = kInvalidId;
    sched_->onCoreIdle(core.id);
    // Re-key the core's heap entry once: straight to `resume` when a
    // successor exists, to kNever only when the core actually idles
    // (pickNext/placeWoken never consult the event queue, so deferring
    // is safe and halves the sift work per context switch).
    const ThreadId next = sched_->pickNext(core.id);
    if (next == kInvalidId) {
        setCoreNext(core, kNever);
        return;
    }

    Thread &th = threads_[static_cast<std::size_t>(next)];
    if (params_.migrationFlushesL1 && th.lastCore != core.id)
        hierarchy_.flushL1(core.id);

    const Cycles resume = now + params_.ctxSwitchCycles;
    if (th.blockReason == BlockReason::kLock) {
        acct_.onYield(next, resume - th.blockStart);
        acct_.gtLockYield(next, resume - th.blockStart);
    } else if (th.blockReason == BlockReason::kBarrier) {
        acct_.onYield(next, resume - th.blockStart);
        acct_.gtBarrierYield(next, resume - th.blockStart);
    } else if (th.blockReason == BlockReason::kPreempt) {
        // A time-slice preempted thread waited in the ready pool and
        // pays the context switch on resume; charge that wait as OS
        // yield time so oversubscribed (Figure 7) stacks account every
        // cycle instead of silently losing the ready-queue wait.
        acct_.onYield(next, resume - th.blockStart);
        acct_.gtPreemptYield(next, resume - th.blockStart);
    }
    th.blockReason = BlockReason::kNone;
    th.state = ThreadState::kRunning;
    th.lastCore = core.id;
    th.sliceStart = resume;
    core.thread = next;
    sched_->onCoreBusy(core.id);
    setCoreNext(core, resume);
}

void
System::wakeThread(ThreadId tid, Cycles now)
{
    Thread &th = threads_[static_cast<std::size_t>(tid)];
    sstAssert(th.state == ThreadState::kBlockedLock ||
                  th.state == ThreadState::kBlockedBarrier,
              "wake of a non-blocked thread");
    th.state = ThreadState::kReady;

    const CoreId idle = sched_->placeWoken(tid, th.lastCore);
    if (idle != kInvalidId) {
        // Fast path: hand the idle core to the woken thread directly.
        sched_->enqueue(ReadyThread{tid, th.lastCore},
                        /*preferred=*/true);
        scheduleNext(cores_[static_cast<std::size_t>(idle)], now);
    } else {
        sched_->enqueue(ReadyThread{tid, th.lastCore},
                        /*preferred=*/false);
    }
}

void
System::enqueueWake(ThreadId tid, Cycles now)
{
    events_.pushWake(now + params_.wakeCost(), tid);
}

void
System::setCoreNext(Core &core, Cycles at)
{
    events_.updateCore(core.id, at);
}

RunResult
simulate(const SimParams &base, const BenchmarkProfile &profile,
         int nthreads, int ncores_override)
{
    return simulateSources(
        base,
        [&profile](ThreadId tid, int n) -> std::unique_ptr<OpSource> {
            return std::make_unique<ThreadProgram>(profile, tid, n);
        },
        nthreads, ncores_override);
}

RunResult
simulateSources(const SimParams &base, const OpSourceFactory &sources,
                int nthreads, int ncores_override,
                const ThreadTopology *topo)
{
    SimParams p = base;
    p.ncores = ncores_override > 0 ? ncores_override : nthreads;
    System sys(p, sources, nthreads, topo);
    return sys.run();
}

RunResult
simulateWorkload(const SimParams &base, const WorkloadSpec &spec,
                 int ncores_override)
{
    spec.validate();
    const int nthreads = spec.nthreads();
    const int ncores = ncores_override > 0 ? ncores_override : nthreads;
    const ThreadTopology topo = spec.topology(ncores);
    return simulateSources(base, workloadOpSources(spec), nthreads,
                           ncores_override, &topo);
}

} // namespace sst
