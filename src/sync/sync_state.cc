#include "sync_state.hh"

#include "util/logging.hh"

namespace sst {

LockState &
SyncManager::lockRef(LockId lock)
{
    return locks_[lock];
}

BarrierState &
SyncManager::barrierRef(BarrierId barrier)
{
    return barriers_[barrier];
}

bool
SyncManager::tryAcquire(LockId lock, ThreadId tid)
{
    LockState &ls = lockRef(lock);
    if (ls.owner != kInvalidId)
        return false;
    ls.owner = tid;
    ++ls.word; // test-and-set write
    ls.lastWriter = tid;
    ++ls.acquisitions;
    return true;
}

ThreadId
SyncManager::release(LockId lock, ThreadId tid)
{
    LockState &ls = lockRef(lock);
    sstAssert(ls.owner == tid, "lock released by non-owner");
    ls.owner = kInvalidId;
    ++ls.word; // release write: spinners observe the change
    ls.lastWriter = tid;
    if (ls.yieldedWaiters.empty())
        return kInvalidId;
    const ThreadId waiter = ls.yieldedWaiters.front();
    ls.yieldedWaiters.pop_front();
    return waiter;
}

void
SyncManager::addLockWaiter(LockId lock, ThreadId tid)
{
    LockState &ls = lockRef(lock);
    ++ls.contendedAcquisitions;
    ls.yieldedWaiters.push_back(tid);
}

bool
SyncManager::barrierArrive(BarrierId barrier, ThreadId tid, int nthreads,
                           std::vector<ThreadId> &woken)
{
    BarrierState &bs = barrierRef(barrier);
    ++bs.arrived;
    if (bs.arrived < nthreads)
        return false;
    // Last arriver: open the barrier. Spinners see the generation bump;
    // yielded waiters are returned for the scheduler to wake.
    bs.arrived = 0;
    ++bs.generation;
    ++bs.episodes;
    bs.lastWriter = tid;
    woken = bs.yieldedWaiters;
    bs.yieldedWaiters.clear();
    return true;
}

void
SyncManager::addBarrierWaiter(BarrierId barrier, ThreadId tid)
{
    barrierRef(barrier).yieldedWaiters.push_back(tid);
}

std::uint64_t
SyncManager::barrierWord(BarrierId barrier) const
{
    return barriers_[barrier].generation;
}

std::uint64_t
SyncManager::lockWord(LockId lock) const
{
    return locks_[lock].owner != kInvalidId ? 1 : 0;
}

ThreadId
SyncManager::lockWordWriter(LockId lock) const
{
    return locks_[lock].lastWriter;
}

ThreadId
SyncManager::barrierWordWriter(BarrierId barrier) const
{
    return barriers_[barrier].lastWriter;
}

const LockState &
SyncManager::lockState(LockId lock) const
{
    return locks_[lock];
}

const BarrierState &
SyncManager::barrierState(BarrierId barrier) const
{
    return barriers_[barrier];
}

void
ValueTracker::onStore(Addr addr, ThreadId tid)
{
    LineInfo &li = lines_[lineNum(addr)];
    ++li.version;
    li.lastWriter = tid;
}

ValueTracker::LoadView
ValueTracker::onLoad(Addr addr, ThreadId tid) const
{
    LoadView view;
    const LineInfo *li = lines_.find(lineNum(addr));
    if (!li)
        return view;
    view.value = li->version;
    view.writtenByOther =
        li->lastWriter != kInvalidId && li->lastWriter != tid;
    return view;
}

} // namespace sst
