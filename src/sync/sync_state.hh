/**
 * @file
 * Synchronization primitive state: test-and-test-and-set locks with a
 * FIFO wake list and sense-reversing barriers, plus the memory value
 * tracker the spin detectors need.
 *
 * The protocol (who spins, when a waiter yields, who wakes whom) is
 * driven by the simulator's core model and scheduler; this module only
 * holds the shared state so it can be unit-tested in isolation.
 *
 * Lock and barrier words carry version values: every release/arrival
 * bumps the word's value and records the writer, so a spin-loop load can
 * tell the Tian detector "the value changed and another core wrote it".
 */

#ifndef SST_SYNC_SYNC_STATE_HH
#define SST_SYNC_SYNC_STATE_HH

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "util/flat_map.hh"
#include <vector>

#include "util/types.hh"

namespace sst {

/** Runtime state of one lock. */
struct LockState
{
    ThreadId owner = kInvalidId;
    std::deque<ThreadId> yieldedWaiters; ///< FIFO of descheduled waiters
    std::uint64_t word = 0;              ///< version value of the lock word
    ThreadId lastWriter = kInvalidId;    ///< last thread that wrote the word
    std::uint64_t acquisitions = 0;
    std::uint64_t contendedAcquisitions = 0;
};

/** Runtime state of one barrier episode set. */
struct BarrierState
{
    int arrived = 0;
    std::uint64_t generation = 0;        ///< bumped when the barrier opens
    std::vector<ThreadId> yieldedWaiters;
    ThreadId lastWriter = kInvalidId;
    std::uint64_t episodes = 0;
};

/** All lock/barrier state of one simulated application run. */
class SyncManager
{
  public:
    /** Try to acquire @p lock for @p tid; true on success. */
    bool tryAcquire(LockId lock, ThreadId tid);

    /**
     * Release @p lock (owner must be @p tid).
     * @return the yielded waiter to wake, or kInvalidId
     */
    ThreadId release(LockId lock, ThreadId tid);

    /** Park @p tid on @p lock's yield list. */
    void addLockWaiter(LockId lock, ThreadId tid);

    /**
     * Arrive at @p barrier.
     * @param nthreads total participants
     * @param[out] woken filled with all yielded waiters when the barrier
     *             opens
     * @return true if @p tid was the last arriver (barrier opened)
     */
    bool barrierArrive(BarrierId barrier, ThreadId tid, int nthreads,
                       std::vector<ThreadId> &woken);

    /** Park @p tid on @p barrier's yield list. */
    void addBarrierWaiter(BarrierId barrier, ThreadId tid);

    /** Current generation of @p barrier (spin loads poll this). */
    std::uint64_t barrierWord(BarrierId barrier) const;

    /**
     * Current value of @p lock's word as a test-and-test-and-set spin
     * loop observes it: 1 while held, 0 when free. (A version counter
     * would change on every handoff and defeat the Tian detector's
     * same-value marking, which is exactly why real spin loops poll a
     * held/free flag.)
     */
    std::uint64_t lockWord(LockId lock) const;

    /** Last writer of the lock word. */
    ThreadId lockWordWriter(LockId lock) const;

    /** Last writer of the barrier word. */
    ThreadId barrierWordWriter(BarrierId barrier) const;

    const LockState &lockState(LockId lock) const;
    const BarrierState &barrierState(BarrierId barrier) const;

  private:
    LockState &lockRef(LockId lock);
    BarrierState &barrierRef(BarrierId barrier);

    mutable std::unordered_map<LockId, LockState> locks_;
    mutable std::unordered_map<BarrierId, BarrierState> barriers_;
};

/**
 * Tracks a version number and last writer per cache line so loads can
 * report (value, written-by-other) pairs to the Tian spin detector, for
 * ordinary data as well as synchronization words.
 */
class ValueTracker
{
  public:
    /** Record a store by @p tid to the line of @p addr. */
    void onStore(Addr addr, ThreadId tid);

    struct LoadView
    {
        std::uint64_t value = 0;
        bool writtenByOther = false;
    };

    /** Value/writer view for a load of @p addr by @p tid. */
    LoadView onLoad(Addr addr, ThreadId tid) const;

  private:
    struct LineInfo
    {
        std::uint64_t version = 0;
        ThreadId lastWriter = kInvalidId;
    };
    /** Keyed by line number; flat map keeps the per-load lookup hot. */
    FlatMap64<LineInfo> lines_;
};

} // namespace sst

#endif // SST_SYNC_SYNC_STATE_HH
