/**
 * @file
 * Spin detection mechanisms (Section 4.3 of the paper).
 *
 * TianSpinDetector implements Tian et al. [14]: a small per-core load
 * table watches load instructions; a load that returns the same value
 * from the same address `markThreshold` times is marked as a potential
 * spin-loop load. When a marked load later observes a *different* value
 * that was written by another core, the interval since the load's first
 * occurrence is reported as spinning time. This is the mechanism the
 * paper adopts (simpler hardware: 8 entries, 217 bytes per core).
 *
 * LiSpinDetector implements Li et al. [11]: backward branches are
 * monitored; if processor state (register state + intervening stores) is
 * unchanged since the previous occurrence of the same backward branch,
 * the elapsed interval is spinning. Implemented for the paper's
 * comparison and exposed through the spin-detector ablation bench.
 */

#ifndef SST_SYNC_SPIN_DETECT_HH
#define SST_SYNC_SPIN_DETECT_HH

#include <array>
#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace sst {

/** Load-based spin detector (Tian et al.), one instance per core. */
class TianSpinDetector
{
  public:
    struct Params
    {
        int tableEntries = 8;  ///< spin loops contain at most 8 loads
        int markThreshold = 4; ///< identical loads before marking
    };

    TianSpinDetector() : TianSpinDetector(Params{}) {}
    explicit TianSpinDetector(const Params &params);

    /**
     * Observe one committed load.
     *
     * @param pc load instruction address
     * @param addr effective address
     * @param value loaded value (a version number is sufficient — the
     *        detector only compares for equality)
     * @param written_by_other the last writer of @p addr is another core
     * @param now current cycle
     * @return detected spinning cycles ending now (0 if none)
     */
    Cycles observeLoad(PC pc, Addr addr, std::uint64_t value,
                       bool written_by_other, Cycles now);

    /** Total spinning cycles reported so far. */
    Cycles detectedCycles() const { return detected_; }

    /** Hardware bits of the load table (Section 4.7: 217 bytes/core). */
    static std::uint64_t hardwareBits() { return hardwareBits(Params{}); }
    static std::uint64_t hardwareBits(const Params &params);

  private:
    struct Entry
    {
        bool valid = false;
        bool marked = false;
        PC pc = 0;
        Addr addr = 0;
        std::uint64_t value = 0;
        int count = 0;
        Cycles firstSeen = 0;
        Cycles lastUse = 0;
    };

    Params params_;
    std::vector<Entry> table_;
    Cycles detected_ = 0;
};

/** Backward-branch spin detector (Li et al.), one instance per core. */
class LiSpinDetector
{
  public:
    struct Params
    {
        int tableEntries = 16; ///< monitored backward branches
    };

    LiSpinDetector() : LiSpinDetector(Params{}) {}
    explicit LiSpinDetector(const Params &params);

    /**
     * Observe one backward branch at @p pc with the current compact
     * processor-state hash @p state_hash (callers fold the most recently
     * loaded value and a store serial number into the hash; any non-silent
     * store changes it, per the mechanism's definition).
     * @return spinning cycles accumulated since the branch's previous
     *         occurrence if state is unchanged, else 0
     */
    Cycles observeBackwardBranch(PC pc, std::uint64_t state_hash,
                                 Cycles now);

    Cycles detectedCycles() const { return detected_; }

  private:
    struct Entry
    {
        bool valid = false;
        PC pc = 0;
        std::uint64_t stateHash = 0;
        Cycles lastSeen = 0;
        Cycles lastUse = 0;
    };

    Params params_;
    std::vector<Entry> table_;
    Cycles detected_ = 0;
};

} // namespace sst

#endif // SST_SYNC_SPIN_DETECT_HH
