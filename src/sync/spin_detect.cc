#include "spin_detect.hh"

namespace sst {

TianSpinDetector::TianSpinDetector(const Params &params)
    : params_(params),
      table_(static_cast<std::size_t>(params.tableEntries))
{
}

Cycles
TianSpinDetector::observeLoad(PC pc, Addr addr, std::uint64_t value,
                              bool written_by_other, Cycles now)
{
    // Find an entry tracking this load PC.
    Entry *entry = nullptr;
    Entry *lru = &table_[0];
    for (auto &e : table_) {
        if (e.valid && e.pc == pc) {
            entry = &e;
            break;
        }
        if (!e.valid || e.lastUse < lru->lastUse)
            lru = &e;
    }

    if (!entry) {
        // Allocate (LRU replacement) and start tracking.
        *lru = Entry{};
        lru->valid = true;
        lru->pc = pc;
        lru->addr = addr;
        lru->value = value;
        lru->count = 1;
        lru->firstSeen = now;
        lru->lastUse = now;
        return 0;
    }

    entry->lastUse = now;

    if (entry->addr != addr) {
        // Same static load touching a different address: not a spin-loop
        // candidate in its current incarnation; restart tracking.
        entry->addr = addr;
        entry->value = value;
        entry->count = 1;
        entry->marked = false;
        entry->firstSeen = now;
        return 0;
    }

    if (entry->value == value) {
        ++entry->count;
        if (!entry->marked && entry->count >= params_.markThreshold)
            entry->marked = true;
        return 0;
    }

    // The value changed. For a marked load whose new value was produced
    // by another core, the whole interval since the first occurrence was
    // a spin (the paper's detection condition).
    Cycles spin = 0;
    if (entry->marked && written_by_other) {
        spin = now - entry->firstSeen;
        detected_ += spin;
    }
    entry->value = value;
    entry->count = 1;
    entry->marked = false;
    entry->firstSeen = now;
    return spin;
}

std::uint64_t
TianSpinDetector::hardwareBits(const Params &params)
{
    // Per entry: 64-bit PC + 64-bit address + 64-bit data + mark bit +
    // 24-bit timestamp = 217 bits; with the default 8 entries the table
    // is 217 bytes per core, matching Section 4.7.
    const std::uint64_t entry_bits = 64 + 64 + 64 + 1 + 24;
    return entry_bits * static_cast<std::uint64_t>(params.tableEntries);
}

LiSpinDetector::LiSpinDetector(const Params &params)
    : params_(params),
      table_(static_cast<std::size_t>(params.tableEntries))
{
}

Cycles
LiSpinDetector::observeBackwardBranch(PC pc, std::uint64_t state_hash,
                                      Cycles now)
{
    Entry *entry = nullptr;
    Entry *lru = &table_[0];
    for (auto &e : table_) {
        if (e.valid && e.pc == pc) {
            entry = &e;
            break;
        }
        if (!e.valid || e.lastUse < lru->lastUse)
            lru = &e;
    }

    if (!entry) {
        *lru = Entry{};
        lru->valid = true;
        lru->pc = pc;
        lru->stateHash = state_hash;
        lru->lastSeen = now;
        lru->lastUse = now;
        return 0;
    }

    entry->lastUse = now;
    Cycles spin = 0;
    if (entry->stateHash == state_hash) {
        // State unchanged since the last occurrence of this backward
        // branch: the loop body made no progress -> spinning.
        spin = now - entry->lastSeen;
        detected_ += spin;
    }
    entry->stateHash = state_hash;
    entry->lastSeen = now;
    return spin;
}

} // namespace sst
