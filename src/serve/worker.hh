/**
 * @file
 * The external worker process (`sst worker --connect`): leases jobs
 * from a running server over the wire protocol, executes them on a
 * local JobExecutor, heartbeats each lease while the simulation runs,
 * and reports `done` (with the encoded result) or `fail` (for
 * infrastructure errors a retry elsewhere might not hit).
 *
 * Workers are crash-only by design: there is no deregistration — a
 * killed worker simply stops heartbeating and the server's reaper
 * requeues its job. Every request uses a fresh connection, so a worker
 * survives server restarts by retrying leases until the endpoint
 * answers again (bounded by connectRetries).
 */

#ifndef SST_SERVE_WORKER_HH
#define SST_SERVE_WORKER_HH

#include <cstdint>
#include <string>

#include "driver/driver.hh"
#include "serve/net.hh"

namespace sst {
namespace serve {

/** Worker configuration. */
struct WorkerOptions
{
    Endpoint endpoint; ///< server to lease from

    /** Lease identity; also names the worker in server diagnostics. */
    std::string name;

    /**
     * Execution options. A non-empty cacheDir gives the worker its own
     * result cache (useful when workers outlive servers); by default
     * workers run cacheless — the server caches completed results.
     */
    DriverOptions driver;

    /** Idle poll interval when the server has no leasable job. */
    std::uint64_t pollMs = 200;

    /** Consecutive connection failures tolerated before giving up. */
    int connectRetries = 30;

    bool verbose = false;
};

/**
 * Run the lease/execute/report loop until the server drains (returns
 * 0) or the endpoint stays unreachable past connectRetries (returns 1).
 * The options' name defaults to "worker-<pid>" when empty.
 */
int runWorker(const WorkerOptions &opts);

} // namespace serve
} // namespace sst

#endif // SST_SERVE_WORKER_HH
