#include "worker.hh"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <thread>

#include "driver/result_cache.hh"
#include "serve/protocol.hh"
#include "spec/machine_keys.hh"
#include "spec/spec.hh"
#include "util/logging.hh"

namespace sst {
namespace serve {
namespace {

/** Sleep @p ms in short steps, returning early once @p stop is set. */
void
interruptibleSleep(std::uint64_t ms, const std::atomic<bool> &stop)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(ms);
    while (!stop && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
}

} // namespace

int
runWorker(const WorkerOptions &opts_in)
{
    WorkerOptions opts = opts_in;
    if (opts.name.empty())
        opts.name = "worker-" + std::to_string(::getpid());

    std::unique_ptr<ResultCache> cache;
    if (!opts.driver.cacheDir.empty())
        cache = std::make_unique<ResultCache>(opts.driver.cacheDir);
    JobExecutor executor(opts.driver, cache.get());

    // One request per connection, like every other client: a fresh
    // socket per call means a restarted server is just one failed
    // request, not a wedged stream.
    auto request = [&opts](const std::string &line) {
        Socket sock = connectTo(opts.endpoint);
        sock.writeAll(line + "\n");
        sock.shutdownWrite();
        std::string reply;
        if (!sock.readLine(reply))
            throw std::runtime_error("server closed the connection");
        return reply;
    };

    const std::atomic<bool> never{false};
    int connectFailures = 0;
    for (;;) {
        Request leaseReq;
        leaseReq.kind = Request::Kind::kLease;
        leaseReq.worker = opts.name;
        std::string reply;
        try {
            reply = request(serializeRequest(leaseReq));
            connectFailures = 0;
        } catch (const std::exception &e) {
            if (++connectFailures > opts.connectRetries) {
                warn("worker", opts.name + ": giving up on " +
                     opts.endpoint.text() + ": " + e.what());
                return 1;
            }
            interruptibleSleep(opts.pollMs, never);
            continue;
        }

        const std::vector<std::string> tokens = splitTokens(reply);
        if (tokens.size() == 2 && tokens[0] == "ok" &&
            tokens[1] == "drained") {
            if (opts.verbose)
                inform("worker", opts.name + ": server drained; exiting");
            return 0;
        }
        if (tokens.size() == 2 && tokens[0] == "ok" &&
            tokens[1] == "none") {
            interruptibleSleep(opts.pollMs, never);
            continue;
        }
        if (tokens.size() != 5 || tokens[0] != "ok" ||
            tokens[1] != "job") {
            warn("worker", opts.name + ": unexpected lease reply: " + reply);
            interruptibleSleep(opts.pollMs, never);
            continue;
        }

        std::uint64_t jobId = 0;
        std::uint64_t leaseMs = 0;
        std::string specText;
        try {
            jobId = parseU64Text("job id", tokens[2]);
            leaseMs = parseU64Text("lease ms", tokens[3]);
            specText = unescapeToken(tokens[4]);
        } catch (const std::exception &e) {
            warn("worker", opts.name + ": malformed lease reply: " + e.what());
            interruptibleSleep(opts.pollMs, never);
            continue;
        }
        if (opts.verbose)
            inform("worker", opts.name + ": leased job " + std::to_string(jobId));

        // Heartbeat from a side thread while the simulation runs, at a
        // third of the lease so one dropped beat doesn't expire it.
        std::atomic<bool> finished{false};
        std::thread heartbeater([&] {
            const std::uint64_t interval =
                std::max<std::uint64_t>(leaseMs / 3, 50);
            for (;;) {
                interruptibleSleep(interval, finished);
                if (finished)
                    return;
                Request beat;
                beat.kind = Request::Kind::kHeartbeat;
                beat.worker = opts.name;
                beat.jobId = jobId;
                try {
                    request(serializeRequest(beat));
                } catch (const std::exception &) {
                    // A missed beat is survivable; the next one (or
                    // the done/fail report) will land or the lease
                    // expires and the job is retried elsewhere.
                }
            }
        });

        JobResult result;
        std::string infraError;
        try {
            const ExperimentSpec spec = parseSpec(specText);
            std::vector<JobSpec> jobs = expandGrid(specGrid(spec));
            if (jobs.size() != 1) {
                throw std::runtime_error(
                    "leased spec expands to " +
                    std::to_string(jobs.size()) + " jobs, expected 1");
            }
            // run() never throws: a deterministically bad spec yields
            // a kFailed result, which is a *completion* (retrying it
            // elsewhere would fail identically).
            result = executor.run(jobs[0]);
        } catch (const std::exception &e) {
            infraError = e.what();
        }
        finished = true;
        heartbeater.join();

        Request report;
        report.worker = opts.name;
        report.jobId = jobId;
        if (infraError.empty()) {
            report.kind = Request::Kind::kDone;
            report.payload = encodeJobResult(result);
        } else {
            report.kind = Request::Kind::kFail;
            report.payload = infraError;
        }
        try {
            const std::string ack = request(serializeRequest(report));
            if (opts.verbose)
                inform("worker", opts.name + ": job " + std::to_string(jobId) +
                       " -> " + ack);
        } catch (const std::exception &e) {
            // The lease will expire and the job will be retried; the
            // queue's current-holder check keeps a late duplicate
            // settle from a reconnect harmless.
            warn("worker", opts.name + ": could not report job " +
                 std::to_string(jobId) + ": " + e.what());
        }
    }
}

} // namespace serve
} // namespace sst
