#include "journal.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "telemetry/metrics.hh"
#include "util/logging.hh"

namespace sst {
namespace serve {

Journal::Journal(const std::string &path) : path_(path)
{
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) {
        throw std::runtime_error("cannot open journal " + path + ": " +
                                 std::strerror(errno));
    }
}

Journal::~Journal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
Journal::append(const std::string &line)
{
    sstAssert(fd_ >= 0, "append to a closed journal");
    sstAssert(line.find('\n') == std::string::npos,
              "journal records are single lines");
    const std::string record = line + "\n";
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t off = 0;
    while (off < record.size()) {
        const ssize_t n =
            ::write(fd_, record.data() + off, record.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error("journal write failed: " +
                                     std::string(std::strerror(errno)));
        }
        off += static_cast<std::size_t>(n);
    }
    telemetry::HistogramHandle fsyncHist =
        telemetry::Registry::global().histogram(
            "sst_serve_journal_fsync_seconds", {},
            {0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0});
    const auto start = fsyncHist ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
    if (::fsync(fd_) != 0) {
        throw std::runtime_error("journal fsync failed: " +
                                 std::string(std::strerror(errno)));
    }
    if (fsyncHist)
        fsyncHist.observe(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count());
}

std::vector<std::string>
Journal::replay(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        return {}; // no journal yet: empty history

    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad())
        throw std::runtime_error("cannot read journal " + path);
    const std::string text = buf.str();

    std::vector<std::string> records;
    std::size_t pos = 0;
    for (;;) {
        const std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            break; // torn trailing line (crash mid-append): drop it
        records.push_back(text.substr(pos, nl - pos));
        pos = nl + 1;
    }
    return records;
}

} // namespace serve
} // namespace sst
