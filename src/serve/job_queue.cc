#include "job_queue.hh"

#include <chrono>

#include "driver/fingerprint.hh"
#include "util/logging.hh"

namespace sst {
namespace serve {

const char *
queueJobStateName(QueueJobState state)
{
    switch (state) {
    case QueueJobState::kPending:
        return "pending";
    case QueueJobState::kLeased:
        return "leased";
    case QueueJobState::kDone:
        return "done";
    case QueueJobState::kFailed:
        return "failed";
    case QueueJobState::kCancelled:
        return "cancelled";
    }
    return "?";
}

JobQueue::JobQueue(JobQueueOptions opts) : opts_(opts)
{
    sstAssert(opts_.maxAttempts >= 1,
              "JobQueue: maxAttempts must be >= 1");
}

std::uint64_t
JobQueue::backoffFor(int attempt) const
{
    // base << (attempt - 1), saturating at the cap. attempt is the
    // 1-based count of leases already consumed.
    std::uint64_t backoff = opts_.backoffBaseMs;
    for (int i = 1; i < attempt && backoff < opts_.backoffCapMs; ++i)
        backoff *= 2;
    return backoff < opts_.backoffCapMs ? backoff : opts_.backoffCapMs;
}

void
JobQueue::makePending(Job &job, std::uint64_t not_before_ms)
{
    job.state = QueueJobState::kPending;
    job.worker.clear();
    job.leaseExpiryMs = 0;
    job.notBeforeMs = not_before_ms;
    ready_.insert({-job.priority, job.seq, job.id});
}

void
JobQueue::settleFailed(Job &job, const std::string &error)
{
    job.state = QueueJobState::kFailed;
    job.worker.clear();
    job.error = error;
}

const JobQueue::Job &
JobQueue::jobAt(JobId id) const
{
    auto it = jobs_.find(id);
    sstAssert(it != jobs_.end(),
              "JobQueue: unknown job id " + std::to_string(id));
    return it->second;
}

SubmitOutcome
JobQueue::submit(const JobSpec &spec, int priority, std::uint64_t now_ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++submitted_;

    // Dedup key: the job's canonical content fingerprint. A spec the
    // fingerprint encoder rejects still gets enqueued (under a unique
    // key) so its validation failure surfaces as a per-job result, not
    // a lost submission.
    std::string key;
    try {
        key = fingerprintJob(spec).canonical;
    } catch (const std::exception &) {
        key = "unfingerprintable-" + std::to_string(nextId_);
    }

    auto hit = byFingerprint_.find(key);
    if (hit != byFingerprint_.end()) {
        const Job &twin = jobAt(hit->second);
        // Failed/cancelled jobs don't dedup: resubmission is the retry.
        if (twin.state != QueueJobState::kFailed &&
            twin.state != QueueJobState::kCancelled) {
            ++dedupHits_;
            return {twin.id, true};
        }
    }

    Job job;
    job.id = nextId_++;
    job.spec = spec;
    job.dedupKey = key;
    job.priority = priority;
    job.seq = nextSeq_++;
    byFingerprint_[key] = job.id;
    const JobId id = job.id;
    auto [it, inserted] = jobs_.emplace(id, std::move(job));
    sstAssert(inserted, "JobQueue: duplicate job id");
    makePending(it->second, now_ms);
    return {id, false};
}

bool
JobQueue::lease(const std::string &worker, std::uint64_t now_ms,
                LeasedJob &out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = ready_.begin(); it != ready_.end(); ++it) {
        Job &job = jobs_.at(std::get<2>(*it));
        if (job.notBeforeMs > now_ms)
            continue; // in backoff; later entries may still be ready
        ready_.erase(it);
        job.state = QueueJobState::kLeased;
        job.worker = worker;
        ++job.attempts;
        job.leaseExpiryMs = now_ms + opts_.leaseMs;
        out.id = job.id;
        out.spec = job.spec;
        out.attempt = job.attempts;
        out.leaseMs = opts_.leaseMs;
        return true;
    }
    return false;
}

bool
JobQueue::heartbeat(JobId id, const std::string &worker,
                    std::uint64_t now_ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    Job &job = it->second;
    if (job.state != QueueJobState::kLeased || job.worker != worker)
        return false;
    job.leaseExpiryMs = now_ms + opts_.leaseMs;
    return true;
}

bool
JobQueue::complete(JobId id, const std::string &worker, JobResult result)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = jobs_.find(id);
        if (it == jobs_.end())
            return false;
        Job &job = it->second;
        // Only the current lease holder settles a job: a worker whose
        // lease expired (the job may already be running elsewhere) is
        // rejected, so one job never produces two results.
        if (job.state != QueueJobState::kLeased || job.worker != worker)
            return false;
        job.state = QueueJobState::kDone;
        job.worker.clear();
        job.result = std::move(result);
    }
    settledCv_.notify_all();
    return true;
}

FailOutcome
JobQueue::fail(JobId id, const std::string &worker,
               const std::string &error, std::uint64_t now_ms)
{
    FailOutcome outcome;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = jobs_.find(id);
        if (it == jobs_.end())
            return FailOutcome::kStale;
        Job &job = it->second;
        if (job.state != QueueJobState::kLeased || job.worker != worker)
            return FailOutcome::kStale;
        if (job.attempts >= opts_.maxAttempts) {
            settleFailed(job, "failed after " +
                                  std::to_string(job.attempts) +
                                  " attempts; last error: " + error);
            outcome = FailOutcome::kFailed;
        } else {
            ++requeues_;
            makePending(job, now_ms + backoffFor(job.attempts));
            outcome = FailOutcome::kRequeued;
        }
    }
    if (outcome == FailOutcome::kFailed)
        settledCv_.notify_all();
    return outcome;
}

std::size_t
JobQueue::expireLeases(std::uint64_t now_ms)
{
    std::size_t expired = 0;
    bool anySettled = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &entry : jobs_) {
            Job &job = entry.second;
            if (job.state != QueueJobState::kLeased ||
                job.leaseExpiryMs > now_ms)
                continue;
            ++expired;
            if (job.attempts >= opts_.maxAttempts) {
                settleFailed(job,
                             "lease expired after " +
                                 std::to_string(job.attempts) +
                                 " attempts (worker '" + job.worker +
                                 "' stopped heartbeating)");
                anySettled = true;
            } else {
                ++requeues_;
                makePending(job, now_ms + backoffFor(job.attempts));
            }
        }
    }
    if (anySettled)
        settledCv_.notify_all();
    return expired;
}

bool
JobQueue::fulfil(JobId id, JobResult result)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = jobs_.find(id);
        if (it == jobs_.end())
            return false;
        Job &job = it->second;
        if (job.state != QueueJobState::kPending)
            return false;
        ready_.erase({-job.priority, job.seq, job.id});
        job.state = QueueJobState::kDone;
        job.result = std::move(result);
    }
    settledCv_.notify_all();
    return true;
}

bool
JobQueue::cancel(JobId id)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = jobs_.find(id);
        if (it == jobs_.end())
            return false;
        Job &job = it->second;
        if (job.state != QueueJobState::kPending)
            return false;
        ready_.erase({-job.priority, job.seq, job.id});
        job.state = QueueJobState::kCancelled;
    }
    settledCv_.notify_all();
    return true;
}

bool
JobQueue::settled(JobId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const QueueJobState s = jobAt(id).state;
    return s == QueueJobState::kDone || s == QueueJobState::kFailed ||
           s == QueueJobState::kCancelled;
}

JobResult
JobQueue::resultFor(JobId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const Job &job = jobAt(id);
    switch (job.state) {
    case QueueJobState::kDone:
        return job.result;
    case QueueJobState::kFailed: {
        JobResult res;
        res.status = JobStatus::kFailed;
        res.error = job.error;
        return res;
    }
    case QueueJobState::kCancelled: {
        JobResult res;
        res.status = JobStatus::kFailed;
        res.error = "cancelled";
        return res;
    }
    case QueueJobState::kPending:
    case QueueJobState::kLeased:
        break;
    }
    panic("JobQueue::resultFor on unsettled job " + std::to_string(id));
}

JobSpec
JobQueue::specFor(JobId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return jobAt(id).spec;
}

bool
JobQueue::trySpecFor(JobId id, JobSpec &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    out = it->second.spec;
    return true;
}

QueueJobState
JobQueue::stateOf(JobId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return jobAt(id).state;
}

bool
JobQueue::waitSettled(JobId id, std::uint64_t timeout_ms) const
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto isSettled = [&] {
        const QueueJobState s = jobAt(id).state;
        return s == QueueJobState::kDone ||
               s == QueueJobState::kFailed ||
               s == QueueJobState::kCancelled;
    };
    return settledCv_.wait_for(lock,
                               std::chrono::milliseconds(timeout_ms),
                               isSettled);
}

bool
JobQueue::idle() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &entry : jobs_) {
        const QueueJobState s = entry.second.state;
        if (s == QueueJobState::kPending || s == QueueJobState::kLeased)
            return false;
    }
    return true;
}

QueueStats
JobQueue::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    QueueStats s;
    for (const auto &entry : jobs_) {
        switch (entry.second.state) {
        case QueueJobState::kPending:
            ++s.pending;
            break;
        case QueueJobState::kLeased:
            ++s.leased;
            break;
        case QueueJobState::kDone:
            ++s.done;
            break;
        case QueueJobState::kFailed:
            ++s.failed;
            break;
        case QueueJobState::kCancelled:
            ++s.cancelled;
            break;
        }
    }
    s.submitted = submitted_;
    s.deduped = dedupHits_;
    s.requeues = requeues_;
    return s;
}

} // namespace serve
} // namespace sst
