/**
 * @file
 * Minimal blocking socket layer for the experiment service: an
 * endpoint grammar shared by server and clients ("tcp:host:port" or a
 * Unix-domain socket path), RAII wrappers over listen/accept/connect,
 * and bounded line-oriented reads matching the one-request-per-
 * connection protocol (serve/protocol.hh).
 *
 * Unix-domain sockets are the default transport (CI and single-host
 * use); TCP is for workers on other hosts. Both speak the identical
 * byte stream, so everything above this layer is transport-blind.
 */

#ifndef SST_SERVE_NET_HH
#define SST_SERVE_NET_HH

#include <cstddef>
#include <string>

namespace sst {
namespace serve {

/** Where a service listens: `tcp:host:port` or a Unix socket path. */
struct Endpoint
{
    bool tcp = false;
    std::string path;               ///< Unix socket path (!tcp)
    std::string host = "127.0.0.1"; ///< TCP host (tcp)
    int port = 0;                   ///< TCP port (tcp)

    /** Render back to the text form parseEndpoint() accepts. */
    std::string text() const;
};

/**
 * Parse an endpoint: "tcp:HOST:PORT" (or "tcp:PORT" for localhost),
 * anything else is a Unix-domain socket path. Throws
 * std::invalid_argument.
 */
Endpoint parseEndpoint(const std::string &text);

/**
 * One connected stream socket (move-only). Reads are buffered and
 * line-oriented; writes are full-buffer blocking writes. I/O errors
 * throw std::runtime_error — connections are cheap and per-request, so
 * callers retry at the request level, not the byte level.
 */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket();

    Socket(Socket &&other) noexcept;
    Socket &operator=(Socket &&other) noexcept;
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    bool valid() const { return fd_ >= 0; }

    /**
     * Read one '\n'-terminated line (newline stripped) into @p line.
     * Returns false on clean EOF before any byte; a line at EOF
     * without its newline is still delivered. Lines are bounded (16
     * MiB) so a misbehaving peer can't balloon memory.
     */
    bool readLine(std::string &line);

    /** Read until EOF, appending to @p out (same bound as readLine). */
    void readAll(std::string &out);

    /** Write the whole buffer, throwing on any short/failed write. */
    void writeAll(const std::string &data);

    /** Shut down the write side so the peer sees EOF after a stream. */
    void shutdownWrite();

    void close();

  private:
    int fd_ = -1;
    std::string buf_;   ///< bytes read past the last returned line
    std::size_t pos_ = 0;
};

/** A listening socket (Unix or TCP). Move-only. */
class Listener
{
  public:
    Listener() = default;
    ~Listener();

    Listener(Listener &&other) noexcept;
    Listener &operator=(Listener &&other) noexcept;
    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /** Bind + listen. Throws std::runtime_error on failure. */
    static Listener listenOn(const Endpoint &ep);

    bool valid() const { return fd_ >= 0; }

    /** The bound endpoint; for TCP port 0 this has the real port. */
    const Endpoint &endpoint() const { return endpoint_; }

    /**
     * Wait up to @p timeoutMs for a connection. Returns an invalid
     * Socket on timeout (poll again) and throws on hard errors.
     */
    Socket accept(int timeoutMs);

    /** Close the socket; unlinks the path for Unix listeners whose
     *  bind succeeded (a failed listenOn never unlinks — the path may
     *  belong to a live server). */
    void close();

  private:
    int fd_ = -1;
    bool ownsPath_ = false; ///< we bound the Unix path; close() unlinks
    Endpoint endpoint_;
};

/**
 * Connect to @p ep. Throws std::runtime_error if the service is not
 * reachable (callers own their retry policy).
 */
Socket connectTo(const Endpoint &ep);

} // namespace serve
} // namespace sst

#endif // SST_SERVE_NET_HH
