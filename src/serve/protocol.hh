/**
 * @file
 * The line-oriented wire protocol of the experiment service. One
 * request per connection (the HTTP/1.0 discipline — no connection
 * state to resynchronize after a crash): the client sends a single
 * request line, the server answers with one `ok ...` / `err ...` line,
 * or a stream of lines terminated by an `end ...` line for results and
 * status.
 *
 * Request lines are space-separated tokens; tokens are escaped
 * (escapeToken) so payloads — whole serialized ExperimentSpecs, result
 * blobs, error messages — travel as single tokens regardless of
 * content. Like the spec format, parsing and serialization are exact
 * inverses: parseRequest(serializeRequest(r)) reproduces r for every
 * valid request, so journaled request lines replay bit-exactly.
 *
 * Client requests:
 *   submit <campaign> <priority> <spec-text>   enqueue a campaign
 *   status                                     queue/campaign counters
 *   results <campaign> csv|json wait|nowait    stream results
 *   cancel <campaign>                          cancel pending jobs
 *   drain                                      stop accepting, finish
 *   ping                                       liveness probe
 *   metrics                                    stream telemetry text
 *
 * Worker requests:
 *   lease <worker>                 -> ok job <id> <lease-ms> <spec-text>
 *                                     | ok none | ok drained
 *   heartbeat <worker> <id>        extend the lease
 *   done <worker> <id> <result>    complete (result blob, see below)
 *   fail <worker> <id> <error>     infrastructure failure -> retry
 *
 * Completed jobs travel as encodeJobResult() blobs: a status line plus
 * the result cache's experiment-summary encoding — one codec for the
 * socket and the cache, so they can never disagree about a result.
 */

#ifndef SST_SERVE_PROTOCOL_HH
#define SST_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "driver/job.hh"

namespace sst {
namespace serve {

/** Wire protocol version (reported by `sst --version` and status). */
inline constexpr int kProtocolVersion = 1;

/**
 * Escape @p s into one space-free token: backslash escapes for
 * backslash, space, newline, CR and tab; the empty string becomes the
 * marker token `\e` (an empty token would vanish between separators).
 */
std::string escapeToken(const std::string &s);

/** Invert escapeToken(). Throws std::invalid_argument on bad escapes. */
std::string unescapeToken(const std::string &s);

/** Split a request/response line into its space-separated tokens. */
std::vector<std::string> splitTokens(const std::string &line);

/** One parsed request. Only the fields its kind carries are set. */
struct Request
{
    enum class Kind : std::uint8_t {
        kSubmit,
        kStatus,
        kResults,
        kCancel,
        kDrain,
        kPing,
        kLease,
        kHeartbeat,
        kDone,
        kFail,
        kMetrics,
    };

    Kind kind = Kind::kPing;
    std::string campaign; ///< submit / results / cancel
    std::string payload;  ///< spec text (submit), result blob / error
    int priority = 0;     ///< submit
    bool json = false;    ///< results: JSON rows instead of CSV
    bool wait = false;    ///< results: block for unsettled jobs
    std::string worker;   ///< lease / heartbeat / done / fail
    std::uint64_t jobId = 0; ///< heartbeat / done / fail
};

/** Stable verb of @p kind ("submit", "lease", ...). */
const char *requestKindName(Request::Kind kind);

/** Canonical request line (no trailing newline). */
std::string serializeRequest(const Request &req);

/**
 * Parse a request line. Throws std::invalid_argument (listing the
 * valid verbs for unknown ones) on malformed input.
 */
Request parseRequest(const std::string &line);

/**
 * Wire form of a completed job: `result-status ok|cached|failed`, an
 * optional `result-error <escaped>` line, then the experiment summary
 * (encodeExperimentSummary) for non-failed results. Multi-line; embed
 * it in request lines via escapeToken(). The trace flags of @p result
 * are deliberately not carried — they describe the executing side.
 */
std::string encodeJobResult(const JobResult &result);

/** Invert encodeJobResult(). Returns false on malformed input. */
bool decodeJobResult(const std::string &text, JobResult &out);

} // namespace serve
} // namespace sst

#endif // SST_SERVE_PROTOCOL_HH
