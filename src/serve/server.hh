/**
 * @file
 * The persistent sweep service: a Server owns the JobQueue, an optional
 * in-process worker pool and the result cache, accepts concurrent
 * protocol clients (serve/protocol.hh) over a Unix or TCP socket, and
 * journals every accepted campaign so a restarted server resumes
 * unfinished work — jobs that already ran come back instantly through
 * the content-addressed result cache, the rest re-enter the queue.
 *
 * Execution backends:
 *  - local worker threads (`localWorkers > 0`) lease jobs from the
 *    queue in-process and run them on a shared JobExecutor;
 *  - external `sst worker --connect` processes lease over the socket.
 *    A reaper thread expires the leases of workers that stopped
 *    heartbeating (killed, wedged, partitioned) and requeues their
 *    jobs with backoff; jobs that exhaust their attempts settle as
 *    failed without poisoning the rest of the campaign.
 *
 * Determinism: results stream in a campaign's expansion order and every
 * job is a pure function of its spec, so a campaign streamed from the
 * service is bit-identical to the same spec run by `sst sweep`.
 */

#ifndef SST_SERVE_SERVER_HH
#define SST_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "driver/driver.hh"
#include "serve/job_queue.hh"
#include "serve/net.hh"

namespace sst {

class ResultCache;

namespace serve {

class Journal;

/** Server configuration. */
struct ServerOptions
{
    /** Where to listen. Unix path or tcp:host:port (port 0 = pick). */
    Endpoint endpoint;

    /**
     * In-process worker threads. 0 (the default for `sst serve`) runs
     * every job on external workers — the service is then a pure
     * coordinator.
     */
    int localWorkers = 0;

    /** Execution options shared by local workers (cacheDir enables the
     *  server-side result cache; external workers feed it via done). */
    DriverOptions driver;

    /** Journal path; empty disables crash-safe campaign persistence. */
    std::string journalPath;

    JobQueueOptions queue;

    /** Lease-expiry / local-heartbeat cadence. */
    std::uint64_t reaperIntervalMs = 200;
};

/** One accepted campaign: a named, prioritized spec expansion. */
struct CampaignInfo
{
    std::string name;
    std::size_t jobs = 0;
    std::size_t settled = 0;
};

/** The sweep service. See file comment. */
class Server
{
  public:
    explicit Server(ServerOptions opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Replay the journal, bind the endpoint and spawn the accept,
     * reaper and local worker threads. Throws std::runtime_error when
     * the endpoint or journal is unusable.
     */
    void start();

    /** Stop accepting, drop the listener and join every thread. Safe to
     *  call twice; ~Server calls it. */
    void stop();

    /** The bound endpoint (after start(); reports the real TCP port). */
    const Endpoint &endpoint() const { return endpoint_; }

    /** Stop accepting new campaigns; existing ones run to completion. */
    void drain() { draining_ = true; }

    bool draining() const { return draining_; }

    /** True once draining and every accepted job has settled. */
    bool finished() const;

    /**
     * Accept campaign @p name with @p spec_text at @p priority: parse,
     * validate, expand, enqueue (fingerprint-deduped), fulfil submit
     * time cache hits, and journal. Fills @p response with the protocol
     * reply (`ok submitted ...` / `err ...`); returns response == ok.
     * This is the submit handler's core, public for direct (in-process)
     * use and journal replay.
     */
    bool submitCampaign(const std::string &name, int priority,
                        const std::string &spec_text,
                        std::string &response, bool from_journal = false);

    /** Cancel @p name's pending jobs; returns how many were cancelled. */
    std::size_t cancelCampaign(const std::string &name,
                               bool from_journal = false);

    /** Multi-line status block (no terminating `end` line). */
    std::string statusText() const;

    /** Telemetry exposition text (the `metrics` verb body): queue
     *  gauges refreshed, then the registry's deterministic render. */
    std::string metricsText() const;

    /** The queue, exposed for tests and in-process embedding. */
    JobQueue &queue() { return queue_; }

    /** Milliseconds since the server started (the queue's timebase). */
    std::uint64_t nowMs() const;

  private:
    struct Campaign
    {
        std::string canonical; ///< canonical spec text (dup detection)
        int priority = 0;
        std::vector<JobSpec> specs; ///< expansion order
        std::vector<JobId> ids;     ///< parallel to specs
    };

    /** One connection-handler thread plus its finished flag, so the
     *  accept loop can join (reap) it long before shutdown. */
    struct Conn
    {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done;
    };

    /** Lifetime per-worker activity, keyed by worker name. */
    struct WorkerStats
    {
        std::uint64_t leases = 0;
        std::uint64_t done = 0;
        std::uint64_t failed = 0;
        std::uint64_t lastDoneMs = 0;
        double ewmaJobsPerSec = 0.0; ///< EWMA over done intervals
    };

    void acceptLoop();
    void reaperLoop();
    void localWorkerLoop(int index);
    void handleConnection(Socket sock);
    void handleLease(Socket &sock, const std::string &worker);
    void handleDone(const std::string &worker, JobId id,
                    const std::string &payload, Socket &sock);
    void streamResults(Socket &sock, const std::string &name, bool json,
                       bool wait);
    void journalRequest(const std::string &line);
    void reapConnections(bool join_all);
    void noteLease(const std::string &worker);
    void noteDone(const std::string &worker);
    void noteFail(const std::string &worker);
    void publishQueueGauges() const;

    ServerOptions opts_;
    Endpoint endpoint_;
    JobQueue queue_;
    std::unique_ptr<ResultCache> cache_;
    std::unique_ptr<JobExecutor> executor_;
    std::unique_ptr<Journal> journal_;
    Listener listener_;

    mutable std::mutex campaignsMutex_;
    std::map<std::string, Campaign> campaigns_;

    mutable std::mutex workersMutex_;
    std::map<std::string, WorkerStats> workers_;

    std::atomic<bool> stop_{false};
    std::atomic<bool> draining_{false};
    std::chrono::steady_clock::time_point epoch_;

    std::thread acceptThread_;
    std::thread reaperThread_;
    std::vector<std::thread> localWorkers_;
    /** Job currently held by each local worker (reaper heartbeats). */
    std::unique_ptr<std::atomic<JobId>[]> localCurrent_;

    std::mutex connsMutex_;
    std::vector<Conn> conns_;
    bool started_ = false;
};

} // namespace serve
} // namespace sst

#endif // SST_SERVE_SERVER_HH
