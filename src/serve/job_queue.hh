/**
 * @file
 * The standalone job queue behind every execution backend — the job
 * scheduling that used to live inside the batch driver's runBatch()
 * loop, split out so the in-process thread pool and external worker
 * processes (`sst worker`) become two backends of one queue.
 *
 * Semantics:
 *  - ordering: higher priority first, FIFO (submission order) within a
 *    priority level;
 *  - dedup: submissions are keyed by the job's content fingerprint
 *    (driver/fingerprint.hh). A spec whose fingerprint matches a
 *    pending, leased or completed job returns the existing job id with
 *    `deduped = true` — a million-job campaign resubmitted is a no-op.
 *    Jobs that settled as failed or cancelled do NOT dedup: resubmitting
 *    one enqueues a fresh attempt;
 *  - leases: workers lease one job at a time and must heartbeat it. A
 *    lease that outlives its expiry (a killed worker) is requeued by
 *    expireLeases() with exponential backoff; once a job has been
 *    leased maxAttempts times without completing it settles as failed
 *    with a descriptive error — one crashing worker never poisons a
 *    campaign;
 *  - retries are for infrastructure failures only. A job whose spec is
 *    deterministically bad completes with a kFailed JobResult (the
 *    executor never throws); fail() is for worker-side errors that a
 *    different worker or a later attempt might not hit (undecodable
 *    wire payloads, dead processes).
 *
 * All timestamps are injected milliseconds (`now_ms`): the queue never
 * reads a clock, so tests drive lease expiry and backoff directly and
 * the driver's in-process backend — whose workers cannot die — simply
 * passes 0 everywhere.
 */

#ifndef SST_SERVE_JOB_QUEUE_HH
#define SST_SERVE_JOB_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>

#include "driver/job.hh"

namespace sst {
namespace serve {

/** Queue-wide job identifier (1-based; 0 is never a valid id). */
using JobId = std::uint64_t;

/** Lifecycle of one queued job. */
enum class QueueJobState : std::uint8_t {
    kPending,   ///< waiting for a lease (possibly in backoff)
    kLeased,    ///< held by a worker, lease not yet expired
    kDone,      ///< completed with a JobResult (ok, cached or failed)
    kFailed,    ///< gave up: maxAttempts leases expired or failed
    kCancelled, ///< cancelled while pending
};

/** Stable lowercase label of @p state ("pending", "leased", ...). */
const char *queueJobStateName(QueueJobState state);

/** Retry/lease policy knobs. */
struct JobQueueOptions
{
    /** Lease count after which an uncompleted job settles as failed. */
    int maxAttempts = 3;

    /** Lease duration handed to workers (heartbeats extend it). */
    std::uint64_t leaseMs = 30000;

    /** Requeue backoff: base << (attempt - 1), capped below. */
    std::uint64_t backoffBaseMs = 1000;
    std::uint64_t backoffCapMs = 60000;
};

/** Outcome of one submit() call. */
struct SubmitOutcome
{
    JobId id = 0;
    bool deduped = false; ///< id names a pre-existing equivalent job
};

/** One leased job as handed to a worker. */
struct LeasedJob
{
    JobId id = 0;
    JobSpec spec;
    int attempt = 0;           ///< 1-based lease count
    std::uint64_t leaseMs = 0; ///< lease duration (heartbeat cadence hint)
};

/** How fail() settled the job. */
enum class FailOutcome : std::uint8_t {
    kRequeued, ///< attempts remain: pending again after backoff
    kFailed,   ///< attempts exhausted: settled as failed
    kStale,    ///< caller no longer holds the lease — ignored
};

/** Aggregate queue counters (point-in-time snapshot). */
struct QueueStats
{
    std::size_t pending = 0;
    std::size_t leased = 0;
    std::size_t done = 0;
    std::size_t failed = 0;
    std::size_t cancelled = 0;
    std::size_t submitted = 0; ///< lifetime submit() calls
    std::size_t deduped = 0;   ///< lifetime fingerprint dedup hits
    std::size_t requeues = 0;  ///< lifetime lease expiries + fail() retries
};

/** Thread-safe priority/FIFO job queue with leases. See file comment. */
class JobQueue
{
  public:
    explicit JobQueue(JobQueueOptions opts = JobQueueOptions());

    /**
     * Enqueue @p spec at @p priority (higher runs first). Returns the
     * new job's id, or — when the spec's fingerprint matches a job that
     * is pending, leased or done — the existing job's id with
     * `deduped = true`.
     */
    SubmitOutcome submit(const JobSpec &spec, int priority,
                         std::uint64_t now_ms);

    /**
     * Lease the highest-priority pending job whose backoff has passed.
     * Returns false when no job is currently leasable (the queue may
     * still hold leased jobs that could be requeued later).
     */
    bool lease(const std::string &worker, std::uint64_t now_ms,
               LeasedJob &out);

    /** Extend @p worker's lease on @p id. False when the lease is no
     *  longer held by @p worker (expired and reassigned, or settled). */
    bool heartbeat(JobId id, const std::string &worker,
                   std::uint64_t now_ms);

    /**
     * Settle @p id with @p result. Only the current lease holder may
     * complete a job: a stale worker (its lease expired and the job was
     * reassigned) is rejected so a requeued job is never settled twice.
     */
    bool complete(JobId id, const std::string &worker, JobResult result);

    /**
     * Report a worker-side (infrastructure) failure of @p id: requeue
     * with backoff, or settle as failed once attempts are exhausted.
     */
    FailOutcome fail(JobId id, const std::string &worker,
                     const std::string &error, std::uint64_t now_ms);

    /**
     * Requeue every lease that expired before @p now_ms (with backoff),
     * settling jobs whose attempts are exhausted as failed. Returns the
     * number of leases expired.
     */
    std::size_t expireLeases(std::uint64_t now_ms);

    /** Settle a *pending* job without a lease — the submit-time result
     *  cache hit path. False when @p id is not pending. */
    bool fulfil(JobId id, JobResult result);

    /** Cancel a pending job. Leased/settled jobs are left alone. */
    bool cancel(JobId id);

    /** True once @p id settled (done, failed or cancelled). */
    bool settled(JobId id) const;

    /**
     * The settled result of @p id. Jobs that exhausted their attempts
     * or were cancelled synthesize a kFailed result carrying the
     * reason. Must not be called before settled(id).
     */
    JobResult resultFor(JobId id) const;

    /** Spec of @p id (any state). Must be a known id. */
    JobSpec specFor(JobId id) const;

    /** Spec of @p id if the id is known (any state). False otherwise —
     *  the tolerant variant for ids received off the wire. */
    bool trySpecFor(JobId id, JobSpec &out) const;

    QueueJobState stateOf(JobId id) const;

    /**
     * Block until @p id settles, at most @p timeout_ms (0 = just poll).
     * Note: waiting forever is deliberately not offered — lease expiry
     * needs a live expireLeases() caller, so waits must be re-armed.
     */
    bool waitSettled(JobId id, std::uint64_t timeout_ms) const;

    /** True when no job is pending or leased. */
    bool idle() const;

    QueueStats stats() const;

    const JobQueueOptions &options() const { return opts_; }

  private:
    struct Job
    {
        JobId id = 0;
        JobSpec spec;
        std::string dedupKey;
        int priority = 0;
        std::uint64_t seq = 0;
        QueueJobState state = QueueJobState::kPending;
        int attempts = 0;
        std::uint64_t notBeforeMs = 0;
        std::uint64_t leaseExpiryMs = 0;
        std::string worker;
        std::string error; ///< reason when kFailed without a result
        JobResult result;
    };

    /** Ready-set key: (-priority, seq) — priority order, FIFO within. */
    using ReadyKey = std::tuple<int, std::uint64_t, JobId>;

    std::uint64_t backoffFor(int attempt) const;
    void makePending(Job &job, std::uint64_t not_before_ms);
    void settleFailed(Job &job, const std::string &error);
    const Job &jobAt(JobId id) const;

    JobQueueOptions opts_;
    mutable std::mutex mutex_;
    mutable std::condition_variable settledCv_;
    std::map<JobId, Job> jobs_;
    std::unordered_map<std::string, JobId> byFingerprint_;
    std::set<ReadyKey> ready_;
    JobId nextId_ = 1;
    std::uint64_t nextSeq_ = 0;
    std::size_t submitted_ = 0;
    std::size_t dedupHits_ = 0;
    std::size_t requeues_ = 0;
};

} // namespace serve
} // namespace sst

#endif // SST_SERVE_JOB_QUEUE_HH
