#include "server.hh"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <utility>

#include "driver/fingerprint.hh"
#include "driver/result_cache.hh"
#include "driver/sweep.hh"
#include "serve/journal.hh"
#include "serve/protocol.hh"
#include "spec/spec.hh"
#include "telemetry/metrics.hh"
#include "telemetry/span.hh"
#include "util/logging.hh"

namespace sst {
namespace serve {
namespace {

/** Collapse an exception message onto one response line. */
std::string
oneline(const std::string &msg)
{
    std::string out = msg;
    std::replace(out.begin(), out.end(), '\n', ' ');
    std::replace(out.begin(), out.end(), '\r', ' ');
    return out;
}

} // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)), queue_(opts_.queue),
      epoch_(std::chrono::steady_clock::now())
{
    if (!opts_.driver.cacheDir.empty())
        cache_ = std::make_unique<ResultCache>(opts_.driver.cacheDir);
    executor_ = std::make_unique<JobExecutor>(opts_.driver, cache_.get());
}

Server::~Server()
{
    stop();
}

std::uint64_t
Server::nowMs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

void
Server::start()
{
    sstAssert(!started_, "Server::start called twice");
    started_ = true;

    // A live service is always observable: the registry costs one
    // relaxed atomic per counter bump and the `metrics` verb streams
    // the exposition. Simulation results are unaffected (telemetry is
    // write-only for the sim).
    telemetry::Registry::global().setEnabled(true);

    // Replay before listening: the queue is fully reconstructed before
    // any client or worker can observe it. Jobs that completed in a
    // previous life fulfil instantly through the result cache.
    if (!opts_.journalPath.empty()) {
        for (const std::string &line : Journal::replay(opts_.journalPath)) {
            Request req;
            try {
                req = parseRequest(line);
            } catch (const std::exception &e) {
                warn("serve", "journal: skipping bad record (" +
                                  std::string(e.what()) + ")");
                continue;
            }
            if (req.kind == Request::Kind::kSubmit) {
                std::string response;
                if (!submitCampaign(req.campaign, req.priority,
                                    req.payload, response,
                                    /*from_journal=*/true))
                    warn("serve", "journal: replay of campaign '" +
                                      req.campaign +
                                      "' failed: " + response);
            } else if (req.kind == Request::Kind::kCancel) {
                cancelCampaign(req.campaign, /*from_journal=*/true);
            } else {
                warn("serve",
                     "journal: skipping non-state record '" +
                         std::string(requestKindName(req.kind)) + "'");
            }
        }
        journal_ = std::make_unique<Journal>(opts_.journalPath);
    }

    listener_ = Listener::listenOn(opts_.endpoint);
    endpoint_ = listener_.endpoint();

    acceptThread_ = std::thread([this] { acceptLoop(); });
    reaperThread_ = std::thread([this] { reaperLoop(); });
    if (opts_.localWorkers > 0) {
        localCurrent_ = std::make_unique<std::atomic<JobId>[]>(
            static_cast<std::size_t>(opts_.localWorkers));
        for (int i = 0; i < opts_.localWorkers; ++i) {
            localCurrent_[i] = 0;
            localWorkers_.emplace_back(
                [this, i] { localWorkerLoop(i); });
        }
    }
}

void
Server::stop()
{
    if (stop_.exchange(true))
        return;
    if (acceptThread_.joinable())
        acceptThread_.join();
    listener_.close();
    reapConnections(/*join_all=*/true);
    if (reaperThread_.joinable())
        reaperThread_.join();
    for (std::thread &t : localWorkers_)
        if (t.joinable())
            t.join();
    localWorkers_.clear();
}

bool
Server::finished() const
{
    return draining_ && queue_.idle();
}

void
Server::reapConnections(bool join_all)
{
    std::lock_guard<std::mutex> lock(connsMutex_);
    auto it = conns_.begin();
    while (it != conns_.end()) {
        if (join_all || it->done->load()) {
            if (it->thread.joinable())
                it->thread.join();
            it = conns_.erase(it);
        } else {
            ++it;
        }
    }
}

void
Server::acceptLoop()
{
    while (!stop_) {
        // Join connections that finished since the last pass — a
        // persistent server must not accumulate joinable threads.
        reapConnections(/*join_all=*/false);
        Socket sock;
        try {
            sock = listener_.accept(
                static_cast<int>(opts_.reaperIntervalMs));
        } catch (const std::exception &e) {
            if (!stop_)
                warn("serve", "accept failed: " + std::string(e.what()));
            continue;
        }
        if (!sock.valid())
            continue;
        auto done = std::make_shared<std::atomic<bool>>(false);
        std::thread thread(
            [this, done](Socket s) {
                handleConnection(std::move(s));
                done->store(true);
            },
            std::move(sock));
        std::lock_guard<std::mutex> lock(connsMutex_);
        conns_.push_back(Conn{std::move(thread), std::move(done)});
    }
}

void
Server::reaperLoop()
{
    while (!stop_) {
        const std::size_t expired = queue_.expireLeases(nowMs());
        if (expired > 0)
            inform("serve", "requeued " + std::to_string(expired) +
                                " expired lease(s)");
        publishQueueGauges();
        // Local workers never die with the server alive; heartbeat on
        // their behalf so long jobs survive short lease settings.
        for (int i = 0; i < opts_.localWorkers; ++i) {
            const JobId id = localCurrent_[i].load();
            if (id != 0)
                queue_.heartbeat(id, "local-" + std::to_string(i),
                                 nowMs());
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts_.reaperIntervalMs));
    }
}

void
Server::localWorkerLoop(int index)
{
    const std::string name = "local-" + std::to_string(index);
    while (!stop_) {
        LeasedJob job;
        if (!queue_.lease(name, nowMs(), job)) {
            if (draining_ && queue_.idle())
                return;
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            continue;
        }
        noteLease(name);
        localCurrent_[index] = job.id;
        JobResult result = executor_->run(job.spec);
        localCurrent_[index] = 0;
        if (queue_.complete(job.id, name, std::move(result)))
            noteDone(name);
    }
}

void
Server::journalRequest(const std::string &line)
{
    if (journal_)
        journal_->append(line);
}

void
Server::noteLease(const std::string &worker)
{
    {
        std::lock_guard<std::mutex> lock(workersMutex_);
        ++workers_[worker].leases;
    }
    telemetry::Registry::global()
        .counter("sst_serve_worker_leases_total", {{"worker", worker}})
        .inc();
}

void
Server::noteDone(const std::string &worker)
{
    const std::uint64_t now = nowMs();
    double rate = 0.0;
    {
        std::lock_guard<std::mutex> lock(workersMutex_);
        WorkerStats &w = workers_[worker];
        ++w.done;
        if (w.lastDoneMs != 0) {
            // EWMA throughput over completion intervals (alpha 0.3);
            // sub-millisecond intervals clamp to 1 ms.
            const std::uint64_t delta =
                now > w.lastDoneMs ? now - w.lastDoneMs : 0;
            const double inst =
                1000.0 / static_cast<double>(delta > 0 ? delta : 1);
            w.ewmaJobsPerSec = w.ewmaJobsPerSec == 0.0
                                   ? inst
                                   : 0.3 * inst + 0.7 * w.ewmaJobsPerSec;
        }
        w.lastDoneMs = now;
        rate = w.ewmaJobsPerSec;
    }
    telemetry::Registry &registry = telemetry::Registry::global();
    registry
        .counter("sst_serve_worker_done_total", {{"worker", worker}})
        .inc();
    registry.counter("sst_serve_jobs_done_total").inc();
    registry
        .gauge("sst_serve_worker_jobs_per_sec", {{"worker", worker}})
        .set(rate);
}

void
Server::noteFail(const std::string &worker)
{
    {
        std::lock_guard<std::mutex> lock(workersMutex_);
        ++workers_[worker].failed;
    }
    telemetry::Registry::global()
        .counter("sst_serve_worker_fail_total", {{"worker", worker}})
        .inc();
}

void
Server::publishQueueGauges() const
{
    telemetry::Registry &registry = telemetry::Registry::global();
    if (!registry.enabled())
        return;
    const QueueStats stats = queue_.stats();
    const struct
    {
        const char *state;
        std::size_t value;
    } kGauges[] = {
        {"pending", stats.pending},     {"leased", stats.leased},
        {"done", stats.done},           {"failed", stats.failed},
        {"cancelled", stats.cancelled},
    };
    for (const auto &g : kGauges)
        registry.gauge("sst_serve_queue_jobs", {{"state", g.state}})
            .set(static_cast<double>(g.value));
    registry.gauge("sst_serve_queue_submitted")
        .set(static_cast<double>(stats.submitted));
    registry.gauge("sst_serve_queue_deduped")
        .set(static_cast<double>(stats.deduped));
    registry.gauge("sst_serve_queue_requeues")
        .set(static_cast<double>(stats.requeues));
}

std::string
Server::metricsText() const
{
    publishQueueGauges();
    return telemetry::Registry::global().renderText();
}

bool
Server::submitCampaign(const std::string &name, int priority,
                       const std::string &spec_text,
                       std::string &response, bool from_journal)
{
    telemetry::ScopedSpan span("submit", "serve");
    if (name.empty()) {
        response = "err campaign name must not be empty";
        return false;
    }
    if (draining_ && !from_journal) {
        response = "err draining: not accepting new campaigns";
        return false;
    }

    std::string canonical;
    std::vector<JobSpec> jobs;
    try {
        const ExperimentSpec spec = parseSpec(spec_text);
        canonical = serializeSpec(spec);
        jobs = expandGrid(specGrid(spec));
    } catch (const std::exception &e) {
        response = "err " + oneline(e.what());
        return false;
    }
    if (jobs.empty()) {
        response = "err campaign expands to zero jobs";
        return false;
    }

    // Reserve the name under the lock (an empty campaign with the
    // canonical text claims it against a concurrent different-spec
    // submit), then journal and enqueue with the lock released so a
    // large submission never blocks status/results/cancel.
    bool isNew = false;
    {
        std::lock_guard<std::mutex> lock(campaignsMutex_);
        const auto known = campaigns_.find(name);
        isNew = known == campaigns_.end();
        if (!isNew && known->second.canonical != canonical) {
            response = "err campaign '" + name +
                       "' already exists with a different spec";
            return false;
        }
        if (isNew) {
            Campaign placeholder;
            placeholder.canonical = canonical;
            placeholder.priority = priority;
            campaigns_.emplace(name, std::move(placeholder));
        }
    }

    // Journal before enqueueing: a crash between the two replays the
    // submit and reconstructs the jobs; the reverse order could accept
    // (and answer ok for) a campaign a restart would forget. Journal
    // the canonical text so replay parses the exact same spec. (A
    // cancel racing this submit may journal first and cancel nothing —
    // replay then resubmits in full, matching what the live cancel
    // observed.)
    if (!from_journal && isNew) {
        Request rec;
        rec.kind = Request::Kind::kSubmit;
        rec.campaign = name;
        rec.priority = priority;
        rec.payload = canonical;
        journalRequest(serializeRequest(rec));
    }

    std::size_t fresh = 0, deduped = 0, cachedHits = 0;
    Campaign campaign;
    campaign.canonical = canonical;
    campaign.priority = priority;
    telemetry::ScopedSpan enqueueSpan("enqueue", "serve");
    for (const JobSpec &job : jobs) {
        const SubmitOutcome outcome =
            queue_.submit(job, priority, nowMs());
        campaign.specs.push_back(job);
        campaign.ids.push_back(outcome.id);
        if (outcome.deduped) {
            ++deduped;
            continue;
        }
        ++fresh;
        // Submit-time memoization: a job the cache already holds never
        // reaches a worker — this is what turns journal replay into an
        // instant resume for the completed prefix of a campaign.
        if (cache_) {
            try {
                const Fingerprint fp = fingerprintJob(job);
                SpeedupExperiment exp;
                if (cache_->lookup(fp, exp)) {
                    JobResult hit;
                    hit.status = JobStatus::kCached;
                    hit.exp = std::move(exp);
                    if (queue_.fulfil(outcome.id, std::move(hit)))
                        ++cachedHits;
                }
            } catch (const std::exception &) {
                // Unfingerprintable specs fail at execution time with
                // a real error message; nothing to do here.
            }
        }
    }
    // Store (or refresh) the id mapping even for a known campaign:
    // failed/cancelled twins deliberately don't dedup, so a resubmit
    // enqueues fresh retry jobs whose ids must replace the settled
    // ones — otherwise results would stream the stale failures forever.
    {
        std::lock_guard<std::mutex> lock(campaignsMutex_);
        campaigns_[name] = std::move(campaign);
    }

    response = "ok submitted " + escapeToken(name) + " jobs=" +
               std::to_string(jobs.size()) + " new=" +
               std::to_string(fresh) + " deduped=" +
               std::to_string(deduped) + " cached=" +
               std::to_string(cachedHits);
    return true;
}

std::size_t
Server::cancelCampaign(const std::string &name, bool from_journal)
{
    std::lock_guard<std::mutex> lock(campaignsMutex_);
    const auto it = campaigns_.find(name);
    if (it == campaigns_.end())
        return 0;
    if (!from_journal) {
        Request rec;
        rec.kind = Request::Kind::kCancel;
        rec.campaign = name;
        journalRequest(serializeRequest(rec));
    }
    std::size_t cancelled = 0;
    for (const JobId id : it->second.ids)
        if (queue_.cancel(id))
            ++cancelled;
    return cancelled;
}

std::string
Server::statusText() const
{
    const QueueStats stats = queue_.stats();
    std::string out;
    out += "protocol " + std::to_string(kProtocolVersion) + "\n";
    out += "draining " + std::string(draining_ ? "1" : "0") + "\n";
    out += "pending " + std::to_string(stats.pending) + "\n";
    out += "leased " + std::to_string(stats.leased) + "\n";
    out += "done " + std::to_string(stats.done) + "\n";
    out += "failed " + std::to_string(stats.failed) + "\n";
    out += "cancelled " + std::to_string(stats.cancelled) + "\n";
    out += "submitted " + std::to_string(stats.submitted) + "\n";
    out += "deduped " + std::to_string(stats.deduped) + "\n";
    out += "requeues " + std::to_string(stats.requeues) + "\n";

    // Snapshot the campaign table under the lock, then settle-check
    // against the queue with it released: settled() is O(total jobs)
    // worth of queue-mutex traffic and campaignsMutex_ is on submit's
    // path — holding both serialized large submits behind status polls.
    struct CampaignRow
    {
        std::string name;
        std::vector<JobId> ids;
        int priority;
    };
    std::vector<CampaignRow> rows;
    {
        std::lock_guard<std::mutex> lock(campaignsMutex_);
        rows.reserve(campaigns_.size());
        for (const auto &entry : campaigns_)
            rows.push_back(CampaignRow{entry.first, entry.second.ids,
                                       entry.second.priority});
    }
    for (const CampaignRow &row : rows) {
        std::size_t settled = 0;
        for (const JobId id : row.ids)
            if (queue_.settled(id))
                ++settled;
        out += "campaign " + escapeToken(row.name) + " jobs=" +
               std::to_string(row.ids.size()) + " settled=" +
               std::to_string(settled) + " priority=" +
               std::to_string(row.priority) + "\n";
    }

    // Per-worker throughput (std::map order: deterministic).
    std::lock_guard<std::mutex> lock(workersMutex_);
    for (const auto &entry : workers_) {
        char rate[32];
        std::snprintf(rate, sizeof(rate), "%.3f",
                      entry.second.ewmaJobsPerSec);
        out += "worker " + escapeToken(entry.first) + " leases=" +
               std::to_string(entry.second.leases) + " done=" +
               std::to_string(entry.second.done) + " failed=" +
               std::to_string(entry.second.failed) + " rate=" + rate +
               "\n";
    }
    return out;
}

void
Server::handleLease(Socket &sock, const std::string &worker)
{
    telemetry::ScopedSpan span("lease", "serve");
    LeasedJob job;
    if (queue_.lease(worker, nowMs(), job)) {
        noteLease(worker);
        const std::string specText =
            serializeSpec(specForJob(job.spec));
        sock.writeAll("ok job " + std::to_string(job.id) + " " +
                      std::to_string(job.leaseMs) + " " +
                      escapeToken(specText) + "\n");
        return;
    }
    if (draining_ && queue_.idle()) {
        sock.writeAll("ok drained\n");
        return;
    }
    sock.writeAll("ok none\n");
}

void
Server::handleDone(const std::string &worker, JobId id,
                   const std::string &payload, Socket &sock)
{
    telemetry::ScopedSpan span("done", "serve");
    // An id this queue never issued (a confused or malicious client)
    // is stale, exactly like heartbeat/complete/fail treat it — it
    // must never reach an asserting accessor.
    JobSpec spec;
    if (!queue_.trySpecFor(id, spec)) {
        sock.writeAll("err stale\n");
        return;
    }
    JobResult result;
    if (!decodeJobResult(payload, result)) {
        // An undecodable payload is a worker-side defect: retry the
        // job elsewhere rather than settling it with garbage.
        if (queue_.fail(id, worker, "undecodable result payload",
                        nowMs()) != FailOutcome::kStale)
            noteFail(worker);
        sock.writeAll("err undecodable result payload\n");
        return;
    }
    // Feed the server-side cache before settling: external workers may
    // have no cache (or a private one), and a restarted server resumes
    // from *this* cache.
    if (result.ok() && cache_) {
        try {
            cache_->store(fingerprintJob(spec), result.exp);
        } catch (const std::exception &e) {
            warn("serve", "cache store for job " + std::to_string(id) +
                              " failed: " + e.what());
        }
    }
    if (queue_.complete(id, worker, std::move(result))) {
        noteDone(worker);
        sock.writeAll("ok\n");
    } else {
        sock.writeAll("err stale\n");
    }
}

void
Server::streamResults(Socket &sock, const std::string &name, bool json,
                      bool wait)
{
    std::vector<JobSpec> specs;
    std::vector<JobId> ids;
    {
        std::lock_guard<std::mutex> lock(campaignsMutex_);
        const auto it = campaigns_.find(name);
        if (it == campaigns_.end()) {
            sock.writeAll("err unknown campaign '" + escapeToken(name) +
                          "'\n");
            return;
        }
        specs = it->second.specs;
        ids = it->second.ids;
    }

    sock.writeAll("ok results " + escapeToken(name) + " " +
                  std::string(json ? "json" : "csv") + "\n");
    if (!json)
        sock.writeAll(sweepCsvHeader() + "\n");
    for (std::size_t i = 0; i < ids.size(); ++i) {
        while (!queue_.settled(ids[i])) {
            if (!wait || stop_) {
                sock.writeAll("end partial " + std::to_string(i) + "/" +
                              std::to_string(ids.size()) + "\n");
                return;
            }
            queue_.waitSettled(ids[i], 200);
        }
        const JobResult result = queue_.resultFor(ids[i]);
        sock.writeAll((json ? sweepJsonRow(specs[i], result)
                            : sweepCsvRow(specs[i], result)) +
                      "\n");
    }
    sock.writeAll("end complete " + std::to_string(ids.size()) + "/" +
                  std::to_string(ids.size()) + "\n");
}

void
Server::handleConnection(Socket sock)
{
    std::string line;
    try {
        if (!sock.readLine(line))
            return;
        const Request req = parseRequest(line);
        switch (req.kind) {
        case Request::Kind::kSubmit: {
            std::string response;
            submitCampaign(req.campaign, req.priority, req.payload,
                           response);
            sock.writeAll(response + "\n");
            break;
        }
        case Request::Kind::kStatus:
            sock.writeAll("ok status\n" + statusText() + "end\n");
            break;
        case Request::Kind::kResults:
            streamResults(sock, req.campaign, req.json, req.wait);
            break;
        case Request::Kind::kCancel: {
            const std::size_t n = cancelCampaign(req.campaign);
            sock.writeAll("ok cancelled " + escapeToken(req.campaign) +
                          " pending=" + std::to_string(n) + "\n");
            break;
        }
        case Request::Kind::kDrain:
            drain();
            sock.writeAll("ok draining\n");
            break;
        case Request::Kind::kPing:
            sock.writeAll("ok pong protocol=" +
                          std::to_string(kProtocolVersion) + "\n");
            break;
        case Request::Kind::kLease:
            handleLease(sock, req.worker);
            break;
        case Request::Kind::kHeartbeat: {
            telemetry::ScopedSpan span("heartbeat", "serve");
            sock.writeAll(queue_.heartbeat(req.jobId, req.worker, nowMs())
                              ? "ok\n"
                              : "err stale\n");
            break;
        }
        case Request::Kind::kDone:
            handleDone(req.worker, req.jobId, req.payload, sock);
            break;
        case Request::Kind::kFail: {
            const FailOutcome outcome = queue_.fail(
                req.jobId, req.worker, req.payload, nowMs());
            if (outcome != FailOutcome::kStale)
                noteFail(req.worker);
            sock.writeAll(outcome == FailOutcome::kRequeued ? "ok requeued\n"
                          : outcome == FailOutcome::kFailed ? "ok failed\n"
                                                            : "err stale\n");
            break;
        }
        case Request::Kind::kMetrics:
            sock.writeAll("ok metrics\n" + metricsText() + "end\n");
            break;
        }
        sock.shutdownWrite();
    } catch (const std::exception &e) {
        try {
            sock.writeAll("err " + oneline(e.what()) + "\n");
        } catch (const std::exception &) {
            // The peer is gone; nothing to report to.
        }
    }
}

} // namespace serve
} // namespace sst
