#include "protocol.hh"

#include <stdexcept>

#include "driver/result_cache.hh"
#include "spec/machine_keys.hh"

namespace sst {
namespace serve {
namespace {

constexpr const char *kEmptyToken = "\\e";

const char *kKindNames[] = {
    "submit", "status", "results",   "cancel", "drain",
    "ping",   "lease",  "heartbeat", "done",   "fail",
    "metrics",
};

std::string
kindNamesJoined()
{
    std::string out;
    for (const char *name : kKindNames) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

/** Strict u64 via the spec module's parser (digits only, no wrap). */
std::uint64_t
tokenU64(const char *what, const std::string &token)
{
    return parseU64Text(what, token);
}

int
tokenPriority(const std::string &token)
{
    // Priorities are small signed integers; reuse the strict parser on
    // the magnitude so "+3"/"1e2" stay rejected.
    const bool neg = !token.empty() && token[0] == '-';
    const std::uint64_t mag =
        tokenU64("priority", neg ? token.substr(1) : token);
    if (mag > 1000000)
        throw std::invalid_argument("priority out of range: " + token);
    const int v = static_cast<int>(mag);
    return neg ? -v : v;
}

void
require(bool cond, const std::string &msg)
{
    if (!cond)
        throw std::invalid_argument(msg);
}

} // namespace

std::string
escapeToken(const std::string &s)
{
    if (s.empty())
        return kEmptyToken;
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case ' ':
            out += "\\s";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            out += c;
        }
    }
    return out;
}

std::string
unescapeToken(const std::string &s)
{
    if (s == kEmptyToken)
        return "";
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\') {
            out += s[i];
            continue;
        }
        require(i + 1 < s.size(), "token ends mid-escape: " + s);
        switch (s[++i]) {
        case '\\':
            out += '\\';
            break;
        case 's':
            out += ' ';
            break;
        case 'n':
            out += '\n';
            break;
        case 'r':
            out += '\r';
            break;
        case 't':
            out += '\t';
            break;
        default:
            throw std::invalid_argument(
                std::string("bad escape '\\") + s[i] + "' in token");
        }
    }
    return out;
}

std::vector<std::string>
splitTokens(const std::string &line)
{
    std::vector<std::string> tokens;
    std::string cur;
    for (const char c : line) {
        if (c == ' ') {
            if (!cur.empty())
                tokens.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        tokens.push_back(cur);
    return tokens;
}

const char *
requestKindName(Request::Kind kind)
{
    return kKindNames[static_cast<std::size_t>(kind)];
}

std::string
serializeRequest(const Request &req)
{
    std::string out = requestKindName(req.kind);
    switch (req.kind) {
    case Request::Kind::kSubmit:
        out += ' ' + escapeToken(req.campaign) + ' ' +
               std::to_string(req.priority) + ' ' +
               escapeToken(req.payload);
        break;
    case Request::Kind::kResults:
        out += ' ' + escapeToken(req.campaign) + ' ' +
               std::string(req.json ? "json" : "csv") + ' ' +
               std::string(req.wait ? "wait" : "nowait");
        break;
    case Request::Kind::kCancel:
        out += ' ' + escapeToken(req.campaign);
        break;
    case Request::Kind::kLease:
        out += ' ' + escapeToken(req.worker);
        break;
    case Request::Kind::kHeartbeat:
        out += ' ' + escapeToken(req.worker) + ' ' +
               std::to_string(req.jobId);
        break;
    case Request::Kind::kDone:
    case Request::Kind::kFail:
        out += ' ' + escapeToken(req.worker) + ' ' +
               std::to_string(req.jobId) + ' ' +
               escapeToken(req.payload);
        break;
    case Request::Kind::kStatus:
    case Request::Kind::kDrain:
    case Request::Kind::kPing:
    case Request::Kind::kMetrics:
        break;
    }
    return out;
}

Request
parseRequest(const std::string &line)
{
    const std::vector<std::string> tokens = splitTokens(line);
    require(!tokens.empty(), "empty request line");

    Request req;
    bool known = false;
    for (std::size_t k = 0; k < std::size(kKindNames); ++k) {
        if (tokens[0] == kKindNames[k]) {
            req.kind = static_cast<Request::Kind>(k);
            known = true;
            break;
        }
    }
    require(known, "unknown request '" + tokens[0] +
                       "'; valid requests: " + kindNamesJoined());

    auto arity = [&](std::size_t n) {
        require(tokens.size() == n,
                std::string(tokens[0]) + " expects " +
                    std::to_string(n - 1) + " argument(s), got " +
                    std::to_string(tokens.size() - 1));
    };

    switch (req.kind) {
    case Request::Kind::kSubmit:
        arity(4);
        req.campaign = unescapeToken(tokens[1]);
        req.priority = tokenPriority(tokens[2]);
        req.payload = unescapeToken(tokens[3]);
        break;
    case Request::Kind::kResults:
        arity(4);
        req.campaign = unescapeToken(tokens[1]);
        require(tokens[2] == "csv" || tokens[2] == "json",
                "results format must be csv or json, got '" +
                    tokens[2] + "'");
        req.json = tokens[2] == "json";
        require(tokens[3] == "wait" || tokens[3] == "nowait",
                "results mode must be wait or nowait, got '" +
                    tokens[3] + "'");
        req.wait = tokens[3] == "wait";
        break;
    case Request::Kind::kCancel:
        arity(2);
        req.campaign = unescapeToken(tokens[1]);
        break;
    case Request::Kind::kLease:
        arity(2);
        req.worker = unescapeToken(tokens[1]);
        break;
    case Request::Kind::kHeartbeat:
        arity(3);
        req.worker = unescapeToken(tokens[1]);
        req.jobId = tokenU64("job id", tokens[2]);
        break;
    case Request::Kind::kDone:
    case Request::Kind::kFail:
        arity(4);
        req.worker = unescapeToken(tokens[1]);
        req.jobId = tokenU64("job id", tokens[2]);
        req.payload = unescapeToken(tokens[3]);
        break;
    case Request::Kind::kStatus:
    case Request::Kind::kDrain:
    case Request::Kind::kPing:
    case Request::Kind::kMetrics:
        arity(1);
        break;
    }
    return req;
}

std::string
encodeJobResult(const JobResult &result)
{
    const char *status = result.status == JobStatus::kOk       ? "ok"
                         : result.status == JobStatus::kCached ? "cached"
                                                               : "failed";
    std::string out = std::string("result-status ") + status + "\n";
    if (!result.error.empty())
        out += "result-error " + escapeToken(result.error) + "\n";
    if (result.ok())
        out += encodeExperimentSummary(result.exp);
    return out;
}

bool
decodeJobResult(const std::string &text, JobResult &out)
{
    std::size_t pos = 0;
    auto nextLine = [&](std::string &line) {
        if (pos >= text.size())
            return false;
        const std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) {
            line = text.substr(pos);
            pos = text.size();
        } else {
            line = text.substr(pos, nl - pos);
            pos = nl + 1;
        }
        return true;
    };

    JobResult res;
    std::string line;
    if (!nextLine(line) || line.rfind("result-status ", 0) != 0)
        return false;
    const std::string status = line.substr(14);
    if (status == "ok")
        res.status = JobStatus::kOk;
    else if (status == "cached")
        res.status = JobStatus::kCached;
    else if (status == "failed")
        res.status = JobStatus::kFailed;
    else
        return false;

    // Peek an optional error line, then hand the remainder (the
    // experiment summary) to the shared cache codec.
    const std::size_t mark = pos;
    if (nextLine(line) && line.rfind("result-error ", 0) == 0) {
        try {
            res.error = unescapeToken(line.substr(13));
        } catch (const std::invalid_argument &) {
            return false;
        }
    } else {
        pos = mark;
    }

    if (res.ok()) {
        if (!decodeExperimentSummary(text.substr(pos), res.exp))
            return false;
    }
    out = std::move(res);
    return true;
}

} // namespace serve
} // namespace sst
