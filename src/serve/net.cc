#include "net.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace sst {
namespace serve {
namespace {

/** Per-line / per-stream cap; a protocol line is at most a few KiB of
 *  escaped spec text, so 16 MiB means "peer is broken", not "big job". */
constexpr std::size_t kMaxStreamBytes = 16ULL << 20;

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

int
parsePort(const std::string &text)
{
    if (text.empty() || text.size() > 5)
        throw std::invalid_argument("bad TCP port '" + text + "'");
    long v = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            throw std::invalid_argument("bad TCP port '" + text + "'");
        v = v * 10 + (c - '0');
    }
    if (v > 65535)
        throw std::invalid_argument("bad TCP port '" + text + "'");
    return static_cast<int>(v);
}

sockaddr_in
tcpAddr(const Endpoint &ep)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(ep.port));
    if (inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1)
        throw std::invalid_argument("bad TCP host '" + ep.host +
                                    "' (numeric IPv4 only)");
    return addr;
}

sockaddr_un
unixAddr(const Endpoint &ep)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.path.size() >= sizeof(addr.sun_path))
        throw std::invalid_argument("socket path too long: " + ep.path);
    std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
    return addr;
}

} // namespace

std::string
Endpoint::text() const
{
    if (tcp)
        return "tcp:" + host + ":" + std::to_string(port);
    return path;
}

Endpoint
parseEndpoint(const std::string &text)
{
    if (text.empty())
        throw std::invalid_argument("empty endpoint");
    Endpoint ep;
    if (text.rfind("tcp:", 0) == 0) {
        ep.tcp = true;
        const std::string rest = text.substr(4);
        const std::size_t colon = rest.rfind(':');
        if (colon == std::string::npos) {
            ep.port = parsePort(rest);
        } else {
            ep.host = rest.substr(0, colon);
            if (ep.host.empty())
                throw std::invalid_argument("empty TCP host in '" + text +
                                            "'");
            ep.port = parsePort(rest.substr(colon + 1));
        }
    } else {
        ep.path = text;
    }
    return ep;
}

Socket::~Socket()
{
    close();
}

Socket::Socket(Socket &&other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_)), pos_(other.pos_)
{
    other.fd_ = -1;
    other.pos_ = 0;
}

Socket &
Socket::operator=(Socket &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        buf_ = std::move(other.buf_);
        pos_ = other.pos_;
        other.fd_ = -1;
        other.pos_ = 0;
    }
    return *this;
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
    pos_ = 0;
}

bool
Socket::readLine(std::string &line)
{
    line.clear();
    for (;;) {
        // Drain buffered bytes first.
        while (pos_ < buf_.size()) {
            const char c = buf_[pos_++];
            if (c == '\n')
                return true;
            line += c;
            if (line.size() > kMaxStreamBytes)
                throw std::runtime_error("protocol line too long");
        }
        buf_.clear();
        pos_ = 0;

        char chunk[4096];
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("read");
        }
        if (n == 0)
            return !line.empty(); // deliver a final unterminated line
        buf_.assign(chunk, static_cast<std::size_t>(n));
    }
}

void
Socket::readAll(std::string &out)
{
    out.append(buf_, pos_, buf_.size() - pos_);
    buf_.clear();
    pos_ = 0;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("read");
        }
        if (n == 0)
            return;
        out.append(chunk, static_cast<std::size_t>(n));
        if (out.size() > kMaxStreamBytes)
            throw std::runtime_error("protocol stream too long");
    }
}

void
Socket::writeAll(const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("write");
        }
        off += static_cast<std::size_t>(n);
    }
}

void
Socket::shutdownWrite()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_WR);
}

Listener::~Listener()
{
    close();
}

Listener::Listener(Listener &&other) noexcept
    : fd_(other.fd_), ownsPath_(other.ownsPath_),
      endpoint_(std::move(other.endpoint_))
{
    other.fd_ = -1;
    other.ownsPath_ = false;
}

Listener &
Listener::operator=(Listener &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        ownsPath_ = other.ownsPath_;
        endpoint_ = std::move(other.endpoint_);
        other.fd_ = -1;
        other.ownsPath_ = false;
    }
    return *this;
}

void
Listener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        // Only unlink a path this listener actually bound: a listenOn
        // that failed because another server lives at the path must
        // not take that server's socket down with it.
        if (ownsPath_ && !endpoint_.tcp && !endpoint_.path.empty())
            ::unlink(endpoint_.path.c_str());
        ownsPath_ = false;
    }
}

Listener
Listener::listenOn(const Endpoint &ep)
{
    Listener l;
    l.endpoint_ = ep;
    if (ep.tcp) {
        l.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (l.fd_ < 0)
            throwErrno("socket");
        const int one = 1;
        ::setsockopt(l.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr = tcpAddr(ep);
        if (::bind(l.fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0)
            throwErrno("bind " + ep.text());
        // Recover the kernel-chosen port for port 0.
        socklen_t len = sizeof(addr);
        if (::getsockname(l.fd_, reinterpret_cast<sockaddr *>(&addr),
                          &len) != 0)
            throwErrno("getsockname");
        l.endpoint_.port = ntohs(addr.sin_port);
    } else {
        l.fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (l.fd_ < 0)
            throwErrno("socket");
        // A stale path from a crashed server blocks bind; connect() to
        // tell a live server from debris, refuse to displace the live
        // one.
        sockaddr_un addr = unixAddr(ep);
        if (::bind(l.fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            if (errno != EADDRINUSE)
                throwErrno("bind " + ep.path);
            const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
            const bool live =
                probe >= 0 &&
                ::connect(probe, reinterpret_cast<sockaddr *>(&addr),
                          sizeof(addr)) == 0;
            if (probe >= 0)
                ::close(probe);
            if (live) {
                throw std::runtime_error("endpoint " + ep.path +
                                         " already has a live server");
            }
            ::unlink(ep.path.c_str());
            if (::bind(l.fd_, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr)) != 0)
                throwErrno("bind " + ep.path);
        }
        l.ownsPath_ = true;
    }
    if (::listen(l.fd_, 64) != 0)
        throwErrno("listen " + ep.text());
    return l;
}

Socket
Listener::accept(int timeoutMs)
{
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, timeoutMs);
    if (rc < 0) {
        if (errno == EINTR)
            return Socket();
        throwErrno("poll");
    }
    if (rc == 0)
        return Socket();
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN)
            return Socket();
        throwErrno("accept");
    }
    return Socket(fd);
}

Socket
connectTo(const Endpoint &ep)
{
    int fd = -1;
    if (ep.tcp) {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            throwErrno("socket");
        sockaddr_in addr = tcpAddr(ep);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            const int err = errno;
            ::close(fd);
            errno = err;
            throwErrno("connect " + ep.text());
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    } else {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            throwErrno("socket");
        sockaddr_un addr = unixAddr(ep);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            const int err = errno;
            ::close(fd);
            errno = err;
            throwErrno("connect " + ep.path);
        }
    }
    return Socket(fd);
}

} // namespace serve
} // namespace sst
