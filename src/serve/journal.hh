/**
 * @file
 * Crash-safe request journal for the experiment service. The server
 * appends one serialized request line per accepted state-changing
 * request (submit, cancel) and fsyncs before acknowledging, so a
 * restarted server replays the journal and reconstructs every campaign
 * it ever accepted; the content-addressed result cache then turns the
 * replayed jobs that already ran into instant cache hits.
 *
 * The journal is append-only text, one protocol request line per
 * record. Replay tolerates a torn final line (a crash mid-append):
 * only lines with their trailing newline are returned.
 */

#ifndef SST_SERVE_JOURNAL_HH
#define SST_SERVE_JOURNAL_HH

#include <mutex>
#include <string>
#include <vector>

namespace sst {
namespace serve {

/** Append-only, fsync-on-append line journal. Thread-safe. */
class Journal
{
  public:
    Journal() = default;

    /** Open (create if missing) @p path for appending. Throws
     *  std::runtime_error on failure. */
    explicit Journal(const std::string &path);
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    bool open() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }

    /**
     * Append @p line (a single record, no embedded newlines — the
     * protocol escapes them) plus '\n', then fsync. Throws
     * std::runtime_error on I/O failure — the caller must not
     * acknowledge a request it failed to journal.
     */
    void append(const std::string &line);

    /**
     * Read every complete record of the journal at @p path. A missing
     * file is an empty journal; a torn trailing line (no newline) is
     * dropped. Throws std::runtime_error on read errors.
     */
    static std::vector<std::string> replay(const std::string &path);

  private:
    std::string path_;
    int fd_ = -1;
    std::mutex mutex_;
};

} // namespace serve
} // namespace sst

#endif // SST_SERVE_JOURNAL_HH
