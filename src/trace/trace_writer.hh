/**
 * @file
 * Trace capture: TraceWriter accumulates the encoded per-thread streams
 * of one run in memory and serializes the versioned container on
 * finish; RecordingSource is the capture shim that wraps any OpSource
 * and appends every op it hands to the simulator. Because the System
 * pulls each op exactly once, wrapping every thread's source records a
 * bit-exact copy of the executed workload.
 */

#ifndef SST_TRACE_TRACE_WRITER_HH
#define SST_TRACE_TRACE_WRITER_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/trace_format.hh"
#include "workload/op_source.hh"

namespace sst {

/**
 * Builds one trace file: meta.nthreads parallel streams (indices
 * 0..nthreads-1) plus one sequential baseline stream per workload
 * group (indices nthreads..nthreads+ngroups-1). The constructor
 * defaults an empty meta.groups to the single homogeneous group.
 */
class TraceWriter
{
  public:
    explicit TraceWriter(trace::TraceMeta meta);

    const trace::TraceMeta &meta() const { return meta_; }

    /** Stream index of group @p group's 1-thread reference program. */
    int
    baselineStream(int group = 0) const
    {
        return meta_.nthreads + group;
    }

    /** Append one op to stream @p stream (in stream order). */
    void append(int stream, const Op &op);

    /** Ops recorded into stream @p stream so far. */
    std::uint64_t opCount(int stream) const;

    /** Serialize the complete container (header + all streams). */
    std::string serialize() const;

    /** Serialize and write to @p path. Throws TraceError on IO failure. */
    void writeFile(const std::string &path) const;

  private:
    trace::TraceMeta meta_;
    std::vector<trace::OpEncoder> streams_;
};

/**
 * Capture shim: forwards an inner op source unchanged while appending
 * every delivered op to a TraceWriter stream. The writer must outlive
 * the source.
 */
class RecordingSource : public OpSource
{
  public:
    RecordingSource(std::unique_ptr<OpSource> inner, TraceWriter &writer,
                    int stream)
        : inner_(std::move(inner)), writer_(writer), stream_(stream)
    {
    }

    Op
    nextOp() override
    {
        const Op op = inner_->nextOp();
        writer_.append(stream_, op);
        return op;
    }

    bool finished() const override { return inner_->finished(); }

  private:
    std::unique_ptr<OpSource> inner_;
    TraceWriter &writer_;
    int stream_;
};

} // namespace sst

#endif // SST_TRACE_TRACE_WRITER_HH
