#include "trace_format.hh"

namespace sst {
namespace trace {

void
putVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out += static_cast<char>((v & 0x7f) | 0x80);
        v >>= 7;
    }
    out += static_cast<char>(v);
}

void
putSvarint(std::string &out, std::int64_t v)
{
    putVarint(out, zigzagBits(static_cast<std::uint64_t>(v)));
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out += static_cast<char>((v >> (8 * i)) & 0xff);
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out += static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint8_t
ByteCursor::getByte()
{
    if (pos >= size)
        throw TraceError("truncated trace: unexpected end of data");
    return data[pos++];
}

std::uint32_t
ByteCursor::getU32()
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(getByte()) << (8 * i);
    return v;
}

std::uint64_t
ByteCursor::getU64()
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(getByte()) << (8 * i);
    return v;
}

std::uint64_t
ByteCursor::getVarint()
{
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
        const std::uint8_t b = getByte();
        // The 10th byte (shift 63) may only contribute bit 63: any
        // higher value bit or a continuation bit would overflow u64.
        if (shift == 63 && (b & 0xfe))
            throw TraceError("malformed trace: varint overflows 64 bits");
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
    }
    throw TraceError("malformed trace: varint longer than 64 bits");
}

std::int64_t
ByteCursor::getSvarint()
{
    return static_cast<std::int64_t>(unzigzagBits(getVarint()));
}

void
OpEncoder::encode(const Op &op)
{
    bytes += static_cast<char>(op.type);
    ++opCount;
    switch (op.type) {
      case OpType::kCompute:
        putVarint(bytes, op.count);
        break;
      case OpType::kLoad:
      case OpType::kStore:
        // Deltas in u64 wraparound arithmetic: defined for any address
        // distance, unlike signed subtraction.
        putVarint(bytes, zigzagBits(op.addr - prevAddr));
        putVarint(bytes, zigzagBits(op.pc - prevPc));
        prevAddr = op.addr;
        prevPc = op.pc;
        break;
      case OpType::kLockAcquire:
      case OpType::kLockRelease:
      case OpType::kBarrier:
        putVarint(bytes, static_cast<std::uint64_t>(op.id));
        break;
      case OpType::kRoiBegin:
        break;
      case OpType::kEnd:
        sawEnd = true;
        break;
    }
}

Op
OpDecoder::decode()
{
    const std::uint8_t tag = cursor.getByte();
    if (tag > static_cast<std::uint8_t>(OpType::kEnd))
        throw TraceError("malformed trace: unknown op tag " +
                         std::to_string(tag));
    Op op;
    op.type = static_cast<OpType>(tag);
    switch (op.type) {
      case OpType::kCompute: {
        const std::uint64_t count = cursor.getVarint();
        if (count > ~std::uint32_t(0))
            throw TraceError("malformed trace: compute count overflow");
        op.count = static_cast<std::uint32_t>(count);
        break;
      }
      case OpType::kLoad:
      case OpType::kStore:
        prevAddr += unzigzagBits(cursor.getVarint());
        prevPc += unzigzagBits(cursor.getVarint());
        op.addr = prevAddr;
        op.pc = prevPc;
        break;
      case OpType::kLockAcquire:
      case OpType::kLockRelease:
      case OpType::kBarrier: {
        const std::uint64_t id = cursor.getVarint();
        if (id > static_cast<std::uint64_t>(~0u >> 1))
            throw TraceError("malformed trace: sync id overflow");
        op.id = static_cast<int>(id);
        break;
      }
      case OpType::kRoiBegin:
      case OpType::kEnd:
        break;
    }
    return op;
}

} // namespace trace
} // namespace sst
