#include "trace_reader.hh"

#include <cstring>
#include <fstream>
#include <sstream>

namespace sst {

namespace {

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw TraceError("cannot open trace file: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad())
        throw TraceError("failed reading trace file: " + path);
    return buf.str();
}

} // namespace

TraceReader::TraceReader(const std::string &path)
    : data_(std::make_shared<const std::string>(readWholeFile(path)))
{
    parse();
}

TraceReader
TraceReader::fromBytes(std::string bytes)
{
    TraceReader reader;
    reader.data_ =
        std::make_shared<const std::string>(std::move(bytes));
    reader.parse();
    return reader;
}

void
TraceReader::parse()
{
    const std::string &data = *data_;
    trace::ByteCursor cur(data.data(), data.size());

    if (cur.remaining() < sizeof(trace::kMagic) ||
        std::memcmp(data.data(), trace::kMagic,
                    sizeof(trace::kMagic)) != 0) {
        throw TraceError("not a trace file: bad magic");
    }
    cur.pos = sizeof(trace::kMagic);

    meta_.version = cur.getU32();
    if (meta_.version < trace::kMinTraceVersion ||
        meta_.version > trace::kTraceVersion) {
        throw TraceError("unsupported trace format version " +
                         std::to_string(meta_.version) + " (expected " +
                         std::to_string(trace::kMinTraceVersion) + ".." +
                         std::to_string(trace::kTraceVersion) + ")");
    }
    const std::uint32_t nthreads = cur.getU32();
    if (nthreads < 1 || nthreads > trace::kMaxThreads) {
        throw TraceError("malformed trace: thread count " +
                         std::to_string(nthreads) + " out of range");
    }
    meta_.nthreads = static_cast<int>(nthreads);
    meta_.profileHash = cur.getU64();
    if (meta_.version >= 2) {
        try {
            meta_.schedPolicy = schedPolicyFromRaw(cur.getU32());
        } catch (const std::invalid_argument &e) {
            throw TraceError(std::string("malformed trace: ") + e.what());
        }
        meta_.schedSeed = cur.getU64();
    } else {
        // v1 predates pluggable scheduling; the hard-wired scheduler
        // was affinity-fifo with no RNG stream.
        meta_.schedPolicy = SchedPolicy::kAffinityFifo;
        meta_.schedSeed = 0;
    }

    const std::uint64_t label_len = cur.getVarint();
    if (label_len > cur.remaining())
        throw TraceError("truncated trace: label overruns the file");
    meta_.label.assign(data, cur.pos, label_len);
    cur.pos += static_cast<std::size_t>(label_len);

    if (meta_.version >= 3) {
        try {
            meta_.role = workloadRoleFromRaw(
                static_cast<std::uint32_t>(cur.getVarint()));
        } catch (const std::invalid_argument &e) {
            throw TraceError(std::string("malformed trace: ") + e.what());
        }
        const std::uint64_t ngroups = cur.getVarint();
        if (ngroups < 1 ||
            ngroups > static_cast<std::uint64_t>(kMaxWorkloadGroups)) {
            throw TraceError("malformed trace: workload group count " +
                             std::to_string(ngroups) + " out of range");
        }
        int group_threads = 0;
        for (std::uint64_t g = 0; g < ngroups; ++g) {
            trace::TraceGroup group;
            const std::uint64_t gthreads = cur.getVarint();
            if (gthreads < 1 || gthreads > trace::kMaxThreads)
                throw TraceError("malformed trace: group thread count " +
                                 std::to_string(gthreads) +
                                 " out of range");
            group.nthreads = static_cast<int>(gthreads);
            group.profileHash = cur.getU64();
            const std::uint64_t glabel_len = cur.getVarint();
            if (glabel_len > cur.remaining())
                throw TraceError(
                    "truncated trace: group label overruns the file");
            group.label.assign(data, cur.pos, glabel_len);
            cur.pos += static_cast<std::size_t>(glabel_len);
            group_threads += group.nthreads;
            meta_.groups.push_back(std::move(group));
        }
        if (group_threads != meta_.nthreads)
            throw TraceError("malformed trace: group thread counts sum "
                             "to " + std::to_string(group_threads) +
                             ", header says " +
                             std::to_string(meta_.nthreads));
        if (meta_.role == WorkloadRole::kReplicated &&
            meta_.groups.size() != 1) {
            throw TraceError("malformed trace: replicated workload with " +
                             std::to_string(meta_.groups.size()) +
                             " groups");
        }
    } else {
        // Pre-workload containers are homogeneous by construction: one
        // replicated group mirroring the top-level fields.
        meta_.role = WorkloadRole::kReplicated;
        meta_.groups.push_back(trace::TraceGroup{
            meta_.nthreads, meta_.profileHash, meta_.label});
    }

    // Stream table: each block is (opCount, byteLength, bytes). Decode
    // every stream completely up front so any truncation or corruption
    // surfaces here as a TraceError, not mid-simulation.
    streams_.resize(static_cast<std::size_t>(meta_.nthreads) +
                    meta_.groups.size());
    for (StreamIndex &s : streams_) {
        s.ops = cur.getVarint();
        const std::uint64_t len = cur.getVarint();
        if (len > cur.remaining())
            throw TraceError("truncated trace: stream overruns the file");
        s.offset = cur.pos;
        s.length = static_cast<std::size_t>(len);
        cur.pos += s.length;

        if (s.ops == 0)
            throw TraceError("malformed trace: empty op stream");
        trace::OpDecoder dec(data.data() + s.offset, s.length);
        for (std::uint64_t i = 0; i < s.ops; ++i) {
            const Op op = dec.decode();
            const bool last = (i + 1 == s.ops);
            if ((op.type == OpType::kEnd) != last) {
                throw TraceError("malformed trace: stream end marker "
                                 "misplaced");
            }
        }
        if (dec.cursor.remaining() != 0)
            throw TraceError("malformed trace: trailing bytes in stream");
    }
    if (cur.remaining() != 0)
        throw TraceError("malformed trace: trailing bytes after streams");
}

std::uint64_t
TraceReader::opCount(int stream) const
{
    if (stream < 0 || stream >= nstreams())
        throw TraceError("stream index out of range");
    return streams_[static_cast<std::size_t>(stream)].ops;
}

std::uint64_t
TraceReader::streamBytes(int stream) const
{
    if (stream < 0 || stream >= nstreams())
        throw TraceError("stream index out of range");
    return streams_[static_cast<std::size_t>(stream)].length;
}

std::unique_ptr<OpSource>
TraceReader::sourceFor(int stream) const
{
    const StreamIndex &s = streams_[static_cast<std::size_t>(stream)];
    return std::make_unique<TraceProgram>(data_, s.offset, s.length,
                                          s.ops);
}

std::unique_ptr<OpSource>
TraceReader::parallelSource(ThreadId tid) const
{
    if (tid < 0 || tid >= meta_.nthreads) {
        throw TraceError(
            "trace replay thread " + std::to_string(tid) +
            " out of range: trace was recorded with " +
            std::to_string(meta_.nthreads) + " threads");
    }
    return sourceFor(tid);
}

std::unique_ptr<OpSource>
TraceReader::baselineSource(int group) const
{
    if (group < 0 || group >= ngroups()) {
        throw TraceError(
            "trace baseline group " + std::to_string(group) +
            " out of range: trace has " + std::to_string(ngroups()) +
            " program groups");
    }
    return sourceFor(meta_.nthreads + group);
}

void
TraceReader::requireCompatible(std::uint64_t profile_hash, int nthreads,
                               SchedPolicy policy,
                               std::uint64_t sched_seed) const
{
    if (meta_.groups.size() != 1) {
        throw TraceError(
            "trace workload mismatch: trace '" + meta_.label +
            "' records a " + std::string(workloadRoleName(meta_.role)) +
            " of " + std::to_string(meta_.groups.size()) +
            " programs, replay requested a single profile");
    }
    if (nthreads != meta_.nthreads) {
        throw TraceError(
            "trace thread-count mismatch: trace '" + meta_.label +
            "' was recorded with " + std::to_string(meta_.nthreads) +
            " threads, replay requested " + std::to_string(nthreads));
    }
    if (profile_hash != meta_.profileHash) {
        throw TraceError(
            "trace profile mismatch: trace '" + meta_.label +
            "' was recorded from a different profile "
            "(stale trace? re-record it)");
    }
    requireSchedPolicy(policy);
    if (meta_.schedPolicy == SchedPolicy::kRandom &&
        sched_seed != meta_.schedSeed) {
        // Deterministic policies ignore the seed, so only random
        // recordings are seed-specific.
        throw TraceError(
            "trace scheduler-seed mismatch: trace '" + meta_.label +
            "' was recorded with --sched-seed " +
            std::to_string(meta_.schedSeed) + ", replay requested " +
            std::to_string(sched_seed) + " (re-record the trace)");
    }
}

void
TraceReader::requireCompatibleWorkload(
    WorkloadRole role, const std::vector<trace::TraceGroup> &groups,
    SchedPolicy policy, std::uint64_t sched_seed) const
{
    if (role != meta_.role) {
        throw TraceError(
            "trace workload-role mismatch: trace '" + meta_.label +
            "' records a " + std::string(workloadRoleName(meta_.role)) +
            " workload, replay requested " +
            std::string(workloadRoleName(role)));
    }
    if (groups.size() != meta_.groups.size()) {
        throw TraceError(
            "trace workload mismatch: trace '" + meta_.label +
            "' records " + std::to_string(meta_.groups.size()) +
            " program groups, replay requested " +
            std::to_string(groups.size()));
    }
    for (std::size_t g = 0; g < groups.size(); ++g) {
        const trace::TraceGroup &want = groups[g];
        const trace::TraceGroup &have = meta_.groups[g];
        if (want.nthreads != have.nthreads) {
            throw TraceError(
                "trace thread-count mismatch in group " +
                std::to_string(g) + " ('" + have.label +
                "'): trace was recorded with " +
                std::to_string(have.nthreads) + " threads, replay "
                "requested " + std::to_string(want.nthreads));
        }
        if (want.profileHash != have.profileHash) {
            throw TraceError(
                "trace per-thread-profile mismatch in group " +
                std::to_string(g) + ": trace '" + meta_.label +
                "' recorded '" + have.label +
                "' from a different profile than the requested '" +
                want.label + "' (stale trace? re-record it)");
        }
    }
    requireSchedPolicy(policy);
    if (meta_.schedPolicy == SchedPolicy::kRandom &&
        sched_seed != meta_.schedSeed) {
        throw TraceError(
            "trace scheduler-seed mismatch: trace '" + meta_.label +
            "' was recorded with --sched-seed " +
            std::to_string(meta_.schedSeed) + ", replay requested " +
            std::to_string(sched_seed) + " (re-record the trace)");
    }
}

void
TraceReader::requireSchedPolicy(SchedPolicy policy) const
{
    if (policy != meta_.schedPolicy) {
        throw TraceError(
            std::string("trace scheduler-policy mismatch: trace '") +
            meta_.label + "' was recorded under --sched " +
            schedPolicyLabel(meta_.schedPolicy) +
            ", replay requested --sched " + schedPolicyLabel(policy) +
            " (re-record the trace or drop the flag)");
    }
}

TraceProgram::TraceProgram(std::shared_ptr<const std::string> data,
                           std::size_t offset, std::size_t length,
                           std::uint64_t ops)
    : data_(std::move(data)),
      decoder_(data_->data() + offset, length), opsLeft_(ops)
{
}

Op
TraceProgram::nextOp()
{
    if (finished_)
        return Op::end();
    // parse() verified the stream decodes cleanly and ends in kEnd, so
    // these throws are unreachable for a reader-produced program; they
    // guard hand-constructed instances.
    if (opsLeft_ == 0)
        throw TraceError("trace stream exhausted without end marker");
    const Op op = decoder_.decode();
    --opsLeft_;
    if (op.type == OpType::kEnd)
        finished_ = true;
    return op;
}

} // namespace sst
