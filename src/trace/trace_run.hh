/**
 * @file
 * High-level trace workflows tying the capture/replay primitives to the
 * experiment machinery: record a profile's speedup experiment while
 * writing the trace (live results come for free), replay a recorded
 * trace into a bit-identical experiment without constructing a single
 * ThreadProgram, and the canonical trace-directory naming the driver's
 * `--trace-dir` mode uses to find recordings.
 */

#ifndef SST_TRACE_TRACE_RUN_HH
#define SST_TRACE_TRACE_RUN_HH

#include <string>

#include "core/experiment.hh"
#include "sim/params.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_writer.hh"
#include "workload/profile.hh"

namespace sst {

/**
 * Content hash identifying the workload a trace captures: FNV-1a over
 * the canonical profile serialization (the driver fingerprint encoding,
 * so every op-stream-relevant knob participates).
 */
std::uint64_t traceProfileHash(const BenchmarkProfile &profile);

/**
 * Canonical path of @p profile's @p nthreads-thread trace in @p dir.
 * A nonzero replication stream (@p seed_offset, see JobSpec) gets its
 * own `_sK` suffix, a non-default scheduler policy a `_<policy>`
 * suffix, and a random-policy RNG stream a further `_ssK` suffix — so
 * recordings of different configurations coexist instead of silently
 * overwriting each other, and a sweep at a different configuration
 * falls back to live generation instead of tripping over the wrong
 * recording. Default-configuration names are unchanged.
 */
std::string tracePathFor(const std::string &dir,
                         const BenchmarkProfile &profile, int nthreads,
                         std::uint64_t seed_offset = 0,
                         SchedPolicy policy = SchedPolicy::kAffinityFifo,
                         std::uint64_t sched_seed = 0);

/**
 * Run the full speedup experiment (1-thread baseline + @p nthreads-run)
 * while recording both op streams, and write the trace container to
 * @p path. Returns the live experiment — identical to what
 * runSpeedupExperiment() produces, since the capture shim is
 * transparent. Throws TraceError (not an assert) on an out-of-range
 * thread count or an unwritable path.
 *
 * @param[out] ops_recorded total ops across all streams when non-null
 */
SpeedupExperiment recordSpeedupTrace(const SimParams &params,
                                     const BenchmarkProfile &profile,
                                     int nthreads,
                                     const std::string &path,
                                     std::uint64_t *ops_recorded = nullptr);

/** Replay the parallel run of @p reader (cores pinned like simulate()). */
RunResult replayParallel(const SimParams &params,
                         const TraceReader &reader);

/** Replay the sequential reference run of @p reader. */
RunResult replayBaseline(const SimParams &params,
                         const TraceReader &reader);

/**
 * Re-simulate both recorded runs of the trace at @p path and assemble
 * the speedup experiment. The scheduler policy recorded in the trace
 * header overrides @p params.schedPolicy (recorded stacks only
 * reproduce under the schedule they were captured with). Bit-identical
 * to the experiment measured at record time when @p params matches; no
 * workload generation happens on this path.
 */
SpeedupExperiment replaySpeedupTrace(const SimParams &params,
                                     const std::string &path);

/** As above, over an already-opened reader (saves a re-parse). */
SpeedupExperiment replaySpeedupTrace(const SimParams &params,
                                     const TraceReader &reader);

} // namespace sst

#endif // SST_TRACE_TRACE_RUN_HH
