/**
 * @file
 * High-level trace workflows tying the capture/replay primitives to the
 * experiment machinery: record a profile's speedup experiment while
 * writing the trace (live results come for free), replay a recorded
 * trace into a bit-identical experiment without constructing a single
 * ThreadProgram, and the canonical trace-directory naming the driver's
 * `--trace-dir` mode uses to find recordings.
 */

#ifndef SST_TRACE_TRACE_RUN_HH
#define SST_TRACE_TRACE_RUN_HH

#include <string>

#include "core/experiment.hh"
#include "sim/params.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_writer.hh"
#include "workload/profile.hh"
#include "workload/workload_spec.hh"

namespace sst {

/**
 * Content hash identifying the workload a trace captures: FNV-1a over
 * the canonical profile serialization (the driver fingerprint encoding,
 * so every op-stream-relevant knob participates).
 */
std::uint64_t traceProfileHash(const BenchmarkProfile &profile);

/**
 * Content hash of a whole workload. Equals traceProfileHash() of the
 * single profile for homogeneous specs; heterogeneous specs fold the
 * role and every group's thread count + profile encoding.
 */
std::uint64_t traceWorkloadHash(const WorkloadSpec &workload);

/** Per-group trace identities of @p workload (header / compat check). */
std::vector<trace::TraceGroup> traceGroupsOf(const WorkloadSpec &workload);

/** Trace header describing @p workload recorded under @p params. */
trace::TraceMeta traceMetaFor(const WorkloadSpec &workload,
                              const SimParams &params);

/**
 * Canonical path of @p profile's @p nthreads-thread trace in @p dir.
 * A nonzero replication stream (@p seed_offset, see JobSpec) gets its
 * own `_sK` suffix, a non-default scheduler policy a `_<policy>`
 * suffix, and a random-policy RNG stream a further `_ssK` suffix — so
 * recordings of different configurations coexist instead of silently
 * overwriting each other, and a sweep at a different configuration
 * falls back to live generation instead of tripping over the wrong
 * recording. Default-configuration names are unchanged.
 */
std::string tracePathFor(const std::string &dir,
                         const BenchmarkProfile &profile, int nthreads,
                         std::uint64_t seed_offset = 0,
                         SchedPolicy policy = SchedPolicy::kAffinityFifo,
                         std::uint64_t sched_seed = 0);

/**
 * As above for a whole workload: homogeneous specs keep the historical
 * profile naming; heterogeneous specs name the file by the workload
 * label ("a:8+b:8_t16.sstt").
 */
std::string tracePathFor(const std::string &dir,
                         const WorkloadSpec &workload,
                         std::uint64_t seed_offset = 0,
                         SchedPolicy policy = SchedPolicy::kAffinityFifo,
                         std::uint64_t sched_seed = 0);

/**
 * Append group @p group's 1-thread sequential reference program to
 * @p writer's corresponding baseline stream by pure generation — an op
 * stream is a deterministic function of its profile, so no simulation
 * is needed and the bytes equal what a recorded live baseline run
 * would capture. This is how `sweep --record-dir` fills baseline
 * streams without re-running baselines every job.
 */
void appendGeneratedBaseline(TraceWriter &writer,
                             const BenchmarkProfile &profile, int group);

/**
 * Workload-aware form: profile-backed groups enumerate exactly as the
 * profile overload; WDL-backed groups enumerate the sequential program
 * compiled from the workload's IR.
 */
void appendGeneratedBaseline(TraceWriter &writer,
                             const WorkloadSpec &workload, int group);

/**
 * Run the full speedup experiment (1-thread baseline + @p nthreads-run)
 * while recording both op streams, and write the trace container to
 * @p path. Returns the live experiment — identical to what
 * runSpeedupExperiment() produces, since the capture shim is
 * transparent. Throws TraceError (not an assert) on an out-of-range
 * thread count or an unwritable path.
 *
 * @param[out] ops_recorded total ops across all streams when non-null
 */
SpeedupExperiment recordSpeedupTrace(const SimParams &params,
                                     const BenchmarkProfile &profile,
                                     int nthreads,
                                     const std::string &path,
                                     std::uint64_t *ops_recorded = nullptr);

/**
 * As above for a whole workload: per-group 1-thread reference runs
 * (each recorded into its baseline stream) plus the co-scheduled
 * parallel run, all captured into one container at @p path.
 */
SpeedupExperiment recordSpeedupTrace(const SimParams &params,
                                     const WorkloadSpec &workload,
                                     const std::string &path,
                                     std::uint64_t *ops_recorded = nullptr);

/** Replay the parallel run of @p reader (cores pinned like simulate();
 *  the recorded workload's barrier quorums and affinity hints are
 *  reconstructed from the header's group table). */
RunResult replayParallel(const SimParams &params,
                         const TraceReader &reader);

/** Replay group @p group's sequential reference run of @p reader. */
RunResult replayBaseline(const SimParams &params,
                         const TraceReader &reader, int group = 0);

/**
 * Re-simulate both recorded runs of the trace at @p path and assemble
 * the speedup experiment. The scheduler policy recorded in the trace
 * header overrides @p params.schedPolicy (recorded stacks only
 * reproduce under the schedule they were captured with). Bit-identical
 * to the experiment measured at record time when @p params matches; no
 * workload generation happens on this path.
 */
SpeedupExperiment replaySpeedupTrace(const SimParams &params,
                                     const std::string &path);

/** As above, over an already-opened reader (saves a re-parse). */
SpeedupExperiment replaySpeedupTrace(const SimParams &params,
                                     const TraceReader &reader);

} // namespace sst

#endif // SST_TRACE_TRACE_RUN_HH
