#include "trace_run.hh"

#include <cstdio>
#include <fstream>

#include "cache/hierarchy.hh"
#include "driver/fingerprint.hh"
#include "sim/system.hh"
#include "wdl/wdl.hh"
#include "workload/thread_program.hh"

namespace sst {

namespace {

/**
 * Content hash of one WDL group's op streams: the compiled IR plus the
 * group index and effective seed (the inputs the compiler draws from).
 * Replay compatibility checks compare these, so editing the file or
 * reseeding a group invalidates its recordings like a profile edit
 * would.
 */
std::uint64_t
wdlGroupHash(const WorkloadSpec &workload, std::size_t group)
{
    std::string canonical = workload.wdlProgram->canonicalText();
    canonical += "group=" + std::to_string(group) + '\n';
    canonical +=
        "seed=" + std::to_string(workload.groups[group].profile.seed) + '\n';
    return fnv1a64(canonical);
}

} // namespace

std::uint64_t
traceProfileHash(const BenchmarkProfile &profile)
{
    std::string canonical;
    encodeProfile(canonical, profile);
    return fnv1a64(canonical);
}

std::uint64_t
traceWorkloadHash(const WorkloadSpec &workload)
{
    if (workload.wdlProgram) {
        std::string canonical;
        canonical += "workload.role=";
        canonical += workloadRoleName(workload.role);
        canonical += '\n';
        for (std::size_t g = 0; g < workload.groups.size(); ++g) {
            canonical += "workload.group=" + std::to_string(g) + '\n';
            canonical += "group.nthreads=" +
                         std::to_string(workload.groups[g].nthreads) + '\n';
            canonical += "group.seed=" +
                         std::to_string(workload.groups[g].profile.seed) +
                         '\n';
        }
        canonical += workload.wdlProgram->canonicalText();
        return fnv1a64(canonical);
    }
    if (workload.isHomogeneous())
        return traceProfileHash(workload.groups[0].profile);
    std::string canonical;
    canonical += "workload.role=";
    canonical += workloadRoleName(workload.role);
    canonical += '\n';
    for (std::size_t g = 0; g < workload.groups.size(); ++g) {
        canonical += "workload.group=" + std::to_string(g) + '\n';
        canonical += "group.nthreads=" +
                     std::to_string(workload.groups[g].nthreads) + '\n';
        encodeProfile(canonical, workload.groups[g].profile);
    }
    return fnv1a64(canonical);
}

std::vector<trace::TraceGroup>
traceGroupsOf(const WorkloadSpec &workload)
{
    std::vector<trace::TraceGroup> groups;
    groups.reserve(workload.groups.size());
    for (std::size_t g = 0; g < workload.groups.size(); ++g) {
        const WorkloadGroup &wg = workload.groups[g];
        // WDL group labels come from the file (the group names); their
        // hashes cover the compiled IR instead of the placeholder
        // profile knobs.
        groups.push_back(trace::TraceGroup{
            wg.nthreads,
            workload.wdlProgram ? wdlGroupHash(workload, g)
                                : traceProfileHash(wg.profile),
            wg.profile.label()});
    }
    return groups;
}

trace::TraceMeta
traceMetaFor(const WorkloadSpec &workload, const SimParams &params)
{
    trace::TraceMeta meta;
    meta.nthreads = workload.nthreads();
    meta.profileHash = traceWorkloadHash(workload);
    meta.schedPolicy = params.schedPolicy;
    meta.schedSeed =
        canonicalSchedSeed(params.schedPolicy, params.schedSeed);
    meta.label = workload.label();
    meta.role = workload.role;
    meta.groups = traceGroupsOf(workload);
    return meta;
}

std::string
tracePathFor(const std::string &dir, const BenchmarkProfile &profile,
             int nthreads, std::uint64_t seed_offset, SchedPolicy policy,
             std::uint64_t sched_seed)
{
    std::string path = dir;
    if (!path.empty() && path.back() != '/')
        path += '/';
    path += profile.label();
    path += "_t";
    path += std::to_string(nthreads);
    if (seed_offset != 0) {
        path += "_s";
        path += std::to_string(seed_offset);
    }
    if (policy != SchedPolicy::kAffinityFifo) {
        path += '_';
        path += schedPolicyLabel(policy);
        // The RNG stream only shapes random schedules; deterministic
        // policies share one recording regardless of the seed field.
        if (canonicalSchedSeed(policy, sched_seed) != 0) {
            path += "_ss";
            path += std::to_string(sched_seed);
        }
    }
    path += trace::kFileSuffix;
    return path;
}

std::string
tracePathFor(const std::string &dir, const WorkloadSpec &workload,
             std::uint64_t seed_offset, SchedPolicy policy,
             std::uint64_t sched_seed)
{
    if (!workload.wdlProgram && workload.isHomogeneous()) {
        return tracePathFor(dir, workload.groups[0].profile,
                            workload.nthreads(), seed_offset, policy,
                            sched_seed);
    }
    std::string path = dir;
    if (!path.empty() && path.back() != '/')
        path += '/';
    std::string label = workload.label();
    if (workload.wdlProgram) {
        // Two different .wdl files may share a workload name; suffix a
        // short content hash so their recordings never collide.
        char hash[12];
        std::snprintf(hash, sizeof(hash), "_%08x",
                      static_cast<unsigned>(workload.wdlProgram->irHash() &
                                            0xffffffffu));
        label += hash;
    }
    for (char &c : label)
        if (c == '/')
            c = '_';
    path += label;
    path += "_t";
    path += std::to_string(workload.nthreads());
    if (seed_offset != 0) {
        path += "_s";
        path += std::to_string(seed_offset);
    }
    if (policy != SchedPolicy::kAffinityFifo) {
        path += '_';
        path += schedPolicyLabel(policy);
        if (canonicalSchedSeed(policy, sched_seed) != 0) {
            path += "_ss";
            path += std::to_string(sched_seed);
        }
    }
    path += trace::kFileSuffix;
    return path;
}

void
appendGeneratedBaseline(TraceWriter &writer,
                        const BenchmarkProfile &profile, int group)
{
    // The 1-thread stream is a pure function of the profile: enumerate
    // it directly. The bytes equal a RecordingSource capture of a live
    // baseline run, because the simulator pulls each op exactly once.
    ThreadProgram program(profile, 0, 1);
    const int stream = writer.baselineStream(group);
    for (;;) {
        const Op op = program.nextOp();
        writer.append(stream, op);
        if (op.type == OpType::kEnd)
            return;
    }
}

void
appendGeneratedBaseline(TraceWriter &writer, const WorkloadSpec &workload,
                        int group)
{
    if (!workload.wdlProgram) {
        appendGeneratedBaseline(
            writer,
            workload.groups[static_cast<std::size_t>(group)].profile, group);
        return;
    }
    // Same enumeration, driven by the sequential WDL interpreter.
    const std::unique_ptr<OpSource> source =
        workloadGroupBaselineSources(workload, group)(0, 1);
    const int stream = writer.baselineStream(group);
    for (;;) {
        const Op op = source->nextOp();
        writer.append(stream, op);
        if (op.type == OpType::kEnd)
            return;
    }
}

SpeedupExperiment
recordSpeedupTrace(const SimParams &params,
                   const BenchmarkProfile &profile, int nthreads,
                   const std::string &path, std::uint64_t *ops_recorded)
{
    return recordSpeedupTrace(
        params, WorkloadSpec::homogeneous(profile, nthreads), path,
        ops_recorded);
}

SpeedupExperiment
recordSpeedupTrace(const SimParams &params, const WorkloadSpec &workload,
                   const std::string &path, std::uint64_t *ops_recorded)
{
    workload.validate();
    const int nthreads = workload.nthreads();
    if (nthreads < 1 || nthreads > static_cast<int>(trace::kMaxThreads)) {
        throw TraceError("cannot record a trace with " +
                         std::to_string(nthreads) +
                         " threads (format limit " +
                         std::to_string(trace::kMaxThreads) + ")");
    }
    // Probe the output path up front: an unwritable destination should
    // fail in milliseconds, not after the simulations have run. Probe
    // the temp name writeFile() publishes through, so a never-completed
    // recording leaves no file at the final path.
    {
        const std::string tmp = path + ".tmp";
        std::ofstream probe(tmp, std::ios::binary | std::ios::app);
        if (!probe)
            throw TraceError("cannot open trace file for writing: " +
                             tmp);
    }
    TraceWriter writer(traceMetaFor(workload, params));

    // All runs execute exactly as in runMixExperiment(); the recording
    // shim forwards every op unchanged, so the returned experiment is
    // the live result, not an approximation of it. Each group's
    // 1-thread reference run records into its own baseline stream.
    std::vector<RunResult> bases;
    bases.reserve(workload.groups.size());
    for (std::size_t g = 0; g < workload.groups.size(); ++g) {
        const OpSourceFactory base =
            workloadGroupBaselineSources(workload, static_cast<int>(g));
        const int stream = writer.baselineStream(static_cast<int>(g));
        bases.push_back(simulateSources(
            params,
            [&](ThreadId tid, int n) -> std::unique_ptr<OpSource> {
                return std::make_unique<RecordingSource>(base(tid, n),
                                                         writer, stream);
            },
            1));
    }

    const OpSourceFactory inner = workloadOpSources(workload);
    const ThreadTopology topo = workload.topology(nthreads);
    RunResult parallel = simulateSources(
        params,
        [&](ThreadId tid, int n) -> std::unique_ptr<OpSource> {
            return std::make_unique<RecordingSource>(inner(tid, n),
                                                     writer, tid);
        },
        nthreads, 0, &topo);

    writer.writeFile(path);
    if (ops_recorded) {
        *ops_recorded = 0;
        for (int s = 0; s < nthreads + workload.ngroups(); ++s)
            *ops_recorded += writer.opCount(s);
    }
    return assembleExperiment(workload.label(), nthreads, params,
                              combineGroupBaselines(bases),
                              std::move(parallel));
}

RunResult
replayParallel(const SimParams &params, const TraceReader &reader)
{
    // The container format allows up to trace::kMaxThreads streams, but
    // the simulator pins ncores to nthreads and caps the machine size:
    // fail with a clean TraceError instead of the constructor's panic.
    if (reader.meta().nthreads > kMaxSimCores) {
        throw TraceError(
            "trace '" + reader.meta().label + "' has " +
            std::to_string(reader.meta().nthreads) +
            " threads, exceeding the " + std::to_string(kMaxSimCores) +
            "-core simulator limit");
    }
    // Rebuild the recorded workload's topology (barrier quorums,
    // affinity hints) from the header's group table: replayed mixes
    // and pipelines schedule exactly like their live runs.
    std::vector<int> sizes;
    sizes.reserve(reader.meta().groups.size());
    for (const trace::TraceGroup &g : reader.meta().groups)
        sizes.push_back(g.nthreads);
    const ThreadTopology topo =
        topologyFor(reader.meta().role, sizes, reader.meta().nthreads);
    return simulateSources(
        params,
        [&reader](ThreadId tid, int) { return reader.parallelSource(tid); },
        reader.meta().nthreads, 0, &topo);
}

RunResult
replayBaseline(const SimParams &params, const TraceReader &reader,
               int group)
{
    return simulateSources(
        params,
        [&reader, group](ThreadId, int) {
            return reader.baselineSource(group);
        },
        1);
}

SpeedupExperiment
replaySpeedupTrace(const SimParams &params, const std::string &path)
{
    const TraceReader reader(path);
    return replaySpeedupTrace(params, reader);
}

SpeedupExperiment
replaySpeedupTrace(const SimParams &params, const TraceReader &reader)
{
    // Re-simulate under the recorded scheduler policy and RNG stream:
    // the recorded stacks only reproduce bit for bit under the schedule
    // they were captured with. Callers that demand a specific policy
    // check the header first (requireCompatible / trace's --sched).
    SimParams p = params;
    p.schedPolicy = reader.meta().schedPolicy;
    p.schedSeed = reader.meta().schedSeed;
    std::vector<RunResult> bases;
    bases.reserve(reader.meta().groups.size());
    for (int g = 0; g < reader.ngroups(); ++g)
        bases.push_back(replayBaseline(p, reader, g));
    return assembleExperiment(reader.meta().label, reader.meta().nthreads,
                              p, combineGroupBaselines(bases),
                              replayParallel(p, reader));
}

} // namespace sst
