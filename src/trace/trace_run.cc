#include "trace_run.hh"

#include <fstream>

#include "cache/hierarchy.hh"
#include "driver/fingerprint.hh"
#include "sim/system.hh"
#include "workload/thread_program.hh"

namespace sst {

std::uint64_t
traceProfileHash(const BenchmarkProfile &profile)
{
    std::string canonical;
    encodeProfile(canonical, profile);
    return fnv1a64(canonical);
}

std::string
tracePathFor(const std::string &dir, const BenchmarkProfile &profile,
             int nthreads, std::uint64_t seed_offset, SchedPolicy policy,
             std::uint64_t sched_seed)
{
    std::string path = dir;
    if (!path.empty() && path.back() != '/')
        path += '/';
    path += profile.label();
    path += "_t";
    path += std::to_string(nthreads);
    if (seed_offset != 0) {
        path += "_s";
        path += std::to_string(seed_offset);
    }
    if (policy != SchedPolicy::kAffinityFifo) {
        path += '_';
        path += schedPolicyLabel(policy);
        // The RNG stream only shapes random schedules; deterministic
        // policies share one recording regardless of the seed field.
        if (canonicalSchedSeed(policy, sched_seed) != 0) {
            path += "_ss";
            path += std::to_string(sched_seed);
        }
    }
    path += trace::kFileSuffix;
    return path;
}

SpeedupExperiment
recordSpeedupTrace(const SimParams &params,
                   const BenchmarkProfile &profile, int nthreads,
                   const std::string &path, std::uint64_t *ops_recorded)
{
    if (nthreads < 1 || nthreads > static_cast<int>(trace::kMaxThreads)) {
        throw TraceError("cannot record a trace with " +
                         std::to_string(nthreads) +
                         " threads (format limit " +
                         std::to_string(trace::kMaxThreads) + ")");
    }
    // Probe the output path up front: an unwritable destination should
    // fail in milliseconds, not after both simulations have run. Probe
    // the temp name writeFile() publishes through, so a never-completed
    // recording leaves no file at the final path.
    {
        const std::string tmp = path + ".tmp";
        std::ofstream probe(tmp, std::ios::binary | std::ios::app);
        if (!probe)
            throw TraceError("cannot open trace file for writing: " +
                             tmp);
    }
    trace::TraceMeta meta;
    meta.nthreads = nthreads;
    meta.profileHash = traceProfileHash(profile);
    meta.schedPolicy = params.schedPolicy;
    // Only random schedules depend on the RNG stream; canonicalize so
    // equal-outcome recordings compare equal.
    meta.schedSeed =
        canonicalSchedSeed(params.schedPolicy, params.schedSeed);
    meta.label = profile.label();
    TraceWriter writer(std::move(meta));

    // Both runs execute exactly as in runSpeedupExperiment(); the
    // recording shim forwards every op unchanged, so the returned
    // experiment is the live result, not an approximation of it.
    const int baseline_stream = writer.baselineStream();
    const RunResult baseline = simulateSources(
        params,
        [&](ThreadId tid, int n) -> std::unique_ptr<OpSource> {
            return std::make_unique<RecordingSource>(
                std::make_unique<ThreadProgram>(profile, tid, n), writer,
                baseline_stream);
        },
        1);
    RunResult parallel = simulateSources(
        params,
        [&](ThreadId tid, int n) -> std::unique_ptr<OpSource> {
            return std::make_unique<RecordingSource>(
                std::make_unique<ThreadProgram>(profile, tid, n), writer,
                tid);
        },
        nthreads);

    writer.writeFile(path);
    if (ops_recorded) {
        *ops_recorded = 0;
        for (int s = 0; s <= nthreads; ++s)
            *ops_recorded += writer.opCount(s);
    }
    return assembleExperiment(profile.label(), nthreads, params, baseline,
                              std::move(parallel));
}

RunResult
replayParallel(const SimParams &params, const TraceReader &reader)
{
    // The container format allows up to trace::kMaxThreads streams, but
    // the simulator pins ncores to nthreads and caps the machine size:
    // fail with a clean TraceError instead of the constructor's panic.
    if (reader.meta().nthreads > kMaxSimCores) {
        throw TraceError(
            "trace '" + reader.meta().label + "' has " +
            std::to_string(reader.meta().nthreads) +
            " threads, exceeding the " + std::to_string(kMaxSimCores) +
            "-core simulator limit");
    }
    return simulateSources(
        params,
        [&reader](ThreadId tid, int) { return reader.parallelSource(tid); },
        reader.meta().nthreads);
}

RunResult
replayBaseline(const SimParams &params, const TraceReader &reader)
{
    return simulateSources(
        params, [&reader](ThreadId, int) { return reader.baselineSource(); },
        1);
}

SpeedupExperiment
replaySpeedupTrace(const SimParams &params, const std::string &path)
{
    const TraceReader reader(path);
    return replaySpeedupTrace(params, reader);
}

SpeedupExperiment
replaySpeedupTrace(const SimParams &params, const TraceReader &reader)
{
    // Re-simulate under the recorded scheduler policy and RNG stream:
    // the recorded stacks only reproduce bit for bit under the schedule
    // they were captured with. Callers that demand a specific policy
    // check the header first (requireCompatible / trace's --sched).
    SimParams p = params;
    p.schedPolicy = reader.meta().schedPolicy;
    p.schedSeed = reader.meta().schedSeed;
    return assembleExperiment(reader.meta().label, reader.meta().nthreads,
                              p, replayBaseline(p, reader),
                              replayParallel(p, reader));
}

} // namespace sst
