/**
 * @file
 * Trace replay: TraceReader parses and validates a recorded trace
 * container (header, stream table, and a full decode pass over every
 * stream, so truncation or corruption fails at open time with a clean
 * TraceError); TraceProgram is the OpSource replay frontend that feeds
 * a recorded stream back into the simulator — no ThreadProgram, no
 * workload generation, just byte decoding on the hot path.
 */

#ifndef SST_TRACE_TRACE_READER_HH
#define SST_TRACE_TRACE_READER_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/trace_format.hh"
#include "workload/op_source.hh"

namespace sst {

/** Parsed, validated trace container. Cheap to copy (shares the data). */
class TraceReader
{
  public:
    /** Parse @p path. Throws TraceError on IO error or malformed data. */
    explicit TraceReader(const std::string &path);

    /** Parse an in-memory image (tests, future network transports). */
    static TraceReader fromBytes(std::string bytes);

    const trace::TraceMeta &meta() const { return meta_; }

    /** Streams in the file: nthreads parallel + ngroups baselines. */
    int nstreams() const { return static_cast<int>(streams_.size()); }

    /** Program groups of the recorded workload (1 for v1/v2 files). */
    int ngroups() const { return static_cast<int>(meta_.groups.size()); }

    std::uint64_t opCount(int stream) const;
    std::uint64_t streamBytes(int stream) const;

    /**
     * Replay source for parallel-run thread @p tid. Throws TraceError
     * when @p tid is outside the recorded thread count.
     */
    std::unique_ptr<OpSource> parallelSource(ThreadId tid) const;

    /** Replay source for group @p group's sequential reference
     *  program. Throws TraceError on an out-of-range group. */
    std::unique_ptr<OpSource> baselineSource(int group = 0) const;

    /**
     * Validate that this trace can stand in for a live run of
     * @p nthreads threads of the profile hashed as @p profile_hash
     * under scheduler @p policy with RNG stream @p sched_seed — the
     * homogeneous check (also rejects multi-group recordings). Throws
     * TraceError naming the mismatched axis.
     */
    void requireCompatible(std::uint64_t profile_hash, int nthreads,
                           SchedPolicy policy,
                           std::uint64_t sched_seed) const;

    /**
     * Validate that this trace records exactly the workload described
     * by @p role and the expected @p groups (per-group thread counts
     * and profile fingerprints, in order) under @p policy /
     * @p sched_seed. Throws TraceError naming the first mismatched
     * group and axis — a recording of different per-thread profiles
     * never silently replays.
     */
    void requireCompatibleWorkload(WorkloadRole role,
                                   const std::vector<trace::TraceGroup> &groups,
                                   SchedPolicy policy,
                                   std::uint64_t sched_seed) const;

    /**
     * Validate only the scheduler-policy axis (the trace CLI's
     * `replay --sched` check, where profile/thread identity comes from
     * the file itself). Throws TraceError on mismatch.
     */
    void requireSchedPolicy(SchedPolicy policy) const;

  private:
    struct StreamIndex
    {
        std::size_t offset = 0; ///< into data_
        std::size_t length = 0;
        std::uint64_t ops = 0;
    };

    TraceReader() = default;
    void parse();
    std::unique_ptr<OpSource> sourceFor(int stream) const;

    std::shared_ptr<const std::string> data_;
    trace::TraceMeta meta_;
    std::vector<StreamIndex> streams_;
};

/**
 * OpSource decoding one recorded stream. Holds a share of the trace
 * image, so it stays valid after the TraceReader is gone.
 */
class TraceProgram : public OpSource
{
  public:
    TraceProgram(std::shared_ptr<const std::string> data,
                 std::size_t offset, std::size_t length,
                 std::uint64_t ops);

    Op nextOp() override;
    bool finished() const override { return finished_; }

  private:
    std::shared_ptr<const std::string> data_;
    trace::OpDecoder decoder_;
    std::uint64_t opsLeft_;
    bool finished_ = false;
};

} // namespace sst

#endif // SST_TRACE_TRACE_READER_HH
