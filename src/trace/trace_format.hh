/**
 * @file
 * The binary op-trace container format. One trace file captures the op
 * streams of one (workload, thread count) run so the simulator can be
 * re-driven from the recording without regenerating the workload:
 *
 *   offset 0   magic            8 bytes, "SSTTRACE"
 *              version          u32 LE (kTraceVersion)
 *              nthreads         u32 LE, threads of the parallel run
 *              profileHash      u64 LE, fingerprint of the workload
 *                               (the single profile's hash for
 *                               homogeneous recordings)
 *              schedPolicy      u32 LE, scheduler policy recorded under
 *              schedSeed        u64 LE, scheduler RNG stream (random
 *                               policy); both fields version >= 2 only —
 *                               v1 files are read as affinity-fifo /
 *                               seed 0, the only configuration then
 *              label            varint length + UTF-8 bytes (display only)
 *              workload         version >= 3 only: varint role
 *                               (replicated|mix|pipeline), varint group
 *                               count, then per group varint nthreads,
 *                               u64 per-group profile fingerprint,
 *                               varint length + label bytes. v1/v2
 *                               files read as one replicated group —
 *                               the homogeneous WorkloadSpec.
 *              streams          nthreads + ngroups stream blocks
 *
 * Stream block:  varint opCount, varint byteLength, byteLength bytes.
 * Streams 0..nthreads-1 are the parallel run's per-thread op streams;
 * streams nthreads..nthreads+ngroups-1 are each group's 1-thread
 * sequential reference program (one for v1/v2), so a trace is
 * self-contained for speedup-stack replay: Tp and the per-program Ts
 * runs the mix baseline sums all re-simulate from the file.
 *
 * Op encoding (per stream, stateful): a 1-byte OpType tag, then
 *   kCompute                    varint count
 *   kLoad / kStore              zigzag-varint delta(addr), delta(pc)
 *                               against the stream's previous load/store
 *   kLockAcquire/Release,
 *   kBarrier                    varint id
 *   kRoiBegin, kEnd             tag only (kEnd terminates the stream)
 *
 * Delta + varint coding exploits the op DSL's locality (streaming
 * addresses advance by one line; PCs cycle through a small window), so
 * typical streams take 2-4 bytes per op versus 24 for the in-memory Op.
 *
 * All decode errors (truncation, bad magic/version/tag, stream
 * overruns) raise TraceError — never UB, never a crash.
 */

#ifndef SST_TRACE_TRACE_FORMAT_HH
#define SST_TRACE_TRACE_FORMAT_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include <vector>

#include "sched/policy.hh"
#include "util/types.hh"
#include "workload/op.hh"
#include "workload/workload_spec.hh"

namespace sst {

/** Malformed or incompatible trace data. */
class TraceError : public std::runtime_error
{
  public:
    explicit TraceError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

namespace trace {

/** File magic, exactly 8 bytes. */
inline constexpr char kMagic[8] = {'S', 'S', 'T', 'T', 'R', 'A', 'C', 'E'};

/** Bump on any incompatible change to the container or op encoding.
 *  v2 added the schedPolicy header field; v3 the per-group workload
 *  section + per-group baseline streams. v1/v2 files remain readable
 *  (as homogeneous recordings). */
inline constexpr std::uint32_t kTraceVersion = 3;

/** Oldest container version the reader still accepts. */
inline constexpr std::uint32_t kMinTraceVersion = 1;

/** Sanity bound on the recorded thread count. */
inline constexpr std::uint32_t kMaxThreads = 4096;

/** Canonical trace file extension. */
inline constexpr const char *kFileSuffix = ".sstt";

/** Identity of one program group of a recorded workload. */
struct TraceGroup
{
    int nthreads = 0;              ///< threads the group ran with
    std::uint64_t profileHash = 0; ///< fingerprint of the group's profile
    std::string label;             ///< group profile label (display only)
};

/** Identity of a recorded run (everything in the header). */
struct TraceMeta
{
    std::uint32_t version = kTraceVersion;
    int nthreads = 0;              ///< threads of the parallel run
    std::uint64_t profileHash = 0; ///< fingerprint of the workload
    /** Scheduler policy + RNG stream the run was recorded under;
     *  replay re-simulates with both so the recorded stacks reproduce
     *  bit for bit. */
    SchedPolicy schedPolicy = SchedPolicy::kAffinityFifo;
    std::uint64_t schedSeed = 0;
    std::string label;             ///< human-readable workload label

    /** How the recorded workload's groups relate (v3; earlier
     *  containers always read as replicated). */
    WorkloadRole role = WorkloadRole::kReplicated;
    /** Per-group identities, in group order. The writer defaults an
     *  empty vector to the single homogeneous group (nthreads,
     *  profileHash, label). */
    std::vector<TraceGroup> groups;
};

// ---- primitive coders ------------------------------------------------------

/** Append @p v LEB128-encoded (7 bits per byte, LSB first). */
void putVarint(std::string &out, std::uint64_t v);

/** Append @p v zigzag-mapped then LEB128-encoded. */
void putSvarint(std::string &out, std::int64_t v);

/**
 * Zigzag-map the two's-complement bit pattern of a 64-bit delta
 * (computed with well-defined unsigned wraparound, never signed
 * arithmetic) so small deltas of either sign encode in few bytes.
 */
constexpr std::uint64_t
zigzagBits(std::uint64_t delta)
{
    return (delta << 1) ^ (0 - (delta >> 63));
}

/** Inverse of zigzagBits(). */
constexpr std::uint64_t
unzigzagBits(std::uint64_t coded)
{
    return (coded >> 1) ^ (0 - (coded & 1));
}

/** Append @p v as 4 little-endian bytes. */
void putU32(std::string &out, std::uint32_t v);

/** Append @p v as 8 little-endian bytes. */
void putU64(std::string &out, std::uint64_t v);

/**
 * Bounds-checked cursor over encoded bytes. All getters throw
 * TraceError on overrun instead of reading past the buffer.
 */
struct ByteCursor
{
    const unsigned char *data = nullptr;
    std::size_t size = 0;
    std::size_t pos = 0;

    ByteCursor(const void *d, std::size_t n)
        : data(static_cast<const unsigned char *>(d)), size(n)
    {
    }

    std::size_t remaining() const { return size - pos; }

    std::uint8_t getByte();
    std::uint32_t getU32();
    std::uint64_t getU64();
    std::uint64_t getVarint();
    std::int64_t getSvarint();
};

// ---- op coders -------------------------------------------------------------

/**
 * Stateful encoder of one stream's ops (delta state for addresses and
 * PCs). Append-only; the encoded bytes accumulate in `bytes`.
 */
struct OpEncoder
{
    std::string bytes;
    std::uint64_t opCount = 0;
    Addr prevAddr = 0;
    PC prevPc = 0;
    bool sawEnd = false;

    void encode(const Op &op);
};

/**
 * Stateful decoder mirroring OpEncoder. decode() must be called exactly
 * opCount times; the final op of a well-formed stream is kEnd.
 */
struct OpDecoder
{
    ByteCursor cursor;
    Addr prevAddr = 0;
    PC prevPc = 0;

    OpDecoder(const void *data, std::size_t size) : cursor(data, size) {}

    Op decode();
};

} // namespace trace
} // namespace sst

#endif // SST_TRACE_TRACE_FORMAT_HH
