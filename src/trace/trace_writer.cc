#include "trace_writer.hh"

#include <filesystem>
#include <fstream>

#include "util/logging.hh"

namespace sst {

TraceWriter::TraceWriter(trace::TraceMeta meta) : meta_(std::move(meta))
{
    sstAssert(meta_.nthreads >= 1 &&
                  meta_.nthreads <=
                      static_cast<int>(trace::kMaxThreads),
              "TraceWriter: thread count out of range");
    meta_.version = trace::kTraceVersion;
    if (meta_.groups.empty()) {
        // Homogeneous default: one replicated group mirroring the
        // top-level fields, so pre-WorkloadSpec call sites need not
        // know about groups.
        meta_.groups.push_back(trace::TraceGroup{
            meta_.nthreads, meta_.profileHash, meta_.label});
        meta_.role = WorkloadRole::kReplicated;
    }
    int group_threads = 0;
    for (const trace::TraceGroup &g : meta_.groups)
        group_threads += g.nthreads;
    sstAssert(group_threads == meta_.nthreads,
              "TraceWriter: group thread counts must sum to nthreads");
    streams_.resize(static_cast<std::size_t>(meta_.nthreads) +
                    meta_.groups.size());
}

void
TraceWriter::append(int stream, const Op &op)
{
    sstAssert(stream >= 0 &&
                  stream < static_cast<int>(streams_.size()),
              "TraceWriter: stream index out of range");
    trace::OpEncoder &enc = streams_[static_cast<std::size_t>(stream)];
    sstAssert(!enc.sawEnd, "TraceWriter: append after stream end");
    enc.encode(op);
}

std::uint64_t
TraceWriter::opCount(int stream) const
{
    sstAssert(stream >= 0 &&
                  stream < static_cast<int>(streams_.size()),
              "TraceWriter: stream index out of range");
    return streams_[static_cast<std::size_t>(stream)].opCount;
}

std::string
TraceWriter::serialize() const
{
    std::string out;
    out.append(trace::kMagic, sizeof(trace::kMagic));
    trace::putU32(out, meta_.version);
    trace::putU32(out, static_cast<std::uint32_t>(meta_.nthreads));
    trace::putU64(out, meta_.profileHash);
    trace::putU32(out, static_cast<std::uint32_t>(meta_.schedPolicy));
    trace::putU64(out, meta_.schedSeed);
    trace::putVarint(out, meta_.label.size());
    out += meta_.label;
    trace::putVarint(out, static_cast<std::uint64_t>(meta_.role));
    trace::putVarint(out, meta_.groups.size());
    for (const trace::TraceGroup &g : meta_.groups) {
        trace::putVarint(out, static_cast<std::uint64_t>(g.nthreads));
        trace::putU64(out, g.profileHash);
        trace::putVarint(out, g.label.size());
        out += g.label;
    }
    for (const trace::OpEncoder &enc : streams_) {
        trace::putVarint(out, enc.opCount);
        trace::putVarint(out, enc.bytes.size());
        out += enc.bytes;
    }
    return out;
}

void
TraceWriter::writeFile(const std::string &path) const
{
    // Publish with temp-file + atomic rename (like the result cache): a
    // crash mid-write leaves only a `.tmp` stub the replay paths never
    // look at, and re-recording over a good trace cannot destroy it.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw TraceError("cannot open trace file for writing: " +
                             tmp);
        const std::string bytes = serialize();
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out)
            throw TraceError("failed writing trace file: " + tmp);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        throw TraceError("cannot publish trace file " + path + ": " +
                         ec.message());
    }
}

} // namespace sst
