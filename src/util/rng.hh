/**
 * @file
 * Deterministic pseudo-random number generation. Every stochastic choice
 * in the toolkit (workload address streams, imbalance skew, critical
 * section placement) draws from an Rng seeded per (benchmark, thread) so
 * that simulations are exactly reproducible across runs and platforms.
 *
 * The generator is SplitMix64 feeding a xoshiro256** core — small, fast,
 * and with well-understood statistical quality; we deliberately avoid
 * std::mt19937 whose streams are not guaranteed identical across standard
 * library implementations for the distribution adaptors.
 */

#ifndef SST_UTIL_RNG_HH
#define SST_UTIL_RNG_HH

#include <cstdint>

namespace sst {

/**
 * Deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64).
 * All distribution helpers are implemented locally so results are
 * bit-identical everywhere.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; distinct seeds give distinct streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state_)
            word = splitMix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound), bound > 0. Uses rejection sampling. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire-style bounded generation with rejection to kill bias.
        const std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitMix64(std::uint64_t &x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t state_[4];
};

} // namespace sst

#endif // SST_UTIL_RNG_HH
