/**
 * @file
 * Plain-text table and CSV formatting for the bench binaries. The bench
 * harness prints the same rows/series the paper's figures plot, so output
 * legibility matters; this keeps all alignment logic in one place.
 */

#ifndef SST_UTIL_FORMAT_HH
#define SST_UTIL_FORMAT_HH

#include <string>
#include <vector>

namespace sst {

/**
 * Column-aligned ASCII table. Add a header, then rows of cells; render()
 * pads every column to its widest cell. Numeric formatting is the
 * caller's job (use fmtDouble / fmtPercent below).
 */
class TextTable
{
  public:
    /** Set the header row (also defines the column count). */
    void setHeader(std::vector<std::string> cells);

    /** Append one data row; must match the header's column count. */
    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal rule before the next added row. */
    void addRule();

    /** Render the table with 2-space column gaps. */
    std::string render() const;

    /** Render the table as CSV (no padding, comma-separated). */
    std::string renderCsv() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::size_t> ruleBefore_;
};

/** Format @p v with @p prec digits after the decimal point. */
std::string fmtDouble(double v, int prec = 2);

/** Format @p v (a fraction) as a percentage, e.g. 0.051 -> "5.1%". */
std::string fmtPercent(double v, int prec = 1);

/** Format a byte count with a KB/MB suffix when divisible. */
std::string fmtBytes(std::uint64_t bytes);

/** Left-pad @p s to width @p w. */
std::string padLeft(const std::string &s, std::size_t w);

/** Right-pad @p s to width @p w. */
std::string padRight(const std::string &s, std::size_t w);

} // namespace sst

#endif // SST_UTIL_FORMAT_HH
