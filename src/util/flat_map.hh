/**
 * @file
 * Open-addressing hash map for hot simulator state (u64 key -> small
 * POD value). std::unordered_map's node allocation and pointer chasing
 * showed up as a top profile entry in the per-load ValueTracker lookup;
 * this linear-probe table keeps key/value pairs in one contiguous
 * array, so the common hit costs one or two probes in the same cache
 * line region. Semantics match a map exactly (find/insert by key), so
 * swapping it in cannot change simulation results. No erase — the
 * simulator only accretes state within a run.
 */

#ifndef SST_UTIL_FLAT_MAP_HH
#define SST_UTIL_FLAT_MAP_HH

#include <cstdint>
#include <vector>

namespace sst {

/**
 * Linear-probe hash map, u64 keys, value type @p V (default
 * constructed on first access). One key is reserved as the empty
 * marker: kEmptyKey must never be inserted (the simulator's keys are
 * line numbers and ids, far below 2^64 - 1).
 */
template <typename V>
class FlatMap64
{
  public:
    static constexpr std::uint64_t kEmptyKey = ~std::uint64_t(0);

    FlatMap64() { rehash(kInitialSlots); }

    /** Value for @p key, default-constructing on first access. */
    V &
    operator[](std::uint64_t key)
    {
        if ((size_ + 1) * 10 >= slots_.size() * 7)
            rehash(slots_.size() * 2);
        Slot &s = probe(slots_, key);
        if (s.key == kEmptyKey) {
            s.key = key;
            s.value = V{};
            ++size_;
        }
        return s.value;
    }

    /** Pointer to @p key's value, nullptr when absent. */
    const V *
    find(std::uint64_t key) const
    {
        const Slot &s = probe(slots_, key);
        return s.key == kEmptyKey ? nullptr : &s.value;
    }

    std::size_t size() const { return size_; }

  private:
    struct Slot
    {
        std::uint64_t key = kEmptyKey;
        V value{};
    };

    static constexpr std::size_t kInitialSlots = 1024;

    /** SplitMix64 finalizer: full avalanche, so line numbers that share
     *  low bits spread over the table. */
    static std::uint64_t
    mix(std::uint64_t x)
    {
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return x;
    }

    template <typename Slots>
    static auto &
    probe(Slots &slots, std::uint64_t key)
    {
        const std::size_t mask = slots.size() - 1;
        std::size_t i = static_cast<std::size_t>(mix(key)) & mask;
        while (slots[i].key != key && slots[i].key != kEmptyKey)
            i = (i + 1) & mask;
        return slots[i];
    }

    void
    rehash(std::size_t new_slots)
    {
        std::vector<Slot> next(new_slots);
        for (const Slot &s : slots_) {
            if (s.key != kEmptyKey)
                probe(next, s.key) = s;
        }
        slots_.swap(next);
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
};

} // namespace sst

#endif // SST_UTIL_FLAT_MAP_HH
