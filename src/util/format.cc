#include "format.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "logging.hh"

namespace sst {

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    sstAssert(header_.empty() || cells.size() == header_.size(),
              "TextTable row width mismatch");
    rows_.push_back(std::move(cells));
}

void
TextTable::addRule()
{
    ruleBefore_.push_back(rows_.size());
}

std::string
TextTable::render() const
{
    const std::size_t ncols =
        header_.empty() ? (rows_.empty() ? 0 : rows_[0].size())
                        : header_.size();
    std::vector<std::size_t> width(ncols, 0);
    auto widen = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size() && c < ncols; ++c)
            width[c] = std::max(width[c], row[c].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    std::size_t total = 0;
    for (std::size_t w : width)
        total += w + 2;

    std::string out;
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += padRight(row[c], width[c]);
            if (c + 1 < row.size())
                out += "  ";
        }
        out += '\n';
    };
    auto emitRule = [&]() { out += std::string(total, '-') + '\n'; };

    if (!header_.empty()) {
        emitRow(header_);
        emitRule();
    }
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        if (std::find(ruleBefore_.begin(), ruleBefore_.end(), i) !=
            ruleBefore_.end()) {
            emitRule();
        }
        emitRow(rows_[i]);
    }
    return out;
}

std::string
TextTable::renderCsv() const
{
    std::string out;
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            if (c + 1 < row.size())
                out += ',';
        }
        out += '\n';
    };
    if (!header_.empty())
        emitRow(header_);
    for (const auto &r : rows_)
        emitRow(r);
    return out;
}

std::string
fmtDouble(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
fmtPercent(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", prec, v * 100.0);
    return buf;
}

std::string
fmtBytes(std::uint64_t bytes)
{
    char buf[64];
    if (bytes >= (1ULL << 20) && bytes % (1ULL << 20) == 0) {
        std::snprintf(buf, sizeof(buf), "%lluMB",
                      static_cast<unsigned long long>(bytes >> 20));
    } else if (bytes >= (1ULL << 10) && bytes % (1ULL << 10) == 0) {
        std::snprintf(buf, sizeof(buf), "%lluKB",
                      static_cast<unsigned long long>(bytes >> 10));
    } else {
        std::snprintf(buf, sizeof(buf), "%lluB",
                      static_cast<unsigned long long>(bytes));
    }
    return buf;
}

std::string
padLeft(const std::string &s, std::size_t w)
{
    return s.size() >= w ? s : std::string(w - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, std::size_t w)
{
    return s.size() >= w ? s : s + std::string(w - s.size(), ' ');
}

} // namespace sst
