/**
 * @file
 * Small bit-math helpers shared across the toolkit (cache geometry,
 * DRAM address decomposition, hardware cost accounting). Centralized so
 * the same definitions are not re-rolled per translation unit.
 */

#ifndef SST_UTIL_BITS_HH
#define SST_UTIL_BITS_HH

#include <cstdint>

namespace sst {

/** True when @p v is a (nonzero) power of two. */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Ceiling log2: smallest n with 2^n >= v (log2i(0) == log2i(1) == 0). */
constexpr int
log2i(std::uint64_t v)
{
    int n = 0;
    while ((std::uint64_t(1) << n) < v)
        ++n;
    return n;
}

} // namespace sst

#endif // SST_UTIL_BITS_HH
