/**
 * @file
 * Minimal gem5-style status/error reporting: panic() for internal
 * invariant violations, fatal() for user/configuration errors, warn() and
 * inform() for non-fatal diagnostics.
 */

#ifndef SST_UTIL_LOGGING_HH
#define SST_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace sst {

/**
 * Abort the process because an internal invariant was violated. Use for
 * conditions that indicate a bug in the toolkit itself, never for bad
 * user input.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/**
 * Exit the process because of an unrecoverable user error (bad
 * configuration, invalid parameters).
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

/** Report a suspicious but survivable condition. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Report normal operating status. */
inline void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

/** panic() unless @p cond holds. */
inline void
sstAssert(bool cond, const std::string &msg)
{
    if (!cond)
        panic(msg);
}

} // namespace sst

#endif // SST_UTIL_LOGGING_HH
