/**
 * @file
 * Minimal gem5-style status/error reporting: panic() for internal
 * invariant violations, fatal() for user/configuration errors, warn(),
 * inform() and debugLog() for non-fatal diagnostics.
 *
 * Thread safety: each message is rendered into one string and emitted
 * with a single fprintf, so concurrent driver/serve threads never
 * interleave partial lines (POSIX stdio locks the stream per call).
 *
 * Levels: the SST_LOG environment variable (read once) selects
 *  - quiet : errors only (panic/fatal still print);
 *  - info  : + warn()/inform() — the default;
 *  - debug : + debugLog().
 *
 * Component tags: the two-argument overloads prefix the message with
 * `[component]` so interleaved serve/worker/driver output stays
 * attributable.
 */

#ifndef SST_UTIL_LOGGING_HH
#define SST_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace sst {

/** Diagnostic verbosity, selected once via SST_LOG. */
enum class LogLevel : int {
    kQuiet = 0, ///< errors only
    kInfo = 1,  ///< + warn/inform (default)
    kDebug = 2, ///< + debugLog
};

/** The process log level: SST_LOG in {quiet, info, debug}. */
inline LogLevel
logLevel()
{
    static const LogLevel level = [] {
        const char *env = std::getenv("SST_LOG");
        if (!env)
            return LogLevel::kInfo;
        const std::string v(env);
        if (v == "quiet")
            return LogLevel::kQuiet;
        if (v == "debug")
            return LogLevel::kDebug;
        return LogLevel::kInfo;
    }();
    return level;
}

namespace detail {

/** Render and emit one complete line with a single fprintf. */
inline void
emitLog(const char *severity, const std::string &component,
        const std::string &msg)
{
    std::string line(severity);
    line += ": ";
    if (!component.empty()) {
        line += "[";
        line += component;
        line += "] ";
    }
    line += msg;
    line += "\n";
    std::fprintf(stderr, "%s", line.c_str());
}

} // namespace detail

/**
 * Abort the process because an internal invariant was violated. Use for
 * conditions that indicate a bug in the toolkit itself, never for bad
 * user input. Prints at every log level.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    detail::emitLog("panic", "", msg);
    std::abort();
}

/**
 * Exit the process because of an unrecoverable user error (bad
 * configuration, invalid parameters). Prints at every log level.
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    detail::emitLog("fatal", "", msg);
    std::exit(1);
}

/** Report a suspicious but survivable condition. */
inline void
warn(const std::string &msg)
{
    if (logLevel() >= LogLevel::kInfo)
        detail::emitLog("warn", "", msg);
}

/** warn() tagged with the emitting component (`[serve]`, ...). */
inline void
warn(const std::string &component, const std::string &msg)
{
    if (logLevel() >= LogLevel::kInfo)
        detail::emitLog("warn", component, msg);
}

/** Report normal operating status. */
inline void
inform(const std::string &msg)
{
    if (logLevel() >= LogLevel::kInfo)
        detail::emitLog("info", "", msg);
}

/** inform() tagged with the emitting component. */
inline void
inform(const std::string &component, const std::string &msg)
{
    if (logLevel() >= LogLevel::kInfo)
        detail::emitLog("info", component, msg);
}

/** High-volume diagnostics, printed only under SST_LOG=debug. */
inline void
debugLog(const std::string &component, const std::string &msg)
{
    if (logLevel() >= LogLevel::kDebug)
        detail::emitLog("debug", component, msg);
}

/** panic() unless @p cond holds. */
inline void
sstAssert(bool cond, const std::string &msg)
{
    if (!cond)
        panic(msg);
}

} // namespace sst

#endif // SST_UTIL_LOGGING_HH
