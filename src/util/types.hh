/**
 * @file
 * Fundamental scalar types shared by every module of the speedup-stacks
 * toolkit. Mirrors the conventions of architecture simulators: cycles,
 * addresses and identifiers are plain integral types with descriptive
 * aliases so that interfaces document themselves.
 */

#ifndef SST_UTIL_TYPES_HH
#define SST_UTIL_TYPES_HH

#include <cstdint>

namespace sst {

/** Simulated clock cycles (global monotonic counter). */
using Cycles = std::uint64_t;

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Program counter of a simulated instruction (for spin detection). */
using PC = std::uint64_t;

/** Hardware core identifier, 0-based. */
using CoreId = int;

/** Software thread identifier, 0-based. */
using ThreadId = int;

/** Lock variable identifier within a workload. */
using LockId = int;

/** Barrier identifier within a workload. */
using BarrierId = int;

/** Sentinel for "no core" / "no thread". */
inline constexpr int kInvalidId = -1;

/** Cache line size used throughout the memory hierarchy (bytes). */
inline constexpr Addr kLineBytes = 64;

/** Returns the cache-line-aligned address of @p a. */
constexpr Addr
lineAddr(Addr a)
{
    return a & ~(kLineBytes - 1);
}

/** Returns the cache line number of byte address @p a. */
constexpr Addr
lineNum(Addr a)
{
    return a / kLineBytes;
}

} // namespace sst

#endif // SST_UTIL_TYPES_HH
