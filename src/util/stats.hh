/**
 * @file
 * Small statistics helpers used by the validation harness and the bench
 * binaries: running mean/min/max/stddev and simple histograms.
 */

#ifndef SST_UTIL_STATS_HH
#define SST_UTIL_STATS_HH

#include <cmath>
#include <cstdint>
#include <vector>

namespace sst {

/**
 * Incremental summary statistics (Welford's algorithm for the variance so
 * long accumulations stay numerically stable).
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        if (n_ == 1 || x < min_)
            min_ = x;
        if (n_ == 1 || x > max_)
            max_ = x;
        sum_ += x;
    }

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /** Sample variance (n-1 denominator); 0 for fewer than two samples. */
    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Fixed-width histogram over [lo, hi); samples outside the range clamp to
 * the first/last bucket. Used for miss-penalty and wait-time diagnostics.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, int buckets)
        : lo_(lo), hi_(hi), counts_(static_cast<std::size_t>(buckets), 0)
    {
    }

    void
    add(double x)
    {
        const auto nb = static_cast<double>(counts_.size());
        int idx = static_cast<int>((x - lo_) / (hi_ - lo_) * nb);
        if (idx < 0)
            idx = 0;
        if (idx >= static_cast<int>(counts_.size()))
            idx = static_cast<int>(counts_.size()) - 1;
        ++counts_[static_cast<std::size_t>(idx)];
        ++total_;
    }

    std::uint64_t bucket(int i) const
    {
        return counts_[static_cast<std::size_t>(i)];
    }
    int buckets() const { return static_cast<int>(counts_.size()); }
    std::uint64_t total() const { return total_; }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace sst

#endif // SST_UTIL_STATS_HH
