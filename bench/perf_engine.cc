/**
 * @file
 * Event-engine throughput microbench: how many simulation events per
 * second does the host push through the unified event queue? Runs an
 * oversubscribed (2 threads per core) cholesky workload at 4, 16 and 64
 * cores — oversubscription keeps the scheduler, wake and preemption
 * paths all hot — and reports the best of several repetitions (the
 * standard microbenchmark guard against scheduler noise).
 *
 *   perf_engine [--repeat R] [--out BENCH_engine.json]
 *
 * Emits BENCH_engine.json for the perf trajectory; CI uploads it as an
 * artifact on every Release build. The simulated results are
 * deterministic (same exec cycles and event counts on every host), so
 * runs are comparable across machines via events_per_sec alone.
 */

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "cli_common.hh"
#include "sim/system.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "workload/profile.hh"

namespace {

using Clock = std::chrono::steady_clock;

constexpr const char *kWorkload = "cholesky";
constexpr int kOversubscription = 2;

struct Measurement
{
    int ncores = 0;
    int nthreads = 0;
    std::uint64_t events = 0;
    std::uint64_t simCycles = 0;
    std::uint64_t wakes = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t heapOps = 0;
    double bestSeconds = 0.0;

    double
    eventsPerSec() const
    {
        return static_cast<double>(events) / bestSeconds;
    }
};

Measurement
measure(int ncores, int repeat)
{
    Measurement m;
    m.ncores = ncores;
    m.nthreads = kOversubscription * ncores;
    m.bestSeconds = 1e100;

    const sst::BenchmarkProfile profile = sst::profileByLabel(kWorkload);
    for (int r = 0; r < repeat; ++r) {
        sst::SimParams params;
        params.ncores = ncores;
        // Construct outside the timed section: the bench measures the
        // event loop, not arena allocation/teardown.
        sst::System sys(params, profile, m.nthreads);
        const auto t0 = Clock::now();
        const sst::RunResult res = sys.run();
        const auto t1 = Clock::now();
        const double s = std::chrono::duration<double>(t1 - t0).count();
        if (s < m.bestSeconds)
            m.bestSeconds = s;
        m.events = res.engineEvents;
        m.simCycles = res.executionTime;
        m.wakes = res.engineWakes;
        m.preemptions = res.enginePreemptions;
        m.heapOps = res.engineHeapOps;
    }
    return m;
}

std::string
toJson(const std::vector<Measurement> &ms, int repeat)
{
    std::string out;
    out += "{\n";
    out += "  \"bench\": \"engine_event_loop\",\n";
    out += "  \"workload\": \"" + std::string(kWorkload) + "\",\n";
    out += "  \"oversubscription\": " +
           std::to_string(kOversubscription) + ",\n";
    out += "  \"repeat\": " + std::to_string(repeat) + ",\n";
    out += "  \"configs\": [\n";
    for (std::size_t i = 0; i < ms.size(); ++i) {
        const Measurement &m = ms[i];
        out += "    {\"ncores\": " + std::to_string(m.ncores) +
               ", \"nthreads\": " + std::to_string(m.nthreads) +
               ", \"events\": " + std::to_string(m.events) +
               ", \"sim_cycles\": " + std::to_string(m.simCycles) +
               ", \"wakes\": " + std::to_string(m.wakes) +
               ", \"preemptions\": " + std::to_string(m.preemptions) +
               ", \"heap_ops\": " + std::to_string(m.heapOps) +
               ", \"best_seconds\": " + sst::fmtDouble(m.bestSeconds, 6) +
               ", \"events_per_sec\": " +
               sst::fmtDouble(m.eventsPerSec(), 1) + "}";
        out += i + 1 < ms.size() ? ",\n" : "\n";
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    int repeat = 5;
    std::string outPath = "BENCH_engine.json";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--repeat") {
            repeat = sst::cli::parseInt(
                "--repeat", sst::cli::argValue(argc, argv, i), 1, 1000);
        } else if (arg == "--out") {
            outPath = sst::cli::argValue(argc, argv, i);
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: perf_engine [--repeat R] [--out FILE]\n");
            return 0;
        } else {
            sst::fatal("unknown argument '" + arg + "'");
        }
    }

    std::vector<Measurement> results;
    std::printf("%-8s %-10s %-12s %-12s %-14s\n", "ncores", "nthreads",
                "events", "best_sec", "events/sec");
    for (const int ncores : {4, 16, 64}) {
        const Measurement m = measure(ncores, repeat);
        results.push_back(m);
        std::printf("%-8d %-10d %-12" PRIu64 " %-12.4f %-14.0f\n",
                    m.ncores, m.nthreads, m.events, m.bestSeconds,
                    m.eventsPerSec());
    }

    std::ofstream out(outPath, std::ios::trunc);
    if (!out)
        sst::fatal("cannot write " + outPath);
    out << toJson(results, repeat);
    std::printf("wrote %s\n", outPath.c_str());
    return 0;
}
