/**
 * @file
 * Implementations of the experiment CLI commands, shared between the
 * unified `sst` multi-command binary and the legacy single-purpose
 * `sweep` / `trace` binaries (now thin compatibility shells). One
 * implementation per command means flags, table layout, error messages
 * and exit codes cannot drift between the entry points.
 *
 * Every *Main takes (argc, argv, first) where argv[first] is the first
 * command-specific argument — 1 when invoked standalone, 2 behind an
 * `sst <command>` dispatcher.
 */

#ifndef SST_BENCH_CLI_COMMANDS_HH
#define SST_BENCH_CLI_COMMANDS_HH

namespace sst {
namespace cli {

/** `sweep` / `sst sweep`: flag-driven experiment grids. */
int sweepMain(int argc, char **argv, int first);

/** `trace` / `sst trace`: record / replay / info on op traces. */
int traceMain(int argc, char **argv, int first);

/** `sst run --spec FILE`: execute a declarative experiment spec. */
int runMain(int argc, char **argv, int first);

/** `sst list profiles|scheds|frontends`: enumerate the registries. */
int listMain(int argc, char **argv, int first);

/** `sst serve`: run the persistent sweep service (src/serve/). */
int serveMain(int argc, char **argv, int first);

/** `sst worker --connect`: lease and execute jobs from a server. */
int workerMain(int argc, char **argv, int first);

/** `sst submit`: client for a running server (submit/results/...). */
int submitMain(int argc, char **argv, int first);

/** `sst metrics ENDPOINT`: stream a live server's telemetry text. */
int metricsMain(int argc, char **argv, int first);

/** `sst --version`: print every persisted-format version. */
int versionMain();

} // namespace cli
} // namespace sst

#endif // SST_BENCH_CLI_COMMANDS_HH
