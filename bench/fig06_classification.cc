/**
 * @file
 * Figure 6: the benchmark classification tree. Every benchmark runs at
 * 16 threads; rows are grouped good / moderate / poor (>=10x, 5..10x,
 * <5x) and annotated with the three largest scaling delimiters from the
 * speedup stack, the suite, and the achieved speedup — next to the
 * paper's reported speedup for comparison.
 */

#include <cstdio>

#include "core/classify.hh"
#include "core/experiment.hh"
#include "util/format.hh"
#include "workload/profile.hh"

int
main()
{
    std::printf("Figure 6: classification tree at 16 threads\n\n");

    std::vector<sst::ClassifiedBenchmark> rows;
    sst::TextTable compare;
    compare.setHeader({"benchmark", "speedup (measured)",
                       "speedup (paper)", "class (measured)",
                       "class (paper)"});

    for (const auto &profile : sst::benchmarkSuite()) {
        sst::SimParams params;
        params.ncores = 16;
        const sst::SpeedupExperiment exp =
            sst::runSpeedupExperiment(params, profile, 16);
        rows.push_back(sst::classifyBenchmark(
            profile.label(), profile.suite, exp.actualSpeedup, exp.stack));
        compare.addRow(
            {profile.label(), sst::fmtDouble(exp.actualSpeedup, 2),
             sst::fmtDouble(profile.paperSpeedup16, 2),
             sst::scalingClassName(
                 sst::classifySpeedup(exp.actualSpeedup)),
             profile.paperClass});
    }

    std::printf("%s\n", sst::renderClassificationTree(rows).c_str());
    std::printf("paper cross-check:\n%s\n", compare.render().c_str());
    return 0;
}
