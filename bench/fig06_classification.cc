/**
 * @file
 * Figure 6: the benchmark classification tree. Every benchmark runs at
 * 16 threads; rows are grouped good / moderate / poor (>=10x, 5..10x,
 * <5x) and annotated with the three largest scaling delimiters from the
 * speedup stack, the suite, and the achieved speedup — next to the
 * paper's reported speedup for comparison.
 *
 * The 28 experiments execute on the parallel experiment driver.
 *
 * Usage: fig06_classification [jobs] [--sched POLICY] [--jobs N]
 */

#include <cstdio>

#include "cli_common.hh"
#include "core/classify.hh"
#include "driver/sweep.hh"
#include "util/format.hh"
#include "workload/profile.hh"

int
main(int argc, char **argv)
{
    const sst::cli::BenchOptions o = sst::cli::parseBenchArgs(
        argc, argv, "fig06_classification [jobs]");
    std::printf("Figure 6: classification tree at 16 threads\n\n");

    sst::SweepGrid grid;
    grid.profiles = sst::allProfileLabels();
    grid.threads = {16};
    grid.baseParams = o.params;
    grid.seedOffset = o.seedOffset;

    sst::DriverOptions opts;
    opts.jobs = o.positionals.empty() ? o.jobs
                                      : static_cast<int>(o.positionals[0]);

    const std::vector<sst::JobSpec> specs = sst::expandGrid(grid);
    const std::vector<sst::JobResult> results =
        sst::runExperimentBatch(specs, opts);

    std::vector<sst::ClassifiedBenchmark> rows;
    sst::TextTable compare;
    compare.setHeader({"benchmark", "speedup (measured)",
                       "speedup (paper)", "class (measured)",
                       "class (paper)"});

    for (std::size_t i = 0; i < specs.size(); ++i) {
        const sst::BenchmarkProfile &profile =
            specs[i].workload.groups[0].profile;
        if (!results[i].ok()) {
            std::fprintf(stderr, "%s failed: %s\n",
                         profile.label().c_str(),
                         results[i].error.c_str());
            continue;
        }
        const sst::SpeedupExperiment &exp = results[i].exp;
        rows.push_back(sst::classifyBenchmark(
            profile.label(), profile.suite, exp.actualSpeedup, exp.stack));
        compare.addRow(
            {profile.label(), sst::fmtDouble(exp.actualSpeedup, 2),
             sst::fmtDouble(profile.paperSpeedup16, 2),
             sst::scalingClassName(
                 sst::classifySpeedup(exp.actualSpeedup)),
             profile.paperClass});
    }

    std::printf("%s\n", sst::renderClassificationTree(rows).c_str());
    std::printf("paper cross-check:\n%s\n", compare.render().c_str());
    return 0;
}
