/**
 * @file
 * Figure 8: negative, positive and net LLC interference components (in
 * speedup units) for real two-program mixes on a 16-core machine. The
 * paper studies LLC interference between co-running workloads; each
 * registered `fig08_<benchmark>` mix co-schedules the benchmark (8
 * threads) with a cache-hungry canneal partner (8 threads), and the
 * speedup stack is normalized against the sum of both programs' own
 * 1-thread runs (the per-program baseline the methodology requires).
 * In the paper, negative interference exceeds positive interference
 * for all of these benchmarks, yielding a net negative component.
 *
 * The whole study executes as one batch on the parallel experiment
 * driver — the same grid `examples/specs/fig08.spec` describes.
 *
 * Usage: fig08_llc_interference [jobs] [--sched POLICY] [--jobs N]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "cli_common.hh"
#include "driver/sweep.hh"
#include "spec/registries.hh"
#include "util/format.hh"

int
main(int argc, char **argv)
{
    const sst::cli::BenchOptions o =
        sst::cli::parseBenchArgs(argc, argv, "fig08_llc_interference [jobs]");

    // Every registered fig08_* mix, in registry order.
    sst::SweepGrid grid;
    for (const std::string &name : sst::mixRegistry().names())
        if (name.compare(0, 6, "fig08_") == 0)
            grid.workloads.push_back(name);
    grid.baseParams = o.params;
    grid.seedOffset = o.seedOffset;

    std::printf("Figure 8: negative, positive and net LLC interference "
                "components (two-program mixes, 16 cores)\n\n");

    const std::vector<sst::JobSpec> specs = sst::expandGrid(grid);

    sst::DriverOptions opts;
    opts.jobs = o.positionals.empty() ? o.jobs
                                      : static_cast<int>(o.positionals[0]);

    sst::BatchStats stats;
    const std::vector<sst::JobResult> results =
        sst::runExperimentBatch(specs, opts, &stats);

    sst::TextTable table;
    table.setHeader({"mix", "neg cache interference",
                     "pos cache interference", "net interference"});
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const sst::JobResult &r = results[i];
        if (!r.ok()) {
            table.addRow({specs[i].label(), "FAILED: " + r.error, "-",
                          "-"});
            continue;
        }
        table.addRow({specs[i].label(),
                      sst::fmtDouble(r.exp.stack.negLlc, 3),
                      sst::fmtDouble(r.exp.stack.posLlc, 3),
                      sst::fmtDouble(r.exp.stack.netNegLlc(), 3)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("(%zu jobs, %zu shared baselines)\n", stats.total,
                stats.baselinesComputed);
    return 0;
}
