/**
 * @file
 * Figure 8: negative, positive and net LLC interference components (in
 * speedup units) at 16 cores for the benchmarks with a non-negligible
 * positive interference component: cholesky, lu.cont, canneal (both
 * inputs), bfs, lu.ncont and needle. In the paper, negative interference
 * exceeds positive interference for all of them, yielding a net negative
 * component.
 */

#include <cstdio>
#include <vector>

#include "cli_common.hh"
#include "core/experiment.hh"
#include "util/format.hh"
#include "workload/profile.hh"

int
main(int argc, char **argv)
{
    const sst::cli::BenchOptions o =
        sst::cli::parseBenchArgs(argc, argv, "fig08_llc_interference", false);
    const std::vector<std::string> benchmarks = {
        "cholesky", "lu.cont", "canneal_small", "canneal_medium",
        "bfs",      "lu.ncont", "needle"};

    std::printf("Figure 8: negative, positive and net LLC interference "
                "components (16 cores)\n\n");

    sst::TextTable table;
    table.setHeader({"benchmark", "neg cache interference",
                     "pos cache interference", "net interference"});
    for (const auto &label : benchmarks) {
        const sst::BenchmarkProfile &profile = sst::profileByLabel(label);
        sst::SimParams params = o.params;
        params.ncores = 16;
        const sst::SpeedupExperiment exp =
            sst::runSpeedupExperiment(params, profile, 16);
        table.addRow({label, sst::fmtDouble(exp.stack.negLlc, 3),
                      sst::fmtDouble(exp.stack.posLlc, 3),
                      sst::fmtDouble(exp.stack.netNegLlc(), 3)});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
