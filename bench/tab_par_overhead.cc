/**
 * @file
 * Section 6 parallelization-overhead analysis: the method deliberately
 * does not account for parallelization overhead, so the estimation error
 * should correlate with the measured dynamic-instruction increase of the
 * parallel run over the sequential one (spin instructions excluded). The
 * paper reports swaptions_small at +26% and fluidanimate_medium at +18%
 * instructions, its two largest error cases.
 */

#include <cmath>
#include <cstdio>

#include "cli_common.hh"
#include "core/experiment.hh"
#include "util/format.hh"
#include "workload/profile.hh"

int
main(int argc, char **argv)
{
    const sst::cli::BenchOptions o =
        sst::cli::parseBenchArgs(argc, argv, "tab_par_overhead", false);
    std::printf("Section 6: parallelization overhead vs estimation error "
                "(16 threads)\n\n");

    sst::TextTable table;
    table.setHeader({"benchmark", "extra instructions", "paper",
                     "estimation error"});

    double sum_xy = 0, sum_x = 0, sum_y = 0, sum_x2 = 0, sum_y2 = 0;
    int n = 0;
    for (const auto &profile : sst::benchmarkSuite()) {
        sst::SimParams params = o.params;
        params.ncores = 16;
        const sst::SpeedupExperiment exp =
            sst::runSpeedupExperiment(params, profile, 16);

        std::string paper = "-";
        if (profile.label() == "swaptions_small")
            paper = "+26%";
        if (profile.label() == "fluidanimate_medium")
            paper = "+18%";
        table.addRow({profile.label(),
                      sst::fmtPercent(exp.parOverheadMeasured, 1), paper,
                      sst::fmtPercent(exp.error, 1)});

        const double x = exp.parOverheadMeasured;
        const double y = exp.error;
        sum_x += x;
        sum_y += y;
        sum_xy += x * y;
        sum_x2 += x * x;
        sum_y2 += y * y;
        ++n;
    }
    std::printf("%s\n", table.render().c_str());

    const double cov = sum_xy / n - (sum_x / n) * (sum_y / n);
    const double vx = sum_x2 / n - (sum_x / n) * (sum_x / n);
    const double vy = sum_y2 / n - (sum_y / n) * (sum_y / n);
    const double r = cov / std::sqrt(vx * vy);
    std::printf("correlation(extra instructions, error) = %.2f "
                "(positive: unaccounted overhead inflates the "
                "estimate)\n",
                r);
    return 0;
}
