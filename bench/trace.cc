/**
 * @file
 * The `trace` CLI: a thin compatibility shell over `sst trace` (the
 * implementation lives in bench/cli_commands.cc and is shared with the
 * unified `sst` binary, so flags and output cannot drift).
 *
 *   trace record --profile cholesky --threads 4 --out chol4.sstt
 *   trace replay --in chol4.sstt
 *   trace info   --in chol4.sstt
 *
 * `record` runs the live speedup experiment while writing the trace;
 * `replay` re-simulates both recorded runs from the file (no workload
 * generation) and must reproduce the recorded run's speedup stack bit
 * for bit — with --quiet both print only the stack block, so
 * `diff <(record) <(replay)` is the round-trip check CI performs.
 * `record --trace-dir DIR` names the file canonically so a later
 * `sweep --trace-dir DIR` finds it.
 */

#include "cli_commands.hh"

int
main(int argc, char **argv)
{
    return sst::cli::traceMain(argc, argv, 1);
}
