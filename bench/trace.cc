/**
 * @file
 * The `trace` CLI: capture, replay and inspect binary op traces.
 *
 *   trace record --profile cholesky --threads 4 --out chol4.sstt
 *   trace replay --in chol4.sstt
 *   trace info   --in chol4.sstt
 *
 * `record` runs the live speedup experiment while writing the trace;
 * `replay` re-simulates both recorded runs from the file (no workload
 * generation) and must reproduce the recorded run's speedup stack bit
 * for bit — with --quiet both print only the stack block, so
 * `diff <(record) <(replay)` is the round-trip check CI performs.
 * `record --trace-dir DIR` names the file canonically so a later
 * `sweep --trace-dir DIR` finds it.
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "cache/hierarchy.hh"
#include "cli_common.hh"
#include "driver/job.hh"
#include "sched/policy.hh"
#include "trace/trace_run.hh"
#include "util/logging.hh"
#include "workload/profile.hh"

namespace {

using sst::cli::argValue;

void
usage()
{
    std::printf(
        "usage: trace <record|replay|info> [options]\n"
        "  record --profile LABEL [--threads N] (--out FILE | "
        "--trace-dir DIR)\n"
        "         [--seed-offset K] [--sched POLICY] [--sched-seed K]\n"
        "         [--quiet]\n"
        "      run the live experiment, write the op trace\n"
        "  replay --in FILE [--sched POLICY] [--quiet]\n"
        "      re-simulate from the trace (no workload generation);\n"
        "      --sched must match the recorded policy (it documents\n"
        "      the expectation, replay always uses the recording's)\n"
        "  info --in FILE\n"
        "      print header and per-stream statistics\n"
        "scheduler policies: %s\n",
        sst::allSchedPolicyLabelsJoined().c_str());
}

/**
 * Full-precision experiment dump: every value %.17g/%"PRIu64" so record
 * and replay output can be diffed bit for bit.
 */
void
printExperiment(const sst::SpeedupExperiment &e)
{
    std::printf("benchmark           %s\n", e.label.c_str());
    std::printf("threads             %d\n", e.nthreads);
    std::printf("ts                  %" PRIu64 "\n", e.ts);
    std::printf("tp                  %" PRIu64 "\n", e.tp);
    std::printf("actual_speedup      %.17g\n", e.actualSpeedup);
    std::printf("estimated_speedup   %.17g\n", e.estimatedSpeedup);
    std::printf("error               %.17g\n", e.error);
    std::printf("stack.base          %.17g\n", e.stack.baseSpeedup);
    std::printf("stack.pos_llc       %.17g\n", e.stack.posLlc);
    std::printf("stack.neg_llc       %.17g\n", e.stack.negLlc);
    std::printf("stack.neg_mem       %.17g\n", e.stack.negMem);
    std::printf("stack.spin          %.17g\n", e.stack.spin);
    std::printf("stack.yield         %.17g\n", e.stack.yield);
    std::printf("stack.imbalance     %.17g\n", e.stack.imbalance);
    std::printf("stack.coherency     %.17g\n", e.stack.coherency);
    std::printf("par_overhead        %.17g\n", e.parOverheadMeasured);
}

int
cmdRecord(int argc, char **argv)
{
    std::string label, outPath, traceDir;
    int nthreads = 16;
    std::uint64_t seedOffset = 0;
    sst::SimParams params;
    bool quiet = false;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--profile") {
            label = argValue(argc, argv, i);
        } else if (arg == "--threads") {
            // The recording runs live on nthreads cores, so the
            // simulator's core cap bounds this (the format itself
            // allows up to trace::kMaxThreads streams).
            nthreads = sst::cli::parseInt(
                "--threads", argValue(argc, argv, i), 1,
                static_cast<long>(sst::kMaxSimCores));
        } else if (arg == "--out") {
            outPath = argValue(argc, argv, i);
        } else if (arg == "--trace-dir") {
            traceDir = argValue(argc, argv, i);
        } else if (arg == "--seed-offset") {
            seedOffset = sst::cli::parseU64("--seed-offset",
                                            argValue(argc, argv, i));
        } else if (arg == "--sched") {
            params.schedPolicy =
                sst::parseSchedPolicy(argValue(argc, argv, i));
        } else if (arg == "--sched-seed") {
            params.schedSeed = sst::cli::parseU64(
                "--sched-seed", argValue(argc, argv, i));
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            usage();
            sst::fatal("unknown record argument '" + arg + "'");
        }
    }
    if (label.empty())
        sst::fatal("record needs --profile (one of: " +
                   sst::allProfileLabelsJoined() + ")");
    if (params.schedSeed != 0 &&
        params.schedPolicy != sst::SchedPolicy::kRandom) {
        sst::fatal("--sched-seed only affects --sched random; the "
                   "seed would be silently ignored");
    }
    if (outPath.empty() == traceDir.empty())
        sst::fatal("record needs exactly one of --out or --trace-dir");

    sst::BenchmarkProfile profile = sst::profileByLabel(label);
    profile.seed = sst::deriveJobSeed(profile.seed, seedOffset);

    if (!traceDir.empty()) {
        std::filesystem::create_directories(traceDir);
        outPath = sst::tracePathFor(traceDir, profile, nthreads,
                                    seedOffset, params.schedPolicy,
                                    params.schedSeed);
    }

    std::uint64_t ops = 0;
    const sst::SpeedupExperiment exp = sst::recordSpeedupTrace(
        params, profile, nthreads, outPath, &ops);
    printExperiment(exp);
    if (!quiet) {
        const auto bytes = std::filesystem::file_size(outPath);
        std::printf("wrote %s: %" PRIu64 " ops in %ju bytes "
                    "(%.2f bytes/op)\n",
                    outPath.c_str(), ops,
                    static_cast<std::uintmax_t>(bytes),
                    static_cast<double>(bytes) / static_cast<double>(ops));
    }
    return 0;
}

int
cmdReplay(int argc, char **argv)
{
    std::string inPath;
    bool quiet = false;
    bool schedGiven = false;
    sst::SchedPolicy sched = sst::SchedPolicy::kAffinityFifo;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--in") {
            inPath = argValue(argc, argv, i);
        } else if (arg == "--sched") {
            sched = sst::parseSchedPolicy(argValue(argc, argv, i));
            schedGiven = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            usage();
            sst::fatal("unknown replay argument '" + arg + "'");
        }
    }
    if (inPath.empty())
        sst::fatal("replay needs --in FILE");

    const sst::TraceReader reader(inPath);
    if (schedGiven)
        reader.requireSchedPolicy(sched); // TraceError -> fatal in main

    const sst::SpeedupExperiment exp =
        sst::replaySpeedupTrace(sst::SimParams{}, reader);
    printExperiment(exp);
    if (!quiet)
        std::printf("replayed %s\n", inPath.c_str());
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    std::string inPath;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--in") {
            inPath = argValue(argc, argv, i);
        } else {
            usage();
            sst::fatal("unknown info argument '" + arg + "'");
        }
    }
    if (inPath.empty())
        sst::fatal("info needs --in FILE");

    const sst::TraceReader reader(inPath);
    const sst::trace::TraceMeta &meta = reader.meta();
    std::printf("file                %s\n", inPath.c_str());
    std::printf("format_version      %u\n", meta.version);
    std::printf("benchmark           %s\n", meta.label.c_str());
    std::printf("threads             %d\n", meta.nthreads);
    std::printf("profile_hash        %016" PRIx64 "\n", meta.profileHash);
    std::printf("sched_policy        %s\n",
                sst::schedPolicyLabel(meta.schedPolicy));
    std::printf("sched_seed          %" PRIu64 "\n", meta.schedSeed);
    std::uint64_t total_ops = 0, total_bytes = 0;
    for (int s = 0; s < reader.nstreams(); ++s) {
        const bool baseline = s == meta.nthreads;
        std::printf("stream %-3d %s  %12" PRIu64 " ops  %12" PRIu64
                    " bytes\n",
                    s, baseline ? "(baseline)" : "          ",
                    reader.opCount(s), reader.streamBytes(s));
        total_ops += reader.opCount(s);
        total_bytes += reader.streamBytes(s);
    }
    std::printf("total               %" PRIu64 " ops, %" PRIu64
                " encoded bytes (%.2f bytes/op)\n",
                total_ops, total_bytes,
                static_cast<double>(total_bytes) /
                    static_cast<double>(total_ops));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string cmd = argv[1];
    try {
        if (cmd == "record")
            return cmdRecord(argc, argv);
        if (cmd == "replay")
            return cmdReplay(argc, argv);
        if (cmd == "info")
            return cmdInfo(argc, argv);
        if (cmd == "--help" || cmd == "-h") {
            usage();
            return 0;
        }
        usage();
        sst::fatal("unknown subcommand '" + cmd + "'");
    } catch (const std::exception &e) {
        sst::fatal(e.what());
    }
}
