/**
 * @file
 * Profile calibration tool: for every benchmark with a parallelism cap,
 * bisect the cap until the measured 16-thread speedup matches the
 * paper's Figure 6 value, then print the tuned caps for transfer back
 * into profile.cc. Maintenance tool, not a paper figure.
 */

#include <cmath>
#include <cstdio>

#include "core/experiment.hh"
#include "workload/profile.hh"

namespace {

double
measure(const sst::BenchmarkProfile &profile, const sst::RunResult &base)
{
    sst::SimParams params;
    params.ncores = 16;
    return sst::runWithBaseline(params, profile, 16, base).actualSpeedup;
}

} // namespace

int
main()
{
    for (const auto &orig : sst::benchmarkSuite()) {
        if (orig.parallelismCap <= 0.0) {
            std::printf("%-22s cap: (none)\n", orig.label().c_str());
            continue;
        }
        sst::BenchmarkProfile p = orig;
        sst::SimParams params;
        const sst::RunResult base = sst::runSingleThreaded(params, p);

        double lo = p.paperSpeedup16 * 0.9;
        double hi = std::min(28.0, p.paperSpeedup16 * 3.2);
        double best_cap = p.parallelismCap;
        double best_err = 1e9;
        for (int it = 0; it < 9; ++it) {
            const double cap = 0.5 * (lo + hi);
            p.parallelismCap = cap;
            const double s = measure(p, base);
            const double err = s - p.paperSpeedup16;
            if (std::fabs(err) < best_err) {
                best_err = std::fabs(err);
                best_cap = cap;
            }
            if (std::fabs(err) < 0.05)
                break;
            if (err < 0)
                lo = cap;
            else
                hi = cap;
        }
        p.parallelismCap = best_cap;
        const double s = measure(p, base);
        std::printf("%-22s cap: %5.2f -> speedup %5.2f (paper %5.2f)\n",
                    orig.label().c_str(), best_cap, s, orig.paperSpeedup16);
    }
    return 0;
}
