/**
 * @file
 * The `sweep` CLI: express experiment grids (profiles x thread counts x
 * LLC sizes) on the command line and execute them on the parallel
 * driver with on-disk result memoization.
 *
 *   sweep --profiles all --threads 2,4,8,16 --llc 1M,2M,4M,8M \
 *         --jobs 8 --csv out.csv
 *
 * A repeated invocation with the same grid replays entirely from the
 * cache (see --cache-dir); change any parameter and only the affected
 * jobs re-run. At a single thread count the per-benchmark speedup/error
 * table matches the serial `suite_sweep` bit for bit.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "cli_common.hh"
#include "core/classify.hh"
#include "sched/policy.hh"
#include "driver/sweep.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "workload/profile.hh"

namespace {

using sst::cli::argValue;

void
usage()
{
    std::printf(
        "usage: sweep [options]\n"
        "  --profiles all|A,B,...  benchmark labels (default: all)\n"
        "  --threads LIST          thread counts, e.g. 2,4,8,16 "
        "(default: 16)\n"
        "  --llc LIST              LLC sizes, e.g. 1M,2M,4M,8M "
        "(default: params default)\n"
        "  --jobs N                worker threads (default: hardware)\n"
        "  --seed-offset K         replication RNG stream (default: 0)\n"
        "  --cache-dir DIR         result cache (default: .sst-cache)\n"
        "  --no-cache              disable the result cache\n"
        "  --refresh               re-run and overwrite cached results\n"
        "  --trace-dir DIR         replay recorded op traces from DIR\n"
        "                          (see `trace record --trace-dir`)\n"
        "  --sched POLICY          scheduler policy (default:\n"
        "                          affinity-fifo)\n"
        "  --sched-seed K          RNG stream for --sched random\n"
        "  --csv FILE              write results as CSV\n"
        "  --json FILE             write results as JSON\n"
        "  --quiet                 suppress the result table\n"
        "scheduler policies: %s\n",
        sst::allSchedPolicyLabelsJoined().c_str());
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        sst::fatal("cannot write " + path);
    out << content;
    std::printf("wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    sst::SweepGrid grid;
    grid.profiles = sst::allProfileLabels();

    sst::DriverOptions opts;
    opts.jobs = 0; // hardware concurrency
    opts.cacheDir = ".sst-cache";
    std::string csvPath, jsonPath;
    bool quiet = false;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--profiles") {
                const std::string v = argValue(argc, argv, i);
                if (v != "all")
                    grid.profiles = sst::parseLabelList(v);
            } else if (arg == "--threads") {
                grid.threads = sst::parseIntList(argValue(argc, argv, i));
            } else if (arg == "--llc") {
                grid.llcBytes =
                    sst::parseSizeList(argValue(argc, argv, i));
            } else if (arg == "--jobs") {
                opts.jobs = sst::cli::parseInt(
                    "--jobs", argValue(argc, argv, i), 0, 1 << 20);
            } else if (arg == "--seed-offset") {
                grid.seedOffset = sst::cli::parseU64(
                    "--seed-offset", argValue(argc, argv, i));
            } else if (arg == "--cache-dir") {
                opts.cacheDir = argValue(argc, argv, i);
            } else if (arg == "--no-cache") {
                opts.cacheDir.clear();
            } else if (arg == "--refresh") {
                opts.refresh = true;
            } else if (arg == "--trace-dir") {
                opts.traceDir = argValue(argc, argv, i);
            } else if (arg == "--sched") {
                grid.baseParams.schedPolicy =
                    sst::parseSchedPolicy(argValue(argc, argv, i));
            } else if (arg == "--sched-seed") {
                grid.baseParams.schedSeed = sst::cli::parseU64(
                    "--sched-seed", argValue(argc, argv, i));
            } else if (arg == "--csv") {
                csvPath = argValue(argc, argv, i);
            } else if (arg == "--json") {
                jsonPath = argValue(argc, argv, i);
            } else if (arg == "--quiet") {
                quiet = true;
            } else if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else {
                usage();
                sst::fatal("unknown argument '" + arg + "'");
            }
        }

        if (grid.baseParams.schedSeed != 0 &&
            grid.baseParams.schedPolicy != sst::SchedPolicy::kRandom) {
            sst::fatal("--sched-seed only affects --sched random; the "
                       "seed would be silently ignored");
        }

        const std::vector<sst::JobSpec> jobs = sst::expandGrid(grid);
        sst::ExperimentDriver driver(opts);
        const std::vector<sst::JobResult> results = driver.runBatch(jobs);
        const sst::BatchStats &stats = driver.stats();

        if (!quiet) {
            const bool showLlc = !grid.llcBytes.empty();
            sst::TextTable table;
            std::vector<std::string> header = {"benchmark", "threads"};
            if (showLlc)
                header.push_back("llc");
            for (const char *c : {"paper", "actual", "estimated", "err",
                                  "1st", "2nd", "3rd", "base", "pos",
                                  "netneg", "mem", "spin", "yield"})
                header.push_back(c);
            table.setHeader(header);

            for (std::size_t i = 0; i < jobs.size(); ++i) {
                const sst::JobSpec &s = jobs[i];
                const sst::JobResult &r = results[i];
                std::vector<std::string> row = {
                    s.profile.label(), std::to_string(s.nthreads)};
                if (showLlc)
                    row.push_back(
                        sst::fmtBytes(s.params.cache.llcBytes));
                if (!r.ok()) {
                    row.push_back("FAILED: " + r.error);
                    while (row.size() < header.size())
                        row.push_back("-");
                    table.addRow(row);
                    continue;
                }
                const sst::SpeedupExperiment &e = r.exp;
                const auto ranked = sst::rankedDelimiters(e.stack);
                auto comp = [&](std::size_t k) {
                    return k < ranked.size()
                               ? std::string(
                                     sst::shortComponentName(ranked[k]))
                               : std::string("-");
                };
                row.push_back(
                    sst::fmtDouble(s.profile.paperSpeedup16, 2));
                row.push_back(sst::fmtDouble(e.actualSpeedup, 2));
                row.push_back(sst::fmtDouble(e.estimatedSpeedup, 2));
                row.push_back(sst::fmtPercent(e.error, 1));
                row.push_back(comp(0));
                row.push_back(comp(1));
                row.push_back(comp(2));
                row.push_back(sst::fmtDouble(e.stack.baseSpeedup, 2));
                row.push_back(sst::fmtDouble(e.stack.posLlc, 2));
                row.push_back(sst::fmtDouble(e.stack.netNegLlc(), 2));
                row.push_back(sst::fmtDouble(e.stack.negMem, 2));
                row.push_back(sst::fmtDouble(e.stack.spin, 2));
                row.push_back(sst::fmtDouble(e.stack.yield, 2));
                table.addRow(row);
            }
            std::printf("%s\n", table.render().c_str());

            sst::RunningStat err;
            for (const sst::JobResult &r : results)
                if (r.ok())
                    err.add(std::fabs(r.exp.error));
            if (err.count() > 0)
                std::printf("average absolute error: %.1f%%\n",
                            err.mean() * 100.0);
        }

        std::printf(
            "batch: %zu jobs, %zu executed, %zu cached, %zu failed, "
            "%zu baselines, %zu trace replays, %d workers\n",
            stats.total, stats.executed, stats.cached, stats.failed,
            stats.baselinesComputed, stats.traceReplays,
            driver.workerCount());

        if (!csvPath.empty())
            writeFile(csvPath, sst::sweepCsv(jobs, results));
        if (!jsonPath.empty())
            writeFile(jsonPath, sst::sweepJson(jobs, results));

        return stats.failed == 0 ? 0 : 2;
    } catch (const std::exception &e) {
        sst::fatal(e.what());
    }
}
