/**
 * @file
 * The `sweep` CLI: a thin compatibility shell over `sst sweep` (the
 * implementation lives in bench/cli_commands.cc and is shared with the
 * unified `sst` binary, so flags and output cannot drift).
 *
 *   sweep --profiles all --threads 2,4,8,16 --llc 1M,2M,4M,8M \
 *         --jobs 8 --csv out.csv
 *
 * A repeated invocation with the same grid replays entirely from the
 * cache (see --cache-dir); change any parameter and only the affected
 * jobs re-run. At a single thread count the per-benchmark speedup/error
 * table matches the serial `suite_sweep` bit for bit.
 */

#include "cli_commands.hh"

int
main(int argc, char **argv)
{
    return sst::cli::sweepMain(argc, argv, 1);
}
