/**
 * @file
 * Figure 5: speedup stacks for blackscholes, facesim and cholesky at 2,
 * 4, 8 and 16 threads, rendered as ASCII stacked bars plus the exact
 * component table (CSV) for external plotting.
 */

#include <cstdio>
#include <vector>

#include "cli_common.hh"
#include "core/experiment.hh"
#include "core/render.hh"
#include "workload/profile.hh"

int
main(int argc, char **argv)
{
    const sst::cli::BenchOptions o =
        sst::cli::parseBenchArgs(argc, argv, "fig05_speedup_stacks", false);
    const std::vector<std::string> benchmarks = {
        "blackscholes_medium", "facesim_medium", "cholesky"};
    const std::vector<int> threads = {2, 4, 8, 16};

    std::printf("Figure 5: speedup stacks as a function of the number of "
                "threads\n\n");

    for (const auto &label : benchmarks) {
        const sst::BenchmarkProfile &profile = sst::profileByLabel(label);
        const sst::RunResult baseline =
            sst::runSingleThreaded(o.params, profile);

        std::vector<sst::SpeedupStack> stacks;
        std::vector<std::string> labels;
        for (const int n : threads) {
            sst::SimParams params = o.params;
            params.ncores = n;
            const sst::SpeedupExperiment exp =
                sst::runWithBaseline(params, profile, n, baseline);
            stacks.push_back(exp.stack);
            labels.push_back(std::to_string(n) + "thr");
        }
        std::printf("== %s ==\n%s\n", label.c_str(),
                    sst::renderStackBars(stacks, labels, 20).c_str());
        std::printf("%s\n", sst::renderStacksCsv(stacks, labels).c_str());
    }
    return 0;
}
