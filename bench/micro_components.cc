/**
 * @file
 * google-benchmark microbenchmarks of the toolkit's building blocks:
 * tag array probes, ATD accesses, DRAM scheduling, spin detection, the
 * workload generator and a complete small simulation. Useful to keep
 * the simulator fast enough for the 140-run validation sweeps.
 */

#include <benchmark/benchmark.h>

#include "cache/atd.hh"
#include "cache/hierarchy.hh"
#include "cache/set_assoc.hh"
#include "core/experiment.hh"
#include "mem/dram.hh"
#include "sync/spin_detect.hh"
#include "util/rng.hh"
#include "workload/profile.hh"
#include "workload/thread_program.hh"

namespace {

void
BM_SetAssocAccess(benchmark::State &state)
{
    sst::SetAssocArray array(2 * 1024 * 1024, 16);
    sst::Rng rng(42);
    for (auto _ : state) {
        const sst::Addr line = rng.below(1 << 16);
        if (sst::TagEntry *e = array.findValid(line))
            array.touch(*e);
        else
            array.insert(line);
    }
}
BENCHMARK(BM_SetAssocAccess);

void
BM_AtdAccess(benchmark::State &state)
{
    sst::Atd atd(2 * 1024 * 1024, 16,
                 static_cast<int>(state.range(0)));
    sst::Rng rng(42);
    for (auto _ : state)
        benchmark::DoNotOptimize(atd.access(rng.below(1 << 16)));
}
BENCHMARK(BM_AtdAccess)->Arg(1)->Arg(32);

void
BM_HierarchyAccess(benchmark::State &state)
{
    sst::CacheHierarchy hier(16, sst::CacheParams{});
    sst::Rng rng(42);
    for (auto _ : state) {
        const sst::CoreId core = static_cast<int>(rng.below(16));
        benchmark::DoNotOptimize(
            hier.access(core, rng.below(1 << 22) * 64, rng.chance(0.1)));
    }
}
BENCHMARK(BM_HierarchyAccess);

void
BM_DramAccess(benchmark::State &state)
{
    sst::DramModel dram(16, sst::DramParams{});
    sst::Rng rng(42);
    sst::Cycles now = 0;
    for (auto _ : state) {
        now += 20;
        benchmark::DoNotOptimize(dram.access(
            static_cast<int>(rng.below(16)), rng.below(1 << 28), now));
    }
}
BENCHMARK(BM_DramAccess);

void
BM_TianObserveLoad(benchmark::State &state)
{
    sst::TianSpinDetector tian;
    sst::Rng rng(42);
    sst::Cycles now = 0;
    for (auto _ : state) {
        now += 5;
        benchmark::DoNotOptimize(tian.observeLoad(
            0x40000 + rng.below(16) * 4, rng.below(256), 0, false, now));
    }
}
BENCHMARK(BM_TianObserveLoad);

void
BM_ThreadProgramNextOp(benchmark::State &state)
{
    const sst::BenchmarkProfile &profile =
        sst::profileByLabel("cholesky");
    sst::ThreadProgram prog(profile, 0, 16);
    for (auto _ : state) {
        sst::Op op = prog.nextOp();
        benchmark::DoNotOptimize(op);
    }
}
BENCHMARK(BM_ThreadProgramNextOp);

void
BM_FullSimulation4Threads(benchmark::State &state)
{
    const sst::BenchmarkProfile &profile =
        sst::profileByLabel("blackscholes_small");
    for (auto _ : state) {
        sst::SimParams params;
        params.ncores = 4;
        benchmark::DoNotOptimize(sst::simulate(params, profile, 4));
    }
}
BENCHMARK(BM_FullSimulation4Threads)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
