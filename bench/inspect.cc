/**
 * @file
 * Diagnostic deep-dive for one (benchmark, thread count) pair: cache and
 * DRAM ground truth per core, raw accounting counters per thread, the
 * assembled stack, and single- vs multi-threaded run vitals. Not a paper
 * figure; the workbench behind all of them.
 *
 * Usage: inspect [benchmark_label] [nthreads]
 */

#include <cstdio>
#include <cstdlib>

#include "core/experiment.hh"
#include "core/render.hh"
#include "util/format.hh"
#include "workload/profile.hh"

int
main(int argc, char **argv)
{
    const std::string label = argc > 1 ? argv[1] : "blackscholes_medium";
    const int nthreads = argc > 2 ? std::atoi(argv[2]) : 16;

    sst::BenchmarkProfile profile = sst::profileByLabel(label);
    if (const char *cap = std::getenv("SST_CAP"))
        profile.parallelismCap = std::atof(cap);
    if (const char *ph = std::getenv("SST_PHASES"))
        profile.barrierPhases = std::atoi(ph);
    if (const char *sk = std::getenv("SST_SKEW"))
        profile.imbalanceSkew = std::atof(sk);
    if (const char *h = std::getenv("SST_PRIVHOT"))
        profile.privateHotBytes = std::strtoull(h, nullptr, 10) * 1024;
    if (const char *hf = std::getenv("SST_PRIVHOTFRAC"))
        profile.privateHotFrac = std::atof(hf);
    if (const char *sf = std::getenv("SST_SHAREDFRAC"))
        profile.sharedFrac = std::atof(sf);
    if (const char *mp = std::getenv("SST_MEM"))
        profile.memPerIter = std::atoi(mp);
    if (const char *pb = std::getenv("SST_PRIV"))
        profile.privateBytes = std::strtoull(pb, nullptr, 10) * 1024;
    sst::SimParams params;
    params.ncores = nthreads;
    if (const char *nc = std::getenv("SST_CORES"))
        params.ncores = std::atoi(nc);
    const sst::SpeedupExperiment exp =
        sst::runSpeedupExperiment(params, profile, nthreads);

    std::printf("== %s @ %d threads ==\n", label.c_str(), nthreads);
    std::printf("Ts=%llu Tp=%llu actual=%.2f estimated=%.2f err=%.1f%%\n",
                (unsigned long long)exp.ts, (unsigned long long)exp.tp,
                exp.actualSpeedup, exp.estimatedSpeedup,
                exp.error * 100.0);
    std::printf("instr ST=%llu MT=%llu spin=%llu parOv=%.1f%%\n\n",
                (unsigned long long)exp.single.totalInstructions,
                (unsigned long long)exp.parallel.totalInstructions,
                (unsigned long long)exp.parallel.totalSpinInstructions,
                exp.parOverheadMeasured * 100.0);

    auto dumpRun = [](const char *name, const sst::RunResult &run) {
        std::printf("-- %s --\n", name);
        sst::TextTable t;
        t.setHeader({"core", "l1acc", "l1hit%", "llcacc", "llchit%",
                     "dram", "rowhit", "rowconf", "coher", "wb"});
        for (int c = 0; c < run.ncores; ++c) {
            const auto &cs = run.cacheStats[(std::size_t)c];
            const auto &ds = run.dramStats[(std::size_t)c];
            t.addRow({std::to_string(c), std::to_string(cs.l1Accesses),
                      sst::fmtPercent(cs.l1Accesses
                                          ? (double)cs.l1Hits /
                                                cs.l1Accesses
                                          : 0.0),
                      std::to_string(cs.llcAccesses),
                      sst::fmtPercent(cs.llcAccesses
                                          ? (double)cs.llcHits /
                                                cs.llcAccesses
                                          : 0.0),
                      std::to_string(ds.accesses),
                      std::to_string(ds.rowHits),
                      std::to_string(ds.rowConflicts),
                      std::to_string(cs.coherencyMisses),
                      std::to_string(cs.writebacks)});
        }
        std::printf("%s\n", t.render().c_str());
    };
    dumpRun("single-threaded", exp.single);
    dumpRun("parallel", exp.parallel);

    std::printf("-- per-thread counters (parallel) --\n");
    sst::TextTable t;
    t.setHeader({"tid", "instr", "spinInstr", "missStall", "misses",
                 "negSampStall", "itHits", "busO", "bankO", "pageO",
                 "tian", "li", "yield", "gtSpin", "gtYield", "finish"});
    for (int i = 0; i < exp.parallel.nthreads; ++i) {
        const auto &c = exp.parallel.threads[(std::size_t)i];
        t.addRow({std::to_string(i), std::to_string(c.instructions),
                  std::to_string(c.spinInstructions),
                  std::to_string(c.llcLoadMissStall),
                  std::to_string(c.llcLoadMisses),
                  std::to_string(c.negLlcSampledStall),
                  std::to_string(c.interThreadHitsSampled),
                  std::to_string(c.busWaitOther),
                  std::to_string(c.bankWaitOther),
                  std::to_string(c.pageConflictOther),
                  std::to_string(c.spinDetectedTian),
                  std::to_string(c.spinDetectedLi),
                  std::to_string(c.yieldCycles),
                  std::to_string(c.gtSpin()), std::to_string(c.gtYield()),
                  std::to_string(c.finishTime)});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("%s\n",
                sst::renderStackTable(exp.stack, exp.actualSpeedup).c_str());
    return 0;
}
