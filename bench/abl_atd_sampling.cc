/**
 * @file
 * ATD sampling-factor ablation (Sections 4.1/4.2 + 4.7): sweep the
 * set-sampling factor and report estimation accuracy against hardware
 * cost. Full shadow tags (factor 1) give the most faithful
 * interference classification at ~100x the area; the paper's operating
 * point samples sparsely and extrapolates.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "accounting/hw_cost.hh"
#include "core/experiment.hh"
#include "util/format.hh"
#include "util/stats.hh"
#include "workload/profile.hh"

int
main()
{
    const std::vector<int> factors = {1, 8, 32, 128};
    const std::vector<std::string> benchmarks = {
        "cholesky", "facesim_medium", "canneal_small", "radix"};

    std::printf("ATD sampling factor: estimation accuracy vs hardware "
                "cost (16 threads)\n\n");

    sst::TextTable table;
    table.setHeader({"sampling", "avg |error|", "max |error|",
                     "ATD bytes/core"});
    for (const int f : factors) {
        sst::RunningStat err;
        for (const auto &label : benchmarks) {
            const sst::BenchmarkProfile &profile =
                sst::profileByLabel(label);
            sst::SimParams params;
            params.ncores = 16;
            params.cache.atdSamplingFactor = f;
            const sst::SpeedupExperiment exp =
                sst::runSpeedupExperiment(params, profile, 16);
            err.add(std::fabs(exp.error));
        }
        sst::HwCostConfig cfg;
        cfg.atdSamplingFactor = f;
        table.addRow({std::to_string(f), sst::fmtPercent(err.mean(), 1),
                      sst::fmtPercent(err.max(), 1),
                      std::to_string(sst::computeHwCost(cfg).atdBytes())});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
