/**
 * @file
 * Figure 9: cholesky's negative, positive and net LLC interference as a
 * function of LLC size (2MB default, 4MB, 8MB, 16MB) at 16 cores. The
 * paper's observation: negative interference shrinks with a larger LLC
 * (fewer capacity conflicts) while positive interference stays roughly
 * constant (a program property), so the net component shrinks and can
 * turn negative (i.e., sharing becomes a net win).
 *
 * The four LLC configurations execute concurrently on the parallel
 * experiment driver.
 *
 * Usage: fig09_llc_size_sweep [jobs] [--sched POLICY] [--jobs N]
 */

#include <cstdio>
#include <vector>

#include "cli_common.hh"
#include "driver/sweep.hh"
#include "util/format.hh"
#include "workload/profile.hh"

int
main(int argc, char **argv)
{
    const sst::cli::BenchOptions o = sst::cli::parseBenchArgs(
        argc, argv, "fig09_llc_size_sweep [jobs]");
    std::printf("Figure 9: cholesky LLC interference vs LLC size "
                "(16 cores)\n\n");

    sst::SweepGrid grid;
    grid.profiles = {"cholesky"};
    grid.threads = {16};
    grid.llcBytes = sst::parseSizeList("2M,4M,8M,16M");
    grid.baseParams = o.params;
    grid.seedOffset = o.seedOffset;

    sst::DriverOptions opts;
    opts.jobs = o.positionals.empty() ? o.jobs
                                      : static_cast<int>(o.positionals[0]);

    const std::vector<sst::JobSpec> specs = sst::expandGrid(grid);
    const std::vector<sst::JobResult> results =
        sst::runExperimentBatch(specs, opts);

    sst::TextTable table;
    table.setHeader({"LLC size", "neg cache interference",
                     "pos cache interference", "net interference"});
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (!results[i].ok()) {
            std::fprintf(stderr, "job failed: %s\n",
                         results[i].error.c_str());
            continue;
        }
        const sst::SpeedupExperiment &exp = results[i].exp;
        table.addRow({sst::fmtBytes(specs[i].params.cache.llcBytes),
                      sst::fmtDouble(exp.stack.negLlc, 3),
                      sst::fmtDouble(exp.stack.posLlc, 3),
                      sst::fmtDouble(exp.stack.netNegLlc(), 3)});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
