/**
 * @file
 * Figure 9: cholesky's negative, positive and net LLC interference as a
 * function of LLC size (2MB default, 4MB, 8MB, 16MB) at 16 cores. The
 * paper's observation: negative interference shrinks with a larger LLC
 * (fewer capacity conflicts) while positive interference stays roughly
 * constant (a program property), so the net component shrinks and can
 * turn negative (i.e., sharing becomes a net win).
 */

#include <cstdio>
#include <vector>

#include "core/experiment.hh"
#include "util/format.hh"
#include "workload/profile.hh"

int
main()
{
    const sst::BenchmarkProfile &profile = sst::profileByLabel("cholesky");
    const std::vector<std::uint64_t> sizes_mb = {2, 4, 8, 16};

    std::printf("Figure 9: cholesky LLC interference vs LLC size "
                "(16 cores)\n\n");

    sst::TextTable table;
    table.setHeader({"LLC size", "neg cache interference",
                     "pos cache interference", "net interference"});
    for (const std::uint64_t mb : sizes_mb) {
        sst::SimParams params;
        params.ncores = 16;
        params.cache.llcBytes = mb * 1024 * 1024;
        const sst::SpeedupExperiment exp =
            sst::runSpeedupExperiment(params, profile, 16);
        table.addRow({std::to_string(mb) + "MB",
                      sst::fmtDouble(exp.stack.negLlc, 3),
                      sst::fmtDouble(exp.stack.posLlc, 3),
                      sst::fmtDouble(exp.stack.netNegLlc(), 3)});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
