#!/usr/bin/env python3
"""Compare a perf_engine run against the checked-in baseline.

Two kinds of check, per (ncores, nthreads) config:

* determinism: `events`, `sim_cycles`, `nthreads` and the engine
  counters (`wakes`, `preemptions`, `heap_ops`) must match the baseline
  EXACTLY. The simulator is deterministic — a drift here is a
  behavioural change that must be reviewed (and, if intended, the
  baseline regenerated with --update), never a flaky perf blip.
  Counters absent from the baseline (older format) are skipped.
* throughput: `events_per_sec` must be within --tolerance (default 15%)
  of the baseline. Only a slowdown fails; faster is fine (and worth
  refreshing the baseline for, so future regressions are caught from
  the new level).

Usage:
    check_perf.py --baseline tests/data/BENCH_engine.json \
                  --current BENCH_engine.json [--tolerance 0.15]
    check_perf.py --update --baseline ... --current ...   # refresh

Exit codes: 0 ok, 1 regression/mismatch, 2 bad input.
"""

import argparse
import json
import shutil
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    if data.get("bench") != "engine_event_loop" or "configs" not in data:
        print(f"error: {path} is not a perf_engine report", file=sys.stderr)
        sys.exit(2)
    return data


def by_cores(report):
    return {cfg["ncores"]: cfg for cfg in report["configs"]}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed events_per_sec slowdown (default 0.15)")
    ap.add_argument("--update", action="store_true",
                    help="copy --current over --baseline and exit")
    args = ap.parse_args()

    if args.update:
        load(args.current)  # refuse to install garbage as the baseline
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated: {args.current} -> {args.baseline}")
        return 0

    base = by_cores(load(args.baseline))
    cur = by_cores(load(args.current))

    failures = []
    for ncores, b in sorted(base.items()):
        c = cur.get(ncores)
        if c is None:
            failures.append(f"ncores={ncores}: missing from current run")
            continue
        deterministic = ("nthreads", "events", "sim_cycles",
                         "wakes", "preemptions", "heap_ops")
        for key in deterministic:
            if key not in b:
                continue  # older baseline without the engine counters
            if c.get(key) != b.get(key):
                failures.append(
                    f"ncores={ncores}: {key} drifted "
                    f"(baseline {b.get(key)}, current {c.get(key)}) — "
                    f"deterministic counters must match exactly")
        floor = b["events_per_sec"] * (1.0 - args.tolerance)
        ratio = c["events_per_sec"] / b["events_per_sec"]
        status = "ok" if c["events_per_sec"] >= floor else "REGRESSION"
        print(f"ncores={ncores}: {c['events_per_sec']:,.0f} ev/s vs "
              f"baseline {b['events_per_sec']:,.0f} "
              f"({ratio:.2%}) {status}")
        if c["events_per_sec"] < floor:
            failures.append(
                f"ncores={ncores}: events_per_sec "
                f"{c['events_per_sec']:,.0f} is below the allowed floor "
                f"{floor:,.0f} ({ratio:.2%} of baseline, tolerance "
                f"{args.tolerance:.0%})")
    for ncores in sorted(set(cur) - set(base)):
        print(f"ncores={ncores}: new config (not in baseline), skipped")

    if failures:
        print("\nperf check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        print("(intended change? regenerate with --update)",
              file=sys.stderr)
        return 1
    print("perf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
