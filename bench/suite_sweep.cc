/**
 * @file
 * Whole-suite sweep: run every benchmark profile at 16 threads and print
 * measured vs paper speedup, the estimation error and the top stack
 * components. Not a paper figure by itself, but the working table behind
 * Figures 4 and 6 — and the tool used to tune profiles.
 *
 * Jobs execute on the parallel experiment driver; results are identical
 * to the old serial loop for any worker count (jobs are pure functions
 * of their specs).
 *
 * Usage: suite_sweep [nthreads] [jobs] [--sched POLICY]
 */

#include <cmath>
#include <cstdio>

#include "cli_common.hh"
#include "core/classify.hh"
#include "driver/sweep.hh"
#include "util/format.hh"
#include "workload/profile.hh"

int
main(int argc, char **argv)
{
    const sst::cli::BenchOptions o = sst::cli::parseBenchArgs(
        argc, argv, "suite_sweep [nthreads] [jobs]");
    const int nthreads =
        o.positionals.empty() ? 16 : static_cast<int>(o.positionals[0]);

    sst::SweepGrid grid;
    grid.profiles = sst::allProfileLabels();
    grid.threads = {nthreads};
    grid.baseParams = o.params;
    grid.seedOffset = o.seedOffset;

    sst::DriverOptions opts;
    opts.jobs = o.positionals.size() > 1
                    ? static_cast<int>(o.positionals[1])
                    : o.jobs;

    const std::vector<sst::JobSpec> specs = sst::expandGrid(grid);
    const std::vector<sst::JobResult> results =
        sst::runExperimentBatch(specs, opts);

    sst::TextTable table;
    table.setHeader({"benchmark", "paper", "actual", "estimated", "err",
                     "1st", "2nd", "3rd", "base", "pos", "netneg", "mem",
                     "spin", "yield"});

    double abs_err_sum = 0.0;
    int count = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const sst::BenchmarkProfile &profile =
            specs[i].workload.groups[0].profile;
        if (!results[i].ok()) {
            std::fprintf(stderr, "%s failed: %s\n",
                         profile.label().c_str(),
                         results[i].error.c_str());
            continue;
        }
        const sst::SpeedupExperiment &exp = results[i].exp;
        const auto ranked = sst::rankedDelimiters(exp.stack);
        auto comp = [&](std::size_t k) {
            return k < ranked.size()
                       ? std::string(sst::shortComponentName(ranked[k]))
                       : std::string("-");
        };
        table.addRow({profile.label(),
                      sst::fmtDouble(profile.paperSpeedup16, 2),
                      sst::fmtDouble(exp.actualSpeedup, 2),
                      sst::fmtDouble(exp.estimatedSpeedup, 2),
                      sst::fmtPercent(exp.error, 1), comp(0), comp(1),
                      comp(2), sst::fmtDouble(exp.stack.baseSpeedup, 2),
                      sst::fmtDouble(exp.stack.posLlc, 2),
                      sst::fmtDouble(exp.stack.netNegLlc(), 2),
                      sst::fmtDouble(exp.stack.negMem, 2),
                      sst::fmtDouble(exp.stack.spin, 2),
                      sst::fmtDouble(exp.stack.yield, 2)});
        abs_err_sum += std::abs(exp.error);
        ++count;
    }
    std::printf("suite sweep at %d threads\n\n%s\n", nthreads,
                table.render().c_str());
    std::printf("average absolute error: %.1f%%\n",
                abs_err_sum / count * 100.0);
    return 0;
}
