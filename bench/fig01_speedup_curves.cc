/**
 * @file
 * Figure 1: speedup as a function of the number of cores for
 * blackscholes, facesim (PARSEC) and cholesky (SPLASH-2), for 1, 2, 4,
 * 8 and 16 threads.
 *
 * The 3 x 4 grid executes on the parallel experiment driver, which
 * computes each benchmark's 1-thread baseline exactly once and shares
 * it across all of that benchmark's thread counts (the 1-thread row is
 * by definition 1.00 and is not re-simulated).
 *
 * Usage: fig01_speedup_curves [jobs] [--sched POLICY] [--jobs N]
 */

#include <cstdio>
#include <vector>

#include "cli_common.hh"
#include "driver/sweep.hh"
#include "util/format.hh"
#include "workload/profile.hh"

int
main(int argc, char **argv)
{
    const sst::cli::BenchOptions o = sst::cli::parseBenchArgs(
        argc, argv, "fig01_speedup_curves [jobs]");
    const std::vector<std::string> benchmarks = {
        "blackscholes_medium", "facesim_medium", "cholesky"};
    const std::vector<int> threads = {2, 4, 8, 16};

    std::printf("Figure 1: speedup vs number of threads/cores\n\n");

    sst::SweepGrid grid;
    grid.profiles = benchmarks;
    grid.threads = threads;
    grid.baseParams = o.params;
    grid.seedOffset = o.seedOffset;

    sst::DriverOptions opts;
    opts.jobs = o.positionals.empty() ? o.jobs
                                      : static_cast<int>(o.positionals[0]);

    const std::vector<sst::JobSpec> specs = sst::expandGrid(grid);
    sst::BatchStats stats;
    const std::vector<sst::JobResult> results =
        sst::runExperimentBatch(specs, opts, &stats);

    sst::TextTable table;
    table.setHeader({"benchmark", "1", "2", "4", "8", "16"});
    // expandGrid() is profile-major: one contiguous block per benchmark.
    for (std::size_t base = 0; base < specs.size();
         base += threads.size()) {
        std::vector<std::string> row = {specs[base].label(),
                                        "1.00"};
        for (std::size_t i = 0; i < threads.size(); ++i) {
            const sst::JobResult &r = results[base + i];
            row.push_back(r.ok()
                              ? sst::fmtDouble(r.exp.actualSpeedup, 2)
                              : std::string("fail"));
        }
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("(%zu jobs, %zu shared baselines)\n", stats.total,
                stats.baselinesComputed);
    return 0;
}
