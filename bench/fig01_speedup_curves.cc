/**
 * @file
 * Figure 1: speedup as a function of the number of cores for
 * blackscholes, facesim (PARSEC) and cholesky (SPLASH-2), for 1, 2, 4,
 * 8 and 16 threads.
 */

#include <cstdio>
#include <vector>

#include "core/experiment.hh"
#include "util/format.hh"
#include "workload/profile.hh"

int
main()
{
    const std::vector<std::string> benchmarks = {
        "blackscholes_medium", "facesim_medium", "cholesky"};
    const std::vector<int> threads = {1, 2, 4, 8, 16};

    std::printf("Figure 1: speedup vs number of threads/cores\n\n");

    sst::TextTable table;
    table.setHeader({"benchmark", "1", "2", "4", "8", "16"});
    for (const auto &label : benchmarks) {
        const sst::BenchmarkProfile &profile = sst::profileByLabel(label);
        sst::SimParams params;
        const sst::RunResult baseline =
            sst::runSingleThreaded(params, profile);

        std::vector<std::string> row = {label, "1.00"};
        for (std::size_t i = 1; i < threads.size(); ++i) {
            sst::SimParams p;
            p.ncores = threads[i];
            const sst::SpeedupExperiment exp = sst::runWithBaseline(
                p, profile, threads[i], baseline);
            row.push_back(sst::fmtDouble(exp.actualSpeedup, 2));
        }
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
