/**
 * @file
 * Small helpers shared by the bench/ command-line tools (`sweep`,
 * `trace`, ...). Header-only; CMake builds one executable per bench
 * .cc, so shared code lives here rather than in the sst library.
 */

#ifndef SST_BENCH_CLI_COMMON_HH
#define SST_BENCH_CLI_COMMON_HH

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/params.hh"
#include "spec/machine_keys.hh"
#include "spec/spec.hh"
#include "util/logging.hh"

namespace sst {
namespace cli {

/** Value of flag argv[i], advancing i; fatal when the value is missing. */
inline const char *
argValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        fatal(std::string("missing value for ") + argv[i]);
    return argv[++i];
}

/** Strict base-10 u64; fatal on garbage instead of silently reading 0
 * or wrapping a negative through strtoull. */
inline std::uint64_t
parseU64(const char *flag, const char *text)
{
    try {
        return parseU64Text(flag, text);
    } catch (const std::invalid_argument &e) {
        fatal(e.what());
    }
}

/** Strict base-10 int in [min, max]; fatal on garbage or out of range. */
inline int
parseInt(const char *flag, const char *text, long min, long max)
{
    errno = 0;
    char *end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (errno != 0 || !end || end == text || *end != '\0' || v < min ||
        v > max) {
        fatal(std::string("bad value for ") + flag + ": '" + text +
              "' (expected " + std::to_string(min) + ".." +
              std::to_string(max) + ")");
    }
    return static_cast<int>(v);
}

/**
 * Options shared by every figure/table bench. Parsed once here so the
 * benches stop hand-rolling argv loops — and all of them gain
 * `--sched`, `--sched-seed` and `--seed-offset` for free, routed
 * through the same applySpecValue() path spec files use.
 */
struct BenchOptions
{
    SimParams params;            ///< --sched/--sched-seed applied
    int jobs = 0;                ///< --jobs (0 = hardware concurrency)
    std::uint64_t seedOffset = 0; ///< --seed-offset
    /** Bare integers, in order (legacy positional [nthreads] [jobs]). */
    std::vector<long> positionals;
};

/**
 * Parse the common bench argv: flags via the spec key machinery,
 * bare integers into positionals (each bench interprets its own),
 * --help printing @p usage. Fatal (with the registry-sourced message)
 * on unknown flags or bad values. Benches that run their loop serially
 * (no experiment driver) pass @p driver_backed = false so --jobs and
 * worker-count positionals are rejected instead of silently ignored.
 */
inline BenchOptions
parseBenchArgs(int argc, char **argv, const char *usage,
               bool driver_backed = true)
{
    BenchOptions o;
    ExperimentSpec spec; // carries machine/sched/seed state while parsing
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        try {
            if (arg == "--jobs") {
                if (!driver_backed)
                    fatal("this bench runs serially; --jobs has no "
                          "effect here");
                o.jobs = parseInt("--jobs", argValue(argc, argv, i), 0,
                                  1 << 20);
            } else if (arg == "--sched") {
                applySpecValue(spec, "sched", argValue(argc, argv, i));
            } else if (arg == "--sched-seed") {
                applySpecValue(spec, "sched-seed",
                               argValue(argc, argv, i));
            } else if (arg == "--seed-offset") {
                applySpecValue(spec, "seed-offset",
                               argValue(argc, argv, i));
            } else if (arg.size() > 2 &&
                       arg.compare(0, 2, "--") == 0 &&
                       arg.find('=') != std::string::npos) {
                // --machine.time-slice-cycles=8000 style. Only keys a
                // bench actually consumes are legal here — the sweep
                // axes (profiles/threads/...) are fixed per figure, and
                // silently dropping one would fake a result.
                const std::size_t eq = arg.find('=');
                const std::string key = arg.substr(2, eq - 2);
                if (key.compare(0, 8, "machine.") != 0 &&
                    key != "sched" && key != "sched-seed" &&
                    key != "seed-offset") {
                    fatal("'" + key + "' is not a machine/scheduler "
                          "key; this bench's grid is fixed (use the "
                          "sst CLI for arbitrary specs)");
                }
                applySpecValue(spec, key, arg.substr(eq + 1));
            } else if (arg == "--help" || arg == "-h") {
                std::printf("usage: %s\n", usage);
                if (driver_backed)
                    std::printf("  [N]                     positional "
                                "worker/thread counts (bench-specific)\n"
                                "  --jobs N                worker "
                                "threads (default: hardware)\n");
                std::printf("  --sched POLICY          scheduler policy\n"
                            "  --sched-seed K          RNG stream for "
                            "--sched random\n"
                            "  --seed-offset K         replication RNG "
                            "stream\n"
                            "  --KEY=VALUE             any machine/"
                            "scheduler spec key, e.g. "
                            "--machine.time-slice-cycles=8000\n");
                std::exit(0);
            } else if (!arg.empty() &&
                       (std::isdigit(static_cast<unsigned char>(
                            arg[0])) != 0)) {
                if (!driver_backed)
                    fatal("this bench runs serially and takes no "
                          "worker-count argument ('" + arg + "')");
                o.positionals.push_back(
                    parseInt("positional", arg.c_str(), 0, 1 << 20));
            } else {
                fatal("unknown argument '" + arg + "' (try --help)");
            }
        } catch (const std::invalid_argument &e) {
            fatal(e.what());
        }
    }
    if (spec.machine.schedSeed != 0 &&
        spec.machine.schedPolicy != SchedPolicy::kRandom) {
        fatal("--sched-seed only affects --sched random; the seed "
              "would be silently ignored");
    }
    o.params = spec.machine;
    o.seedOffset = spec.seedOffset;
    return o;
}

} // namespace cli
} // namespace sst

#endif // SST_BENCH_CLI_COMMON_HH
