/**
 * @file
 * Small helpers shared by the bench/ command-line tools (`sweep`,
 * `trace`, ...). Header-only; CMake builds one executable per bench
 * .cc, so shared code lives here rather than in the sst library.
 */

#ifndef SST_BENCH_CLI_COMMON_HH
#define SST_BENCH_CLI_COMMON_HH

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "util/logging.hh"

namespace sst {
namespace cli {

/** Value of flag argv[i], advancing i; fatal when the value is missing. */
inline const char *
argValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        fatal(std::string("missing value for ") + argv[i]);
    return argv[++i];
}

/** Strict base-10 u64; fatal on garbage instead of silently reading 0. */
inline std::uint64_t
parseU64(const char *flag, const char *text)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (errno != 0 || !end || end == text || *end != '\0')
        fatal(std::string("bad value for ") + flag + ": '" + text + "'");
    return v;
}

/** Strict base-10 int in [min, max]; fatal on garbage or out of range. */
inline int
parseInt(const char *flag, const char *text, long min, long max)
{
    errno = 0;
    char *end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (errno != 0 || !end || end == text || *end != '\0' || v < min ||
        v > max) {
        fatal(std::string("bad value for ") + flag + ": '" + text +
              "' (expected " + std::to_string(min) + ".." +
              std::to_string(max) + ")");
    }
    return static_cast<int>(v);
}

} // namespace cli
} // namespace sst

#endif // SST_BENCH_CLI_COMMON_HH
