/**
 * @file
 * Section 4.7 hardware cost table: bytes per core for the interference
 * accounting (ATD + ORA + event counters; the paper quotes 952 B from
 * [7]) and the Tian et al. load table (217 B), total ~1.1 KB per core
 * and ~18 KB for a 16-core CMP. Also sweeps the ATD sampling factor to
 * show the cost/accuracy design space (pairs with abl_atd_sampling).
 */

#include <cstdio>
#include <vector>

#include "accounting/hw_cost.hh"
#include "util/format.hh"

int
main()
{
    std::printf("Section 4.7: accounting hardware cost\n\n");

    const sst::HwCostBreakdown b = sst::computeHwCost();
    sst::TextTable table;
    table.setHeader({"structure", "bytes/core", "paper"});
    table.addRow({"ATD (sampled)", std::to_string(b.atdBytes()), "-"});
    table.addRow({"ORA", std::to_string(b.oraBytes()), "-"});
    table.addRow({"event counters", std::to_string(b.counterBytes()),
                  "-"});
    table.addRow({"interference accounting subtotal",
                  std::to_string(b.interferenceBytesPerCore()), "952"});
    table.addRow({"spin detection load table",
                  std::to_string(b.spinTableBytes()), "217"});
    table.addRule();
    table.addRow({"total per core",
                  std::to_string(b.totalBytesPerCore()), "~1.1KB"});
    table.addRow({"total 16-core CMP",
                  std::to_string(b.totalBytesChip(16)), "~18KB"});
    std::printf("%s\n", table.render().c_str());

    std::printf("ATD sampling factor sweep (cost side of the "
                "accuracy/cost trade-off):\n\n");
    sst::TextTable sweep;
    sweep.setHeader({"sampling factor", "monitored sets", "ATD bytes/core",
                     "total bytes/core"});
    for (const int f : std::vector<int>{8, 16, 32, 64, 128, 256}) {
        sst::HwCostConfig cfg;
        cfg.atdSamplingFactor = f;
        const sst::HwCostBreakdown c = sst::computeHwCost(cfg);
        sweep.addRow({std::to_string(f), std::to_string(2048 / f),
                      std::to_string(c.atdBytes()),
                      std::to_string(c.totalBytesPerCore())});
    }
    std::printf("%s\n", sweep.render().c_str());
    return 0;
}
