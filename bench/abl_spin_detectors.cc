/**
 * @file
 * Spin detector ablation (Section 4.3): compares the Tian et al.
 * load-based detector (the paper's choice, simpler hardware) against the
 * Li et al. backward-branch detector, and both against the simulator's
 * exact ground truth, on a spin-heavy benchmark (cholesky), a
 * barrier-heavy one (facesim) and a lock-free one (blackscholes).
 */

#include <cstdio>
#include <vector>

#include "core/experiment.hh"
#include "util/format.hh"
#include "workload/profile.hh"

int
main()
{
    const std::vector<std::string> benchmarks = {
        "cholesky", "facesim_medium", "blackscholes_medium"};

    std::printf("Spin detector ablation (16 threads, cycles summed over "
                "threads, in speedup units)\n\n");

    sst::TextTable table;
    table.setHeader({"benchmark", "ground truth spin", "Tian", "Li",
                     "est. speedup (Tian)", "est. speedup (Li)",
                     "actual"});
    for (const auto &label : benchmarks) {
        const sst::BenchmarkProfile &profile = sst::profileByLabel(label);
        sst::SimParams params;
        params.ncores = 16;
        const sst::RunResult baseline =
            sst::runSingleThreaded(params, profile);

        sst::ReportOptions tian = sst::defaultReportOptions(params);
        const sst::SpeedupExperiment exp_tian = sst::runWithBaseline(
            params, profile, 16, baseline, &tian);

        sst::ReportOptions li = tian;
        li.useLiDetector = true;
        const std::vector<sst::CycleComponents> li_comps =
            sst::computeComponents(exp_tian.parallel.threads,
                                   exp_tian.tp, li);
        const sst::SpeedupStack li_stack =
            sst::buildSpeedupStack(li_comps, exp_tian.tp);

        const double tp = static_cast<double>(exp_tian.tp);
        double gt = 0, det_tian = 0, det_li = 0;
        for (const auto &t : exp_tian.parallel.threads) {
            gt += static_cast<double>(t.gtSpin()) / tp;
            det_tian += static_cast<double>(t.spinDetectedTian) / tp;
            det_li += static_cast<double>(t.spinDetectedLi) / tp;
        }
        table.addRow({label, sst::fmtDouble(gt, 3),
                      sst::fmtDouble(det_tian, 3),
                      sst::fmtDouble(det_li, 3),
                      sst::fmtDouble(exp_tian.estimatedSpeedup, 2),
                      sst::fmtDouble(li_stack.estimatedSpeedup, 2),
                      sst::fmtDouble(exp_tian.actualSpeedup, 2)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("note: Tian undercounts spin episodes that end in a "
                "yield (the table is flushed on a context switch); Li "
                "accumulates per loop iteration and keeps the pre-yield "
                "portion.\n");
    return 0;
}
