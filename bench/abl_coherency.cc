/**
 * @file
 * Coherency accounting ablation (Section 4.5): the paper does not
 * account coherency misses, arguing a balanced out-of-order core hides
 * L1 misses; it names this a known error source. This bench enables the
 * optional coherency component (invalid-tag re-references x a fixed
 * penalty) and reports how the estimate moves, on coherence-heavy
 * (lock/store-intensive) and coherence-light benchmarks.
 */

#include <cstdio>
#include <vector>

#include "core/experiment.hh"
#include "util/format.hh"
#include "workload/profile.hh"

int
main()
{
    const std::vector<std::string> benchmarks = {
        "fluidanimate_medium", "cholesky", "water-nsquared",
        "blackscholes_medium"};

    std::printf("Coherency accounting ablation (16 threads)\n\n");

    sst::TextTable table;
    table.setHeader({"benchmark", "coherency misses", "actual",
                     "est (off, paper)", "est (on)", "err off",
                     "err on"});
    for (const auto &label : benchmarks) {
        const sst::BenchmarkProfile &profile = sst::profileByLabel(label);
        sst::SimParams params;
        params.ncores = 16;
        const sst::RunResult baseline =
            sst::runSingleThreaded(params, profile);
        const sst::SpeedupExperiment off =
            sst::runWithBaseline(params, profile, 16, baseline);

        sst::ReportOptions on = sst::defaultReportOptions(params);
        on.accountCoherency = true;
        const std::vector<sst::CycleComponents> comps =
            sst::computeComponents(off.parallel.threads, off.tp, on);
        const sst::SpeedupStack stack_on =
            sst::buildSpeedupStack(comps, off.tp);

        const std::uint64_t misses = off.parallel.sumThreads(
            [](const sst::ThreadCounters &t) { return t.coherencyMisses; });
        table.addRow(
            {label, std::to_string(misses),
             sst::fmtDouble(off.actualSpeedup, 2),
             sst::fmtDouble(off.estimatedSpeedup, 2),
             sst::fmtDouble(stack_on.estimatedSpeedup, 2),
             sst::fmtPercent(off.error, 1),
             sst::fmtPercent(sst::speedupError(stack_on.estimatedSpeedup,
                                               off.actualSpeedup, 16),
                             1)});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
