/**
 * @file
 * Per-region speedup stacks ablation (Section 4.6): the whole-run stack
 * folds barrier waiting into spin/yield; per-region stacks localize it.
 * We run a barrier-heavy benchmark, print the whole-run stack, then the
 * first regions and the aggregate across regions — their time-weighted
 * average matches the whole-run overheads.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/region_stacks.hh"
#include "core/render.hh"
#include "util/format.hh"
#include "workload/profile.hh"

int
main()
{
    const sst::BenchmarkProfile &profile =
        sst::profileByLabel("facesim_small");
    sst::SimParams params;
    params.ncores = 16;
    const sst::SpeedupExperiment exp =
        sst::runSpeedupExperiment(params, profile, 16);

    std::printf("whole-run stack (%s @ 16 threads):\n%s\n",
                profile.label().c_str(),
                sst::renderStackTable(exp.stack, exp.actualSpeedup)
                    .c_str());

    const std::vector<sst::RegionStack> regions =
        sst::buildRegionStacks(exp.parallel,
                               sst::defaultReportOptions(params));
    std::printf("regions: %zu\n\n", regions.size());

    sst::TextTable table;
    table.setHeader({"region", "span (cycles)", "base", "yield", "spin",
                     "netneg", "mem", "estimated"});
    double wsum_yield = 0.0, wsum = 0.0;
    for (std::size_t i = 0; i < regions.size(); ++i) {
        const sst::RegionStack &r = regions[i];
        const double span = static_cast<double>(r.end - r.begin);
        wsum_yield += r.stack.yield * span;
        wsum += span;
        if (i < 8 || i + 1 == regions.size()) {
            table.addRow({std::to_string(i),
                          std::to_string(r.end - r.begin),
                          sst::fmtDouble(r.stack.baseSpeedup, 2),
                          sst::fmtDouble(r.stack.yield, 2),
                          sst::fmtDouble(r.stack.spin, 2),
                          sst::fmtDouble(r.stack.netNegLlc(), 2),
                          sst::fmtDouble(r.stack.negMem, 2),
                          sst::fmtDouble(r.stack.estimatedSpeedup, 2)});
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("time-weighted region yield = %.2f vs whole-run yield = "
                "%.2f\n",
                wsum_yield / wsum, exp.stack.yield);
    return 0;
}
