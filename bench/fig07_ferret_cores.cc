/**
 * @file
 * Figure 7: ferret speedup as a function of the number of cores with
 * (a) #threads = #cores and (b) 16 threads on 2/4/8/16 cores
 * (oversubscription: the OS scheduler time-shares the cores). The paper
 * observes that spawning more software threads than cores improves
 * performance, that 16-thread performance saturates around 8 cores, and
 * that 16 cores perform slightly worse due to scheduler overhead.
 */

#include <cstdio>
#include <vector>

#include "core/experiment.hh"
#include "util/format.hh"
#include "workload/profile.hh"

int
main()
{
    const sst::BenchmarkProfile &profile =
        sst::profileByLabel("ferret_small");
    const std::vector<int> cores = {2, 4, 8, 16};

    std::printf("Figure 7: ferret speedup vs number of cores\n\n");

    sst::SimParams base;
    const sst::RunResult baseline = sst::runSingleThreaded(base, profile);
    const double ts = static_cast<double>(baseline.executionTime);

    sst::TextTable table;
    table.setHeader({"cores", "#threads = #cores", "16 threads"});
    for (const int c : cores) {
        // (a) threads == cores
        sst::SimParams pa;
        pa.ncores = c;
        const sst::RunResult equal = sst::simulate(pa, profile, c, c);
        // (b) 16 threads on c cores
        sst::SimParams pb;
        pb.ncores = c;
        const sst::RunResult over = sst::simulate(pb, profile, 16, c);
        table.addRow({std::to_string(c),
                      sst::fmtDouble(
                          ts / static_cast<double>(equal.executionTime),
                          2),
                      sst::fmtDouble(
                          ts / static_cast<double>(over.executionTime),
                          2)});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
