/**
 * @file
 * Figure 7: ferret speedup as a function of the number of cores with
 * (a) #threads = #cores and (b) 16 threads on 2/4/8/16 cores
 * (oversubscription: the OS scheduler time-shares the cores). The paper
 * observes that spawning more software threads than cores improves
 * performance, that 16-thread performance saturates around 8 cores, and
 * that 16 cores perform slightly worse due to scheduler overhead.
 *
 * Both curves execute as one batch on the parallel experiment driver —
 * curve (a) is a thread sweep, curve (b) the `cores` oversubscription
 * axis (the same grid `examples/specs/fig07.spec` describes) — and the
 * 1-thread baseline is computed once and shared by all eight jobs.
 *
 * Usage: fig07_ferret_cores [jobs] [--sched POLICY] [--jobs N]
 */

#include <cstdio>
#include <vector>

#include "cli_common.hh"
#include "driver/sweep.hh"
#include "util/format.hh"
#include "workload/profile.hh"

int
main(int argc, char **argv)
{
    const sst::cli::BenchOptions o =
        sst::cli::parseBenchArgs(argc, argv, "fig07_ferret_cores [jobs]");
    const std::vector<int> cores = {2, 4, 8, 16};

    std::printf("Figure 7: ferret speedup vs number of cores\n\n");

    // (a) threads == cores.
    sst::SweepGrid equal;
    equal.profiles = {"ferret_small"};
    equal.threads = cores;
    equal.baseParams = o.params;
    equal.seedOffset = o.seedOffset;

    // (b) 16 threads time-shared over 2/4/8/16 cores.
    sst::SweepGrid over = equal;
    over.threads = {16};
    over.cores = cores;

    std::vector<sst::JobSpec> specs = sst::expandGrid(equal);
    const std::vector<sst::JobSpec> overspecs = sst::expandGrid(over);
    specs.insert(specs.end(), overspecs.begin(), overspecs.end());

    sst::DriverOptions opts;
    opts.jobs = o.positionals.empty() ? o.jobs
                                      : static_cast<int>(o.positionals[0]);

    sst::BatchStats stats;
    const std::vector<sst::JobResult> results =
        sst::runExperimentBatch(specs, opts, &stats);

    sst::TextTable table;
    table.setHeader({"cores", "#threads = #cores", "16 threads"});
    for (std::size_t i = 0; i < cores.size(); ++i) {
        const sst::JobResult &eq = results[i];
        const sst::JobResult &ov = results[cores.size() + i];
        table.addRow(
            {std::to_string(cores[i]),
             eq.ok() ? sst::fmtDouble(eq.exp.actualSpeedup, 2)
                     : std::string("fail"),
             ov.ok() ? sst::fmtDouble(ov.exp.actualSpeedup, 2)
                     : std::string("fail")});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("(%zu jobs, %zu shared baselines)\n", stats.total,
                stats.baselinesComputed);
    return 0;
}
