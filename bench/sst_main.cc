/**
 * @file
 * The unified `sst` CLI: one binary for every experiment workflow.
 *
 *   sst run --spec examples/specs/fig01.spec   declarative experiments
 *   sst sweep --profiles all --threads 16      flag-driven grids
 *   sst trace record|replay|info               op-trace workflows
 *   sst list profiles|scheds|frontends         enumerate the registries
 *   sst serve / worker / submit                persistent sweep service
 *
 * `sweep` and `trace` also exist as standalone compatibility binaries;
 * all commands share one implementation each (bench/cli_commands.cc)
 * so behaviour cannot drift between entry points. The dispatcher is
 * table-driven: usage text and the unknown-command error enumerate the
 * same table, so a new command cannot be half-registered.
 */

#include <cstdio>
#include <string>

#include "cli_commands.hh"

namespace {

struct Command
{
    const char *name;
    const char *description;
    int (*run)(int argc, char **argv, int first);
};

constexpr Command kCommands[] = {
    {"run", "execute a declarative experiment spec file",
     sst::cli::runMain},
    {"sweep", "express an experiment grid with flags",
     sst::cli::sweepMain},
    {"trace", "record / replay / inspect binary op traces",
     sst::cli::traceMain},
    {"list", "enumerate registered profiles, scheds, frontends, mixes",
     sst::cli::listMain},
    {"serve", "run the persistent sweep service", sst::cli::serveMain},
    {"worker", "lease and execute jobs from a server",
     sst::cli::workerMain},
    {"submit", "submit campaigns / fetch results from a server",
     sst::cli::submitMain},
    {"metrics", "stream telemetry from a running server",
     sst::cli::metricsMain},
};

void
usage()
{
    std::printf("usage: sst <command> [options]\n");
    for (const Command &c : kCommands)
        std::printf("  %-7s %s\n", c.name, c.description);
    std::printf("`sst <command> --help` shows the command's options;\n"
                "`sst --version` prints every persisted-format "
                "version\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string cmd = argv[1];
    for (const Command &c : kCommands)
        if (cmd == c.name)
            return c.run(argc, argv, 2);
    if (cmd == "--help" || cmd == "-h") {
        usage();
        return 0;
    }
    if (cmd == "--version" || cmd == "-V")
        return sst::cli::versionMain();
    usage();
    std::fprintf(stderr, "fatal: unknown command '%s'\n", cmd.c_str());
    return 1;
}
