/**
 * @file
 * The unified `sst` CLI: one binary for every experiment workflow.
 *
 *   sst run --spec examples/specs/fig01.spec   declarative experiments
 *   sst sweep --profiles all --threads 16      flag-driven grids
 *   sst trace record|replay|info               op-trace workflows
 *   sst list profiles|scheds|frontends         enumerate the registries
 *
 * `sweep` and `trace` also exist as standalone compatibility binaries;
 * all three share one implementation per command (bench/cli_commands.cc)
 * so behaviour cannot drift between entry points.
 */

#include <cstdio>
#include <string>

#include "cli_commands.hh"

namespace {

void
usage()
{
    std::printf(
        "usage: sst <command> [options]\n"
        "  run    execute a declarative experiment spec file\n"
        "  sweep  express an experiment grid with flags\n"
        "  trace  record / replay / inspect binary op traces\n"
        "  list   enumerate registered profiles, scheds, frontends\n"
        "`sst <command> --help` shows the command's options\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string cmd = argv[1];
    if (cmd == "run")
        return sst::cli::runMain(argc, argv, 2);
    if (cmd == "sweep")
        return sst::cli::sweepMain(argc, argv, 2);
    if (cmd == "trace")
        return sst::cli::traceMain(argc, argv, 2);
    if (cmd == "list")
        return sst::cli::listMain(argc, argv, 2);
    if (cmd == "--help" || cmd == "-h") {
        usage();
        return 0;
    }
    usage();
    std::fprintf(stderr, "fatal: unknown command '%s'\n", cmd.c_str());
    return 1;
}
