/**
 * @file
 * Figure 4 + Section 6 validation: actual vs estimated speedup for every
 * benchmark at 2, 4, 8 and 16 threads, plus the average absolute error
 * per thread count. The paper reports 3.0%, 3.4%, 2.8% and 5.1% for 2,
 * 4, 8 and 16 threads respectively.
 *
 * The 28 x 4 grid executes on the parallel experiment driver; the
 * 1-thread baseline of each benchmark is computed once and shared by
 * all four of its thread counts.
 *
 * Usage: fig04_validation [jobs] [--sched POLICY] [--jobs N]
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "cli_common.hh"
#include "driver/sweep.hh"
#include "util/format.hh"
#include "util/stats.hh"
#include "workload/profile.hh"

int
main(int argc, char **argv)
{
    const sst::cli::BenchOptions o =
        sst::cli::parseBenchArgs(argc, argv, "fig04_validation [jobs]");
    const std::vector<int> threads = {2, 4, 8, 16};

    std::printf("Figure 4: actual vs estimated speedup "
                "(error metric: Eq. 6, (S^ - S)/N)\n\n");

    sst::SweepGrid grid;
    grid.profiles = sst::allProfileLabels();
    grid.threads = threads;
    grid.baseParams = o.params;
    grid.seedOffset = o.seedOffset;

    sst::DriverOptions opts;
    opts.jobs = o.positionals.empty() ? o.jobs
                                      : static_cast<int>(o.positionals[0]);

    const std::vector<sst::JobSpec> specs = sst::expandGrid(grid);
    const std::vector<sst::JobResult> results =
        sst::runExperimentBatch(specs, opts);

    sst::TextTable table;
    table.setHeader({"benchmark", "S(2)", "S^(2)", "S(4)", "S^(4)", "S(8)",
                     "S^(8)", "S(16)", "S^(16)", "err16"});

    // expandGrid() is profile-major: each benchmark contributes one
    // contiguous block of |threads| jobs, in thread order.
    std::vector<sst::RunningStat> err(threads.size());
    for (std::size_t base = 0; base < specs.size();
         base += threads.size()) {
        std::vector<std::string> row = {specs[base].label()};
        double err16 = 0.0;
        bool err16Valid = false;
        for (std::size_t i = 0; i < threads.size(); ++i) {
            const sst::JobResult &r = results[base + i];
            if (!r.ok()) {
                row.push_back("fail");
                row.push_back("fail");
                continue;
            }
            row.push_back(sst::fmtDouble(r.exp.actualSpeedup, 2));
            row.push_back(sst::fmtDouble(r.exp.estimatedSpeedup, 2));
            err[i].add(std::fabs(r.exp.error));
            if (threads[i] == 16) {
                err16 = r.exp.error;
                err16Valid = true;
            }
        }
        row.push_back(err16Valid ? sst::fmtPercent(err16, 1)
                                 : std::string("fail"));
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());

    sst::TextTable summary;
    summary.setHeader({"threads", "avg |error| (measured)",
                       "avg |error| (paper)"});
    const std::vector<std::string> paper_err = {"3.0%", "3.4%", "2.8%",
                                                "5.1%"};
    for (std::size_t i = 0; i < threads.size(); ++i) {
        summary.addRow({std::to_string(threads[i]),
                        sst::fmtPercent(err[i].mean(), 1), paper_err[i]});
    }
    std::printf("%s\n", summary.render().c_str());
    return 0;
}
