/**
 * @file
 * Figure 4 + Section 6 validation: actual vs estimated speedup for every
 * benchmark at 2, 4, 8 and 16 threads, plus the average absolute error
 * per thread count. The paper reports 3.0%, 3.4%, 2.8% and 5.1% for 2,
 * 4, 8 and 16 threads respectively.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/experiment.hh"
#include "util/format.hh"
#include "util/stats.hh"
#include "workload/profile.hh"

int
main()
{
    const std::vector<int> threads = {2, 4, 8, 16};

    std::printf("Figure 4: actual vs estimated speedup "
                "(error metric: Eq. 6, (S^ - S)/N)\n\n");

    sst::TextTable table;
    table.setHeader({"benchmark", "S(2)", "S^(2)", "S(4)", "S^(4)", "S(8)",
                     "S^(8)", "S(16)", "S^(16)", "err16"});

    std::vector<sst::RunningStat> err(threads.size());
    for (const auto &profile : sst::benchmarkSuite()) {
        sst::SimParams base;
        const sst::RunResult baseline =
            sst::runSingleThreaded(base, profile);

        std::vector<std::string> row = {profile.label()};
        double err16 = 0.0;
        for (std::size_t i = 0; i < threads.size(); ++i) {
            sst::SimParams params;
            params.ncores = threads[i];
            const sst::SpeedupExperiment exp = sst::runWithBaseline(
                params, profile, threads[i], baseline);
            row.push_back(sst::fmtDouble(exp.actualSpeedup, 2));
            row.push_back(sst::fmtDouble(exp.estimatedSpeedup, 2));
            err[i].add(std::fabs(exp.error));
            if (threads[i] == 16)
                err16 = exp.error;
        }
        row.push_back(sst::fmtPercent(err16, 1));
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());

    sst::TextTable summary;
    summary.setHeader({"threads", "avg |error| (measured)",
                       "avg |error| (paper)"});
    const std::vector<std::string> paper_err = {"3.0%", "3.4%", "2.8%",
                                                "5.1%"};
    for (std::size_t i = 0; i < threads.size(); ++i) {
        summary.addRow({std::to_string(threads[i]),
                        sst::fmtPercent(err[i].mean(), 1), paper_err[i]});
    }
    std::printf("%s\n", summary.render().c_str());
    return 0;
}
