#include "cli_commands.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli_common.hh"
#include "core/classify.hh"
#include "driver/fingerprint.hh"
#include "driver/job.hh"
#include "driver/result_cache.hh"
#include "driver/sweep.hh"
#include "serve/net.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/worker.hh"
#include "trace/trace_format.hh"
#include "sched/policy.hh"
#include "spec/registries.hh"
#include "spec/spec.hh"
#include "telemetry/metrics.hh"
#include "telemetry/span.hh"
#include "trace/trace_run.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "wdl/wdl.hh"
#include "workload/profile.hh"

namespace sst {
namespace cli {
namespace {

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("cannot write " + path);
    out << content;
    std::printf("wrote %s\n", path.c_str());
}

/**
 * The per-benchmark result table every batch command prints: speedup,
 * estimation error and top stack components per job, with the optional
 * cores/LLC columns shown only when that axis is actually swept.
 */
void
printBatchTable(const std::vector<JobSpec> &jobs,
                const std::vector<JobResult> &results, bool show_cores,
                bool show_llc)
{
    TextTable table;
    std::vector<std::string> header = {"benchmark", "threads"};
    if (show_cores)
        header.push_back("cores");
    if (show_llc)
        header.push_back("llc");
    for (const char *c : {"paper", "actual", "estimated", "err", "1st",
                          "2nd", "3rd", "base", "pos", "netneg", "mem",
                          "spin", "yield"})
        header.push_back(c);
    table.setHeader(header);

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const JobSpec &s = jobs[i];
        const JobResult &r = results[i];
        std::vector<std::string> row = {s.label(),
                                        std::to_string(s.nthreads())};
        if (show_cores)
            row.push_back(std::to_string(s.ncoresEffective()));
        if (show_llc)
            row.push_back(fmtBytes(s.params.cache.llcBytes));
        if (!r.ok()) {
            row.push_back("FAILED: " + r.error);
            while (row.size() < header.size())
                row.push_back("-");
            table.addRow(row);
            continue;
        }
        const SpeedupExperiment &e = r.exp;
        const auto ranked = rankedDelimiters(e.stack);
        auto comp = [&](std::size_t k) {
            return k < ranked.size()
                       ? std::string(shortComponentName(ranked[k]))
                       : std::string("-");
        };
        // The paper reports 16-thread speedups per benchmark; mixes,
        // pipelines and user-authored WDL scenarios have no paper row.
        row.push_back(s.workload.isHomogeneous() && !s.workload.wdlProgram
                          ? fmtDouble(s.workload.groups[0]
                                          .profile.paperSpeedup16,
                                      2)
                          : std::string("-"));
        row.push_back(fmtDouble(e.actualSpeedup, 2));
        row.push_back(fmtDouble(e.estimatedSpeedup, 2));
        row.push_back(fmtPercent(e.error, 1));
        row.push_back(comp(0));
        row.push_back(comp(1));
        row.push_back(comp(2));
        row.push_back(fmtDouble(e.stack.baseSpeedup, 2));
        row.push_back(fmtDouble(e.stack.posLlc, 2));
        row.push_back(fmtDouble(e.stack.netNegLlc(), 2));
        row.push_back(fmtDouble(e.stack.negMem, 2));
        row.push_back(fmtDouble(e.stack.spin, 2));
        row.push_back(fmtDouble(e.stack.yield, 2));
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());

    RunningStat err;
    for (const JobResult &r : results)
        if (r.ok())
            err.add(std::fabs(r.exp.error));
    if (err.count() > 0)
        std::printf("average absolute error: %.1f%%\n",
                    err.mean() * 100.0);
}

void
printBatchStats(const ExperimentDriver &driver)
{
    const BatchStats &stats = driver.stats();
    std::printf(
        "batch: %zu jobs, %zu executed, %zu cached, %zu deduped, "
        "%zu failed, %zu baselines, %zu trace replays, "
        "%zu traces recorded, %d workers\n",
        stats.total, stats.executed, stats.cached, stats.deduped,
        stats.failed, stats.baselinesComputed, stats.traceReplays,
        stats.tracesRecorded, driver.workerCount());
}

/** Run a grid, print, export — the tail shared by sweep and run.
 *  A non-empty @p trace_out enables telemetry for the batch and writes
 *  a Chrome trace_event JSON of every job/driver span afterwards;
 *  results are bit-identical either way (telemetry is write-only). */
int
executeBatch(const SweepGrid &grid, const DriverOptions &opts, bool quiet,
             const std::string &csv_path, const std::string &json_path,
             const std::string &trace_out)
{
    const bool tracing = !trace_out.empty();
    if (tracing) {
        telemetry::Registry::global().setEnabled(true);
        telemetry::SpanTracer::global().setEnabled(true);
    }

    const std::vector<JobSpec> jobs = expandGrid(grid);
    ExperimentDriver driver(opts);
    const std::vector<JobResult> results = driver.runBatch(jobs);

    if (tracing) {
        telemetry::SpanTracer &tracer = telemetry::SpanTracer::global();
        tracer.setEnabled(false);
        if (tracer.dropped() > 0)
            warn("cli", std::to_string(tracer.dropped()) +
                            " spans dropped (ring buffer full)");
        writeFile(trace_out, tracer.chromeTraceJson());
    }

    if (!quiet)
        printBatchTable(jobs, results, !grid.cores.empty(),
                        !grid.llcBytes.empty());
    printBatchStats(driver);

    if (!csv_path.empty())
        writeFile(csv_path, sweepCsv(jobs, results));
    if (!json_path.empty())
        writeFile(json_path, sweepJson(jobs, results));

    return driver.stats().failed == 0 ? 0 : 2;
}

// ---- sweep ------------------------------------------------------------------

void
sweepUsage()
{
    std::printf(
        "usage: sweep [options]\n"
        "  --profiles all|A,B,...  benchmark labels (default: all)\n"
        "  --mix LIST              heterogeneous workloads: registered\n"
        "                          mixes/pipelines (`sst list mixes`) or\n"
        "                          inline a:8+b:8 / s1:1>s2:2 descriptors\n"
        "                          (replaces --profiles/--threads)\n"
        "  --workload-file FILE    compile a .wdl workload description\n"
        "                          (repeatable; see `sst list "
        "workloads`;\n"
        "                          replaces --profiles/--threads)\n"
        "  --threads LIST          thread counts, e.g. 2,4,8,16 "
        "(default: 16)\n"
        "  --cores LIST            core counts (default: = threads;\n"
        "                          fewer cores oversubscribes)\n"
        "  --llc LIST              LLC sizes, e.g. 1M,2M,4M,8M "
        "(default: params default)\n"
        "  --jobs N                worker threads (default: hardware)\n"
        "  --seed-offset K         replication RNG stream (default: 0)\n"
        "  --cache-dir DIR         result cache (default: .sst-cache)\n"
        "  --no-cache              disable the result cache\n"
        "  --refresh               re-run and overwrite cached results\n"
        "  --trace-dir DIR         replay recorded op traces from DIR\n"
        "                          (see `trace record --trace-dir`)\n"
        "  --record-dir DIR        capture .sstt traces of live jobs\n"
        "                          into DIR as the batch runs (cache\n"
        "                          hits skip capture)\n"
        "  --sched POLICY          scheduler policy (default:\n"
        "                          affinity-fifo)\n"
        "  --sched-seed K          RNG stream for --sched random\n"
        "  --csv FILE              write results as CSV\n"
        "  --json FILE             write results as JSON\n"
        "  --trace-out FILE        write a Chrome trace_event JSON of\n"
        "                          the batch (load in Perfetto /\n"
        "                          chrome://tracing)\n"
        "  --quiet                 suppress the result table\n"
        "scheduler policies: %s\n",
        allSchedPolicyLabelsJoined().c_str());
}

// ---- trace ------------------------------------------------------------------

void
traceUsage()
{
    std::printf(
        "usage: trace <record|replay|info> [options]\n"
        "  record --profile LABEL [--threads N] (--out FILE | "
        "--trace-dir DIR)\n"
        "         [--seed-offset K] [--sched POLICY] [--sched-seed K]\n"
        "         [--quiet]\n"
        "      run the live experiment, write the op trace\n"
        "  replay --in FILE [--sched POLICY] [--quiet]\n"
        "      re-simulate from the trace (no workload generation);\n"
        "      --sched must match the recorded policy (it documents\n"
        "      the expectation, replay always uses the recording's)\n"
        "  info --in FILE\n"
        "      print header and per-stream statistics\n"
        "scheduler policies: %s\n",
        allSchedPolicyLabelsJoined().c_str());
}

/**
 * Full-precision experiment dump: every value %.17g/%"PRIu64" so record
 * and replay output can be diffed bit for bit.
 */
void
printExperiment(const SpeedupExperiment &e)
{
    std::printf("benchmark           %s\n", e.label.c_str());
    std::printf("threads             %d\n", e.nthreads);
    std::printf("ts                  %" PRIu64 "\n", e.ts);
    std::printf("tp                  %" PRIu64 "\n", e.tp);
    std::printf("actual_speedup      %.17g\n", e.actualSpeedup);
    std::printf("estimated_speedup   %.17g\n", e.estimatedSpeedup);
    std::printf("error               %.17g\n", e.error);
    std::printf("stack.base          %.17g\n", e.stack.baseSpeedup);
    std::printf("stack.pos_llc       %.17g\n", e.stack.posLlc);
    std::printf("stack.neg_llc       %.17g\n", e.stack.negLlc);
    std::printf("stack.neg_mem       %.17g\n", e.stack.negMem);
    std::printf("stack.spin          %.17g\n", e.stack.spin);
    std::printf("stack.yield         %.17g\n", e.stack.yield);
    std::printf("stack.imbalance     %.17g\n", e.stack.imbalance);
    std::printf("stack.coherency     %.17g\n", e.stack.coherency);
    std::printf("par_overhead        %.17g\n", e.parOverheadMeasured);
}

int
traceRecord(int argc, char **argv, int first)
{
    std::string label, outPath, traceDir;
    int nthreads = 16;
    std::uint64_t seedOffset = 0;
    SimParams params;
    bool quiet = false;

    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--profile") {
            label = argValue(argc, argv, i);
        } else if (arg == "--threads") {
            // The recording runs live on nthreads cores, so the
            // simulator's core cap bounds this (the format itself
            // allows up to trace::kMaxThreads streams).
            nthreads =
                parseInt("--threads", argValue(argc, argv, i), 1,
                         static_cast<long>(kMaxSimCores));
        } else if (arg == "--out") {
            outPath = argValue(argc, argv, i);
        } else if (arg == "--trace-dir") {
            traceDir = argValue(argc, argv, i);
        } else if (arg == "--seed-offset") {
            seedOffset =
                parseU64("--seed-offset", argValue(argc, argv, i));
        } else if (arg == "--sched") {
            params.schedPolicy =
                parseSchedPolicy(argValue(argc, argv, i));
        } else if (arg == "--sched-seed") {
            params.schedSeed =
                parseU64("--sched-seed", argValue(argc, argv, i));
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            traceUsage();
            fatal("unknown record argument '" + arg + "'");
        }
    }
    if (label.empty())
        fatal("record needs --profile (one of: " +
              allProfileLabelsJoined() + ")");
    if (params.schedSeed != 0 &&
        params.schedPolicy != SchedPolicy::kRandom) {
        fatal("--sched-seed only affects --sched random; the "
              "seed would be silently ignored");
    }
    if (outPath.empty() == traceDir.empty())
        fatal("record needs exactly one of --out or --trace-dir");

    BenchmarkProfile profile = profileByLabel(label);
    profile.seed = deriveJobSeed(profile.seed, seedOffset);

    if (!traceDir.empty()) {
        std::filesystem::create_directories(traceDir);
        outPath = tracePathFor(traceDir, profile, nthreads, seedOffset,
                               params.schedPolicy, params.schedSeed);
    }

    std::uint64_t ops = 0;
    const SpeedupExperiment exp =
        recordSpeedupTrace(params, profile, nthreads, outPath, &ops);
    printExperiment(exp);
    if (!quiet) {
        const auto bytes = std::filesystem::file_size(outPath);
        std::printf("wrote %s: %" PRIu64 " ops in %ju bytes "
                    "(%.2f bytes/op)\n",
                    outPath.c_str(), ops,
                    static_cast<std::uintmax_t>(bytes),
                    static_cast<double>(bytes) /
                        static_cast<double>(ops));
    }
    return 0;
}

int
traceReplay(int argc, char **argv, int first)
{
    std::string inPath;
    bool quiet = false;
    bool schedGiven = false;
    SchedPolicy sched = SchedPolicy::kAffinityFifo;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--in") {
            inPath = argValue(argc, argv, i);
        } else if (arg == "--sched") {
            sched = parseSchedPolicy(argValue(argc, argv, i));
            schedGiven = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            traceUsage();
            fatal("unknown replay argument '" + arg + "'");
        }
    }
    if (inPath.empty())
        fatal("replay needs --in FILE");

    const TraceReader reader(inPath);
    if (schedGiven)
        reader.requireSchedPolicy(sched); // TraceError -> fatal in main

    const SpeedupExperiment exp =
        replaySpeedupTrace(SimParams{}, reader);
    printExperiment(exp);
    if (!quiet)
        std::printf("replayed %s\n", inPath.c_str());
    return 0;
}

int
traceInfo(int argc, char **argv, int first)
{
    std::string inPath;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--in") {
            inPath = argValue(argc, argv, i);
        } else {
            traceUsage();
            fatal("unknown info argument '" + arg + "'");
        }
    }
    if (inPath.empty())
        fatal("info needs --in FILE");

    const TraceReader reader(inPath);
    const trace::TraceMeta &meta = reader.meta();
    std::printf("file                %s\n", inPath.c_str());
    std::printf("format_version      %u\n", meta.version);
    std::printf("benchmark           %s\n", meta.label.c_str());
    std::printf("threads             %d\n", meta.nthreads);
    std::printf("profile_hash        %016" PRIx64 "\n", meta.profileHash);
    std::printf("sched_policy        %s\n",
                schedPolicyLabel(meta.schedPolicy));
    std::printf("sched_seed          %" PRIu64 "\n", meta.schedSeed);
    std::printf("workload_role       %s\n", workloadRoleName(meta.role));
    for (std::size_t g = 0; g < meta.groups.size(); ++g) {
        std::printf("group %-2zu            %s: %d threads, profile "
                    "%016" PRIx64 "\n",
                    g, meta.groups[g].label.c_str(),
                    meta.groups[g].nthreads, meta.groups[g].profileHash);
    }
    std::uint64_t total_ops = 0, total_bytes = 0;
    for (int s = 0; s < reader.nstreams(); ++s) {
        const bool baseline = s >= meta.nthreads;
        std::printf("stream %-3d %s  %12" PRIu64 " ops  %12" PRIu64
                    " bytes\n",
                    s, baseline ? "(baseline)" : "          ",
                    reader.opCount(s), reader.streamBytes(s));
        total_ops += reader.opCount(s);
        total_bytes += reader.streamBytes(s);
    }
    std::printf("total               %" PRIu64 " ops, %" PRIu64
                " encoded bytes (%.2f bytes/op)\n",
                total_ops, total_bytes,
                static_cast<double>(total_bytes) /
                    static_cast<double>(total_ops));
    return 0;
}

// ---- run --------------------------------------------------------------------

void
runUsage()
{
    std::printf(
        "usage: sst run --spec FILE [options]\n"
        "execute a declarative experiment spec (see examples/specs/)\n"
        "  --spec FILE             the spec file (required)\n"
        "  --set KEY=VALUE         override one spec key (repeatable;\n"
        "                          same keys as the file format)\n"
        "  --sched POLICY          shorthand for --set sched=POLICY\n"
        "  --sched-seed K          shorthand for --set sched-seed=K\n"
        "  --print-spec            print the canonical form and exit\n"
        "  --jobs N                worker threads (default: hardware)\n"
        "  --cache-dir DIR         result cache (default: .sst-cache)\n"
        "  --no-cache              disable the result cache\n"
        "  --refresh               re-run and overwrite cached results\n"
        "  --csv FILE              write CSV (overrides output.csv)\n"
        "  --json FILE             write JSON (overrides output.json)\n"
        "  --trace-out FILE        write a Chrome trace_event JSON of\n"
        "                          the batch (load in Perfetto /\n"
        "                          chrome://tracing)\n"
        "  --quiet                 suppress the result table\n"
        "spec keys: %s\n",
        specKeyNamesJoined().c_str());
}

// ---- list -------------------------------------------------------------------

int
listProfiles()
{
    TextTable table;
    table.setHeader({"label", "suite", "paper speedup @16", "class"});
    for (const std::string &name : profileRegistry().names()) {
        const BenchmarkProfile &p = **profileRegistry().find(name);
        table.addRow({name, p.suite, fmtDouble(p.paperSpeedup16, 2),
                      p.paperClass});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}

int
listScheds()
{
    for (const std::string &name : schedulerRegistry().names())
        std::printf("%s\n", name.c_str());
    return 0;
}

int
listFrontends()
{
    TextTable table;
    table.setHeader({"frontend", "description"});
    for (const std::string &name : opSourceRegistry().names()) {
        const OpSourceFrontend &f = *opSourceRegistry().find(name);
        table.addRow({name, f.description});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}

int
listMixes()
{
    TextTable table;
    table.setHeader({"mix", "role", "threads", "groups"});
    for (const std::string &name : mixRegistry().names()) {
        const WorkloadSpec &w = *mixRegistry().find(name);
        table.addRow({name, workloadRoleName(w.role),
                      std::to_string(w.nthreads()), w.descriptor()});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}

/** Directory `sst list workloads` scans for example .wdl files. */
constexpr const char *kExampleWorkloadDir = "examples/workloads";

int
listWorkloads()
{
    namespace fs = std::filesystem;
    std::vector<fs::path> files;
    std::error_code ec;
    for (fs::directory_iterator it(kExampleWorkloadDir, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (it->path().extension() == ".wdl")
            files.push_back(it->path());
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) {
        std::printf("no .wdl files under %s/\n\n", kExampleWorkloadDir);
    } else {
        TextTable table;
        table.setHeader({"file", "workload", "role", "threads",
                         "groups"});
        for (const fs::path &path : files) {
            std::string workload = "-", role = "-", threads = "-",
                        groups;
            try {
                const wdl::Program prog = wdl::loadProgram(path.string());
                int total = 0;
                for (const wdl::GroupIR &g : prog.groups) {
                    total += g.nthreads;
                    if (!groups.empty())
                        groups += '+';
                    groups += g.name + ":" + std::to_string(g.nthreads);
                }
                if (!prog.name.empty())
                    workload = prog.name;
                role = workloadRoleName(prog.role);
                threads = std::to_string(total);
            } catch (const std::exception &e) {
                groups = std::string("parse error: ") + e.what();
            }
            table.addRow({path.filename().string(), workload, role,
                          threads, groups});
        }
        std::printf("%s\n", table.render().c_str());
    }
    // The frontends table completes the picture: which engine runs the
    // files (`workload-file =`) next to the other workload sources.
    return listFrontends();
}

/** The list subcommands, table-driven like the registries themselves:
 *  usage text and the unknown-registry error enumerate this table. */
struct ListCommand
{
    const char *name;
    const char *description;
    int (*run)();
};

constexpr ListCommand kListCommands[] = {
    {"profiles", "the Figure 6 benchmark suite", listProfiles},
    {"scheds", "OS scheduler policies (--sched)", listScheds},
    {"frontends", "workload frontends (frontend =)", listFrontends},
    {"mixes", "named heterogeneous workloads (workload =)", listMixes},
    {"workloads", "example .wdl files + frontends (workload-file =)",
     listWorkloads},
};

std::string
listCommandNamesJoined()
{
    std::string out;
    for (const ListCommand &c : kListCommands) {
        if (!out.empty())
            out += ", ";
        out += c.name;
    }
    return out;
}

int
listUsage()
{
    TextTable table;
    table.setHeader({"registry", "contents"});
    for (const ListCommand &c : kListCommands)
        table.addRow({c.name, c.description});
    std::printf("usage: sst list <%s>\n%s\n",
                listCommandNamesJoined().c_str(),
                table.render().c_str());
    return 0;
}

// ---- serve / worker / submit ------------------------------------------------

/** Set by SIGINT/SIGTERM so `sst serve` shuts down cleanly. */
volatile std::sig_atomic_t gServeStop = 0;

void
serveSignalHandler(int)
{
    gServeStop = 1;
}

void
serveUsage()
{
    std::printf(
        "usage: sst serve [options]\n"
        "run the persistent sweep service: accepts campaigns over a\n"
        "socket, schedules them on a crash-safe job queue, and streams\n"
        "incremental results (see `sst submit` and `sst worker`)\n"
        "  --socket PATH           Unix socket (default: "
        ".sst-serve.sock)\n"
        "  --tcp PORT              listen on TCP 127.0.0.1:PORT instead\n"
        "                          (0 picks a free port, printed below)\n"
        "  --jobs N                in-process worker threads (default:\n"
        "                          0 — jobs run on external `sst "
        "worker`\n"
        "                          processes only)\n"
        "  --cache-dir DIR         result cache (default: .sst-cache);\n"
        "                          completed jobs from every worker "
        "land\n"
        "                          here, and restarts resume from it\n"
        "  --no-cache              disable the result cache\n"
        "  --journal FILE          campaign journal (default:\n"
        "                          .sst-serve.journal); restarts replay "
        "it\n"
        "  --no-journal            disable crash-safe persistence\n"
        "  --trace-dir DIR         replay recorded op traces from DIR\n"
        "  --lease-ms K            worker lease duration (default: "
        "30000)\n"
        "  --max-attempts K        leases before a job fails (default: "
        "3)\n"
        "  --backoff-ms K          requeue backoff base (default: "
        "1000)\n"
        "the server exits once drained (`sst submit --drain`) or on "
        "SIGINT\n");
}

int
serveImpl(int argc, char **argv, int first)
{
    serve::ServerOptions opts;
    std::string socketPath = ".sst-serve.sock";
    int tcpPort = -1;
    opts.driver.jobs = 1;
    opts.driver.cacheDir = ".sst-cache";
    std::string journalPath = ".sst-serve.journal";

    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket") {
            socketPath = argValue(argc, argv, i);
        } else if (arg == "--tcp") {
            tcpPort = parseInt("--tcp", argValue(argc, argv, i), 0, 65535);
        } else if (arg == "--jobs") {
            opts.localWorkers =
                parseInt("--jobs", argValue(argc, argv, i), 0, 1 << 10);
        } else if (arg == "--cache-dir") {
            opts.driver.cacheDir = argValue(argc, argv, i);
        } else if (arg == "--no-cache") {
            opts.driver.cacheDir.clear();
        } else if (arg == "--journal") {
            journalPath = argValue(argc, argv, i);
        } else if (arg == "--no-journal") {
            journalPath.clear();
        } else if (arg == "--trace-dir") {
            opts.driver.traceDir = argValue(argc, argv, i);
        } else if (arg == "--lease-ms") {
            opts.queue.leaseMs =
                parseU64("--lease-ms", argValue(argc, argv, i));
        } else if (arg == "--max-attempts") {
            opts.queue.maxAttempts = parseInt(
                "--max-attempts", argValue(argc, argv, i), 1, 1000);
        } else if (arg == "--backoff-ms") {
            opts.queue.backoffBaseMs =
                parseU64("--backoff-ms", argValue(argc, argv, i));
        } else if (arg == "--help" || arg == "-h") {
            serveUsage();
            return 0;
        } else {
            serveUsage();
            fatal("unknown argument '" + arg + "'");
        }
    }
    if (tcpPort >= 0) {
        opts.endpoint.tcp = true;
        opts.endpoint.port = tcpPort;
    } else {
        opts.endpoint.path = socketPath;
    }
    opts.journalPath = journalPath;

    std::signal(SIGINT, serveSignalHandler);
    std::signal(SIGTERM, serveSignalHandler);

    serve::Server server(opts);
    server.start();
    std::printf("serving on %s\n", server.endpoint().text().c_str());
    std::fflush(stdout);

    while (gServeStop == 0 && !server.finished())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const bool drained = server.finished();
    server.stop();
    std::printf(drained ? "server drained\n" : "server stopped\n");
    return 0;
}

void
workerUsage()
{
    std::printf(
        "usage: sst worker --connect ENDPOINT [options]\n"
        "lease and execute jobs from a running `sst serve` instance\n"
        "  --connect ENDPOINT      socket path or tcp:host:port\n"
        "                          (default: .sst-serve.sock)\n"
        "  --name NAME             worker identity (default: "
        "worker-<pid>)\n"
        "  --cache-dir DIR         worker-side result cache (default:\n"
        "                          none — the server caches results)\n"
        "  --trace-dir DIR         replay recorded op traces from DIR\n"
        "  --poll-ms K             idle poll interval (default: 200)\n"
        "  --retries K             tolerated consecutive connection\n"
        "                          failures (default: 30)\n"
        "  --verbose               log every lease and completion\n"
        "exits 0 when the server drains, 1 when it stays unreachable\n");
}

int
workerImpl(int argc, char **argv, int first)
{
    serve::WorkerOptions opts;
    std::string endpoint = ".sst-serve.sock";
    opts.driver.jobs = 1;

    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--connect") {
            endpoint = argValue(argc, argv, i);
        } else if (arg == "--name") {
            opts.name = argValue(argc, argv, i);
        } else if (arg == "--cache-dir") {
            opts.driver.cacheDir = argValue(argc, argv, i);
        } else if (arg == "--trace-dir") {
            opts.driver.traceDir = argValue(argc, argv, i);
        } else if (arg == "--poll-ms") {
            opts.pollMs = parseU64("--poll-ms", argValue(argc, argv, i));
        } else if (arg == "--retries") {
            opts.connectRetries =
                parseInt("--retries", argValue(argc, argv, i), 0, 1 << 20);
        } else if (arg == "--verbose") {
            opts.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            workerUsage();
            return 0;
        } else {
            workerUsage();
            fatal("unknown argument '" + arg + "'");
        }
    }
    opts.endpoint = serve::parseEndpoint(endpoint);
    return serve::runWorker(opts);
}

void
submitUsage()
{
    std::printf(
        "usage: sst submit [--connect ENDPOINT] <action>\n"
        "client for a running `sst serve` instance\n"
        "  --connect ENDPOINT      socket path or tcp:host:port\n"
        "                          (default: .sst-serve.sock)\n"
        "actions (exactly one):\n"
        "  --spec FILE             submit the spec as a campaign\n"
        "    --name NAME           campaign name (default: file stem)\n"
        "    --priority K          queue priority (default: 0)\n"
        "    --wait                stream results once submitted\n"
        "  --results NAME          stream a campaign's results\n"
        "    --json                JSON rows instead of CSV\n"
        "    --no-wait             don't block on unsettled jobs\n"
        "  --status                queue and campaign counters\n"
        "  --cancel NAME           cancel a campaign's pending jobs\n"
        "  --drain                 stop the server once work finishes\n"
        "  --ping                  liveness probe\n"
        "  --csv FILE              write streamed rows to FILE\n"
        "                          (default: stdout)\n");
}

/** Send one request on a fresh connection (the protocol's unit). */
serve::Socket
clientRequest(const serve::Endpoint &ep, const serve::Request &req)
{
    serve::Socket sock = serve::connectTo(ep);
    sock.writeAll(serve::serializeRequest(req) + "\n");
    sock.shutdownWrite();
    return sock;
}

/** One-line request/reply; prints the reply. Returns 0 on `ok ...`. */
int
simpleRequest(const serve::Endpoint &ep, const serve::Request &req)
{
    serve::Socket sock = clientRequest(ep, req);
    std::string reply;
    if (!sock.readLine(reply))
        fatal("server closed the connection");
    std::printf("%s\n", reply.c_str());
    return reply.rfind("ok", 0) == 0 ? 0 : 2;
}

/**
 * Stream a campaign's results. The body (header + rows) goes to
 * @p out_path, or stdout when empty — exactly the bytes `sst sweep
 * --csv` would write, so the two are diffable. Returns 0 when the
 * stream ended `end complete`, 3 on a partial stream.
 */
int
streamCampaign(const serve::Endpoint &ep, const std::string &name,
               bool json, bool wait, const std::string &out_path)
{
    serve::Request req;
    req.kind = serve::Request::Kind::kResults;
    req.campaign = name;
    req.json = json;
    req.wait = wait;
    serve::Socket sock = clientRequest(ep, req);

    std::string line;
    if (!sock.readLine(line))
        fatal("server closed the connection");
    if (line.rfind("ok results", 0) != 0)
        fatal(line);

    std::ostringstream body;
    std::string endLine;
    while (sock.readLine(line)) {
        if (line.rfind("end ", 0) == 0) {
            endLine = line;
            break;
        }
        body << line << '\n';
    }
    if (endLine.empty())
        fatal("results stream ended without an end line");

    if (out_path.empty())
        std::fputs(body.str().c_str(), stdout);
    else
        writeFile(out_path, body.str());

    if (endLine.rfind("end complete", 0) != 0) {
        warn("campaign '" + name + "' is still running (" + endLine +
             "); re-run with --results to fetch the rest");
        return 3;
    }
    return 0;
}

int
submitImpl(int argc, char **argv, int first)
{
    std::string endpoint = ".sst-serve.sock";
    std::string specPath, name, resultsName, cancelName, csvPath;
    int priority = 0;
    bool wait = false, noWait = false, json = false;
    bool status = false, drain = false, ping = false;
    bool haveResults = false, haveCancel = false;

    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--connect") {
            endpoint = argValue(argc, argv, i);
        } else if (arg == "--spec") {
            specPath = argValue(argc, argv, i);
        } else if (arg == "--name") {
            name = argValue(argc, argv, i);
        } else if (arg == "--priority") {
            priority = parseInt("--priority", argValue(argc, argv, i),
                                -1000000, 1000000);
        } else if (arg == "--wait") {
            wait = true;
        } else if (arg == "--results") {
            resultsName = argValue(argc, argv, i);
            haveResults = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--no-wait") {
            noWait = true;
        } else if (arg == "--status") {
            status = true;
        } else if (arg == "--cancel") {
            cancelName = argValue(argc, argv, i);
            haveCancel = true;
        } else if (arg == "--drain") {
            drain = true;
        } else if (arg == "--ping") {
            ping = true;
        } else if (arg == "--csv") {
            csvPath = argValue(argc, argv, i);
        } else if (arg == "--help" || arg == "-h") {
            submitUsage();
            return 0;
        } else {
            submitUsage();
            fatal("unknown argument '" + arg + "'");
        }
    }

    const int actions = static_cast<int>(!specPath.empty()) +
                        static_cast<int>(haveResults) +
                        static_cast<int>(status) +
                        static_cast<int>(haveCancel) +
                        static_cast<int>(drain) + static_cast<int>(ping);
    if (actions != 1) {
        submitUsage();
        fatal("exactly one action required (--spec, --results, "
              "--status, --cancel, --drain or --ping)");
    }

    const serve::Endpoint ep = serve::parseEndpoint(endpoint);

    if (status) {
        serve::Request req;
        req.kind = serve::Request::Kind::kStatus;
        serve::Socket sock = clientRequest(ep, req);
        std::string line;
        if (!sock.readLine(line))
            fatal("server closed the connection");
        if (line.rfind("ok", 0) != 0)
            fatal(line);
        while (sock.readLine(line) && line != "end")
            std::printf("%s\n", line.c_str());
        return 0;
    }
    if (drain) {
        serve::Request req;
        req.kind = serve::Request::Kind::kDrain;
        return simpleRequest(ep, req);
    }
    if (ping) {
        serve::Request req;
        req.kind = serve::Request::Kind::kPing;
        return simpleRequest(ep, req);
    }
    if (haveCancel) {
        serve::Request req;
        req.kind = serve::Request::Kind::kCancel;
        req.campaign = cancelName;
        return simpleRequest(ep, req);
    }
    if (haveResults)
        return streamCampaign(ep, resultsName, json, !noWait, csvPath);

    // --spec: submit, optionally followed by a blocking results stream.
    std::ifstream in(specPath, std::ios::binary);
    if (!in.is_open())
        fatal("cannot read spec file " + specPath);
    std::ostringstream text;
    text << in.rdbuf();
    if (name.empty())
        name = std::filesystem::path(specPath).stem().string();

    serve::Request req;
    req.kind = serve::Request::Kind::kSubmit;
    req.campaign = name;
    req.priority = priority;
    req.payload = text.str();
    const int rc = simpleRequest(ep, req);
    if (rc != 0 || !wait)
        return rc;
    return streamCampaign(ep, name, json, /*wait=*/true, csvPath);
}

void
metricsUsage()
{
    std::printf(
        "usage: sst metrics [ENDPOINT]\n"
        "print the telemetry exposition of a running `sst serve`:\n"
        "counters, gauges and latency histograms in Prometheus text\n"
        "format (deterministically ordered)\n"
        "  ENDPOINT                socket path or tcp:host:port\n"
        "                          (default: .sst-serve.sock)\n"
        "  --connect ENDPOINT      same, as a flag\n");
}

int
metricsImpl(int argc, char **argv, int first)
{
    std::string endpoint = ".sst-serve.sock";
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--connect") {
            endpoint = argValue(argc, argv, i);
        } else if (arg == "--help" || arg == "-h") {
            metricsUsage();
            return 0;
        } else if (!arg.empty() && arg[0] != '-') {
            endpoint = arg;
        } else {
            metricsUsage();
            fatal("unknown argument '" + arg + "'");
        }
    }

    serve::Request req;
    req.kind = serve::Request::Kind::kMetrics;
    serve::Socket sock =
        clientRequest(serve::parseEndpoint(endpoint), req);
    std::string line;
    if (!sock.readLine(line))
        fatal("server closed the connection");
    if (line.rfind("ok metrics", 0) != 0)
        fatal(line);
    while (sock.readLine(line) && line != "end")
        std::printf("%s\n", line.c_str());
    return 0;
}

} // namespace

int
sweepMain(int argc, char **argv, int first)
{
    SweepGrid grid;
    grid.profiles = allProfileLabels();
    bool profiles_given = false;
    bool threads_given = false;

    DriverOptions opts;
    opts.jobs = 0; // hardware concurrency
    opts.cacheDir = ".sst-cache";
    std::string csvPath, jsonPath, traceOutPath;
    bool quiet = false;

    try {
        for (int i = first; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--profiles") {
                const std::string v = argValue(argc, argv, i);
                profiles_given = true;
                if (v != "all")
                    grid.profiles = parseLabelList(v);
            } else if (arg == "--mix") {
                grid.workloads = parseLabelList(argValue(argc, argv, i));
            } else if (arg == "--workload-file") {
                grid.workloadFiles.push_back(argValue(argc, argv, i));
            } else if (arg == "--threads") {
                grid.threads = parseIntList(argValue(argc, argv, i));
                threads_given = true;
            } else if (arg == "--cores") {
                grid.cores = parseIntList(argValue(argc, argv, i));
            } else if (arg == "--llc") {
                grid.llcBytes = parseSizeList(argValue(argc, argv, i));
            } else if (arg == "--jobs") {
                opts.jobs = parseInt("--jobs", argValue(argc, argv, i),
                                     0, 1 << 20);
            } else if (arg == "--seed-offset") {
                grid.seedOffset =
                    parseU64("--seed-offset", argValue(argc, argv, i));
            } else if (arg == "--cache-dir") {
                opts.cacheDir = argValue(argc, argv, i);
            } else if (arg == "--no-cache") {
                opts.cacheDir.clear();
            } else if (arg == "--refresh") {
                opts.refresh = true;
            } else if (arg == "--trace-dir") {
                opts.traceDir = argValue(argc, argv, i);
            } else if (arg == "--record-dir") {
                opts.recordDir = argValue(argc, argv, i);
            } else if (arg == "--sched") {
                grid.baseParams.schedPolicy =
                    parseSchedPolicy(argValue(argc, argv, i));
            } else if (arg == "--sched-seed") {
                grid.baseParams.schedSeed =
                    parseU64("--sched-seed", argValue(argc, argv, i));
            } else if (arg == "--csv") {
                csvPath = argValue(argc, argv, i);
            } else if (arg == "--json") {
                jsonPath = argValue(argc, argv, i);
            } else if (arg == "--trace-out") {
                traceOutPath = argValue(argc, argv, i);
            } else if (arg == "--quiet") {
                quiet = true;
            } else if (arg == "--help" || arg == "-h") {
                sweepUsage();
                return 0;
            } else {
                sweepUsage();
                fatal("unknown argument '" + arg + "'");
            }
        }

        if (grid.baseParams.schedSeed != 0 &&
            grid.baseParams.schedPolicy != SchedPolicy::kRandom) {
            fatal("--sched-seed only affects --sched random; the "
                  "seed would be silently ignored");
        }
        // --mix replaces the profile and thread axes; an explicit
        // --profiles next to it is a contradiction expandGrid rejects,
        // and an explicit --threads would be silently ignored — fatal.
        if ((!grid.workloads.empty() || !grid.workloadFiles.empty()) &&
            threads_given) {
            fatal("--threads does not apply to --mix/--workload-file "
                  "(each workload carries its own thread counts)");
        }
        if ((!grid.workloads.empty() || !grid.workloadFiles.empty()) &&
            !profiles_given)
            grid.profiles.clear();

        return executeBatch(grid, opts, quiet, csvPath, jsonPath,
                            traceOutPath);
    } catch (const std::exception &e) {
        fatal(e.what());
    }
}

int
traceMain(int argc, char **argv, int first)
{
    if (first >= argc) {
        traceUsage();
        return 1;
    }
    const std::string cmd = argv[first];
    try {
        if (cmd == "record")
            return traceRecord(argc, argv, first + 1);
        if (cmd == "replay")
            return traceReplay(argc, argv, first + 1);
        if (cmd == "info")
            return traceInfo(argc, argv, first + 1);
        if (cmd == "--help" || cmd == "-h") {
            traceUsage();
            return 0;
        }
        traceUsage();
        fatal("unknown subcommand '" + cmd + "'");
    } catch (const std::exception &e) {
        fatal(e.what());
    }
}

int
runMain(int argc, char **argv, int first)
{
    std::string specPath;
    // (key, value) overrides in command-line order; applied through the
    // same applySpecValue path the file parser uses.
    std::vector<std::pair<std::string, std::string>> overrides;
    bool printSpec = false;
    bool quiet = false;
    std::string csvPath, jsonPath, traceOutPath;

    DriverOptions opts;
    opts.jobs = 0; // hardware concurrency
    opts.cacheDir = ".sst-cache";

    try {
        for (int i = first; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--spec") {
                specPath = argValue(argc, argv, i);
            } else if (arg == "--set") {
                const std::string kv = argValue(argc, argv, i);
                const std::size_t eq = kv.find('=');
                if (eq == std::string::npos)
                    fatal("--set needs KEY=VALUE, got '" + kv + "'");
                overrides.emplace_back(kv.substr(0, eq),
                                       kv.substr(eq + 1));
            } else if (arg == "--sched") {
                overrides.emplace_back("sched", argValue(argc, argv, i));
            } else if (arg == "--sched-seed") {
                overrides.emplace_back("sched-seed",
                                       argValue(argc, argv, i));
            } else if (arg == "--print-spec") {
                printSpec = true;
            } else if (arg == "--jobs") {
                opts.jobs = parseInt("--jobs", argValue(argc, argv, i),
                                     0, 1 << 20);
            } else if (arg == "--cache-dir") {
                opts.cacheDir = argValue(argc, argv, i);
            } else if (arg == "--no-cache") {
                opts.cacheDir.clear();
            } else if (arg == "--refresh") {
                opts.refresh = true;
            } else if (arg == "--csv") {
                csvPath = argValue(argc, argv, i);
            } else if (arg == "--json") {
                jsonPath = argValue(argc, argv, i);
            } else if (arg == "--trace-out") {
                traceOutPath = argValue(argc, argv, i);
            } else if (arg == "--quiet") {
                quiet = true;
            } else if (arg == "--help" || arg == "-h") {
                runUsage();
                return 0;
            } else {
                runUsage();
                fatal("unknown argument '" + arg + "'");
            }
        }
        if (specPath.empty()) {
            runUsage();
            fatal("run needs --spec FILE");
        }

        ExperimentSpec spec = parseSpecFile(specPath);
        for (const auto &kv : overrides)
            applySpecValue(spec, kv.first, kv.second);

        if (printSpec) {
            std::fputs(serializeSpec(spec).c_str(), stdout);
            return 0;
        }

        const SweepGrid grid = specGrid(spec); // validates
        applySpecToDriverOptions(spec, opts);

        return executeBatch(grid, opts, quiet || spec.quiet,
                            csvPath.empty() ? spec.csvPath : csvPath,
                            jsonPath.empty() ? spec.jsonPath : jsonPath,
                            traceOutPath);
    } catch (const std::exception &e) {
        fatal(e.what());
    }
}

int
listMain(int argc, char **argv, int first)
{
    if (first >= argc) {
        listUsage();
        return 1; // missing registry argument is an error, like before
    }
    const std::string what = argv[first];
    for (const ListCommand &c : kListCommands)
        if (what == c.name)
            return c.run();
    if (what == "--help" || what == "-h")
        return listUsage();
    listUsage();
    fatal("unknown registry '" + what + "'; valid registries: " +
          listCommandNamesJoined());
}

int
serveMain(int argc, char **argv, int first)
{
    try {
        return serveImpl(argc, argv, first);
    } catch (const std::exception &e) {
        fatal(e.what());
    }
}

int
workerMain(int argc, char **argv, int first)
{
    try {
        return workerImpl(argc, argv, first);
    } catch (const std::exception &e) {
        fatal(e.what());
    }
}

int
submitMain(int argc, char **argv, int first)
{
    try {
        return submitImpl(argc, argv, first);
    } catch (const std::exception &e) {
        fatal(e.what());
    }
}

int
metricsMain(int argc, char **argv, int first)
{
    try {
        return metricsImpl(argc, argv, first);
    } catch (const std::exception &e) {
        fatal(e.what());
    }
}

int
versionMain()
{
    std::printf("sst format versions:\n"
                "  fingerprint     %d (homogeneous schema %d)\n"
                "  trace           %u (oldest readable %u)\n"
                "  result cache    %d\n"
                "  serve protocol  %d\n"
                "  wdl language    %d\n",
                kFingerprintVersion, kHomogeneousSchemaVersion,
                trace::kTraceVersion, trace::kMinTraceVersion,
                kResultCacheVersion, serve::kProtocolVersion,
                wdl::kWdlVersion);
    return 0;
}

} // namespace cli
} // namespace sst
