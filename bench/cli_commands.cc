#include "cli_commands.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cli_common.hh"
#include "core/classify.hh"
#include "driver/job.hh"
#include "driver/sweep.hh"
#include "sched/policy.hh"
#include "spec/registries.hh"
#include "spec/spec.hh"
#include "trace/trace_run.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "workload/profile.hh"

namespace sst {
namespace cli {
namespace {

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("cannot write " + path);
    out << content;
    std::printf("wrote %s\n", path.c_str());
}

/**
 * The per-benchmark result table every batch command prints: speedup,
 * estimation error and top stack components per job, with the optional
 * cores/LLC columns shown only when that axis is actually swept.
 */
void
printBatchTable(const std::vector<JobSpec> &jobs,
                const std::vector<JobResult> &results, bool show_cores,
                bool show_llc)
{
    TextTable table;
    std::vector<std::string> header = {"benchmark", "threads"};
    if (show_cores)
        header.push_back("cores");
    if (show_llc)
        header.push_back("llc");
    for (const char *c : {"paper", "actual", "estimated", "err", "1st",
                          "2nd", "3rd", "base", "pos", "netneg", "mem",
                          "spin", "yield"})
        header.push_back(c);
    table.setHeader(header);

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const JobSpec &s = jobs[i];
        const JobResult &r = results[i];
        std::vector<std::string> row = {s.label(),
                                        std::to_string(s.nthreads())};
        if (show_cores)
            row.push_back(std::to_string(s.ncoresEffective()));
        if (show_llc)
            row.push_back(fmtBytes(s.params.cache.llcBytes));
        if (!r.ok()) {
            row.push_back("FAILED: " + r.error);
            while (row.size() < header.size())
                row.push_back("-");
            table.addRow(row);
            continue;
        }
        const SpeedupExperiment &e = r.exp;
        const auto ranked = rankedDelimiters(e.stack);
        auto comp = [&](std::size_t k) {
            return k < ranked.size()
                       ? std::string(shortComponentName(ranked[k]))
                       : std::string("-");
        };
        // The paper reports 16-thread speedups per benchmark; mixes and
        // pipelines have no single paper row.
        row.push_back(s.workload.isHomogeneous()
                          ? fmtDouble(s.workload.groups[0]
                                          .profile.paperSpeedup16,
                                      2)
                          : std::string("-"));
        row.push_back(fmtDouble(e.actualSpeedup, 2));
        row.push_back(fmtDouble(e.estimatedSpeedup, 2));
        row.push_back(fmtPercent(e.error, 1));
        row.push_back(comp(0));
        row.push_back(comp(1));
        row.push_back(comp(2));
        row.push_back(fmtDouble(e.stack.baseSpeedup, 2));
        row.push_back(fmtDouble(e.stack.posLlc, 2));
        row.push_back(fmtDouble(e.stack.netNegLlc(), 2));
        row.push_back(fmtDouble(e.stack.negMem, 2));
        row.push_back(fmtDouble(e.stack.spin, 2));
        row.push_back(fmtDouble(e.stack.yield, 2));
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());

    RunningStat err;
    for (const JobResult &r : results)
        if (r.ok())
            err.add(std::fabs(r.exp.error));
    if (err.count() > 0)
        std::printf("average absolute error: %.1f%%\n",
                    err.mean() * 100.0);
}

void
printBatchStats(const ExperimentDriver &driver)
{
    const BatchStats &stats = driver.stats();
    std::printf(
        "batch: %zu jobs, %zu executed, %zu cached, %zu failed, "
        "%zu baselines, %zu trace replays, %zu traces recorded, "
        "%d workers\n",
        stats.total, stats.executed, stats.cached, stats.failed,
        stats.baselinesComputed, stats.traceReplays,
        stats.tracesRecorded, driver.workerCount());
}

/** Run a grid, print, export — the tail shared by sweep and run. */
int
executeBatch(const SweepGrid &grid, const DriverOptions &opts, bool quiet,
             const std::string &csv_path, const std::string &json_path)
{
    const std::vector<JobSpec> jobs = expandGrid(grid);
    ExperimentDriver driver(opts);
    const std::vector<JobResult> results = driver.runBatch(jobs);

    if (!quiet)
        printBatchTable(jobs, results, !grid.cores.empty(),
                        !grid.llcBytes.empty());
    printBatchStats(driver);

    if (!csv_path.empty())
        writeFile(csv_path, sweepCsv(jobs, results));
    if (!json_path.empty())
        writeFile(json_path, sweepJson(jobs, results));

    return driver.stats().failed == 0 ? 0 : 2;
}

// ---- sweep ------------------------------------------------------------------

void
sweepUsage()
{
    std::printf(
        "usage: sweep [options]\n"
        "  --profiles all|A,B,...  benchmark labels (default: all)\n"
        "  --mix LIST              heterogeneous workloads: registered\n"
        "                          mixes/pipelines (`sst list mixes`) or\n"
        "                          inline a:8+b:8 / s1:1>s2:2 descriptors\n"
        "                          (replaces --profiles/--threads)\n"
        "  --threads LIST          thread counts, e.g. 2,4,8,16 "
        "(default: 16)\n"
        "  --cores LIST            core counts (default: = threads;\n"
        "                          fewer cores oversubscribes)\n"
        "  --llc LIST              LLC sizes, e.g. 1M,2M,4M,8M "
        "(default: params default)\n"
        "  --jobs N                worker threads (default: hardware)\n"
        "  --seed-offset K         replication RNG stream (default: 0)\n"
        "  --cache-dir DIR         result cache (default: .sst-cache)\n"
        "  --no-cache              disable the result cache\n"
        "  --refresh               re-run and overwrite cached results\n"
        "  --trace-dir DIR         replay recorded op traces from DIR\n"
        "                          (see `trace record --trace-dir`)\n"
        "  --record-dir DIR        capture .sstt traces of live jobs\n"
        "                          into DIR as the batch runs (cache\n"
        "                          hits skip capture)\n"
        "  --sched POLICY          scheduler policy (default:\n"
        "                          affinity-fifo)\n"
        "  --sched-seed K          RNG stream for --sched random\n"
        "  --csv FILE              write results as CSV\n"
        "  --json FILE             write results as JSON\n"
        "  --quiet                 suppress the result table\n"
        "scheduler policies: %s\n",
        allSchedPolicyLabelsJoined().c_str());
}

// ---- trace ------------------------------------------------------------------

void
traceUsage()
{
    std::printf(
        "usage: trace <record|replay|info> [options]\n"
        "  record --profile LABEL [--threads N] (--out FILE | "
        "--trace-dir DIR)\n"
        "         [--seed-offset K] [--sched POLICY] [--sched-seed K]\n"
        "         [--quiet]\n"
        "      run the live experiment, write the op trace\n"
        "  replay --in FILE [--sched POLICY] [--quiet]\n"
        "      re-simulate from the trace (no workload generation);\n"
        "      --sched must match the recorded policy (it documents\n"
        "      the expectation, replay always uses the recording's)\n"
        "  info --in FILE\n"
        "      print header and per-stream statistics\n"
        "scheduler policies: %s\n",
        allSchedPolicyLabelsJoined().c_str());
}

/**
 * Full-precision experiment dump: every value %.17g/%"PRIu64" so record
 * and replay output can be diffed bit for bit.
 */
void
printExperiment(const SpeedupExperiment &e)
{
    std::printf("benchmark           %s\n", e.label.c_str());
    std::printf("threads             %d\n", e.nthreads);
    std::printf("ts                  %" PRIu64 "\n", e.ts);
    std::printf("tp                  %" PRIu64 "\n", e.tp);
    std::printf("actual_speedup      %.17g\n", e.actualSpeedup);
    std::printf("estimated_speedup   %.17g\n", e.estimatedSpeedup);
    std::printf("error               %.17g\n", e.error);
    std::printf("stack.base          %.17g\n", e.stack.baseSpeedup);
    std::printf("stack.pos_llc       %.17g\n", e.stack.posLlc);
    std::printf("stack.neg_llc       %.17g\n", e.stack.negLlc);
    std::printf("stack.neg_mem       %.17g\n", e.stack.negMem);
    std::printf("stack.spin          %.17g\n", e.stack.spin);
    std::printf("stack.yield         %.17g\n", e.stack.yield);
    std::printf("stack.imbalance     %.17g\n", e.stack.imbalance);
    std::printf("stack.coherency     %.17g\n", e.stack.coherency);
    std::printf("par_overhead        %.17g\n", e.parOverheadMeasured);
}

int
traceRecord(int argc, char **argv, int first)
{
    std::string label, outPath, traceDir;
    int nthreads = 16;
    std::uint64_t seedOffset = 0;
    SimParams params;
    bool quiet = false;

    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--profile") {
            label = argValue(argc, argv, i);
        } else if (arg == "--threads") {
            // The recording runs live on nthreads cores, so the
            // simulator's core cap bounds this (the format itself
            // allows up to trace::kMaxThreads streams).
            nthreads =
                parseInt("--threads", argValue(argc, argv, i), 1,
                         static_cast<long>(kMaxSimCores));
        } else if (arg == "--out") {
            outPath = argValue(argc, argv, i);
        } else if (arg == "--trace-dir") {
            traceDir = argValue(argc, argv, i);
        } else if (arg == "--seed-offset") {
            seedOffset =
                parseU64("--seed-offset", argValue(argc, argv, i));
        } else if (arg == "--sched") {
            params.schedPolicy =
                parseSchedPolicy(argValue(argc, argv, i));
        } else if (arg == "--sched-seed") {
            params.schedSeed =
                parseU64("--sched-seed", argValue(argc, argv, i));
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            traceUsage();
            fatal("unknown record argument '" + arg + "'");
        }
    }
    if (label.empty())
        fatal("record needs --profile (one of: " +
              allProfileLabelsJoined() + ")");
    if (params.schedSeed != 0 &&
        params.schedPolicy != SchedPolicy::kRandom) {
        fatal("--sched-seed only affects --sched random; the "
              "seed would be silently ignored");
    }
    if (outPath.empty() == traceDir.empty())
        fatal("record needs exactly one of --out or --trace-dir");

    BenchmarkProfile profile = profileByLabel(label);
    profile.seed = deriveJobSeed(profile.seed, seedOffset);

    if (!traceDir.empty()) {
        std::filesystem::create_directories(traceDir);
        outPath = tracePathFor(traceDir, profile, nthreads, seedOffset,
                               params.schedPolicy, params.schedSeed);
    }

    std::uint64_t ops = 0;
    const SpeedupExperiment exp =
        recordSpeedupTrace(params, profile, nthreads, outPath, &ops);
    printExperiment(exp);
    if (!quiet) {
        const auto bytes = std::filesystem::file_size(outPath);
        std::printf("wrote %s: %" PRIu64 " ops in %ju bytes "
                    "(%.2f bytes/op)\n",
                    outPath.c_str(), ops,
                    static_cast<std::uintmax_t>(bytes),
                    static_cast<double>(bytes) /
                        static_cast<double>(ops));
    }
    return 0;
}

int
traceReplay(int argc, char **argv, int first)
{
    std::string inPath;
    bool quiet = false;
    bool schedGiven = false;
    SchedPolicy sched = SchedPolicy::kAffinityFifo;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--in") {
            inPath = argValue(argc, argv, i);
        } else if (arg == "--sched") {
            sched = parseSchedPolicy(argValue(argc, argv, i));
            schedGiven = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            traceUsage();
            fatal("unknown replay argument '" + arg + "'");
        }
    }
    if (inPath.empty())
        fatal("replay needs --in FILE");

    const TraceReader reader(inPath);
    if (schedGiven)
        reader.requireSchedPolicy(sched); // TraceError -> fatal in main

    const SpeedupExperiment exp =
        replaySpeedupTrace(SimParams{}, reader);
    printExperiment(exp);
    if (!quiet)
        std::printf("replayed %s\n", inPath.c_str());
    return 0;
}

int
traceInfo(int argc, char **argv, int first)
{
    std::string inPath;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--in") {
            inPath = argValue(argc, argv, i);
        } else {
            traceUsage();
            fatal("unknown info argument '" + arg + "'");
        }
    }
    if (inPath.empty())
        fatal("info needs --in FILE");

    const TraceReader reader(inPath);
    const trace::TraceMeta &meta = reader.meta();
    std::printf("file                %s\n", inPath.c_str());
    std::printf("format_version      %u\n", meta.version);
    std::printf("benchmark           %s\n", meta.label.c_str());
    std::printf("threads             %d\n", meta.nthreads);
    std::printf("profile_hash        %016" PRIx64 "\n", meta.profileHash);
    std::printf("sched_policy        %s\n",
                schedPolicyLabel(meta.schedPolicy));
    std::printf("sched_seed          %" PRIu64 "\n", meta.schedSeed);
    std::printf("workload_role       %s\n", workloadRoleName(meta.role));
    for (std::size_t g = 0; g < meta.groups.size(); ++g) {
        std::printf("group %-2zu            %s: %d threads, profile "
                    "%016" PRIx64 "\n",
                    g, meta.groups[g].label.c_str(),
                    meta.groups[g].nthreads, meta.groups[g].profileHash);
    }
    std::uint64_t total_ops = 0, total_bytes = 0;
    for (int s = 0; s < reader.nstreams(); ++s) {
        const bool baseline = s >= meta.nthreads;
        std::printf("stream %-3d %s  %12" PRIu64 " ops  %12" PRIu64
                    " bytes\n",
                    s, baseline ? "(baseline)" : "          ",
                    reader.opCount(s), reader.streamBytes(s));
        total_ops += reader.opCount(s);
        total_bytes += reader.streamBytes(s);
    }
    std::printf("total               %" PRIu64 " ops, %" PRIu64
                " encoded bytes (%.2f bytes/op)\n",
                total_ops, total_bytes,
                static_cast<double>(total_bytes) /
                    static_cast<double>(total_ops));
    return 0;
}

// ---- run --------------------------------------------------------------------

void
runUsage()
{
    std::printf(
        "usage: sst run --spec FILE [options]\n"
        "execute a declarative experiment spec (see examples/specs/)\n"
        "  --spec FILE             the spec file (required)\n"
        "  --set KEY=VALUE         override one spec key (repeatable;\n"
        "                          same keys as the file format)\n"
        "  --sched POLICY          shorthand for --set sched=POLICY\n"
        "  --sched-seed K          shorthand for --set sched-seed=K\n"
        "  --print-spec            print the canonical form and exit\n"
        "  --jobs N                worker threads (default: hardware)\n"
        "  --cache-dir DIR         result cache (default: .sst-cache)\n"
        "  --no-cache              disable the result cache\n"
        "  --refresh               re-run and overwrite cached results\n"
        "  --csv FILE              write CSV (overrides output.csv)\n"
        "  --json FILE             write JSON (overrides output.json)\n"
        "  --quiet                 suppress the result table\n"
        "spec keys: %s\n",
        specKeyNamesJoined().c_str());
}

// ---- list -------------------------------------------------------------------

int
listProfiles()
{
    TextTable table;
    table.setHeader({"label", "suite", "paper speedup @16", "class"});
    for (const std::string &name : profileRegistry().names()) {
        const BenchmarkProfile &p = **profileRegistry().find(name);
        table.addRow({name, p.suite, fmtDouble(p.paperSpeedup16, 2),
                      p.paperClass});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}

int
listScheds()
{
    for (const std::string &name : schedulerRegistry().names())
        std::printf("%s\n", name.c_str());
    return 0;
}

int
listFrontends()
{
    TextTable table;
    table.setHeader({"frontend", "description"});
    for (const std::string &name : opSourceRegistry().names()) {
        const OpSourceFrontend &f = *opSourceRegistry().find(name);
        table.addRow({name, f.description});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}

int
listMixes()
{
    TextTable table;
    table.setHeader({"mix", "role", "threads", "groups"});
    for (const std::string &name : mixRegistry().names()) {
        const WorkloadSpec &w = *mixRegistry().find(name);
        table.addRow({name, workloadRoleName(w.role),
                      std::to_string(w.nthreads()), w.descriptor()});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}

/** The list subcommands, table-driven like the registries themselves:
 *  usage text and the unknown-registry error enumerate this table. */
struct ListCommand
{
    const char *name;
    const char *description;
    int (*run)();
};

constexpr ListCommand kListCommands[] = {
    {"profiles", "the Figure 6 benchmark suite", listProfiles},
    {"scheds", "OS scheduler policies (--sched)", listScheds},
    {"frontends", "workload frontends (frontend =)", listFrontends},
    {"mixes", "named heterogeneous workloads (workload =)", listMixes},
};

std::string
listCommandNamesJoined()
{
    std::string out;
    for (const ListCommand &c : kListCommands) {
        if (!out.empty())
            out += ", ";
        out += c.name;
    }
    return out;
}

int
listUsage()
{
    TextTable table;
    table.setHeader({"registry", "contents"});
    for (const ListCommand &c : kListCommands)
        table.addRow({c.name, c.description});
    std::printf("usage: sst list <%s>\n%s\n",
                listCommandNamesJoined().c_str(),
                table.render().c_str());
    return 0;
}

} // namespace

int
sweepMain(int argc, char **argv, int first)
{
    SweepGrid grid;
    grid.profiles = allProfileLabels();
    bool profiles_given = false;
    bool threads_given = false;

    DriverOptions opts;
    opts.jobs = 0; // hardware concurrency
    opts.cacheDir = ".sst-cache";
    std::string csvPath, jsonPath;
    bool quiet = false;

    try {
        for (int i = first; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--profiles") {
                const std::string v = argValue(argc, argv, i);
                profiles_given = true;
                if (v != "all")
                    grid.profiles = parseLabelList(v);
            } else if (arg == "--mix") {
                grid.workloads = parseLabelList(argValue(argc, argv, i));
            } else if (arg == "--threads") {
                grid.threads = parseIntList(argValue(argc, argv, i));
                threads_given = true;
            } else if (arg == "--cores") {
                grid.cores = parseIntList(argValue(argc, argv, i));
            } else if (arg == "--llc") {
                grid.llcBytes = parseSizeList(argValue(argc, argv, i));
            } else if (arg == "--jobs") {
                opts.jobs = parseInt("--jobs", argValue(argc, argv, i),
                                     0, 1 << 20);
            } else if (arg == "--seed-offset") {
                grid.seedOffset =
                    parseU64("--seed-offset", argValue(argc, argv, i));
            } else if (arg == "--cache-dir") {
                opts.cacheDir = argValue(argc, argv, i);
            } else if (arg == "--no-cache") {
                opts.cacheDir.clear();
            } else if (arg == "--refresh") {
                opts.refresh = true;
            } else if (arg == "--trace-dir") {
                opts.traceDir = argValue(argc, argv, i);
            } else if (arg == "--record-dir") {
                opts.recordDir = argValue(argc, argv, i);
            } else if (arg == "--sched") {
                grid.baseParams.schedPolicy =
                    parseSchedPolicy(argValue(argc, argv, i));
            } else if (arg == "--sched-seed") {
                grid.baseParams.schedSeed =
                    parseU64("--sched-seed", argValue(argc, argv, i));
            } else if (arg == "--csv") {
                csvPath = argValue(argc, argv, i);
            } else if (arg == "--json") {
                jsonPath = argValue(argc, argv, i);
            } else if (arg == "--quiet") {
                quiet = true;
            } else if (arg == "--help" || arg == "-h") {
                sweepUsage();
                return 0;
            } else {
                sweepUsage();
                fatal("unknown argument '" + arg + "'");
            }
        }

        if (grid.baseParams.schedSeed != 0 &&
            grid.baseParams.schedPolicy != SchedPolicy::kRandom) {
            fatal("--sched-seed only affects --sched random; the "
                  "seed would be silently ignored");
        }
        // --mix replaces the profile and thread axes; an explicit
        // --profiles next to it is a contradiction expandGrid rejects,
        // and an explicit --threads would be silently ignored — fatal.
        if (!grid.workloads.empty() && threads_given) {
            fatal("--threads does not apply to --mix (each workload "
                  "carries its own thread counts)");
        }
        if (!grid.workloads.empty() && !profiles_given)
            grid.profiles.clear();

        return executeBatch(grid, opts, quiet, csvPath, jsonPath);
    } catch (const std::exception &e) {
        fatal(e.what());
    }
}

int
traceMain(int argc, char **argv, int first)
{
    if (first >= argc) {
        traceUsage();
        return 1;
    }
    const std::string cmd = argv[first];
    try {
        if (cmd == "record")
            return traceRecord(argc, argv, first + 1);
        if (cmd == "replay")
            return traceReplay(argc, argv, first + 1);
        if (cmd == "info")
            return traceInfo(argc, argv, first + 1);
        if (cmd == "--help" || cmd == "-h") {
            traceUsage();
            return 0;
        }
        traceUsage();
        fatal("unknown subcommand '" + cmd + "'");
    } catch (const std::exception &e) {
        fatal(e.what());
    }
}

int
runMain(int argc, char **argv, int first)
{
    std::string specPath;
    // (key, value) overrides in command-line order; applied through the
    // same applySpecValue path the file parser uses.
    std::vector<std::pair<std::string, std::string>> overrides;
    bool printSpec = false;
    bool quiet = false;
    std::string csvPath, jsonPath;

    DriverOptions opts;
    opts.jobs = 0; // hardware concurrency
    opts.cacheDir = ".sst-cache";

    try {
        for (int i = first; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--spec") {
                specPath = argValue(argc, argv, i);
            } else if (arg == "--set") {
                const std::string kv = argValue(argc, argv, i);
                const std::size_t eq = kv.find('=');
                if (eq == std::string::npos)
                    fatal("--set needs KEY=VALUE, got '" + kv + "'");
                overrides.emplace_back(kv.substr(0, eq),
                                       kv.substr(eq + 1));
            } else if (arg == "--sched") {
                overrides.emplace_back("sched", argValue(argc, argv, i));
            } else if (arg == "--sched-seed") {
                overrides.emplace_back("sched-seed",
                                       argValue(argc, argv, i));
            } else if (arg == "--print-spec") {
                printSpec = true;
            } else if (arg == "--jobs") {
                opts.jobs = parseInt("--jobs", argValue(argc, argv, i),
                                     0, 1 << 20);
            } else if (arg == "--cache-dir") {
                opts.cacheDir = argValue(argc, argv, i);
            } else if (arg == "--no-cache") {
                opts.cacheDir.clear();
            } else if (arg == "--refresh") {
                opts.refresh = true;
            } else if (arg == "--csv") {
                csvPath = argValue(argc, argv, i);
            } else if (arg == "--json") {
                jsonPath = argValue(argc, argv, i);
            } else if (arg == "--quiet") {
                quiet = true;
            } else if (arg == "--help" || arg == "-h") {
                runUsage();
                return 0;
            } else {
                runUsage();
                fatal("unknown argument '" + arg + "'");
            }
        }
        if (specPath.empty()) {
            runUsage();
            fatal("run needs --spec FILE");
        }

        ExperimentSpec spec = parseSpecFile(specPath);
        for (const auto &kv : overrides)
            applySpecValue(spec, kv.first, kv.second);

        if (printSpec) {
            std::fputs(serializeSpec(spec).c_str(), stdout);
            return 0;
        }

        const SweepGrid grid = specGrid(spec); // validates
        applySpecToDriverOptions(spec, opts);

        return executeBatch(grid, opts, quiet || spec.quiet,
                            csvPath.empty() ? spec.csvPath : csvPath,
                            jsonPath.empty() ? spec.jsonPath : jsonPath);
    } catch (const std::exception &e) {
        fatal(e.what());
    }
}

int
listMain(int argc, char **argv, int first)
{
    if (first >= argc) {
        listUsage();
        return 1; // missing registry argument is an error, like before
    }
    const std::string what = argv[first];
    for (const ListCommand &c : kListCommands)
        if (what == c.name)
            return c.run();
    if (what == "--help" || what == "-h")
        return listUsage();
    listUsage();
    fatal("unknown registry '" + what + "'; valid registries: " +
          listCommandNamesJoined());
}

} // namespace cli
} // namespace sst
