/**
 * @file
 * Integration tests of the CMP simulator: controlled mini-workloads
 * exercising each scaling delimiter, determinism, oversubscription, and
 * the mutual-exclusion / barrier protocol invariants visible through
 * the sync state and accounting.
 */

#include <gtest/gtest.h>

#include "sim/system.hh"
#include "test_util.hh"

namespace sst {
namespace {

SimParams
paramsFor(int ncores)
{
    SimParams p;
    p.ncores = ncores;
    return p;
}

TEST(System, SequentialRunCompletes)
{
    const BenchmarkProfile p = test::computeOnlyProfile();
    System sys(paramsFor(1), p, 1);
    const RunResult res = sys.run();
    EXPECT_GT(res.executionTime, 0u);
    EXPECT_EQ(res.nthreads, 1);
    EXPECT_GT(res.totalInstructions, 0u);
}

TEST(System, RunIsDeterministic)
{
    const BenchmarkProfile p = test::barrierHeavyProfile();
    SimParams params = paramsFor(4);
    System a(params, p, 4), b(params, p, 4);
    const RunResult ra = a.run();
    const RunResult rb = b.run();
    EXPECT_EQ(ra.executionTime, rb.executionTime);
    EXPECT_EQ(ra.totalInstructions, rb.totalInstructions);
    for (int t = 0; t < 4; ++t) {
        EXPECT_EQ(ra.threads[(std::size_t)t].finishTime,
                  rb.threads[(std::size_t)t].finishTime);
    }
}

TEST(System, ParallelismGivesSpeedup)
{
    const BenchmarkProfile p = test::computeOnlyProfile();
    const RunResult seq = simulate(paramsFor(1), p, 1);
    const RunResult par = simulate(paramsFor(4), p, 4);
    const double speedup = static_cast<double>(seq.executionTime) /
                           static_cast<double>(par.executionTime);
    EXPECT_GT(speedup, 3.0);
    EXPECT_LT(speedup, 4.3);
}

TEST(System, LockContentionCausesSpin)
{
    const BenchmarkProfile p = test::lockHeavyProfile();
    SimParams params = paramsFor(8);
    System sys(params, p, 8);
    const RunResult res = sys.run();
    const std::uint64_t gt_spin = res.sumThreads(
        [](const ThreadCounters &t) { return t.gtSpin(); });
    const std::uint64_t detected = res.sumThreads(
        [](const ThreadCounters &t) { return t.spinDetectedTian; });
    EXPECT_GT(gt_spin, 0u);
    EXPECT_GT(detected, 0u);
    // The detector should see a large fraction of true spinning.
    EXPECT_GT(static_cast<double>(detected),
              0.3 * static_cast<double>(gt_spin));
    // And not wildly overcount.
    EXPECT_LT(static_cast<double>(detected),
              1.5 * static_cast<double>(gt_spin));
}

TEST(System, MutualExclusionAccountingConsistent)
{
    const BenchmarkProfile p = test::lockHeavyProfile();
    SimParams params = paramsFor(4);
    System sys(params, p, 4);
    sys.run();
    // Every contended acquisition was eventually served: the lock ends
    // free with an empty wait queue.
    const LockState &lock = sys.sync().lockState(0);
    EXPECT_EQ(lock.owner, kInvalidId);
    EXPECT_TRUE(lock.yieldedWaiters.empty());
    EXPECT_GT(lock.acquisitions, 0u);
}

TEST(System, BarrierSkewCausesYield)
{
    const BenchmarkProfile p = test::barrierHeavyProfile();
    SimParams params = paramsFor(8);
    const RunResult res = simulate(params, p, 8);
    const std::uint64_t yield = res.sumThreads(
        [](const ThreadCounters &t) { return t.yieldCycles; });
    const std::uint64_t gt_yield = res.sumThreads(
        [](const ThreadCounters &t) { return t.gtYield(); });
    EXPECT_GT(yield, 0u);
    EXPECT_EQ(yield, gt_yield) << "OS yield accounting is exact";
}

TEST(System, MemoryHeavyWorkloadStallsOnDram)
{
    const BenchmarkProfile p = test::memoryHeavyProfile();
    const RunResult res = simulate(paramsFor(8), p, 8);
    const std::uint64_t stall = res.sumThreads(
        [](const ThreadCounters &t) { return t.llcLoadMissStall; });
    EXPECT_GT(stall, 0u);
    std::uint64_t dram = 0;
    for (const auto &d : res.dramStats)
        dram += d.accesses;
    EXPECT_GT(dram, 1000u);
}

TEST(System, SharingProfileShowsPositiveInterference)
{
    const BenchmarkProfile p = test::sharingProfile();
    const RunResult res = simulate(paramsFor(8), p, 8);
    const std::uint64_t hits = res.sumThreads(
        [](const ThreadCounters &t) { return t.interThreadHitsSampled; });
    EXPECT_GT(hits, 0u);
}

TEST(System, OversubscriptionCompletesAndTimeShares)
{
    const BenchmarkProfile p = test::barrierHeavyProfile();
    SimParams params = paramsFor(2);
    const RunResult res = simulate(params, p, 8, 2);
    EXPECT_EQ(res.nthreads, 8);
    EXPECT_EQ(res.ncores, 2);
    EXPECT_GT(res.executionTime, 0u);
    // All threads finished.
    for (const auto &t : res.threads)
        EXPECT_GT(t.finishTime, 0u);
}

TEST(System, MoreCoresHelpOversubscribedRun)
{
    const BenchmarkProfile p = test::computeOnlyProfile();
    const RunResult on2 = simulate(paramsFor(2), p, 8, 2);
    const RunResult on8 = simulate(paramsFor(8), p, 8, 8);
    EXPECT_LT(on8.executionTime, on2.executionTime);
}

TEST(System, FinishTimesNeverExceedExecutionTime)
{
    const BenchmarkProfile p = test::barrierHeavyProfile();
    const RunResult res = simulate(paramsFor(8), p, 8);
    for (const auto &t : res.threads)
        EXPECT_LE(t.finishTime, res.executionTime);
}

TEST(System, RunTwiceIsRejected)
{
    const BenchmarkProfile p = test::computeOnlyProfile();
    System sys(paramsFor(1), p, 1);
    sys.run();
    EXPECT_DEATH(sys.run(), "run\\(\\) may only be called once");
}

TEST(System, InstructionCountsScaleWithOverheadKnob)
{
    BenchmarkProfile p = test::computeOnlyProfile();
    p.parOverheadFrac = 0.3;
    const RunResult seq = simulate(paramsFor(1), p, 1);
    const RunResult par = simulate(paramsFor(4), p, 4);
    EXPECT_GT(static_cast<double>(par.totalInstructions),
              1.2 * static_cast<double>(seq.totalInstructions));
}

} // namespace
} // namespace sst
