/**
 * @file
 * Tests of the telemetry subsystem: registry exposition (golden text,
 * deterministic ordering, label canonicalisation and escaping), exact
 * concurrent counter sums, histogram quantile estimation, Chrome
 * trace_event export well-formedness, and the contract that telemetry
 * never changes simulation results (on/off CSVs are byte-identical).
 */

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "driver/driver.hh"
#include "driver/sweep.hh"
#include "telemetry/metrics.hh"
#include "telemetry/span.hh"
#include "tests/test_util.hh"

namespace sst {
namespace telemetry {
namespace {

// ---- registry exposition ---------------------------------------------------

TEST(Metrics, DisabledRegistryHandsOutNullHandles)
{
    Registry r;
    ASSERT_FALSE(r.enabled());
    CounterHandle c = r.counter("sst_x_total");
    GaugeHandle g = r.gauge("sst_x");
    HistogramHandle h = r.histogram("sst_x_seconds", {}, {1.0});
    EXPECT_FALSE(static_cast<bool>(c));
    EXPECT_FALSE(static_cast<bool>(g));
    EXPECT_FALSE(static_cast<bool>(h));
    c.inc();
    g.set(1.0);
    h.observe(1.0); // all no-ops, and nothing registers
    EXPECT_EQ(r.renderText(), "");
}

TEST(Metrics, ExpositionGolden)
{
    Registry r;
    r.setEnabled(true);
    r.counter("sst_jobs_total", {{"status", "ok"}}).inc(3);
    r.counter("sst_jobs_total", {{"status", "failed"}}).inc();
    r.gauge("sst_queue_depth").set(2.5);
    HistogramHandle h =
        r.histogram("sst_latency_seconds", {}, {0.5, 2.0, 8.0});
    // One observation per bucket incl. +Inf; the sum 21.25 is exactly
    // representable so the golden text is byte-stable.
    h.observe(0.25);
    h.observe(1.0);
    h.observe(4.0);
    h.observe(16.0);

    const std::string expected =
        "# TYPE sst_jobs_total counter\n"
        "sst_jobs_total{status=\"failed\"} 1\n"
        "sst_jobs_total{status=\"ok\"} 3\n"
        "# TYPE sst_latency_seconds histogram\n"
        "sst_latency_seconds_bucket{le=\"0.5\"} 1\n"
        "sst_latency_seconds_bucket{le=\"2\"} 2\n"
        "sst_latency_seconds_bucket{le=\"8\"} 3\n"
        "sst_latency_seconds_bucket{le=\"+Inf\"} 4\n"
        "sst_latency_seconds_sum 21.25\n"
        "sst_latency_seconds_count 4\n"
        "sst_latency_seconds{quantile=\"0.5\"} 2\n"
        "sst_latency_seconds{quantile=\"0.95\"} 8\n"
        "sst_latency_seconds{quantile=\"0.99\"} 8\n"
        "# TYPE sst_queue_depth gauge\n"
        "sst_queue_depth 2.5\n";
    EXPECT_EQ(r.renderText(), expected);
    // Rendering is a pure read: a second walk is byte-identical.
    EXPECT_EQ(r.renderText(), expected);
}

TEST(Metrics, LabelsAreCanonicalisedAndEscaped)
{
    Registry r;
    r.setEnabled(true);
    // Insertion order must not matter: labels sort by name.
    r.counter("sst_m_total", {{"b", "2"}, {"a", "1"}}).inc();
    r.counter("sst_m_total", {{"a", "1"}, {"b", "2"}}).inc();
    r.counter("sst_esc_total", {{"path", "a\\b\"c\nd"}}).inc();

    const std::string text = r.renderText();
    // Same canonical key -> one series with both increments.
    EXPECT_NE(text.find("sst_m_total{a=\"1\",b=\"2\"} 2\n"),
              std::string::npos);
    EXPECT_NE(
        text.find("sst_esc_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
        std::string::npos);
}

TEST(Metrics, ConcurrentIncrementsSumExactly)
{
    Registry r;
    r.setEnabled(true);
    constexpr int kThreads = 8;
    constexpr std::uint64_t kIncsPerThread = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&r] {
            // Each thread acquires its own handle to the same series.
            CounterHandle c = r.counter("sst_concurrent_total");
            for (std::uint64_t i = 0; i < kIncsPerThread; ++i)
                c.inc();
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_NE(r.renderText().find("sst_concurrent_total 160000\n"),
              std::string::npos);
}

TEST(Metrics, HistogramQuantilesFromBucketCounts)
{
    Histogram h({0.001, 0.01, 0.1, 1.0});
    for (int i = 0; i < 90; ++i)
        h.observe(0.0005); // first bucket
    for (int i = 0; i < 9; ++i)
        h.observe(0.05); // third bucket
    h.observe(0.5); // fourth bucket
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.bucketCount(0), 90u);
    EXPECT_EQ(h.bucketCount(2), 9u);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.001);
    EXPECT_DOUBLE_EQ(h.quantile(0.95), 0.1);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.1);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
}

// ---- span tracer / Chrome trace export -------------------------------------

/**
 * Minimal trace_event validator: walks the exported JSON line by line
 * (one event per line by construction), checks every event carries the
 * expected fields, and simulates a per-lane span stack — every E must
 * close the most recent open B of the same name, and every lane must
 * end balanced.
 */
void
validateChromeTrace(const std::string &json, std::size_t expected_events)
{
    ASSERT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
    ASSERT_NE(json.find("],\"displayTimeUnit\":\"ms\"}"),
              std::string::npos);

    std::istringstream in(json);
    std::string line;
    ASSERT_TRUE(std::getline(in, line)); // {"traceEvents":[
    std::map<std::string, std::vector<std::string>> stacks; // tid->names
    std::size_t events = 0;
    while (std::getline(in, line) && line != "]," &&
           line.rfind("],\"displayTimeUnit\"", 0) != 0) {
        if (line.empty())
            continue; // an empty export is "[\n\n]"
        if (line.back() == ',')
            line.pop_back();
        ASSERT_EQ(line.rfind("{\"name\":\"", 0), 0u) << line;
        ASSERT_EQ(line.back(), '}') << line;
        auto field = [&line](const std::string &key) {
            const std::size_t pos = line.find(key);
            EXPECT_NE(pos, std::string::npos) << line;
            const std::size_t start = pos + key.size();
            return line.substr(start,
                               line.find_first_of("\",}", start) - start);
        };
        const std::string name = field("\"name\":\"");
        const std::string ph = field("\"ph\":\"");
        const std::string tid = field("\"tid\":");
        ASSERT_FALSE(field("\"ts\":").empty()) << line;
        if (ph == "B") {
            stacks[tid].push_back(name);
        } else {
            ASSERT_EQ(ph, "E") << line;
            ASSERT_FALSE(stacks[tid].empty()) << line;
            EXPECT_EQ(stacks[tid].back(), name) << line;
            stacks[tid].pop_back();
        }
        ++events;
    }
    for (const auto &kv : stacks)
        EXPECT_TRUE(kv.second.empty())
            << "lane " << kv.first << " ended with an open span";
    EXPECT_EQ(events, expected_events);
}

TEST(SpanTrace, ChromeExportHasMatchedNestedPairs)
{
    SpanTracer &tracer = SpanTracer::global();
    tracer.setEnabled(true);
    tracer.clear();

    // Recorded in scope-close order, as RAII would: inner before outer.
    tracer.record("inner", "test", 200, 1000);
    tracer.record("outer", "test", 100, 4000);
    tracer.record("later", "test", 5000, 6000);
    std::thread other(
        [&tracer] { tracer.record("other-lane", "test", 0, 50); });
    other.join();
    tracer.setEnabled(false);

    const std::string json = tracer.chromeTraceJson();
    // 4 spans -> 8 events, B/E per span.
    validateChromeTrace(json, 8u);
    // The nested pair must open outer before inner.
    EXPECT_LT(json.find("\"name\":\"outer\",\"cat\":\"test\",\"ph\":\"B\""),
              json.find("\"name\":\"inner\",\"cat\":\"test\",\"ph\":\"B\""));
    EXPECT_EQ(tracer.dropped(), 0u);

    tracer.clear();
    validateChromeTrace(tracer.chromeTraceJson(), 0u);
}

TEST(SpanTrace, ScopedSpanRecordsOnlyWhenEnabled)
{
    SpanTracer &tracer = SpanTracer::global();
    tracer.setEnabled(false);
    tracer.clear();
    {
        ScopedSpan off("disabled-span", "test");
    }
    EXPECT_EQ(tracer.chromeTraceJson().find("disabled-span"),
              std::string::npos);

    tracer.setEnabled(true);
    {
        ScopedSpan outer("scoped-outer", "test");
        ScopedSpan inner("scoped-inner", "test");
    }
    tracer.setEnabled(false);
    const std::string json = tracer.chromeTraceJson();
    validateChromeTrace(json, 4u);
    EXPECT_NE(json.find("scoped-outer"), std::string::npos);
    EXPECT_NE(json.find("scoped-inner"), std::string::npos);
    tracer.clear();
}

// ---- determinism: telemetry is write-only ----------------------------------

TEST(TelemetryDeterminism, BatchResultsAreByteIdenticalOnOrOff)
{
    const std::vector<JobSpec> jobs = {
        JobSpec::forProfile(test::computeOnlyProfile(), 2),
        JobSpec::forProfile(test::lockHeavyProfile(), 4),
        JobSpec::forProfile(test::barrierHeavyProfile(), 2)};
    DriverOptions opts;
    opts.jobs = 2;

    Registry::global().reset();
    SpanTracer::global().setEnabled(false);
    const std::vector<JobResult> off = runExperimentBatch(jobs, opts);

    Registry::global().setEnabled(true);
    SpanTracer::global().setEnabled(true);
    const std::vector<JobResult> on = runExperimentBatch(jobs, opts);
    SpanTracer::global().setEnabled(false);
    SpanTracer::global().clear();

    // The instrumented run must actually have recorded something...
    EXPECT_NE(Registry::global().renderText().find(
                  "sst_driver_jobs_total{status=\"ok\"} 3"),
              std::string::npos)
        << Registry::global().renderText();
    Registry::global().reset();

    // ...and still produce byte-identical exported results.
    EXPECT_EQ(sweepCsv(jobs, off), sweepCsv(jobs, on));
    EXPECT_EQ(sweepJson(jobs, off), sweepJson(jobs, on));
}

} // namespace
} // namespace telemetry
} // namespace sst
