/**
 * @file
 * Unit tests for lock/barrier state and the memory value tracker.
 */

#include <gtest/gtest.h>

#include "sync/sync_state.hh"

namespace sst {
namespace {

TEST(SyncLock, AcquireReleaseCycle)
{
    SyncManager sync;
    EXPECT_TRUE(sync.tryAcquire(0, 3));
    EXPECT_FALSE(sync.tryAcquire(0, 4)); // held
    EXPECT_EQ(sync.release(0, 3), kInvalidId);
    EXPECT_TRUE(sync.tryAcquire(0, 4));
}

TEST(SyncLock, WordReflectsHeldState)
{
    SyncManager sync;
    EXPECT_EQ(sync.lockWord(0), 0u);
    sync.tryAcquire(0, 1);
    EXPECT_EQ(sync.lockWord(0), 1u);
    sync.release(0, 1);
    EXPECT_EQ(sync.lockWord(0), 0u);
    EXPECT_EQ(sync.lockWordWriter(0), 1);
}

TEST(SyncLock, WaitersWakeInFifoOrder)
{
    SyncManager sync;
    sync.tryAcquire(5, 0);
    sync.addLockWaiter(5, 1);
    sync.addLockWaiter(5, 2);
    EXPECT_EQ(sync.release(5, 0), 1);
    sync.tryAcquire(5, 1);
    EXPECT_EQ(sync.release(5, 1), 2);
    sync.tryAcquire(5, 2);
    EXPECT_EQ(sync.release(5, 2), kInvalidId);
}

TEST(SyncLock, TracksContention)
{
    SyncManager sync;
    sync.tryAcquire(0, 0);
    sync.addLockWaiter(0, 1);
    EXPECT_EQ(sync.lockState(0).acquisitions, 1u);
    EXPECT_EQ(sync.lockState(0).contendedAcquisitions, 1u);
}

TEST(SyncBarrier, OpensWhenAllArrive)
{
    SyncManager sync;
    std::vector<ThreadId> woken;
    EXPECT_FALSE(sync.barrierArrive(0, 0, 3, woken));
    EXPECT_FALSE(sync.barrierArrive(0, 1, 3, woken));
    EXPECT_EQ(sync.barrierWord(0), 0u);
    EXPECT_TRUE(sync.barrierArrive(0, 2, 3, woken));
    EXPECT_EQ(sync.barrierWord(0), 1u);
    EXPECT_EQ(sync.barrierWordWriter(0), 2);
}

TEST(SyncBarrier, WakesYieldedWaiters)
{
    SyncManager sync;
    std::vector<ThreadId> woken;
    sync.barrierArrive(0, 0, 3, woken);
    sync.addBarrierWaiter(0, 0);
    sync.barrierArrive(0, 1, 3, woken);
    sync.addBarrierWaiter(0, 1);
    sync.barrierArrive(0, 2, 3, woken);
    ASSERT_EQ(woken.size(), 2u);
    EXPECT_EQ(woken[0], 0);
    EXPECT_EQ(woken[1], 1);
}

TEST(SyncBarrier, ReusableAcrossGenerations)
{
    SyncManager sync;
    std::vector<ThreadId> woken;
    for (int gen = 0; gen < 5; ++gen) {
        EXPECT_FALSE(sync.barrierArrive(7, 0, 2, woken));
        EXPECT_TRUE(sync.barrierArrive(7, 1, 2, woken));
        EXPECT_EQ(sync.barrierWord(7),
                  static_cast<std::uint64_t>(gen + 1));
    }
    EXPECT_EQ(sync.barrierState(7).episodes, 5u);
}

TEST(ValueTracker, VersionsAndWriterAttribution)
{
    ValueTracker t;
    EXPECT_EQ(t.onLoad(0x1000, 0).value, 0u);
    EXPECT_FALSE(t.onLoad(0x1000, 0).writtenByOther);

    t.onStore(0x1000, 2);
    const auto v0 = t.onLoad(0x1000, 0);
    EXPECT_EQ(v0.value, 1u);
    EXPECT_TRUE(v0.writtenByOther);

    const auto v2 = t.onLoad(0x1000, 2);
    EXPECT_FALSE(v2.writtenByOther); // own write
}

TEST(ValueTracker, LineGranularity)
{
    ValueTracker t;
    t.onStore(0x1000, 1);
    // Same cache line, different byte.
    EXPECT_EQ(t.onLoad(0x1008, 0).value, 1u);
    // Different line untouched.
    EXPECT_EQ(t.onLoad(0x2000, 0).value, 0u);
}

} // namespace
} // namespace sst
