/**
 * @file
 * Unit tests for the hardware cost model (Section 4.7): the paper's
 * quoted numbers must fall out of the geometry.
 */

#include <gtest/gtest.h>

#include "accounting/hw_cost.hh"

namespace sst {
namespace {

TEST(HwCost, MatchesPaperNumbers)
{
    const HwCostBreakdown b = computeHwCost();
    EXPECT_EQ(b.interferenceBytesPerCore(), 952u);
    EXPECT_EQ(b.spinTableBytes(), 217u);
    EXPECT_EQ(b.totalBytesPerCore(), 1169u); // ~1.1KB
    EXPECT_EQ(b.totalBytesChip(16), 18704u); // ~18KB
}

TEST(HwCost, AtdDominatesInterferenceCost)
{
    const HwCostBreakdown b = computeHwCost();
    EXPECT_GT(b.atdBytes(), b.oraBytes());
    EXPECT_GT(b.atdBytes(), b.counterBytes());
}

TEST(HwCost, AtdBytesScaleInverselyWithSampling)
{
    HwCostConfig a, b;
    a.atdSamplingFactor = 64;
    b.atdSamplingFactor = 128;
    EXPECT_EQ(computeHwCost(a).atdBits, 2 * computeHwCost(b).atdBits);
}

TEST(HwCost, LargerLlcMeansMoreMonitoredSets)
{
    HwCostConfig small, large;
    large.llcBytes = 2 * small.llcBytes;
    // Twice the sets at the same sampling factor -> near 2x ATD bits
    // (tag shrinks by one bit, so slightly less than 2x).
    EXPECT_GT(computeHwCost(large).atdBits, computeHwCost(small).atdBits);
    EXPECT_LT(computeHwCost(large).atdBits,
              2 * computeHwCost(small).atdBits);
}

TEST(HwCost, OraScalesWithBanks)
{
    HwCostConfig a, b;
    a.nbanks = 8;
    b.nbanks = 16;
    EXPECT_LT(computeHwCost(a).oraBits, computeHwCost(b).oraBits);
}

} // namespace
} // namespace sst
