/**
 * @file
 * Tests of the per-thread WorkloadSpec refactor. The load-bearing
 * properties:
 *
 *  - WorkloadSpec::homogeneous() is bit-identical to the pre-refactor
 *    stack: golden Ts/Tp anchors, exact equality with the historical
 *    entry points, and byte-identical result-cache fingerprints
 *    (hexes captured from the pre-refactor build).
 *  - Mixes are deterministic, conserve each program's work, and are
 *    normalized against the sum of the per-program 1-thread baselines
 *    (the paper's per-program methodology).
 *  - Pipeline stage imbalance surfaces as synchronization time with
 *    the expected component ordering (yield-dominated, like ferret).
 *  - v2 trace containers keep replaying as homogeneous workloads, and
 *    the v3 compatibility check rejects per-thread-profile mismatches.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "core/experiment.hh"
#include "driver/driver.hh"
#include "driver/fingerprint.hh"
#include "driver/sweep.hh"
#include "spec/registries.hh"
#include "tests/test_util.hh"
#include "trace/trace_run.hh"
#include "workload/workload_spec.hh"

namespace sst {
namespace {

/** Two dissimilar co-runnable programs for mix tests. */
WorkloadSpec
smallMix()
{
    return WorkloadSpec::mix(
        {WorkloadGroup{test::computeOnlyProfile(), 2},
         WorkloadGroup{test::memoryHeavyProfile(), 2}});
}

/** A strongly imbalanced two-stage pipeline: the heavy stage carries
 *  8x the light stage's work, so the light stage parks on every phase
 *  barrier. */
WorkloadSpec
imbalancedPipeline()
{
    BenchmarkProfile light = test::computeOnlyProfile();
    light.name = "t-light";
    light.totalIters = 500;
    light.barrierPhases = 8;
    BenchmarkProfile heavy = test::computeOnlyProfile();
    heavy.name = "t-heavy";
    heavy.totalIters = 4000;
    heavy.barrierPhases = 8;
    return WorkloadSpec::pipeline(
        {WorkloadGroup{light, 2}, WorkloadGroup{heavy, 2}});
}

// ---- homogeneous path: bit-identical to the pre-refactor stack -------------

struct Golden
{
    const char *label;
    int nthreads;
    Cycles ts;
    Cycles tp;
};

/** Same anchors as tests/test_sched.cc: exact pre-refactor cycles. */
constexpr Golden kGolden[] = {
    {"cholesky", 1, 3432501, 3432501},
    {"cholesky", 4, 3432501, 1077672},
    {"cholesky", 16, 3432501, 640758},
    {"fft", 1, 1963196, 1963196},
    {"fft", 4, 1963196, 527328},
    {"lu.cont", 1, 3227759, 3227759},
    {"lu.cont", 4, 3227759, 893794},
    {"lu.cont", 16, 3227759, 558743},
    {"fft", 16, 1963196, 207740},
};

TEST(WorkloadHomogeneous, MatchesPreRefactorGoldens)
{
    for (const Golden &g : kGolden) {
        const WorkloadSpec spec = WorkloadSpec::homogeneous(
            profileByLabel(g.label), g.nthreads);
        const SpeedupExperiment e = runMixExperiment(SimParams{}, spec);
        EXPECT_EQ(e.ts, g.ts) << g.label << " x" << g.nthreads;
        EXPECT_EQ(e.tp, g.tp) << g.label << " x" << g.nthreads;
    }
}

TEST(WorkloadHomogeneous, EqualsRunSpeedupExperimentExactly)
{
    const BenchmarkProfile profile = test::sharingProfile();
    const SpeedupExperiment direct =
        runSpeedupExperiment(SimParams{}, profile, 4);
    const SpeedupExperiment via = runMixExperiment(
        SimParams{}, WorkloadSpec::homogeneous(profile, 4));
    EXPECT_EQ(via.label, direct.label);
    EXPECT_EQ(via.ts, direct.ts);
    EXPECT_EQ(via.tp, direct.tp);
    EXPECT_EQ(via.actualSpeedup, direct.actualSpeedup);
    EXPECT_EQ(via.estimatedSpeedup, direct.estimatedSpeedup);
    EXPECT_EQ(via.stack.yield, direct.stack.yield);
    EXPECT_EQ(via.stack.negLlc, direct.stack.negLlc);
}

TEST(WorkloadHomogeneous, FingerprintsPreservedAcrossRefactor)
{
    // Hexes captured from the pre-WorkloadSpec build (fingerprint v3):
    // existing result-cache entries and baseline sharing must survive.
    JobSpec j16 = JobSpec::forProfile(profileByLabel("cholesky"), 16);
    EXPECT_EQ(fingerprintJob(j16).hex(), "0968471822c93cec");
    EXPECT_EQ(fingerprintBaseline(j16).hex(), "f721ebd444707c80");
    const JobSpec j4 = JobSpec::forProfile(profileByLabel("cholesky"), 4);
    EXPECT_EQ(fingerprintJob(j4).hex(), "d1058aea01982d42");
    EXPECT_NE(fingerprintJob(j16).canonical.find("fingerprint.version=3"),
              std::string::npos);
}

TEST(WorkloadHomogeneous, MixBaselineFingerprintSharesWithHomogeneous)
{
    // A mix group's baseline key equals the homogeneous baseline key of
    // the same profile, so sweeps and mixes share 1-thread runs.
    const JobSpec hom =
        JobSpec::forProfile(test::computeOnlyProfile(), 4);
    EXPECT_EQ(fingerprintBaseline(hom).canonical,
              fingerprintProfileBaseline(hom.params,
                                         test::computeOnlyProfile())
                  .canonical);
}

// ---- mixes ------------------------------------------------------------------

TEST(WorkloadMix, BaselineIsSumOfPerProgramBaselines)
{
    const WorkloadSpec mix = smallMix();
    const SpeedupExperiment e = runMixExperiment(SimParams{}, mix);
    const RunResult a =
        runSingleThreaded(SimParams{}, mix.groups[0].profile);
    const RunResult b =
        runSingleThreaded(SimParams{}, mix.groups[1].profile);
    EXPECT_EQ(e.ts, a.executionTime + b.executionTime);
    EXPECT_GT(e.actualSpeedup, 1.0); // co-running 4 cores beats serial
}

TEST(WorkloadMix, GroupsAreDisjointAndConserveWork)
{
    // Without locks, committed instructions are schedule-independent.
    // Co-running must execute exactly the instructions of each program
    // run alone at its own thread count — groups share no data, locks
    // or barriers, so only hardware interference couples them.
    const WorkloadSpec mix = smallMix();
    const RunResult together = simulateWorkload(SimParams{}, mix);
    const RunResult alone_a =
        simulate(SimParams{}, mix.groups[0].profile, 2);
    const RunResult alone_b =
        simulate(SimParams{}, mix.groups[1].profile, 2);
    EXPECT_EQ(together.totalInstructions,
              alone_a.totalInstructions + alone_b.totalInstructions);
    // ...and the interference is real: the mix takes longer than the
    // slower program alone on its own 2 cores.
    EXPECT_GT(together.executionTime,
              std::max(alone_a.executionTime, alone_b.executionTime));
}

TEST(WorkloadMix, DeterministicAcrossThreadPools)
{
    SweepGrid grid;
    grid.workloads = {"fig08_cholesky", "t-na"};
    // Use registered + inline entries; replace the bogus one first.
    grid.workloads[1] = "cholesky:2+fft:2";

    DriverOptions serial;
    serial.jobs = 1;
    const std::vector<JobSpec> jobs = expandGrid(grid);
    const std::vector<JobResult> a = runExperimentBatch(jobs, serial);

    DriverOptions pooled;
    pooled.jobs = 4;
    const std::vector<JobResult> b = runExperimentBatch(jobs, pooled);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(a[i].ok()) << a[i].error;
        ASSERT_TRUE(b[i].ok()) << b[i].error;
        EXPECT_EQ(a[i].exp.ts, b[i].exp.ts);
        EXPECT_EQ(a[i].exp.tp, b[i].exp.tp);
        EXPECT_EQ(a[i].exp.stack.negLlc, b[i].exp.stack.negLlc);
        EXPECT_EQ(a[i].exp.stack.posLlc, b[i].exp.stack.posLlc);
    }
}

TEST(WorkloadMix, SameProgramTwiceDrawsDecorrelatedSeeds)
{
    JobSpec job;
    job.workload = WorkloadSpec::mix(
        {WorkloadGroup{test::computeOnlyProfile(), 2},
         WorkloadGroup{test::computeOnlyProfile(), 2}});
    const WorkloadSpec eff = job.effectiveWorkload();
    EXPECT_EQ(eff.groups[0].profile.seed,
              test::computeOnlyProfile().seed); // group 0 untouched
    EXPECT_NE(eff.groups[1].profile.seed, eff.groups[0].profile.seed);
}

// ---- pipelines --------------------------------------------------------------

TEST(WorkloadPipeline, StageImbalanceYieldDominatesTheStack)
{
    const SpeedupExperiment e =
        runMixExperiment(SimParams{}, imbalancedPipeline());
    // The light stage's threads park on every phase barrier while the
    // heavy stage finishes: long waits register as yielding, not
    // spinning, and dominate every other sync component — the
    // ferret-style stage-imbalance signature.
    EXPECT_GT(e.stack.yield, 0.0);
    EXPECT_GT(e.stack.yield, e.stack.spin);
    EXPECT_GT(e.stack.yield, e.stack.imbalance);
    EXPECT_TRUE(e.stack.sumsToHeight(1e-9));
}

TEST(WorkloadPipeline, StagesMustAgreeOnPhases)
{
    BenchmarkProfile a = test::computeOnlyProfile();
    a.barrierPhases = 4;
    BenchmarkProfile b = test::computeOnlyProfile();
    b.barrierPhases = 8;
    const WorkloadSpec bad = WorkloadSpec::pipeline(
        {WorkloadGroup{a, 1}, WorkloadGroup{b, 1}});
    EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(WorkloadPipeline, RegisteredFerretRunsEndToEnd)
{
    const WorkloadSpec &ferret = *mixRegistry().find("ferret4");
    const SpeedupExperiment e = runMixExperiment(SimParams{}, ferret);
    EXPECT_GT(e.actualSpeedup, 1.0);
    EXPECT_GT(e.stack.yield, e.stack.spin);
}

// ---- descriptor parsing -----------------------------------------------------

TEST(WorkloadParsing, InlineFormsAndBroadcast)
{
    const WorkloadSpec one = parseWorkload("cholesky:8");
    EXPECT_TRUE(one.isHomogeneous());
    EXPECT_EQ(one.nthreads(), 8);

    const WorkloadSpec broadcast = parseWorkload("cholesky+fft:8");
    EXPECT_EQ(broadcast.role, WorkloadRole::kMix);
    ASSERT_EQ(broadcast.ngroups(), 2);
    EXPECT_EQ(broadcast.groups[0].nthreads, 8);
    EXPECT_EQ(broadcast.groups[1].nthreads, 8);
    EXPECT_EQ(broadcast.descriptor(), "cholesky:8+fft:8");

    // Stages must agree on barrier phases, so stage the same profile
    // twice; heterogeneous-phase stages are rejected.
    const WorkloadSpec pipe = parseWorkload("cholesky:1>cholesky:2");
    EXPECT_EQ(pipe.role, WorkloadRole::kPipeline);
    EXPECT_EQ(pipe.nthreads(), 3);
    EXPECT_THROW(parseWorkload("cholesky:1>fft:2"),
                 std::invalid_argument);

    // Canonicalization is a fixed point and re-parses equal.
    const std::string canon = canonicalWorkloadText("cholesky + fft:8");
    EXPECT_EQ(canon, "cholesky:8+fft:8");
    EXPECT_EQ(canonicalWorkloadText(canon), canon);
    EXPECT_EQ(canonicalWorkloadText("ferret4"), "ferret4");
}

TEST(WorkloadParsing, ErrorsListRegisteredMixes)
{
    try {
        parseWorkload("not-a-mix");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string what = e.what();
        for (const std::string &name : mixRegistry().names())
            EXPECT_NE(what.find(name), std::string::npos) << what;
    }
    EXPECT_THROW(parseWorkload("cholesky:4>fft+lu.cont"),
                 std::invalid_argument);
    EXPECT_THROW(parseWorkload("cholesky:4+fft"),
                 std::invalid_argument);
    EXPECT_THROW(parseWorkload("cholesky:0+fft:2"),
                 std::invalid_argument);
}

// ---- trace backward compatibility ------------------------------------------

TEST(WorkloadTrace, V2FixtureReplaysAsHomogeneousBitIdentically)
{
    // Checked-in container written by the pre-WorkloadSpec (v2) build:
    // tests/data/homogeneous_v2.sstt records t-compute at 2 threads.
    const std::string path =
        std::string(SST_TESTS_DATA_DIR) + "/homogeneous_v2.sstt";
    const TraceReader reader(path);
    EXPECT_EQ(reader.meta().version, 2u);
    EXPECT_EQ(reader.meta().role, WorkloadRole::kReplicated);
    ASSERT_EQ(reader.ngroups(), 1);
    EXPECT_EQ(reader.meta().groups[0].nthreads, 2);
    EXPECT_EQ(reader.meta().groups[0].profileHash,
              traceProfileHash(test::computeOnlyProfile()));

    const SpeedupExperiment replayed =
        replaySpeedupTrace(SimParams{}, reader);
    const SpeedupExperiment live =
        runSpeedupExperiment(SimParams{}, test::computeOnlyProfile(), 2);
    EXPECT_EQ(replayed.ts, live.ts);
    EXPECT_EQ(replayed.tp, live.tp);
    EXPECT_EQ(replayed.actualSpeedup, live.actualSpeedup);
    EXPECT_EQ(replayed.estimatedSpeedup, live.estimatedSpeedup);
    // Anchors from the pre-refactor build, so a drift in either the
    // reader or the homogeneous simulation fails loudly.
    EXPECT_EQ(replayed.ts, 54000u);
    EXPECT_EQ(replayed.tp, 27461u);
}

TEST(WorkloadTrace, RequireCompatibleRejectsPerThreadProfileMismatch)
{
    const std::string dir = ::testing::TempDir() + "sst_mix_trace";
    std::filesystem::create_directories(dir);
    const WorkloadSpec mix = smallMix();
    const std::string path = tracePathFor(dir, mix);
    recordSpeedupTrace(SimParams{}, mix, path);

    const TraceReader reader(path);
    EXPECT_EQ(reader.meta().version, trace::kTraceVersion);
    EXPECT_EQ(reader.meta().role, WorkloadRole::kMix);
    ASSERT_EQ(reader.ngroups(), 2);
    EXPECT_NO_THROW(reader.requireCompatibleWorkload(
        mix.role, traceGroupsOf(mix), SchedPolicy::kAffinityFifo, 0));

    // A different per-thread profile in group 1 must be rejected with
    // a message naming the group.
    WorkloadSpec other = mix;
    other.groups[1].profile.totalIters += 1;
    try {
        reader.requireCompatibleWorkload(other.role,
                                         traceGroupsOf(other),
                                         SchedPolicy::kAffinityFifo, 0);
        FAIL() << "expected TraceError";
    } catch (const TraceError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("per-thread-profile mismatch"),
                  std::string::npos) << what;
        EXPECT_NE(what.find("group 1"), std::string::npos) << what;
    }

    // Wrong role and wrong group count are named too.
    EXPECT_THROW(reader.requireCompatibleWorkload(
                     WorkloadRole::kPipeline, traceGroupsOf(mix),
                     SchedPolicy::kAffinityFifo, 0),
                 TraceError);
    // The homogeneous check refuses multi-group recordings outright.
    EXPECT_THROW(reader.requireCompatible(
                     traceProfileHash(mix.groups[0].profile), 4,
                     SchedPolicy::kAffinityFifo, 0),
                 TraceError);
    std::filesystem::remove_all(dir);
}

TEST(WorkloadTrace, MixRecordReplayRoundTripsBitIdentically)
{
    const std::string dir = ::testing::TempDir() + "sst_mix_rt";
    std::filesystem::create_directories(dir);
    const WorkloadSpec mix = smallMix();
    const std::string path = tracePathFor(dir, mix);
    const SpeedupExperiment live =
        recordSpeedupTrace(SimParams{}, mix, path);
    const SpeedupExperiment replayed =
        replaySpeedupTrace(SimParams{}, path);
    EXPECT_EQ(replayed.ts, live.ts);
    EXPECT_EQ(replayed.tp, live.tp);
    EXPECT_EQ(replayed.actualSpeedup, live.actualSpeedup);
    EXPECT_EQ(replayed.estimatedSpeedup, live.estimatedSpeedup);
    EXPECT_EQ(replayed.stack.negLlc, live.stack.negLlc);
    EXPECT_EQ(replayed.stack.yield, live.stack.yield);
    std::filesystem::remove_all(dir);
}

// ---- driver integration -----------------------------------------------------

TEST(WorkloadDriver, MixJobsCacheAndReplay)
{
    const std::string dir = ::testing::TempDir() + "sst_mix_cache";
    std::filesystem::remove_all(dir);

    SweepGrid grid;
    grid.workloads = {"cholesky:2+fft:2"};
    const std::vector<JobSpec> jobs = expandGrid(grid);

    DriverOptions opts;
    opts.cacheDir = dir;
    BatchStats stats;
    const std::vector<JobResult> fresh =
        runExperimentBatch(jobs, opts, &stats);
    ASSERT_TRUE(fresh[0].ok()) << fresh[0].error;
    EXPECT_EQ(stats.executed, 1u);

    const std::vector<JobResult> cached =
        runExperimentBatch(jobs, opts, &stats);
    EXPECT_EQ(stats.cached, 1u);
    EXPECT_TRUE(cached[0].fromCache());
    EXPECT_EQ(cached[0].exp.ts, fresh[0].exp.ts);
    EXPECT_EQ(cached[0].exp.actualSpeedup, fresh[0].exp.actualSpeedup);
    // Heterogeneous jobs carry the v4 workload section.
    EXPECT_NE(fingerprintJob(jobs[0]).canonical.find("workload.role=mix"),
              std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(WorkloadDriver, RecordDirCapturesFreshJobsOnly)
{
    const std::string rec = ::testing::TempDir() + "sst_mix_rec";
    const std::string cache = ::testing::TempDir() + "sst_mix_rec_cache";
    std::filesystem::remove_all(rec);
    std::filesystem::remove_all(cache);

    SweepGrid grid;
    grid.workloads = {"cholesky:2+fft:2"};
    const std::vector<JobSpec> jobs = expandGrid(grid);

    DriverOptions opts;
    opts.cacheDir = cache;
    opts.recordDir = rec;
    BatchStats stats;
    const std::vector<JobResult> fresh =
        runExperimentBatch(jobs, opts, &stats);
    ASSERT_TRUE(fresh[0].ok()) << fresh[0].error;
    EXPECT_EQ(stats.tracesRecorded, 1u);
    EXPECT_TRUE(fresh[0].traceRecorded);
    const std::string path = tracePathFor(rec, jobs[0].effectiveWorkload());
    EXPECT_TRUE(std::filesystem::exists(path));

    // Cache hit: no re-simulation, no re-capture.
    const std::vector<JobResult> cached =
        runExperimentBatch(jobs, opts, &stats);
    EXPECT_EQ(stats.cached, 1u);
    EXPECT_EQ(stats.tracesRecorded, 0u);

    // The captured trace replays bit-identically to the live run.
    const SpeedupExperiment replayed =
        replaySpeedupTrace(jobs[0].params, path);
    EXPECT_EQ(replayed.ts, fresh[0].exp.ts);
    EXPECT_EQ(replayed.tp, fresh[0].exp.tp);
    std::filesystem::remove_all(rec);
    std::filesystem::remove_all(cache);
}

TEST(WorkloadDriver, RecordAndReplayDirsAreExclusive)
{
    DriverOptions opts;
    opts.traceDir = "/tmp/a";
    opts.recordDir = "/tmp/b";
    EXPECT_THROW(ExperimentDriver{opts}, std::invalid_argument);
}

} // namespace
} // namespace sst
