/**
 * @file
 * Unit and property tests for the speedup stack math (Section 2,
 * Equations 2-6): the stack identity (components sum to N), estimated =
 * base + positive interference, and the validation error metric.
 */

#include <gtest/gtest.h>

#include "core/speedup_stack.hh"
#include "util/rng.hh"

namespace sst {
namespace {

TEST(SpeedupStack, PerfectScalingIsN)
{
    std::vector<CycleComponents> comps(8); // all-zero components
    const SpeedupStack stack = buildSpeedupStack(comps, 1000);
    EXPECT_EQ(stack.nthreads, 8);
    EXPECT_DOUBLE_EQ(stack.baseSpeedup, 8.0);
    EXPECT_DOUBLE_EQ(stack.estimatedSpeedup, 8.0);
    EXPECT_TRUE(stack.sumsToHeight());
}

TEST(SpeedupStack, OverheadsReduceBase)
{
    std::vector<CycleComponents> comps(4);
    comps[0].spin = 250;  // of Tp = 1000: 0.25 speedup units
    comps[1].yield = 500; // 0.5 units
    const SpeedupStack stack = buildSpeedupStack(comps, 1000);
    EXPECT_DOUBLE_EQ(stack.spin, 0.25);
    EXPECT_DOUBLE_EQ(stack.yield, 0.5);
    EXPECT_DOUBLE_EQ(stack.baseSpeedup, 4.0 - 0.75);
    EXPECT_TRUE(stack.sumsToHeight());
}

TEST(SpeedupStack, PositiveInterferenceAddsToEstimate)
{
    std::vector<CycleComponents> comps(2);
    comps[0].posLlc = 100;
    comps[0].negLlc = 300;
    const SpeedupStack stack = buildSpeedupStack(comps, 1000);
    EXPECT_DOUBLE_EQ(stack.posLlc, 0.1);
    EXPECT_DOUBLE_EQ(stack.negLlc, 0.3);
    EXPECT_DOUBLE_EQ(stack.netNegLlc(), 0.2);
    EXPECT_DOUBLE_EQ(stack.estimatedSpeedup,
                     stack.baseSpeedup + stack.posLlc);
    EXPECT_TRUE(stack.sumsToHeight());
}

TEST(SpeedupStack, ErrorMetricIsEq6)
{
    EXPECT_DOUBLE_EQ(speedupError(8.0, 7.0, 16), 1.0 / 16.0);
    EXPECT_DOUBLE_EQ(speedupError(7.0, 8.0, 16), -1.0 / 16.0);
    EXPECT_DOUBLE_EQ(speedupError(5.0, 5.0, 8), 0.0);
}

TEST(SpeedupStack, ComponentNamesDistinct)
{
    std::set<std::string> names;
    for (const StackComponent comp : allStackComponents())
        names.insert(stackComponentName(comp));
    EXPECT_EQ(names.size(), allStackComponents().size());
}

/** Property: for random component vectors, the display components
 *  always sum to exactly N (Eq. 4 rearrangement). */
class StackIdentity : public ::testing::TestWithParam<int>
{
};

TEST_P(StackIdentity, ComponentsSumToHeight)
{
    const int nthreads = GetParam();
    Rng rng(nthreads * 31 + 1);
    for (int trial = 0; trial < 200; ++trial) {
        const Cycles tp = 1000 + rng.below(100000);
        std::vector<CycleComponents> comps(
            static_cast<std::size_t>(nthreads));
        for (auto &c : comps) {
            c.negLlc = rng.uniform() * tp / 4;
            c.posLlc = rng.uniform() * tp / 8;
            c.negMem = rng.uniform() * tp / 4;
            c.spin = rng.uniform() * tp / 4;
            c.yield = rng.uniform() * tp / 2;
            c.imbalance = rng.uniform() * tp / 8;
            c.coherency = rng.uniform() * tp / 16;
        }
        const SpeedupStack stack = buildSpeedupStack(comps, tp);
        EXPECT_TRUE(stack.sumsToHeight(1e-6))
            << "trial " << trial << " nthreads " << nthreads;
        EXPECT_NEAR(stack.estimatedSpeedup,
                    stack.baseSpeedup + stack.posLlc, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Threads, StackIdentity,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

} // namespace
} // namespace sst
