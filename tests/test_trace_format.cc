/**
 * @file
 * Tests of the binary trace container and op encoding: primitive coder
 * round trips, delta encoding, header validation, and — critically —
 * robustness: truncated files, corrupt magic, unsupported versions,
 * thread-count and profile mismatches must all raise clean TraceErrors,
 * never crash or feed garbage ops into the simulator.
 */

#include <cstdint>
#include <gtest/gtest.h>

#include "trace/trace_format.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_run.hh"
#include "trace/trace_writer.hh"
#include "tests/test_util.hh"

namespace sst {
namespace {

using trace::ByteCursor;
using trace::OpDecoder;
using trace::OpEncoder;
using trace::TraceMeta;

// ---- primitive coders ------------------------------------------------------

TEST(TraceFormat, VarintRoundTrip)
{
    const std::uint64_t values[] = {0,   1,    127,  128,   16383, 16384,
                                    1ULL << 32, ~std::uint64_t(0)};
    std::string bytes;
    for (const std::uint64_t v : values)
        trace::putVarint(bytes, v);
    ByteCursor cur(bytes.data(), bytes.size());
    for (const std::uint64_t v : values)
        EXPECT_EQ(cur.getVarint(), v);
    EXPECT_EQ(cur.remaining(), 0u);
}

TEST(TraceFormat, SvarintRoundTrip)
{
    const std::int64_t values[] = {0, 1, -1, 63, -64, 64, -65,
                                   INT64_MAX, INT64_MIN};
    std::string bytes;
    for (const std::int64_t v : values)
        trace::putSvarint(bytes, v);
    ByteCursor cur(bytes.data(), bytes.size());
    for (const std::int64_t v : values)
        EXPECT_EQ(cur.getSvarint(), v);
}

TEST(TraceFormat, VarintTruncationThrows)
{
    std::string bytes;
    trace::putVarint(bytes, 1ULL << 40);
    bytes.resize(bytes.size() - 1); // drop the terminating byte
    ByteCursor cur(bytes.data(), bytes.size());
    EXPECT_THROW(cur.getVarint(), TraceError);
}

TEST(TraceFormat, OverlongVarintThrows)
{
    const std::string bytes(11, '\x80'); // never terminates within 64 bits
    ByteCursor cur(bytes.data(), bytes.size());
    EXPECT_THROW(cur.getVarint(), TraceError);
}

TEST(TraceFormat, TenthByteOverflowBitsThrow)
{
    // Nine continuation bytes put the 10th byte at shift 63, where only
    // bit 0 fits: value bits beyond it must throw, not silently vanish.
    std::string overflow(9, '\x80');
    overflow += '\x7e';
    ByteCursor bad(overflow.data(), overflow.size());
    EXPECT_THROW(bad.getVarint(), TraceError);

    std::string max(9, '\x80');
    max += '\x01'; // exactly bit 63: the largest legal encoding
    ByteCursor ok(max.data(), max.size());
    EXPECT_EQ(ok.getVarint(), 1ULL << 63);
}

// ---- op coding -------------------------------------------------------------

std::vector<Op>
sampleOps()
{
    return {Op::compute(17),
            Op::load(addrmap::privateBase(0) + 64, 0x40000),
            Op::store(addrmap::privateBase(0) + 128, 0x40004),
            Op::load(addrmap::kSharedBase, 0x40008),
            Op::lockAcquire(3),
            Op::store(addrmap::lockDataBase(3) + 8, 0x40010),
            Op::lockRelease(3),
            Op::barrier(kWarmupBarrierId),
            Op::roiBegin(),
            Op::compute(1),
            Op::end()};
}

TEST(TraceFormat, OpStreamRoundTripsAllTypes)
{
    const std::vector<Op> ops = sampleOps();
    OpEncoder enc;
    for (const Op &op : ops)
        enc.encode(op);
    EXPECT_TRUE(enc.sawEnd);
    EXPECT_EQ(enc.opCount, ops.size());

    OpDecoder dec(enc.bytes.data(), enc.bytes.size());
    for (const Op &want : ops) {
        const Op got = dec.decode();
        EXPECT_EQ(got.type, want.type);
        EXPECT_EQ(got.count, want.count);
        EXPECT_EQ(got.addr, want.addr);
        EXPECT_EQ(got.pc, want.pc);
        EXPECT_EQ(got.id, want.id);
    }
    EXPECT_EQ(dec.cursor.remaining(), 0u);
}

TEST(TraceFormat, DeltaCodingIsCompact)
{
    // A streaming load pattern (line-after-line) must cost only a few
    // bytes per op — far below the 24-byte in-memory Op.
    OpEncoder enc;
    for (int i = 0; i < 1000; ++i)
        enc.encode(Op::load(addrmap::privateBase(0) +
                                static_cast<Addr>(i) * kLineBytes,
                            0x40000 + (i % 64) * 4));
    enc.encode(Op::end());
    EXPECT_LT(enc.bytes.size(), 1001u * 5);
}

TEST(TraceFormat, BadOpTagThrows)
{
    const std::string bytes(1, '\x2a'); // tag 42: not an OpType
    OpDecoder dec(bytes.data(), bytes.size());
    EXPECT_THROW(dec.decode(), TraceError);
}

// ---- container + header validation ----------------------------------------

/** A tiny valid 2-thread trace image (2 parallel streams + baseline). */
std::string
tinyTraceBytes()
{
    TraceMeta meta;
    meta.nthreads = 2;
    meta.profileHash = 0xfeedULL;
    meta.label = "t-tiny";
    TraceWriter writer(std::move(meta));
    for (int stream = 0; stream < 3; ++stream) {
        writer.append(stream, Op::compute(8));
        writer.append(stream,
                      Op::load(addrmap::privateBase(0), 0x40000));
        writer.append(stream, Op::end());
    }
    return writer.serialize();
}

TEST(TraceFormat, WriterReaderRoundTrip)
{
    const TraceReader reader = TraceReader::fromBytes(tinyTraceBytes());
    EXPECT_EQ(reader.meta().version, trace::kTraceVersion);
    EXPECT_EQ(reader.meta().nthreads, 2);
    EXPECT_EQ(reader.meta().profileHash, 0xfeedULL);
    EXPECT_EQ(reader.meta().label, "t-tiny");
    ASSERT_EQ(reader.nstreams(), 3);
    for (int s = 0; s < 3; ++s)
        EXPECT_EQ(reader.opCount(s), 3u);

    auto src = reader.parallelSource(1);
    EXPECT_EQ(src->nextOp().type, OpType::kCompute);
    EXPECT_EQ(src->nextOp().type, OpType::kLoad);
    EXPECT_FALSE(src->finished());
    EXPECT_EQ(src->nextOp().type, OpType::kEnd);
    EXPECT_TRUE(src->finished());
    EXPECT_EQ(src->nextOp().type, OpType::kEnd); // kEnd forever after
}

TEST(TraceFormat, BadMagicThrows)
{
    std::string bytes = tinyTraceBytes();
    bytes[0] = 'X';
    EXPECT_THROW(TraceReader::fromBytes(std::move(bytes)), TraceError);
}

TEST(TraceFormat, WrongVersionThrows)
{
    std::string bytes = tinyTraceBytes();
    bytes[8] = static_cast<char>(trace::kTraceVersion + 1); // u32 LSB
    try {
        TraceReader::fromBytes(std::move(bytes));
        FAIL() << "expected TraceError";
    } catch (const TraceError &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos);
    }
}

TEST(TraceFormat, TruncationAnywhereThrowsCleanly)
{
    const std::string whole = tinyTraceBytes();
    // Every proper prefix must fail with TraceError — header cuts,
    // stream-table cuts and mid-stream cuts alike.
    for (std::size_t len = 0; len < whole.size(); ++len) {
        EXPECT_THROW(TraceReader::fromBytes(whole.substr(0, len)),
                     TraceError)
            << "prefix of " << len << " bytes parsed successfully";
    }
    // The full image must still parse (guards against an over-eager
    // validator making the loop above pass vacuously).
    EXPECT_NO_THROW(TraceReader::fromBytes(std::string(whole)));
}

TEST(TraceFormat, TrailingGarbageThrows)
{
    std::string bytes = tinyTraceBytes();
    bytes += '\0';
    EXPECT_THROW(TraceReader::fromBytes(std::move(bytes)), TraceError);
}

TEST(TraceFormat, Version1HeaderStillReadable)
{
    // v1 predates the scheduler fields: header is magic, version,
    // nthreads, profileHash, label, streams. The reader must default
    // the missing fields (affinity-fifo, seed 0) — this is the branch
    // keeping every pre-v2 .sstt recording usable.
    std::string out;
    out.append(trace::kMagic, sizeof(trace::kMagic));
    trace::putU32(out, 1); // version 1: no sched fields follow the hash
    trace::putU32(out, 1); // nthreads
    trace::putU64(out, 0xfeedULL);
    trace::putVarint(out, 0); // empty label
    for (int stream = 0; stream < 2; ++stream) {
        OpEncoder enc;
        enc.encode(Op::compute(1));
        enc.encode(Op::end());
        trace::putVarint(out, enc.opCount);
        trace::putVarint(out, enc.bytes.size());
        out += enc.bytes;
    }

    const TraceReader reader = TraceReader::fromBytes(std::move(out));
    EXPECT_EQ(reader.meta().version, 1u);
    EXPECT_EQ(reader.meta().nthreads, 1);
    EXPECT_EQ(reader.meta().schedPolicy, SchedPolicy::kAffinityFifo);
    EXPECT_EQ(reader.meta().schedSeed, 0u);
    EXPECT_NO_THROW(reader.requireCompatible(
        0xfeedULL, 1, SchedPolicy::kAffinityFifo, 0));
}

TEST(TraceFormat, MissingEndMarkerThrows)
{
    // Hand-build a container whose stream claims 1 op that is not kEnd.
    std::string out;
    out.append(trace::kMagic, sizeof(trace::kMagic));
    trace::putU32(out, trace::kTraceVersion);
    trace::putU32(out, 1); // nthreads
    trace::putU64(out, 0); // profile hash
    trace::putU32(out, 0); // sched policy (affinity-fifo)
    trace::putU64(out, 0); // sched seed
    trace::putVarint(out, 0); // empty label
    for (int stream = 0; stream < 2; ++stream) {
        OpEncoder enc;
        enc.encode(Op::compute(1)); // no kEnd
        trace::putVarint(out, enc.opCount);
        trace::putVarint(out, enc.bytes.size());
        out += enc.bytes;
    }
    EXPECT_THROW(TraceReader::fromBytes(std::move(out)), TraceError);
}

TEST(TraceFormat, CompatibilityChecks)
{
    const TraceReader reader = TraceReader::fromBytes(tinyTraceBytes());
    EXPECT_NO_THROW(reader.requireCompatible(
        0xfeedULL, 2, SchedPolicy::kAffinityFifo, 0));

    // Thread-count mismatch names both counts.
    try {
        reader.requireCompatible(0xfeedULL, 4,
                                 SchedPolicy::kAffinityFifo, 0);
        FAIL() << "expected TraceError";
    } catch (const TraceError &e) {
        EXPECT_NE(std::string(e.what()).find("thread-count"),
                  std::string::npos);
    }
    // Profile mismatch (stale trace).
    EXPECT_THROW(reader.requireCompatible(0xbeefULL, 2,
                                          SchedPolicy::kAffinityFifo, 0),
                 TraceError);
    // Scheduler-policy mismatch names both policies.
    try {
        reader.requireCompatible(0xfeedULL, 2, SchedPolicy::kRandom, 0);
        FAIL() << "expected TraceError";
    } catch (const TraceError &e) {
        EXPECT_NE(std::string(e.what()).find("scheduler-policy"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("random"),
                  std::string::npos);
    }
    // Replay thread id outside the recorded range.
    EXPECT_THROW(reader.parallelSource(2), TraceError);
    EXPECT_THROW(reader.parallelSource(-1), TraceError);
}

TEST(TraceFormat, MissingFileThrows)
{
    EXPECT_THROW(TraceReader("/nonexistent/definitely-not-here.sstt"),
                 TraceError);
}

TEST(TraceRun, ProfileHashTracksOpStreamKnobs)
{
    const BenchmarkProfile a = test::computeOnlyProfile();
    BenchmarkProfile b = a;
    EXPECT_EQ(traceProfileHash(a), traceProfileHash(b));
    b.seed += 1;
    EXPECT_NE(traceProfileHash(a), traceProfileHash(b));
    BenchmarkProfile c = a;
    c.totalIters += 1;
    EXPECT_NE(traceProfileHash(a), traceProfileHash(c));
}

TEST(TraceRun, TracePathUsesLabelAndThreads)
{
    const BenchmarkProfile p = test::computeOnlyProfile();
    EXPECT_EQ(tracePathFor("/tmp/traces", p, 4),
              "/tmp/traces/t-compute_t4.sstt");
    EXPECT_EQ(tracePathFor("/tmp/traces/", p, 16),
              "/tmp/traces/t-compute_t16.sstt");
    // Replication streams get their own recordings.
    EXPECT_EQ(tracePathFor("/tmp/traces", p, 4, 3),
              "/tmp/traces/t-compute_t4_s3.sstt");
}

} // namespace
} // namespace sst
