/**
 * @file
 * Tests for per-region speedup stacks (Section 4.6): region spans tile
 * the run, every region's stack satisfies the height identity, and the
 * time-weighted aggregation is consistent with the whole-run stack.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/region_stacks.hh"
#include "test_util.hh"

namespace sst {
namespace {

RunResult
runBarrierHeavy(int nthreads)
{
    const BenchmarkProfile p = test::barrierHeavyProfile();
    SimParams params;
    params.ncores = nthreads;
    return simulate(params, p, nthreads);
}

TEST(RegionStacks, RegionsTileTheRun)
{
    const RunResult run = runBarrierHeavy(8);
    const std::vector<RegionStack> regions = buildRegionStacks(run);
    ASSERT_FALSE(regions.empty());
    EXPECT_EQ(regions.front().begin, 0u);
    for (std::size_t i = 1; i < regions.size(); ++i)
        EXPECT_EQ(regions[i].begin, regions[i - 1].end);
    EXPECT_EQ(regions.back().end, run.executionTime);
}

TEST(RegionStacks, OneRegionPerBarrierEpisode)
{
    const RunResult run = runBarrierHeavy(4);
    const std::vector<RegionStack> regions = buildRegionStacks(run);
    // 16 phases with a final barrier: 16 boundaries; a tail region only
    // if the threads did work after the last barrier.
    EXPECT_GE(regions.size(), 16u);
    EXPECT_LE(regions.size(), 17u);
}

TEST(RegionStacks, EveryRegionSumsToHeight)
{
    const RunResult run = runBarrierHeavy(8);
    for (const RegionStack &r : buildRegionStacks(run)) {
        EXPECT_TRUE(r.stack.sumsToHeight(1e-6))
            << "region ending at " << r.end;
        EXPECT_EQ(r.stack.nthreads, 8);
    }
}

TEST(RegionStacks, SequentialRunHasNoRegions)
{
    const BenchmarkProfile p = test::barrierHeavyProfile();
    SimParams params;
    params.ncores = 1;
    const RunResult run = simulate(params, p, 1);
    const std::vector<RegionStack> regions = buildRegionStacks(run);
    // No barriers in the sequential program: one tail region at most.
    EXPECT_LE(regions.size(), 1u);
}

TEST(RegionStacks, SkewedRegionsShowMoreWaiting)
{
    const RunResult run = runBarrierHeavy(8);
    const std::vector<RegionStack> regions = buildRegionStacks(run);
    // With 0.3 skew, the barrier wait should be a visible component in
    // most regions (spin + yield well above zero).
    int waiting_regions = 0;
    for (const RegionStack &r : regions) {
        if (r.stack.spin + r.stack.yield > 0.2)
            ++waiting_regions;
    }
    EXPECT_GT(waiting_regions, static_cast<int>(regions.size()) / 2);
}

TEST(RegionStacks, TimeWeightedYieldMatchesWholeRun)
{
    const BenchmarkProfile p = test::barrierHeavyProfile();
    SimParams params;
    params.ncores = 8;
    const SpeedupExperiment exp = runSpeedupExperiment(params, p, 8);
    const std::vector<RegionStack> regions =
        buildRegionStacks(exp.parallel, defaultReportOptions(params));
    double wsum = 0.0, yield = 0.0, spin = 0.0;
    for (const RegionStack &r : regions) {
        const double span = static_cast<double>(r.end - r.begin);
        wsum += span;
        yield += r.stack.yield * span;
        spin += r.stack.spin * span;
    }
    ASSERT_GT(wsum, 0.0);
    EXPECT_NEAR(yield / wsum, exp.stack.yield,
                0.05 * exp.stack.yield + 0.05);
    EXPECT_NEAR(spin / wsum, exp.stack.spin, exp.stack.spin * 0.2 + 0.05);
}

} // namespace
} // namespace sst
