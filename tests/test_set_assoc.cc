/**
 * @file
 * Unit and property tests for the set-associative tag array: LRU
 * behaviour, invalidation semantics, and geometry sweeps.
 */

#include <gtest/gtest.h>

#include "cache/set_assoc.hh"

namespace sst {
namespace {

TEST(SetAssoc, HitAfterInsert)
{
    SetAssocArray a(64 * 1024, 8);
    EXPECT_EQ(a.findValid(100), nullptr);
    a.insert(100);
    ASSERT_NE(a.findValid(100), nullptr);
    EXPECT_TRUE(a.findValid(100)->valid);
}

TEST(SetAssoc, LruEvictsOldest)
{
    // 2 sets x 2 ways; fill one set and overflow it.
    SetAssocArray a = SetAssocArray::fromSets(2, 2);
    const Addr s0_a = 0, s0_b = 2, s0_c = 4; // all map to set 0
    a.insert(s0_a);
    a.insert(s0_b);
    // Touch a so b becomes LRU.
    a.touch(*a.findValid(s0_a));
    TagEntry victim;
    a.insert(s0_c, &victim);
    EXPECT_TRUE(victim.valid);
    EXPECT_EQ(victim.line, s0_b);
    EXPECT_NE(a.findValid(s0_a), nullptr);
    EXPECT_EQ(a.findValid(s0_b), nullptr);
    EXPECT_NE(a.findValid(s0_c), nullptr);
}

TEST(SetAssoc, InsertPrefersFreeWay)
{
    SetAssocArray a = SetAssocArray::fromSets(2, 2);
    a.insert(0);
    TagEntry victim;
    a.insert(2, &victim); // same set, free way available
    EXPECT_FALSE(victim.valid);
}

TEST(SetAssoc, InvalidateKeepTagMarksCoherence)
{
    SetAssocArray a(4 * 1024, 4);
    a.insert(42);
    EXPECT_TRUE(a.invalidate(42, /*keep_tag=*/true));
    EXPECT_EQ(a.findValid(42), nullptr);
    TagEntry *stale = a.findAny(42);
    ASSERT_NE(stale, nullptr);
    EXPECT_TRUE(stale->coherenceInvalidated);
    EXPECT_FALSE(stale->valid);
}

TEST(SetAssoc, InvalidateDropRemovesEntry)
{
    SetAssocArray a(4 * 1024, 4);
    a.insert(42);
    EXPECT_TRUE(a.invalidate(42, /*keep_tag=*/false));
    EXPECT_EQ(a.findAny(42), nullptr);
}

TEST(SetAssoc, InvalidateMissingReturnsFalse)
{
    SetAssocArray a(4 * 1024, 4);
    EXPECT_FALSE(a.invalidate(7));
}

TEST(SetAssoc, ReinsertReusesCoherenceInvalidatedEntry)
{
    SetAssocArray a = SetAssocArray::fromSets(2, 2);
    a.insert(0);
    a.invalidate(0, /*keep_tag=*/true);
    TagEntry victim;
    TagEntry &e = a.insert(0, &victim);
    EXPECT_FALSE(victim.valid); // no live line displaced
    EXPECT_TRUE(e.valid);
    EXPECT_FALSE(e.coherenceInvalidated);
}

TEST(SetAssoc, ValidCount)
{
    SetAssocArray a(4 * 1024, 4);
    EXPECT_EQ(a.validCount(), 0u);
    a.insert(1);
    a.insert(2);
    EXPECT_EQ(a.validCount(), 2u);
    a.invalidate(1);
    EXPECT_EQ(a.validCount(), 1u);
}

/** Property sweep over geometries: capacity is respected and a working
 *  set no larger than one set's ways never evicts. */
class SetAssocGeometry
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(SetAssocGeometry, WorkingSetWithinWaysNeverEvicts)
{
    const auto [sets, ways] = GetParam();
    SetAssocArray a = SetAssocArray::fromSets(sets, ways);

    // `ways` lines in the same set, accessed round-robin: no evictions.
    for (int round = 0; round < 4; ++round) {
        for (int w = 0; w < ways; ++w) {
            const Addr line = static_cast<Addr>(w) *
                              static_cast<Addr>(sets);
            TagEntry victim;
            if (TagEntry *e = a.findValid(line)) {
                a.touch(*e);
            } else {
                a.insert(line, &victim);
                EXPECT_FALSE(victim.valid);
            }
        }
    }
    EXPECT_EQ(a.validCount(), static_cast<std::uint64_t>(ways));
}

TEST_P(SetAssocGeometry, CapacityBound)
{
    const auto [sets, ways] = GetParam();
    SetAssocArray a = SetAssocArray::fromSets(sets, ways);
    for (Addr line = 0; line < static_cast<Addr>(4 * sets * ways); ++line)
        a.insert(line);
    EXPECT_LE(a.validCount(),
              static_cast<std::uint64_t>(sets) *
                  static_cast<std::uint64_t>(ways));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SetAssocGeometry,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(2, 4),
                      std::make_tuple(16, 8), std::make_tuple(64, 16),
                      std::make_tuple(2048, 16)));

} // namespace
} // namespace sst
