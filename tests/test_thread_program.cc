/**
 * @file
 * Unit and property tests for the workload generator: strong-scaling
 * work conservation, sequential-program purity, warmup/RoI structure,
 * determinism, and the parallelism cap.
 */

#include <gtest/gtest.h>

#include <map>

#include "test_util.hh"
#include "workload/thread_program.hh"

namespace sst {
namespace {

/** Consume a whole program; returns op-type counts. */
std::map<OpType, std::uint64_t>
consume(ThreadProgram &prog, std::uint64_t cap = 10'000'000)
{
    std::map<OpType, std::uint64_t> counts;
    for (std::uint64_t i = 0; i < cap; ++i) {
        const Op op = prog.nextOp();
        ++counts[op.type];
        if (op.type == OpType::kEnd)
            break;
    }
    return counts;
}

TEST(ThreadProgram, SequentialProgramHasNoSyncOps)
{
    const BenchmarkProfile p = test::lockHeavyProfile();
    ThreadProgram prog(p, 0, 1);
    const auto counts = consume(prog);
    EXPECT_EQ(counts.count(OpType::kLockAcquire), 0u);
    EXPECT_EQ(counts.count(OpType::kLockRelease), 0u);
    EXPECT_EQ(counts.count(OpType::kBarrier), 0u);
    EXPECT_EQ(counts.at(OpType::kEnd), 1u);
    EXPECT_EQ(counts.at(OpType::kRoiBegin), 1u);
}

TEST(ThreadProgram, ParallelProgramBalancesLockOps)
{
    const BenchmarkProfile p = test::lockHeavyProfile();
    ThreadProgram prog(p, 0, 4);
    const auto counts = consume(prog);
    EXPECT_GT(counts.at(OpType::kLockAcquire), 0u);
    EXPECT_EQ(counts.at(OpType::kLockAcquire),
              counts.at(OpType::kLockRelease));
}

TEST(ThreadProgram, BarrierPerPhasePlusWarmup)
{
    BenchmarkProfile p = test::barrierHeavyProfile();
    ThreadProgram prog(p, 1, 4);
    const auto counts = consume(prog);
    // 16 phase barriers (incl. final) + 1 warmup barrier.
    EXPECT_EQ(counts.at(OpType::kBarrier),
              static_cast<std::uint64_t>(p.barrierPhases) + 1);
}

TEST(ThreadProgram, NoFinalBarrierWhenDisabled)
{
    BenchmarkProfile p = test::barrierHeavyProfile();
    p.finalBarrier = false;
    ThreadProgram prog(p, 0, 4);
    const auto counts = consume(prog);
    EXPECT_EQ(counts.at(OpType::kBarrier),
              static_cast<std::uint64_t>(p.barrierPhases - 1) + 1);
}

TEST(ThreadProgram, DeterministicStreams)
{
    const BenchmarkProfile p = test::sharingProfile();
    ThreadProgram a(p, 2, 8), b(p, 2, 8);
    for (int i = 0; i < 50000; ++i) {
        const Op oa = a.nextOp();
        const Op ob = b.nextOp();
        ASSERT_EQ(static_cast<int>(oa.type), static_cast<int>(ob.type));
        ASSERT_EQ(oa.addr, ob.addr);
        ASSERT_EQ(oa.count, ob.count);
        if (oa.type == OpType::kEnd)
            break;
    }
}

TEST(ThreadProgram, EndIsSticky)
{
    BenchmarkProfile p = test::computeOnlyProfile();
    p.totalIters = 10;
    ThreadProgram prog(p, 0, 1);
    consume(prog);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(prog.nextOp().type, OpType::kEnd);
    EXPECT_TRUE(prog.finished());
}

/** Property: total iterations are conserved across thread counts. */
class WorkConservation : public ::testing::TestWithParam<int>
{
};

TEST_P(WorkConservation, PlannedItersSumToTotal)
{
    const int nthreads = GetParam();
    for (const BenchmarkProfile &p :
         {test::computeOnlyProfile(), test::barrierHeavyProfile(),
          test::sharingProfile()}) {
        std::uint64_t total = 0;
        for (int t = 0; t < nthreads; ++t) {
            ThreadProgram prog(p, t, nthreads);
            total += prog.plannedIters();
        }
        EXPECT_EQ(total, p.totalIters) << p.name << " @ " << nthreads;
    }
}

TEST_P(WorkConservation, CappedProfilesConserveWorkToo)
{
    const int nthreads = GetParam();
    BenchmarkProfile p = test::computeOnlyProfile();
    p.parallelismCap = 3.0;
    p.capJitter = 0.3;
    p.barrierPhases = 10;
    p.imbalanceSkew = 0.25;
    std::uint64_t total = 0;
    for (int t = 0; t < nthreads; ++t) {
        ThreadProgram prog(p, t, nthreads);
        total += prog.plannedIters();
    }
    EXPECT_EQ(total, p.totalIters);
}

INSTANTIATE_TEST_SUITE_P(Threads, WorkConservation,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(ThreadProgram, ParallelismCapLimitsActiveThreads)
{
    BenchmarkProfile p = test::computeOnlyProfile();
    p.parallelismCap = 4.0;
    p.capJitter = 0.0;
    p.capScale = 0.0;
    p.barrierPhases = 8;
    for (int phase = 0; phase < 8; ++phase) {
        EXPECT_EQ(ThreadProgram::activeThreads(p, 16, phase), 4);
        // With fewer threads than the cap, everyone is active.
        EXPECT_EQ(ThreadProgram::activeThreads(p, 2, phase), 2);
    }
    // Exactly `active` threads get work: with a single phase there is
    // no rotation, so precisely `parallelismCap` of the 16 threads plan
    // any iterations at all.
    BenchmarkProfile single = p;
    single.barrierPhases = 1;
    int with_work = 0;
    for (int t = 0; t < 16; ++t) {
        ThreadProgram prog(single, t, 16);
        with_work += prog.plannedIters() > 0;
    }
    EXPECT_EQ(with_work, 4);
}

TEST(ThreadProgram, InstructionsGrowWithParallelOverhead)
{
    BenchmarkProfile p = test::computeOnlyProfile();
    p.parOverheadFrac = 0.25;
    ThreadProgram seq(p, 0, 1);
    consume(seq);
    std::uint64_t par_instr = 0;
    for (int t = 0; t < 4; ++t) {
        ThreadProgram prog(p, t, 4);
        consume(prog);
        par_instr += prog.instructionsEmitted();
    }
    // Parallel emits >= ~20% more instructions than sequential.
    EXPECT_GT(static_cast<double>(par_instr),
              1.15 * static_cast<double>(seq.instructionsEmitted()));
}

TEST(ThreadProgram, WarmupSweepsPrivateRegion)
{
    BenchmarkProfile p = test::computeOnlyProfile();
    p.privateBytes = 4096; // 64 lines
    ThreadProgram prog(p, 0, 1);
    int warmup_loads = 0;
    for (;;) {
        const Op op = prog.nextOp();
        if (op.type == OpType::kRoiBegin)
            break;
        if (op.type == OpType::kLoad)
            ++warmup_loads;
    }
    EXPECT_GE(warmup_loads, 64);
}

} // namespace
} // namespace sst
