/**
 * @file
 * Unit and property tests for the auxiliary tag directory (ATD).
 */

#include <gtest/gtest.h>

#include "cache/atd.hh"
#include "util/rng.hh"

namespace sst {
namespace {

constexpr std::uint64_t kLlcBytes = 2 * 1024 * 1024;
constexpr int kLlcWays = 16;
constexpr int kLlcSets = 2048;

TEST(Atd, FullShadowSamplesEverything)
{
    Atd atd(kLlcBytes, kLlcWays, 1);
    for (Addr line = 0; line < 100; ++line)
        EXPECT_TRUE(atd.isSampled(line));
}

TEST(Atd, SamplingSelectsEveryNthSet)
{
    const int factor = 32;
    Atd atd(kLlcBytes, kLlcWays, factor);
    int sampled = 0;
    for (Addr line = 0; line < kLlcSets; ++line) {
        if (atd.isSampled(line)) {
            ++sampled;
            EXPECT_EQ(line % factor, 0u);
        }
    }
    EXPECT_EQ(sampled, kLlcSets / factor);
}

TEST(Atd, HitAfterAccess)
{
    Atd atd(kLlcBytes, kLlcWays, 1);
    const Addr line = 123;
    EXPECT_FALSE(atd.access(line).hit);
    EXPECT_TRUE(atd.access(line).hit);
}

TEST(Atd, UnsampledAccessesAreIgnored)
{
    Atd atd(kLlcBytes, kLlcWays, 32);
    const Addr unsampled = 1; // set 1, not a multiple of 32
    const Atd::Probe p = atd.access(unsampled);
    EXPECT_FALSE(p.sampled);
    EXPECT_EQ(atd.sampledAccesses(), 0u);
}

TEST(Atd, CountsSampledAccesses)
{
    Atd atd(kLlcBytes, kLlcWays, 32);
    atd.access(0);
    atd.access(32);
    atd.access(0);
    atd.access(5); // unsampled
    EXPECT_EQ(atd.sampledAccesses(), 3u);
}

TEST(Atd, DistinctTagsSameSetDoNotAlias)
{
    Atd atd(kLlcBytes, kLlcWays, 32);
    // Two lines mapping to sampled set 0 with different tags.
    const Addr a = 0;
    const Addr b = kLlcSets; // same set index, different tag
    atd.access(a);
    EXPECT_FALSE(atd.access(b).hit);
    EXPECT_TRUE(atd.access(a).hit);
    EXPECT_TRUE(atd.access(b).hit);
}

TEST(Atd, ModelsPrivateLlcCapacity)
{
    // A full shadow ATD holds exactly sets x ways lines; a working set
    // beyond that evicts.
    Atd atd(64 * 1024, 4, 1); // 256 sets x 4 ways = 1024 lines
    for (Addr line = 0; line < 1024; ++line)
        atd.access(line);
    // All resident.
    int hits = 0;
    for (Addr line = 0; line < 1024; ++line)
        hits += atd.access(line).hit ? 1 : 0;
    EXPECT_EQ(hits, 1024);
}

/** Property: the sampled ATD behaves identically to a full shadow on
 *  the sampled subset of sets. */
class AtdEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(AtdEquivalence, SampledMatchesFullShadowOnSampledSets)
{
    const int factor = GetParam();
    Atd sampled(kLlcBytes, kLlcWays, factor);
    Atd full(kLlcBytes, kLlcWays, 1);

    Rng rng(factor);
    for (int i = 0; i < 20000; ++i) {
        const Addr line = rng.below(1 << 16);
        const Atd::Probe ps = sampled.access(line);
        const Atd::Probe pf = full.access(line);
        if (ps.sampled) {
            EXPECT_EQ(ps.hit, pf.hit) << "line " << line;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Factors, AtdEquivalence,
                         ::testing::Values(2, 8, 32, 128));

TEST(Atd, HardwareBitsScaleWithSampling)
{
    Atd a32(kLlcBytes, kLlcWays, 32);
    Atd a64(kLlcBytes, kLlcWays, 64);
    EXPECT_EQ(a32.hardwareBits(), 2 * a64.hardwareBits());
}

} // namespace
} // namespace sst
