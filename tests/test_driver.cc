/**
 * @file
 * Tests of the parallel experiment driver: the determinism contract
 * (worker count never changes results), serial equivalence, baseline
 * sharing, on-disk result-cache hits and invalidation, failure
 * isolation, the work-stealing pool, and the sweep-grid helpers.
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "driver/driver.hh"
#include "driver/fingerprint.hh"
#include "driver/result_cache.hh"
#include "driver/sweep.hh"
#include "driver/thread_pool.hh"
#include "tests/test_util.hh"

namespace sst {
namespace {

JobSpec
makeJob(const BenchmarkProfile &profile, int nthreads)
{
    return JobSpec::forProfile(profile, nthreads);
}

/** A small mixed batch exercising compute, locks, barriers, sharing. */
std::vector<JobSpec>
smallBatch()
{
    return {makeJob(test::computeOnlyProfile(), 2),
            makeJob(test::lockHeavyProfile(), 4),
            makeJob(test::barrierHeavyProfile(), 2),
            makeJob(test::sharingProfile(), 2)};
}

void
expectSameExperiment(const SpeedupExperiment &a, const SpeedupExperiment &b)
{
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.nthreads, b.nthreads);
    EXPECT_EQ(a.ts, b.ts);
    EXPECT_EQ(a.tp, b.tp);
    // Bit-identical, not approximately equal: determinism is exact.
    EXPECT_EQ(a.actualSpeedup, b.actualSpeedup);
    EXPECT_EQ(a.estimatedSpeedup, b.estimatedSpeedup);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.parOverheadMeasured, b.parOverheadMeasured);
    EXPECT_EQ(a.stack.baseSpeedup, b.stack.baseSpeedup);
    EXPECT_EQ(a.stack.posLlc, b.stack.posLlc);
    EXPECT_EQ(a.stack.negLlc, b.stack.negLlc);
    EXPECT_EQ(a.stack.negMem, b.stack.negMem);
    EXPECT_EQ(a.stack.spin, b.stack.spin);
    EXPECT_EQ(a.stack.yield, b.stack.yield);
    EXPECT_EQ(a.stack.imbalance, b.stack.imbalance);
    EXPECT_EQ(a.stack.coherency, b.stack.coherency);
}

std::string
freshTempDir(const char *name)
{
    const std::string dir =
        std::string(::testing::TempDir()) + "sst_driver_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

// ---- thread pool -----------------------------------------------------------

TEST(WorkStealingPool, RunsEverySubmittedTask)
{
    WorkStealingPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < 500; ++i)
        pool.submit([&done] { done.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(done.load(), 500);
}

TEST(WorkStealingPool, WaitIdleOnEmptyPoolReturns)
{
    WorkStealingPool pool(2);
    pool.waitIdle(); // must not hang
    SUCCEED();
}

TEST(WorkStealingPool, SingleWorkerStillCompletes)
{
    WorkStealingPool pool(1);
    std::atomic<int> done{0};
    for (int i = 0; i < 50; ++i)
        pool.submit([&done] { done.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(done.load(), 50);
}

// ---- fingerprints ----------------------------------------------------------

TEST(Fingerprint, SensitiveToEveryJobAxis)
{
    const JobSpec base = makeJob(test::computeOnlyProfile(), 4);
    const std::uint64_t h0 = fingerprintJob(base).hash;

    JobSpec t = base;
    t.workload.groups[0].nthreads = 8;
    EXPECT_NE(fingerprintJob(t).hash, h0);

    JobSpec p = base;
    p.params.cache.llcBytes *= 2;
    EXPECT_NE(fingerprintJob(p).hash, h0);

    JobSpec s = base;
    s.seedOffset = 1;
    EXPECT_NE(fingerprintJob(s).hash, h0);

    JobSpec w = base;
    w.workload.groups[0].profile.totalIters += 1;
    EXPECT_NE(fingerprintJob(w).hash, h0);
}

TEST(Fingerprint, BaselineSharedAcrossThreadCounts)
{
    const JobSpec a = makeJob(test::computeOnlyProfile(), 2);
    JobSpec b = a;
    b.workload.groups[0].nthreads = 16;
    EXPECT_EQ(fingerprintBaseline(a).canonical,
              fingerprintBaseline(b).canonical);
    EXPECT_NE(fingerprintJob(a).hash, fingerprintJob(b).hash);

    // But a parameter the 1-thread run depends on splits the baseline.
    JobSpec c = a;
    c.params.cache.llcBytes *= 2;
    EXPECT_NE(fingerprintBaseline(a).canonical,
              fingerprintBaseline(c).canonical);
}

TEST(Fingerprint, SeedDerivationIsIdentityAtOffsetZero)
{
    EXPECT_EQ(deriveJobSeed(42, 0), 42u);
    EXPECT_NE(deriveJobSeed(42, 1), 42u);
    EXPECT_NE(deriveJobSeed(42, 1), deriveJobSeed(42, 2));
}

// ---- determinism -----------------------------------------------------------

TEST(Driver, ResultsIdenticalAcrossWorkerCounts)
{
    const std::vector<JobSpec> specs = smallBatch();

    DriverOptions serial;
    serial.jobs = 1;
    const std::vector<JobResult> r1 = runExperimentBatch(specs, serial);

    DriverOptions parallel;
    parallel.jobs = 8;
    const std::vector<JobResult> r8 = runExperimentBatch(specs, parallel);

    ASSERT_EQ(r1.size(), specs.size());
    ASSERT_EQ(r8.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        ASSERT_TRUE(r1[i].ok()) << r1[i].error;
        ASSERT_TRUE(r8[i].ok()) << r8[i].error;
        expectSameExperiment(r1[i].exp, r8[i].exp);
    }
}

TEST(Driver, MatchesSerialRunSpeedupExperiment)
{
    const BenchmarkProfile profile = test::lockHeavyProfile();
    const SpeedupExperiment serial =
        runSpeedupExperiment(SimParams{}, profile, 4);

    DriverOptions opts;
    opts.jobs = 4;
    const std::vector<JobResult> results =
        runExperimentBatch({makeJob(profile, 4)}, opts);
    ASSERT_TRUE(results[0].ok()) << results[0].error;
    expectSameExperiment(results[0].exp, serial);
}

TEST(Driver, SeedOffsetSelectsDistinctStream)
{
    // Memory-heavy: the DRAM row/bank schedule depends on the random
    // address stream, so a different RNG stream must shift the timing.
    JobSpec a = makeJob(test::memoryHeavyProfile(), 2);
    JobSpec b = a;
    b.seedOffset = 1;

    const std::vector<JobResult> results =
        runExperimentBatch({a, b}, DriverOptions{});
    ASSERT_TRUE(results[0].ok());
    ASSERT_TRUE(results[1].ok());
    EXPECT_TRUE(results[0].exp.ts != results[1].exp.ts ||
                results[0].exp.tp != results[1].exp.tp);
}

// ---- baseline sharing ------------------------------------------------------

TEST(Driver, BaselineComputedOncePerProfile)
{
    const BenchmarkProfile profile = test::computeOnlyProfile();
    const std::vector<JobSpec> specs = {
        makeJob(profile, 2), makeJob(profile, 4), makeJob(profile, 8)};

    DriverOptions opts;
    opts.jobs = 4;
    ExperimentDriver driver(opts);
    const std::vector<JobResult> results = driver.runBatch(specs);

    EXPECT_EQ(driver.stats().baselinesComputed, 1u);
    ASSERT_TRUE(results[0].ok());
    ASSERT_TRUE(results[1].ok());
    ASSERT_TRUE(results[2].ok());
    EXPECT_EQ(results[0].exp.ts, results[1].exp.ts);
    EXPECT_EQ(results[1].exp.ts, results[2].exp.ts);
}

TEST(BaselineStore, ComputesEachKeyOnce)
{
    BaselineStore store;
    const BenchmarkProfile profile = test::computeOnlyProfile();
    const SimParams params;
    const RunResult &a = store.get("k1", params, profile);
    const RunResult &b = store.get("k1", params, profile);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(store.computeCount(), 1u);
    store.get("k2", params, profile);
    EXPECT_EQ(store.computeCount(), 2u);
}

// ---- result cache ----------------------------------------------------------

TEST(Driver, SecondRunReplaysFromCache)
{
    const std::string dir = freshTempDir("cache_hit");
    const std::vector<JobSpec> specs = {
        makeJob(test::computeOnlyProfile(), 2),
        makeJob(test::lockHeavyProfile(), 2)};

    DriverOptions opts;
    opts.jobs = 2;
    opts.cacheDir = dir;

    BatchStats first;
    const std::vector<JobResult> fresh =
        runExperimentBatch(specs, opts, &first);
    EXPECT_EQ(first.executed, 2u);
    EXPECT_EQ(first.cached, 0u);

    BatchStats second;
    const std::vector<JobResult> replay =
        runExperimentBatch(specs, opts, &second);
    EXPECT_EQ(second.executed, 0u);
    EXPECT_EQ(second.cached, 2u);
    EXPECT_EQ(second.baselinesComputed, 0u);

    for (std::size_t i = 0; i < specs.size(); ++i) {
        ASSERT_TRUE(replay[i].fromCache());
        expectSameExperiment(replay[i].exp, fresh[i].exp);
    }
    std::filesystem::remove_all(dir);
}

TEST(Driver, CacheInvalidatedByParameterChange)
{
    const std::string dir = freshTempDir("cache_inval");
    std::vector<JobSpec> specs = {makeJob(test::computeOnlyProfile(), 2)};

    DriverOptions opts;
    opts.cacheDir = dir;

    BatchStats stats;
    runExperimentBatch(specs, opts, &stats);
    EXPECT_EQ(stats.executed, 1u);

    // Any simulation-relevant change must miss...
    specs[0].params.cache.llcBytes *= 2;
    runExperimentBatch(specs, opts, &stats);
    EXPECT_EQ(stats.executed, 1u);
    EXPECT_EQ(stats.cached, 0u);

    // ...and the original configuration must still hit.
    specs[0].params.cache.llcBytes /= 2;
    runExperimentBatch(specs, opts, &stats);
    EXPECT_EQ(stats.cached, 1u);
    std::filesystem::remove_all(dir);
}

TEST(Driver, RefreshBypassesCacheHits)
{
    const std::string dir = freshTempDir("cache_refresh");
    const std::vector<JobSpec> specs = {
        makeJob(test::computeOnlyProfile(), 2)};

    DriverOptions opts;
    opts.cacheDir = dir;
    BatchStats stats;
    runExperimentBatch(specs, opts, &stats);
    EXPECT_EQ(stats.executed, 1u);

    opts.refresh = true;
    runExperimentBatch(specs, opts, &stats);
    EXPECT_EQ(stats.executed, 1u);
    EXPECT_EQ(stats.cached, 0u);
    std::filesystem::remove_all(dir);
}

TEST(ResultCache, RejectsCorruptAndTruncatedEntries)
{
    const std::string dir = freshTempDir("cache_corrupt");
    ResultCache cache(dir);
    const Fingerprint fp =
        fingerprintJob(makeJob(test::computeOnlyProfile(), 2));

    SpeedupExperiment exp;
    exp.label = "t";
    exp.nthreads = 2;
    exp.ts = 100;
    exp.tp = 60;
    exp.actualSpeedup = 100.0 / 60.0;
    cache.store(fp, exp);

    SpeedupExperiment loaded;
    ASSERT_TRUE(cache.lookup(fp, loaded));
    EXPECT_EQ(loaded.ts, 100u);
    EXPECT_EQ(loaded.actualSpeedup, exp.actualSpeedup);

    // Truncate the file: the missing `end` sentinel must fail lookup.
    {
        std::string path = cache.entryPath(fp);
        std::error_code ec;
        const auto size = std::filesystem::file_size(path, ec);
        ASSERT_FALSE(ec);
        std::filesystem::resize_file(path, size - 5, ec);
        ASSERT_FALSE(ec);
    }
    EXPECT_FALSE(cache.lookup(fp, loaded));
    std::filesystem::remove_all(dir);
}

// ---- failure isolation -----------------------------------------------------

TEST(Driver, OneBadJobDoesNotPoisonTheBatch)
{
    std::vector<JobSpec> specs = smallBatch();
    JobSpec bad = makeJob(test::computeOnlyProfile(), 0); // invalid
    specs.insert(specs.begin() + 1, bad);

    DriverOptions opts;
    opts.jobs = 4;
    BatchStats stats;
    const std::vector<JobResult> results =
        runExperimentBatch(specs, opts, &stats);

    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.executed, specs.size() - 1);
    EXPECT_FALSE(results[1].ok());
    EXPECT_NE(results[1].error.find("nthreads"), std::string::npos);
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i == 1)
            continue;
        EXPECT_TRUE(results[i].ok()) << i << ": " << results[i].error;
        EXPECT_GT(results[i].exp.actualSpeedup, 0.0);
    }
}

TEST(Driver, EmptyProfileFailsCleanly)
{
    BenchmarkProfile empty;
    empty.name = "t-empty";
    const std::vector<JobResult> results =
        runExperimentBatch({makeJob(empty, 2)}, DriverOptions{});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok());
    EXPECT_NE(results[0].error.find("totalIters"), std::string::npos);
}

// ---- sweep grids and export ------------------------------------------------

TEST(Sweep, ExpandGridIsProfileMajorCrossProduct)
{
    SweepGrid grid;
    grid.profiles = {"cholesky", "radix"};
    grid.threads = {2, 4};
    grid.llcBytes = {1u << 20, 2u << 20};

    const std::vector<JobSpec> jobs = expandGrid(grid);
    ASSERT_EQ(jobs.size(), 8u);
    EXPECT_EQ(jobs[0].label(), "cholesky");
    EXPECT_EQ(jobs[3].label(), "cholesky");
    EXPECT_EQ(jobs[4].label(), "radix");
    EXPECT_EQ(jobs[0].nthreads(), 2);
    EXPECT_EQ(jobs[0].params.cache.llcBytes, 1u << 20);
    EXPECT_EQ(jobs[1].params.cache.llcBytes, 2u << 20);
    EXPECT_EQ(jobs[2].nthreads(), 4);
}

TEST(Sweep, ExpandGridRejectsUnknownLabel)
{
    SweepGrid grid;
    grid.profiles = {"definitely-not-a-benchmark"};
    EXPECT_THROW(expandGrid(grid), std::invalid_argument);
}

TEST(Sweep, ExpandGridAcceptsBareNamesLikeProfileByLabel)
{
    SweepGrid grid;
    grid.profiles = {"facesim"}; // bare name, no _small/_medium suffix
    const std::vector<JobSpec> jobs = expandGrid(grid);
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].workload.groups[0].profile.name, "facesim");
    EXPECT_EQ(jobs[0].label(), profileByLabel("facesim").label());
}

TEST(Sweep, ListParsers)
{
    EXPECT_EQ(parseIntList("2,4,8,16"), (std::vector<int>{2, 4, 8, 16}));
    EXPECT_THROW(parseIntList("2,,4"), std::invalid_argument);
    EXPECT_THROW(parseIntList("2,x"), std::invalid_argument);

    EXPECT_EQ(parseSize("4096"), 4096u);
    EXPECT_EQ(parseSize("512K"), 512u * 1024);
    EXPECT_EQ(parseSize("2M"), 2u * 1024 * 1024);
    EXPECT_EQ(parseSize("1g"), 1024ull * 1024 * 1024);
    EXPECT_THROW(parseSize("M"), std::invalid_argument);
    EXPECT_THROW(parseSize(""), std::invalid_argument);

    EXPECT_EQ(parseSizeList("1M,2M"),
              (std::vector<std::uint64_t>{1u << 20, 2u << 20}));

    EXPECT_EQ(parseLabelList("a,b"), (std::vector<std::string>{"a", "b"}));
    EXPECT_THROW(parseLabelList("a,,b"), std::invalid_argument);
}

TEST(Sweep, CsvAndJsonExport)
{
    SweepGrid grid;
    grid.profiles = {"cholesky"};
    grid.threads = {2};
    const std::vector<JobSpec> specs = expandGrid(grid);

    DriverOptions opts;
    const std::vector<JobResult> results =
        runExperimentBatch(specs, opts);

    const std::string csv = sweepCsv(specs, results);
    EXPECT_NE(csv.find(sweepCsvHeader()), std::string::npos);
    EXPECT_NE(csv.find("cholesky,splash2,2,"), std::string::npos);
    // header + one row + trailing newline
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);

    const std::string json = sweepJson(specs, results);
    EXPECT_NE(json.find("\"benchmark\": \"cholesky\""),
              std::string::npos);
    EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
}

} // namespace
} // namespace sst
