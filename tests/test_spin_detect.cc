/**
 * @file
 * Unit tests for the Tian et al. and Li et al. spin detectors.
 */

#include <gtest/gtest.h>

#include "sync/spin_detect.hh"

namespace sst {
namespace {

TEST(Tian, DetectsBasicSpin)
{
    TianSpinDetector tian;
    const PC pc = 0x100;
    const Addr addr = 0xF000;
    Cycles now = 1000;
    // Spin: same value repeatedly.
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(tian.observeLoad(pc, addr, 1, false, now), 0u);
        now += 20;
    }
    // Another core releases: the whole interval is spin time.
    const Cycles spin = tian.observeLoad(pc, addr, 0, true, now);
    EXPECT_EQ(spin, now - 1000);
    EXPECT_EQ(tian.detectedCycles(), spin);
}

TEST(Tian, BelowThresholdNotMarked)
{
    TianSpinDetector::Params p;
    p.markThreshold = 4;
    TianSpinDetector tian(p);
    const PC pc = 0x100;
    tian.observeLoad(pc, 0xF000, 1, false, 0);
    tian.observeLoad(pc, 0xF000, 1, false, 20);
    // Value changes before the threshold: nothing detected.
    EXPECT_EQ(tian.observeLoad(pc, 0xF000, 0, true, 40), 0u);
}

TEST(Tian, OwnWriteDoesNotCountAsSpin)
{
    TianSpinDetector tian;
    const PC pc = 0x100;
    Cycles now = 0;
    for (int i = 0; i < 10; ++i) {
        tian.observeLoad(pc, 0xF000, 1, false, now);
        now += 20;
    }
    // Value changed, but written by this core: not a spin.
    EXPECT_EQ(tian.observeLoad(pc, 0xF000, 2, false, now), 0u);
}

TEST(Tian, AddressChangeRestartsTracking)
{
    TianSpinDetector tian;
    const PC pc = 0x100;
    Cycles now = 0;
    for (int i = 0; i < 10; ++i) {
        tian.observeLoad(pc, 0xF000, 1, false, now);
        now += 20;
    }
    tian.observeLoad(pc, 0xF040, 1, false, now); // different address
    now += 20;
    // Change at the new address shortly after: interval restarted.
    EXPECT_EQ(tian.observeLoad(pc, 0xF040, 2, true, now), 0u);
}

TEST(Tian, LruReplacementKeepsHotEntries)
{
    TianSpinDetector::Params p;
    p.tableEntries = 2;
    TianSpinDetector tian(p);
    Cycles now = 0;
    // Fill with two PCs, keep PC A hot, then add a third.
    for (int i = 0; i < 6; ++i) {
        tian.observeLoad(0xA, 0x1, 1, false, now++);
        tian.observeLoad(0xB, 0x2, 1, false, now++);
    }
    tian.observeLoad(0xA, 0x1, 1, false, now++);
    tian.observeLoad(0xC, 0x3, 1, false, now++); // evicts 0xB (LRU)
    // PC A is still tracked and marked: release detects.
    const Cycles spin = tian.observeLoad(0xA, 0x1, 0, true, now);
    EXPECT_GT(spin, 0u);
}

TEST(Tian, ChangingValuesNeverDetect)
{
    TianSpinDetector tian;
    Cycles now = 0;
    // A data load whose value changes on every observation (real work).
    for (std::uint64_t v = 0; v < 100; ++v) {
        EXPECT_EQ(tian.observeLoad(0x200, 0x8000, v, true, now), 0u);
        now += 10;
    }
    EXPECT_EQ(tian.detectedCycles(), 0u);
}

TEST(Tian, HardwareBitsMatchPaper)
{
    // 8 entries x (64 PC + 64 addr + 64 data + 1 mark + 24 timestamp)
    // = 1736 bits = 217 bytes (Section 4.7).
    EXPECT_EQ(TianSpinDetector::hardwareBits(), 1736u);
    EXPECT_EQ(TianSpinDetector::hardwareBits() / 8, 217u);
}

TEST(Li, DetectsUnchangedState)
{
    LiSpinDetector li;
    const PC pc = 0x300;
    Cycles now = 0;
    li.observeBackwardBranch(pc, 42, now);
    Cycles total = 0;
    for (int i = 0; i < 5; ++i) {
        now += 20;
        total += li.observeBackwardBranch(pc, 42, now);
    }
    EXPECT_EQ(total, 100u);
    EXPECT_EQ(li.detectedCycles(), 100u);
}

TEST(Li, ChangedStateNotSpin)
{
    LiSpinDetector li;
    const PC pc = 0x300;
    Cycles now = 0;
    std::uint64_t state = 0;
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(li.observeBackwardBranch(pc, ++state, now), 0u);
        now += 20;
    }
}

TEST(Li, SeparateBranchesTrackedIndependently)
{
    LiSpinDetector li;
    Cycles now = 0;
    li.observeBackwardBranch(0x10, 1, now);
    li.observeBackwardBranch(0x20, 2, now);
    now += 50;
    EXPECT_EQ(li.observeBackwardBranch(0x10, 1, now), 50u);
    EXPECT_EQ(li.observeBackwardBranch(0x20, 3, now), 0u);
}

} // namespace
} // namespace sst
