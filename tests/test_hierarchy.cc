/**
 * @file
 * Unit tests for the cache hierarchy: L1/LLC paths, MSI coherence,
 * coherency-miss classification, inter-thread classification, inclusion
 * and writebacks.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"

namespace sst {
namespace {

CacheParams
smallParams()
{
    CacheParams p;
    p.l1Bytes = 4 * 1024;
    p.l1Ways = 4;
    p.llcBytes = 64 * 1024;
    p.llcWays = 8;
    p.atdSamplingFactor = 1; // sample everything for deterministic tests
    return p;
}

TEST(Hierarchy, ColdMissThenHits)
{
    CacheHierarchy h(2, smallParams());
    const Addr addr = 0x1000;
    const AccessOutcome first = h.access(0, addr, false);
    EXPECT_FALSE(first.l1Hit);
    EXPECT_FALSE(first.llcHit);
    EXPECT_TRUE(first.dramAccess());

    const AccessOutcome second = h.access(0, addr, false);
    EXPECT_TRUE(second.l1Hit);
    EXPECT_EQ(h.stats(0).l1Hits, 1u);
    EXPECT_EQ(h.stats(0).llcMisses, 1u);
}

TEST(Hierarchy, SecondCoreHitsLlcNotL1)
{
    CacheHierarchy h(2, smallParams());
    const Addr addr = 0x2000;
    h.access(0, addr, false);
    const AccessOutcome out = h.access(1, addr, false);
    EXPECT_FALSE(out.l1Hit);
    EXPECT_TRUE(out.llcHit);
    // Core 1 never brought it privately: inter-thread hit.
    EXPECT_TRUE(out.interThreadHit);
}

TEST(Hierarchy, WriteInvalidatesOtherL1Copies)
{
    CacheHierarchy h(2, smallParams());
    const Addr addr = 0x3000;
    h.access(0, addr, false);
    h.access(1, addr, false);
    // Core 1 writes: core 0's copy must be invalidated.
    h.access(1, addr, true);
    const AccessOutcome out = h.access(0, addr, false);
    EXPECT_FALSE(out.l1Hit);
    EXPECT_TRUE(out.coherencyMiss);
    EXPECT_TRUE(out.llcHit);
    EXPECT_EQ(h.stats(0).invalidationsReceived, 1u);
    EXPECT_EQ(h.stats(0).coherencyMisses, 1u);
}

TEST(Hierarchy, DirtyInOtherL1TriggersTransfer)
{
    CacheHierarchy h(2, smallParams());
    const Addr addr = 0x4000;
    h.access(0, addr, true); // core 0 has the line modified
    const AccessOutcome out = h.access(1, addr, false);
    EXPECT_TRUE(out.llcHit);
    EXPECT_TRUE(out.dirtyInOtherL1);
}

TEST(Hierarchy, WriteHitUpgradeGainsExclusivity)
{
    CacheHierarchy h(2, smallParams());
    const Addr addr = 0x5000;
    h.access(0, addr, false);
    h.access(1, addr, false);
    // Core 0 upgrades its shared copy.
    const AccessOutcome up = h.access(0, addr, true);
    EXPECT_TRUE(up.l1Hit);
    // Core 1 re-reads: coherency miss + dirty transfer from core 0.
    const AccessOutcome re = h.access(1, addr, false);
    EXPECT_TRUE(re.coherencyMiss);
    EXPECT_TRUE(re.dirtyInOtherL1);
}

TEST(Hierarchy, InterThreadMissClassification)
{
    CacheParams params = smallParams();
    CacheHierarchy h(2, params);
    // Core 0 loads a line; core 1 thrashes the LLC set until it is
    // evicted; core 0's re-access misses the LLC but hits its ATD.
    const Addr line0 = 0;
    h.access(0, line0 * kLineBytes, false);
    const int sets = static_cast<int>(params.llcBytes / kLineBytes) /
                     params.llcWays;
    for (int w = 1; w <= params.llcWays + 2; ++w) {
        h.access(1,
                 static_cast<Addr>(w) * static_cast<Addr>(sets) *
                     kLineBytes,
                 false);
    }
    const AccessOutcome out = h.access(0, line0, false);
    EXPECT_FALSE(out.llcHit);
    EXPECT_TRUE(out.interThreadMiss)
        << "evicted by another core but resident in the private shadow";
}

TEST(Hierarchy, InclusiveBackInvalidation)
{
    CacheParams params = smallParams();
    CacheHierarchy h(2, params);
    const Addr addr = 0;
    h.access(0, addr, false);
    // Evict the line from the LLC via core 1's conflicting traffic.
    const int sets = static_cast<int>(params.llcBytes / kLineBytes) /
                     params.llcWays;
    for (int w = 1; w <= params.llcWays + 2; ++w) {
        h.access(1,
                 static_cast<Addr>(w) * static_cast<Addr>(sets) *
                     kLineBytes,
                 false);
    }
    // Core 0's L1 copy must be gone (inclusion).
    const AccessOutcome out = h.access(0, addr, false);
    EXPECT_FALSE(out.l1Hit);
    EXPECT_FALSE(out.coherencyMiss) << "capacity, not coherence";
}

TEST(Hierarchy, DirtyVictimWritesBack)
{
    CacheParams params = smallParams();
    CacheHierarchy h(1, params);
    const Addr addr = 0;
    h.access(0, addr, true); // dirty line
    const int sets = static_cast<int>(params.llcBytes / kLineBytes) /
                     params.llcWays;
    bool saw_writeback = false;
    for (int w = 1; w <= params.llcWays + 2; ++w) {
        const AccessOutcome out = h.access(
            0,
            static_cast<Addr>(w) * static_cast<Addr>(sets) * kLineBytes,
            false);
        if (out.victimWriteback && out.victimLine == lineNum(addr))
            saw_writeback = true;
    }
    EXPECT_TRUE(saw_writeback);
}

TEST(Hierarchy, L1EvictionWritesDirtyDataToLlc)
{
    CacheParams params = smallParams();
    CacheHierarchy h(2, params);
    const Addr addr = 0;
    h.access(0, addr, true); // modified in core 0's L1
    // Evict from core 0's L1 (4KB, 4 ways -> 16 sets).
    const int l1_sets = static_cast<int>(params.l1Bytes / kLineBytes) /
                        params.l1Ways;
    for (int w = 1; w <= params.l1Ways + 1; ++w) {
        h.access(0,
                 static_cast<Addr>(w) * static_cast<Addr>(l1_sets) *
                     kLineBytes,
                 false);
    }
    // Core 1 reads: data must come from the LLC without a dirty
    // transfer (the writeback already happened).
    const AccessOutcome out = h.access(1, addr, false);
    EXPECT_TRUE(out.llcHit);
    EXPECT_FALSE(out.dirtyInOtherL1);
}

TEST(Hierarchy, FlushL1DropsPrivateCopies)
{
    CacheHierarchy h(1, smallParams());
    const Addr addr = 0x7000;
    h.access(0, addr, false);
    h.flushL1(0);
    const AccessOutcome out = h.access(0, addr, false);
    EXPECT_FALSE(out.l1Hit);
    EXPECT_TRUE(out.llcHit);
}

TEST(Hierarchy, ResetStatsZeroesCounters)
{
    CacheHierarchy h(1, smallParams());
    h.access(0, 0x1000, false);
    h.resetStats();
    EXPECT_EQ(h.stats(0).l1Accesses, 0u);
    EXPECT_EQ(h.stats(0).llcMisses, 0u);
}

TEST(Hierarchy, OracleAtdsTrackEverything)
{
    CacheParams params = smallParams();
    params.atdSamplingFactor = 8;
    params.oracleAtds = true;
    CacheHierarchy h(2, params);
    h.access(0, 0x100 * kLineBytes, false);
    const AccessOutcome out = h.access(1, 0x100 * kLineBytes, false);
    EXPECT_TRUE(out.oracleInterThreadHit);
}

} // namespace
} // namespace sst
