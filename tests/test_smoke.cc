/**
 * @file
 * End-to-end smoke tests: a small benchmark simulates to completion on
 * 1..16 threads, produces a well-formed speedup stack, and the estimate
 * lands in a sane range.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "workload/profile.hh"

namespace sst {
namespace {

TEST(Smoke, BlackscholesSmallRunsToCompletion)
{
    const BenchmarkProfile &profile = profileByLabel("blackscholes_small");
    SimParams params;
    params.ncores = 4;
    const SpeedupExperiment exp =
        runSpeedupExperiment(params, profile, 4);
    EXPECT_GT(exp.ts, 0u);
    EXPECT_GT(exp.tp, 0u);
    EXPECT_GT(exp.actualSpeedup, 1.0);
    EXPECT_LE(exp.actualSpeedup, 4.2);
    EXPECT_TRUE(exp.stack.sumsToHeight(1e-6));
}

} // namespace
} // namespace sst
